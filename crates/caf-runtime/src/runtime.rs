//! Runtime launch and process-wide shared state.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use caf_core::config::RuntimeConfig;
use caf_core::fault::FaultPlan;
use caf_core::ids::{ImageId, TeamId};
use caf_net::Fabric;
use parking_lot::Mutex;

use crate::event::EventTable;
use crate::failure::{CrashUnwind, FailUnwind, FailureHub, FailureReport};
use crate::image::Image;
use crate::msg::Msg;
use crate::watchdog::{RuntimeError, StallReport, StallUnwind, Watchdog};

/// State shared by every image (and their communication threads).
pub(crate) struct Shared {
    /// The simulated interconnect.
    pub fabric: Arc<Fabric<Msg>>,
    /// Runtime configuration.
    pub cfg: RuntimeConfig,
    /// Number of images.
    pub n: usize,
    /// One event table per image, indexed by image rank. Shared so remote
    /// notifies (handled by the owner) and comm threads (local notifies)
    /// can both reach them.
    pub event_tables: Vec<EventTable>,
    /// Collective-allocation registry: the first image to allocate
    /// `(team, seq)` creates the coarray; teammates attach to it. Entries
    /// live for the runtime's lifetime (coarrays in CAF are symmetric,
    /// long-lived objects; per-allocation this costs one boxed handle).
    pub allocs: Mutex<HashMap<(TeamId, u64), Box<dyn Any + Send>>>,
    /// `team_split` id registry: `(parent, split_seq, color) → TeamId`,
    /// so every member of a new team agrees on its id.
    pub team_ids: Mutex<HashMap<(TeamId, u64, u64), TeamId>>,
    /// Next fresh team id (0 is `team_world`).
    pub next_team: AtomicU64,
    /// The no-progress watchdog, when `cfg.watchdog` configures one.
    pub watchdog: Option<Watchdog>,
    /// The failure hub, when `cfg.failure` engages fail-stop detection.
    pub failure: Option<FailureHub>,
}

/// Entry point for the threaded CAF 2.0 runtime.
pub struct Runtime;

impl Runtime {
    /// Launches `n` process images, each running `f` on its own OS thread
    /// (the SPMD model: the same program starts everywhere and images
    /// diverge on their rank). Returns every image's result, indexed by
    /// rank.
    ///
    /// The closure may freely capture the caller's environment by
    /// reference; images communicate only through the runtime.
    ///
    /// # Panics
    /// Panics if `n == 0`, any image panics, or the no-progress watchdog
    /// declares a stall (use [`Runtime::try_launch`] to handle stalls as
    /// values).
    pub fn launch<R, F>(n: usize, cfg: RuntimeConfig, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Image) -> R + Send + Sync,
    {
        match Runtime::try_launch(n, cfg, f) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Runtime::launch`], but a stall detected by the configured
    /// no-progress watchdog (`cfg.watchdog`) comes back as
    /// [`RuntimeError::Stalled`], and — with failure detection engaged
    /// (`cfg.failure`) — a fail-stopped image (crash fault or uncaught
    /// panic in the closure) comes back as [`RuntimeError::ImageFailed`]
    /// from *every* surviving image's perspective, instead of a panic or
    /// a hang. Without a watchdog or failure detection this never returns
    /// `Err` (a genuine hang stays a hang — there is nothing watching).
    ///
    /// # Panics
    /// Panics if `n == 0` or any image panics for a reason other than a
    /// declared stall or detected failure (panics are translated into
    /// `ImageFailed` only when `cfg.failure` is engaged).
    pub fn try_launch<R, F>(n: usize, cfg: RuntimeConfig, f: F) -> Result<Vec<R>, RuntimeError>
    where
        R: Send,
        F: Fn(&Image) -> R + Send + Sync,
    {
        assert!(n > 0, "at least one image required");
        // Inline communication runs copy data-plane sends on the image
        // thread with a sleeping backpressure stall; combined with a
        // bounded inbox, every image can end up asleep in a send with
        // nobody draining. Dedicated comm threads (the default) or an
        // unbounded inbox avoid the cycle.
        assert!(
            !(cfg.comm_mode == caf_core::config::CommMode::Inline
                && cfg.network.inbox_capacity.is_some()),
            "CommMode::Inline requires inbox_capacity: None (see CommMode docs); \
             use CommMode::DedicatedThread with bounded inboxes"
        );
        // A fault plan or failure detection routes all traffic through the
        // ack/retry sublayer; otherwise the wire is lossless and the
        // fabric stays raw.
        let fabric = if cfg.faults.is_some() || cfg.failure.is_some() {
            let plan = cfg.faults.clone().unwrap_or_else(|| FaultPlan::none(cfg.seed));
            Fabric::with_chaos(
                n,
                cfg.network.clone(),
                cfg.non_fifo,
                plan,
                cfg.retry.clone(),
                cfg.failure.clone(),
            )
        } else {
            Fabric::new(n, cfg.network.clone(), cfg.non_fifo)
        };
        let shared = Arc::new(Shared {
            fabric,
            n,
            event_tables: (0..n).map(|_| EventTable::default()).collect(),
            allocs: Mutex::new(HashMap::new()),
            team_ids: Mutex::new(HashMap::new()),
            next_team: AtomicU64::new(1),
            watchdog: cfg.watchdog.map(|window| Watchdog::new(window, n)),
            failure: cfg.failure.as_ref().map(|_| FailureHub::new()),
            cfg,
        });
        let joined: Vec<Result<R, Box<dyn Any + Send>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|i| {
                    let shared = Arc::clone(&shared);
                    let f = &f;
                    std::thread::Builder::new()
                        .name(format!("caf-img-{i}"))
                        .spawn_scoped(scope, move || {
                            let _live = shared.watchdog.as_ref().map(|w| w.live_guard());
                            let img = Image::new(Arc::clone(&shared), ImageId(i));
                            if shared.failure.is_none() {
                                let r = f(&img);
                                img.shutdown();
                                return r;
                            }
                            // Fail-stop boundary: an uncaught panic in the
                            // closure kills this image, not the launch —
                            // survivors drain and the caller gets a
                            // FailureReport. Runtime unwind payloads pass
                            // through untranslated.
                            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&img)))
                            {
                                Ok(r) => {
                                    img.shutdown();
                                    r
                                }
                                Err(payload) => {
                                    if payload.is::<StallUnwind>()
                                        || payload.is::<FailUnwind>()
                                        || payload.is::<CrashUnwind>()
                                    {
                                        std::panic::resume_unwind(payload);
                                    }
                                    img.die_of_panic(&*payload);
                                    std::panic::resume_unwind(Box::new(CrashUnwind));
                                }
                            }
                        })
                        .expect("spawning image thread")
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });
        let mut out = Vec::with_capacity(n);
        let mut stalled = false;
        let mut failed = false;
        for r in joined {
            match r {
                Ok(v) => out.push(v),
                Err(payload) if payload.is::<StallUnwind>() => stalled = true,
                Err(payload) if payload.is::<FailUnwind>() || payload.is::<CrashUnwind>() => {
                    failed = true;
                }
                // A genuine panic (assertion failure, user bug) outranks a
                // stall: peers unwound via StallUnwind only because the
                // panicking image stopped participating.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        if failed {
            // An image failure outranks a stall: survivors that stalled out
            // did so because the dead image stopped participating.
            let hub = shared.failure.as_ref().expect("failure unwind without a failure hub");
            let down = hub.down().expect("failure unwind without a registered death");
            let stats = shared.fabric.stats();
            // Team-wide drain: discard in-flight traffic addressed to
            // threads that no longer exist, so teardown never blocks.
            let drained = shared.fabric.drain_inboxes();
            return Err(RuntimeError::ImageFailed(FailureReport {
                image: down.peer,
                incarnation: down.incarnation,
                detection_latency: down.latency,
                panic: hub.take_panic(),
                observers: hub.take_observations(),
                crash_drops: stats.crash_drops(),
                posthumous_drops: stats.posthumous_drops(),
                heartbeats: stats.heartbeats(),
                drained,
            }));
        }
        if stalled {
            let wd = shared.watchdog.as_ref().expect("stall unwind without a watchdog");
            let stats = shared.fabric.stats();
            return Err(RuntimeError::Stalled(StallReport {
                window: wd.window(),
                images: wd.take_reports(),
                messages: stats.messages(),
                delivered: stats.delivered(),
                retries: stats.retries(),
                retries_exhausted: stats.retries_exhausted(),
                wire_drops: stats.wire_drops(),
                wire_dups: stats.wire_dups(),
                dups_discarded: stats.dups_discarded(),
            }));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_runs_every_image_once() {
        let ranks = Runtime::launch(4, RuntimeConfig::testing(), |img| img.id().index());
        assert_eq!(ranks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn closure_may_borrow_environment() {
        let base = 100usize;
        let out = Runtime::launch(3, RuntimeConfig::testing(), |img| base + img.id().index());
        assert_eq!(out, vec![100, 101, 102]);
    }

    #[test]
    #[should_panic(expected = "at least one image")]
    fn zero_images_rejected() {
        let _ = Runtime::launch(0, RuntimeConfig::testing(), |_| ());
    }
}
