//! Parallel UTS on the CAF 2.0 runtime (paper Fig. 15 and §IV-C2).
//!
//! The composite load-balancing scheme of Saraswat et al. as the paper
//! implements it:
//!
//! * **initial work sharing** — image 0 expands the first tree levels
//!   breadth-first and scatters the frontier round-robin;
//! * **randomized work stealing** — an image that runs dry ships one
//!   `steal_work` function to a random victim (the function executes
//!   *at the victim*, so a steal costs two one-way trips instead of the
//!   five round trips of the get/put algorithm in paper Fig. 2);
//! * **lifelines** — after its steal attempt the image registers on its
//!   hypercube neighbours (ranks `me XOR 2^i`) and quiesces; a neighbour
//!   that later has excess work pushes a chunk, reactivating the image
//!   *inside the shipped function's handler*;
//! * **termination via `finish`** — a barrier cannot tell "idle for now"
//!   from "done" (work can always be pushed over a lifeline); the finish
//!   block's termination detector can, and ends the run.
//!
//! Steal/push chunks are capped at [`UtsConfig::steal_chunk`] descriptors,
//! mirroring the GASNet `AMMedium` payload limit the paper mentions
//! (§IV-C1a: at most 9 items per shipped function).

use std::sync::Arc;

use caf_core::ids::ImageId;
use caf_core::topology::hypercube_neighbors;
use caf_runtime::{Image, Runtime, RuntimeConfig};
use parking_lot::Mutex;

use crate::tree::{Node, TreeSpec};

/// Tuning knobs of the parallel traversal.
#[derive(Debug, Clone)]
pub struct UtsConfig {
    /// The workload.
    pub spec: TreeSpec,
    /// Maximum descriptors per steal/push message (the `AMMedium` cap).
    pub steal_chunk: usize,
    /// Minimum local queue length before feeding lifelines.
    pub lifeline_push_min: usize,
    /// Image 0 expands until the frontier reaches `factor × images`.
    pub initial_share_factor: usize,
    /// Nodes processed between progress polls (steal-attentiveness).
    pub progress_interval: usize,
}

impl UtsConfig {
    /// Defaults matching the paper's constraints.
    pub fn new(spec: TreeSpec) -> Self {
        UtsConfig {
            spec,
            steal_chunk: 9,
            lifeline_push_min: 32,
            initial_share_factor: 4,
            progress_interval: 64,
        }
    }
}

/// Result of a parallel traversal.
#[derive(Debug, Clone)]
pub struct UtsOutcome {
    /// Total nodes counted (must equal the sequential count).
    pub total_nodes: u64,
    /// Nodes counted per image (Fig. 16's load-balance series).
    pub per_image: Vec<u64>,
    /// Termination-detection reduction waves per image (Fig. 18's
    /// metric), as reported by each image's last finish block.
    pub waves: Vec<usize>,
    /// Steal attempts issued per image.
    pub steals_attempted: Vec<u64>,
    /// Lifeline pushes received per image.
    pub lifeline_pushes: Vec<u64>,
}

/// Per-image work-stealing state, shared with handlers through an `Arc`.
struct ImgUts {
    queue: Vec<Node>,
    /// Images whose lifelines are currently registered here.
    lifelines: Vec<ImageId>,
    count: u64,
    steals: u64,
    pushes_received: u64,
    /// Re-entrancy guard: a reactivation handler only enqueues when a
    /// work loop is already running further down the stack.
    active: bool,
}

type SharedUts = Arc<Vec<Mutex<ImgUts>>>;

/// Runs the parallel traversal over `images` process images.
pub fn run_uts(images: usize, rt: RuntimeConfig, cfg: UtsConfig) -> UtsOutcome {
    let shared: SharedUts = Arc::new(
        (0..images)
            .map(|_| {
                Mutex::new(ImgUts {
                    queue: Vec::new(),
                    lifelines: Vec::new(),
                    count: 0,
                    steals: 0,
                    pushes_received: 0,
                    active: false,
                })
            })
            .collect(),
    );
    let cfg = Arc::new(cfg);
    let per_image = Runtime::launch(images, rt, |img| {
        let st = Arc::clone(&shared);
        let cfg = Arc::clone(&cfg);
        let world = img.world();
        img.finish(&world, |img| {
            if img.id().index() == 0 {
                initial_share(img, &st, &cfg);
            }
            work_loop(img, &st, &cfg);
        });
        let me = st[img.id().index()].lock();
        (me.count, img.last_finish_waves(), me.steals, me.pushes_received)
    });
    let total = per_image.iter().map(|x| x.0).sum();
    UtsOutcome {
        total_nodes: total,
        per_image: per_image.iter().map(|x| x.0).collect(),
        waves: per_image.iter().map(|x| x.1).collect(),
        steals_attempted: per_image.iter().map(|x| x.2).collect(),
        lifeline_pushes: per_image.iter().map(|x| x.3).collect(),
    }
}

/// Image 0 builds the first levels breadth-first and scatters the
/// frontier round-robin (paper §IV-C2a).
fn initial_share(img: &Image, st: &SharedUts, cfg: &Arc<UtsConfig>) {
    let n = img.num_images();
    let target = cfg.initial_share_factor * n;
    let mut frontier = std::collections::VecDeque::new();
    frontier.push_back(cfg.spec.root());
    let mut expanded = Vec::new();
    while frontier.len() < target {
        let Some(node) = frontier.pop_front() else { break };
        st[img.id().index()].lock().count += 1;
        expanded.clear();
        cfg.spec.expand_into(&node, &mut expanded);
        frontier.extend(expanded.drain(..));
    }
    // Round-robin deal, chunked to respect the message-size cap.
    let mut deals: Vec<Vec<Node>> = vec![Vec::new(); n];
    for (i, node) in frontier.into_iter().enumerate() {
        deals[i % n].push(node);
    }
    for (j, nodes) in deals.into_iter().enumerate() {
        if nodes.is_empty() {
            continue;
        }
        if j == img.id().index() {
            st[j].lock().queue.extend(nodes);
        } else {
            for chunk in nodes.chunks(cfg.steal_chunk.max(1)) {
                deliver_work(img, st, cfg, img.image(j), chunk.to_vec(), false);
            }
        }
    }
}

/// Ships `nodes` to `target`, where they are enqueued and — unless a work
/// loop is already active there — processed immediately.
fn deliver_work(
    img: &Image,
    st: &SharedUts,
    cfg: &Arc<UtsConfig>,
    target: ImageId,
    nodes: Vec<Node>,
    is_lifeline_push: bool,
) {
    let st2 = Arc::clone(st);
    let cfg2 = Arc::clone(cfg);
    let bytes = nodes.len() * 24 + 16;
    img.spawn_sized(target, bytes, move |peer: &Image| {
        let run = {
            let mut s = st2[peer.id().index()].lock();
            s.queue.extend(nodes);
            if is_lifeline_push {
                s.pushes_received += 1;
            }
            !s.active
        };
        if run {
            work_loop(peer, &st2, &cfg2);
        }
    });
}

/// The Fig. 15 main loop: drain the queue (feeding lifelines along the
/// way), then one steal attempt, then lifeline registration, then return
/// to the enclosing finish wait.
fn work_loop(img: &Image, st: &SharedUts, cfg: &Arc<UtsConfig>) {
    let me = img.id().index();
    st[me].lock().active = true;
    let mut children = Vec::new();
    let mut since_progress = 0usize;
    loop {
        let node = st[me].lock().queue.pop();
        let Some(node) = node else { break };
        children.clear();
        cfg.spec.expand_into(&node, &mut children);
        {
            let mut s = st[me].lock();
            s.count += 1;
            s.queue.append(&mut children);
        }
        since_progress += 1;
        if since_progress >= cfg.progress_interval {
            since_progress = 0;
            img.progress(); // stay receptive to steals
        }
        feed_lifelines(img, st, cfg);
    }
    st[me].lock().active = false;

    // One steal attempt (paper: n = 1), fire-and-forget.
    let n = img.num_images();
    if n > 1 {
        let victim = {
            let v = img.rng_below((n - 1) as u64) as usize;
            if v >= me {
                v + 1
            } else {
                v
            }
        };
        st[me].lock().steals += 1;
        let st2 = Arc::clone(st);
        let cfg2 = Arc::clone(cfg);
        let thief = img.id();
        img.spawn(img.image(victim), move |victim_img: &Image| {
            let stolen: Vec<Node> = {
                let mut s = st2[victim_img.id().index()].lock();
                let take = cfg2.steal_chunk.min(s.queue.len());
                // Steal from the front: the oldest nodes are the
                // shallowest, hence the largest expected subtrees.
                s.queue.drain(..take).collect()
            };
            if !stolen.is_empty() {
                deliver_work(victim_img, &st2, &cfg2, thief, stolen, false);
            }
        });

        // Establish lifelines on hypercube neighbours (paper §IV-C2c).
        let my_rank = caf_core::ids::TeamRank(me);
        for nb in hypercube_neighbors(n, my_rank) {
            let st2 = Arc::clone(st);
            let cfg2 = Arc::clone(cfg);
            let waiter = img.id();
            img.spawn(img.image(nb.0), move |nb_img: &Image| {
                let give: Option<Vec<Node>> = {
                    let mut s = st2[nb_img.id().index()].lock();
                    if !s.lifelines.contains(&waiter) {
                        s.lifelines.push(waiter);
                    }
                    // If the neighbour has excess work right now, satisfy
                    // the lifeline immediately.
                    if s.queue.len() >= cfg2.lifeline_push_min {
                        let take = cfg2.steal_chunk.min(s.queue.len() / 2).max(1);
                        s.lifelines.retain(|w| *w != waiter);
                        Some(s.queue.drain(..take).collect())
                    } else {
                        None
                    }
                };
                if let Some(nodes) = give {
                    deliver_work(nb_img, &st2, &cfg2, waiter, nodes, true);
                }
            });
        }
    }
}

/// Pushes chunks to registered lifeline waiters while the local queue has
/// excess work (paper §IV-C2c: work sharing via lifelines).
fn feed_lifelines(img: &Image, st: &SharedUts, cfg: &Arc<UtsConfig>) {
    let me = img.id().index();
    loop {
        let give = {
            let mut s = st[me].lock();
            if s.lifelines.is_empty() || s.queue.len() < cfg.lifeline_push_min {
                break;
            }
            let waiter = s.lifelines.remove(0);
            let take = cfg.steal_chunk.min(s.queue.len() / 2).max(1);
            let nodes: Vec<Node> = s.queue.drain(..take).collect();
            (waiter, nodes)
        };
        deliver_work(img, st, cfg, give.0, give.1, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::count_tree;

    fn check(images: usize, spec: TreeSpec) {
        let expect = count_tree(&spec).nodes;
        let out = run_uts(images, RuntimeConfig::testing(), UtsConfig::new(spec));
        assert_eq!(out.total_nodes, expect, "parallel count mismatch on {images} images");
        assert_eq!(out.per_image.len(), images);
    }

    #[test]
    fn single_image_matches_sequential() {
        check(1, TreeSpec::geo_fixed(3.0, 5, 19));
    }

    #[test]
    fn small_team_matches_sequential() {
        check(4, TreeSpec::geo_fixed(4.0, 5, 19));
    }

    #[test]
    fn larger_team_matches_sequential() {
        check(8, TreeSpec::geo_fixed(4.0, 6, 19));
    }

    #[test]
    fn binomial_tree_matches_sequential() {
        check(
            4,
            TreeSpec { kind: crate::tree::TreeKind::Binomial { b0: 50, q: 0.12, m: 8 }, seed: 42 },
        );
    }

    #[test]
    fn stealing_actually_spreads_work() {
        let spec = TreeSpec::geo_fixed(4.0, 6, 19);
        let out = run_uts(4, RuntimeConfig::testing(), UtsConfig::new(spec));
        let busy = out.per_image.iter().filter(|&&c| c > 0).count();
        assert!(busy >= 2, "work never left image 0: {:?}", out.per_image);
    }
}
