//! Identifier newtypes shared across the runtime and the simulator.
//!
//! Coarray Fortran 2.0 names participants *process images*. An image has a
//! fixed *global* rank for its whole lifetime, plus a *relative* rank inside
//! every team it belongs to. Keeping the two in distinct newtypes prevents
//! the classic PGAS bug of indexing a team-relative structure with a global
//! rank (or vice versa).

use std::fmt;

/// Global rank of a process image within `team_world` (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ImageId(pub usize);

impl ImageId {
    /// The global rank as a plain index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ImageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "img{}", self.0)
    }
}

/// Rank of an image relative to some team (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TeamRank(pub usize);

impl TeamRank {
    /// The team-relative rank as a plain index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TeamRank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank{}", self.0)
    }
}

/// Identifier of a team. `TeamId::WORLD` is `team_world`; teams created by
/// `team_split` get fresh ids from a runtime-global counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TeamId(pub u64);

impl TeamId {
    /// The id of `team_world`, to which every image initially belongs.
    pub const WORLD: TeamId = TeamId(0);
}

impl fmt::Display for TeamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == TeamId::WORLD {
            write!(f, "team_world")
        } else {
            write!(f, "team{}", self.0)
        }
    }
}

/// Identifier of one dynamic `finish` block instance.
///
/// `finish` is collective over a team and every member must enter matching
/// blocks in the same order, so `(team, seq)` — where `seq` counts finish
/// blocks entered on that team — names the same dynamic block on every
/// member. Nested finish blocks on the same team get increasing `seq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FinishId {
    /// Team the finish block synchronizes.
    pub team: TeamId,
    /// Ordinal of this finish block on `team` (0-based, per team).
    pub seq: u64,
}

impl fmt::Display for FinishId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "finish({}, #{})", self.team, self.seq)
    }
}

/// Identifier of an event variable.
///
/// Events declared as coarrays are remotely addressable: the pair
/// (owning image, slot) names one event cell. Purely local events use the
/// owning image's own id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId {
    /// Image whose memory holds the event cell.
    pub owner: ImageId,
    /// Slot within the owner's event table.
    pub slot: u64,
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event({}, {})", self.owner, self.slot)
    }
}

/// Parity of a termination-detection epoch (paper §III-A2).
///
/// The interval between a `finish` block's start and end is divided into
/// epochs numbered from zero; the algorithm only distinguishes even from
/// odd. An image moves `Even → Odd` when it enters the allreduce or when it
/// receives a message tagged `Odd`; it moves `Odd → Even` when it exits the
/// allreduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Parity {
    /// Even-numbered epoch: counters here feed the next sum reduction.
    #[default]
    Even,
    /// Odd-numbered epoch: activity concurrent with an in-flight reduction.
    Odd,
}

impl Parity {
    /// The opposite parity.
    #[inline]
    pub fn flip(self) -> Parity {
        match self {
            Parity::Even => Parity::Odd,
            Parity::Odd => Parity::Even,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_flip_round_trips() {
        assert_eq!(Parity::Even.flip(), Parity::Odd);
        assert_eq!(Parity::Odd.flip(), Parity::Even);
        assert_eq!(Parity::Even.flip().flip(), Parity::Even);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ImageId(3).to_string(), "img3");
        assert_eq!(TeamId::WORLD.to_string(), "team_world");
        assert_eq!(TeamId(7).to_string(), "team7");
        let f = FinishId { team: TeamId(2), seq: 5 };
        assert_eq!(f.to_string(), "finish(team2, #5)");
        let e = EventId { owner: ImageId(1), slot: 9 };
        assert_eq!(e.to_string(), "event(img1, 9)");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(ImageId(1) < ImageId(2));
        assert!(TeamRank(0) < TeamRank(1));
        let a = FinishId { team: TeamId(1), seq: 1 };
        let b = FinishId { team: TeamId(1), seq: 2 };
        assert!(a < b);
    }
}
