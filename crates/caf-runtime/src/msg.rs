//! Wire messages of the threaded runtime.
//!
//! Everything above the fabric is one of four message kinds:
//!
//! * [`Msg::Am`] — an active message: a closure executed on the target
//!   image's thread, carrying its `finish` attribution (id + epoch
//!   parity), an optional completion event, and a nominal payload size for
//!   the cost model. Function shipping, the data plane of `copy_async`,
//!   and asynchronous collective stages are all active messages — which is
//!   exactly why the paper's footnote 1 can treat "message" uniformly in
//!   the termination-detection algorithm.
//! * [`Msg::Ack`] — delivery acknowledgement back to an AM's sender
//!   (drives the `delivered` counter of the finish detector).
//! * [`Msg::EventNotify`] — a remote `event_notify`.
//! * [`Msg::Coll`] — synchronous-collective plumbing: one tagged hop of a
//!   barrier / reduction / broadcast / exchange schedule.

use std::any::Any;

use caf_core::ids::{EventId, FinishId, ImageId, Parity, TeamId};

use crate::image::Image;

/// Closure type executed at the target of an active message.
pub type AmFn = Box<dyn FnOnce(&Image) + Send>;

/// Finish attribution carried by a message: which dynamic finish block it
/// belongs to and the sender's epoch parity at send time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FinishTag {
    /// The finish block this message is counted under.
    pub id: FinishId,
    /// Sender's present-epoch parity (Fig. 7's odd/even message tagging).
    pub parity: Parity,
}

/// An active message.
pub struct Am {
    /// Code to run on the target image's thread.
    pub func: AmFn,
    /// Image that sent the message (destination of the delivery ack).
    pub sender: ImageId,
    /// Finish attribution, if sent under an active finish block.
    pub finish: Option<FinishTag>,
    /// Event notified when the target finishes executing the closure —
    /// "local operation completion" signalled back to whoever owns it.
    pub completion_event: Option<EventId>,
    /// Whether the closure is user code (a shipped function) as opposed to
    /// internal plumbing; user closures get their own cofence pending
    /// scope (dynamic scoping, paper Fig. 10).
    pub user: bool,
}

/// Key identifying one buffered hop of a synchronous collective:
/// `(team, collective sequence number on that team, schedule tag,
/// sender's team rank)`. The schedule tag encodes round/direction and is
/// private to each collective's implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CollKey {
    /// Team running the collective.
    pub team: TeamId,
    /// Per-team collective call counter (SPMD-matched across members).
    pub seq: u64,
    /// Schedule position (round, direction, …) — collective-specific.
    pub tag: u32,
    /// Sender's rank within the team.
    pub from: usize,
}

/// One hop of a synchronous collective.
pub struct CollMsg {
    /// Buffering key.
    pub key: CollKey,
    /// Opaque payload, downcast by the matching collective call.
    pub payload: Box<dyn Any + Send>,
}

/// A runtime message.
pub enum Msg {
    /// Active message.
    Am(Am),
    /// Delivery acknowledgement for an AM sent under `finish`.
    Ack {
        /// The finish block the acknowledged message was counted under.
        finish: FinishId,
    },
    /// Remote event notification for a slot owned by the receiver.
    EventNotify {
        /// Slot in the receiver's event table.
        slot: u64,
    },
    /// Synchronous-collective hop.
    Coll(CollMsg),
    /// Advances an operation's completion cell on the initiating image
    /// (e.g. the "your copy landed" notification that backs local
    /// operation completion). Not counted by `finish` — it is bookkeeping
    /// about an operation, not an operation.
    Complete {
        /// The cell to advance.
        completion: std::sync::Arc<crate::completion::Completion>,
        /// Stage reached.
        stage: crate::completion::Stage,
    },
    /// Team-wide failure notification: the sender has confirmed that
    /// `image` fail-stopped. Rides the reliable ack/retry sublayer so
    /// every survivor learns of the death even under message loss.
    ImageDown {
        /// The dead image's rank.
        image: usize,
        /// Its incarnation at death.
        incarnation: u64,
    },
}

impl std::fmt::Debug for Msg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Msg::Am(am) => f
                .debug_struct("Am")
                .field("sender", &am.sender)
                .field("finish", &am.finish)
                .field("user", &am.user)
                .finish_non_exhaustive(),
            Msg::Ack { finish } => f.debug_struct("Ack").field("finish", finish).finish(),
            Msg::EventNotify { slot } => f.debug_struct("EventNotify").field("slot", slot).finish(),
            Msg::Coll(c) => f.debug_struct("Coll").field("key", &c.key).finish_non_exhaustive(),
            Msg::Complete { stage, .. } => {
                f.debug_struct("Complete").field("stage", stage).finish_non_exhaustive()
            }
            Msg::ImageDown { image, incarnation } => f
                .debug_struct("ImageDown")
                .field("image", image)
                .field("incarnation", incarnation)
                .finish(),
        }
    }
}
