//! Unbalanced Tree Search end-to-end (paper §IV-C).
//!
//! Run with: `cargo run --release --example uts [depth] [images]`
//!
//! Counts a geometric UTS tree three ways and cross-checks them:
//! sequentially, in parallel on the threaded CAF 2.0 runtime (lifeline
//! work stealing + `finish` termination), and under the discrete-event
//! simulator at the same image count — then scales the simulator to
//! paper-sized teams to show parallel efficiency (Fig. 17's metric).

use caf2::sim::{run_uts_sim, UtsSimConfig};
use caf2::uts::caf_uts::{run_uts, UtsConfig};
use caf2::uts::{count_tree, TreeSpec};
use caf2::{CommMode, RuntimeConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let depth: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);
    let images: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let spec = TreeSpec::geo_fixed(4.0, depth, 19);

    println!("UTS GEO-FIXED b=4 d={depth} seed=19");
    let t0 = std::time::Instant::now();
    let seq = count_tree(&spec);
    println!(
        "  sequential:     {} nodes, {} leaves, depth {} ({:.2}s)",
        seq.nodes,
        seq.leaves,
        seq.max_depth,
        t0.elapsed().as_secs_f64()
    );

    let rt = RuntimeConfig { comm_mode: CommMode::DedicatedThread, ..RuntimeConfig::default() };
    let t0 = std::time::Instant::now();
    let par = run_uts(images, rt, UtsConfig::new(spec));
    println!(
        "  runtime ({images} images): {} nodes ({:.2}s), per-image spread {:?}",
        par.total_nodes,
        t0.elapsed().as_secs_f64(),
        par.per_image
    );
    assert_eq!(par.total_nodes, seq.nodes, "parallel traversal lost or duplicated nodes");
    println!("  finish termination used {} reduction wave(s)", par.waves[0]);

    // The same algorithm at paper scale, in virtual time.
    println!("  simulated parallel efficiency (node cost 10 µs):");
    for p in [16usize, 64, 256, 1024] {
        let mut cfg = UtsSimConfig::new(spec, p);
        cfg.node_cost_ns = 10_000;
        let r = run_uts_sim(cfg);
        assert_eq!(r.total_nodes, seq.nodes);
        println!(
            "    p={p:>5}: {:>7.3} ms virtual, efficiency {:.2}, {} waves",
            r.sim_time_ns as f64 / 1e6,
            r.efficiency(p, 10_000),
            r.waves
        );
    }
}
