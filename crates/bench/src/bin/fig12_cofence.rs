//! **Figure 12**: the cofence micro-benchmark.
//!
//! Paper: a producer sends five 80-byte `copy_async`es per iteration to
//! random images, 10⁶ iterations, completing each iteration with either a
//! `cofence` (local data completion), `event_wait` (local operation
//! completion), or an inner `finish` (global completion). Measured on
//! 128–1024 cores of a Cray XK6: cofence 36→42 s, events 40→52 s,
//! finish 61→119 s. The claims to reproduce: **cofence < events <
//! finish at every scale**, and the finish variant's cost **grows with
//! core count** (its per-iteration allreduce is O(log p)).
//!
//! Two reproductions: the paper-scale discrete-event model (128–1024
//! simulated images, 10⁶ iterations), and the same protocol measured live
//! on the threaded runtime at laptop scale.

use std::time::Instant;

use bench::{fmt_ns, print_table};
use caf_runtime::{CommMode, CopyEvents, NetworkModel, Runtime, RuntimeConfig};
use caf_sim::{run_pc, PcConfig, SyncVariant};

fn main() {
    // ------------------------------------------------------------------
    // Paper scale (DES, virtual time)
    // ------------------------------------------------------------------
    let cores = [128usize, 256, 512, 1024];
    let mut rows = Vec::new();
    for &p in &cores {
        let cfg = PcConfig::new(p);
        let c = run_pc(&cfg, SyncVariant::Cofence);
        let e = run_pc(&cfg, SyncVariant::Events);
        let f = run_pc(&cfg, SyncVariant::Finish);
        rows.push(vec![
            p.to_string(),
            fmt_ns(c.sim_time_ns),
            fmt_ns(e.sim_time_ns),
            fmt_ns(f.sim_time_ns),
            format!("{:.1}", f.waves_per_iter),
        ]);
        assert!(c.sim_time_ns < e.sim_time_ns && e.sim_time_ns < f.sim_time_ns);
    }
    print_table(
        "Fig. 12 (simulated, 10^6 iterations, 5×80 B copies/iter)",
        &["cores", "cofence", "events", "finish", "waves/iter"],
        &rows,
    );
    println!("paper (measured, s): cofence 36/38/39/42, events 40/43/43/52, finish 61/74/83/119");

    // ------------------------------------------------------------------
    // Threaded runtime (real time, laptop scale)
    // ------------------------------------------------------------------
    let iters = 2_000u64;
    let mut rows = Vec::new();
    for p in [2usize, 4, 8] {
        let mut times = Vec::new();
        for variant in [SyncVariant::Cofence, SyncVariant::Events, SyncVariant::Finish] {
            times.push(run_threaded(p, iters, variant));
        }
        rows.push(vec![
            p.to_string(),
            format!("{:.1} ms", times[0] * 1e3),
            format!("{:.1} ms", times[1] * 1e3),
            format!("{:.1} ms", times[2] * 1e3),
        ]);
    }
    print_table(
        &format!("Fig. 12 (threaded runtime, {iters} iterations)"),
        &["images", "cofence", "events", "finish"],
        &rows,
    );
}

/// The Fig. 11 loop on the real runtime: image 0 produces, everyone
/// participates in the finish variant's blocks.
fn run_threaded(p: usize, iters: u64, variant: SyncVariant) -> f64 {
    let cfg = RuntimeConfig {
        comm_mode: CommMode::DedicatedThread,
        network: NetworkModel::slow_cluster(),
        ..RuntimeConfig::default()
    };
    let times = Runtime::launch(p, cfg, |img| {
        let world = img.world();
        let buf = img.coarray(&world, 10, 0u64); // 80 bytes
        let src = caf_runtime::LocalArray::new(vec![0u64; 10]);
        img.barrier(&world);
        let t0 = Instant::now();
        for i in 0..iters {
            match variant {
                SyncVariant::Cofence => {
                    if img.id().index() == 0 {
                        for k in 0..5 {
                            let dst = img.image(1 + ((i as usize + k) % (p - 1)));
                            img.copy_async_from(
                                buf.slice(dst, 0..10),
                                &src,
                                0..10,
                                CopyEvents::none(),
                            );
                        }
                        img.cofence();
                        src.with(|b| b[0] = i);
                    }
                }
                SyncVariant::Events => {
                    if img.id().index() == 0 {
                        let done = img.event();
                        for k in 0..5 {
                            let dst = img.image(1 + ((i as usize + k) % (p - 1)));
                            img.copy_async_from(
                                buf.slice(dst, 0..10),
                                &src,
                                0..10,
                                CopyEvents::on_dest(done),
                            );
                        }
                        for _ in 0..5 {
                            img.event_wait(done);
                        }
                        src.with(|b| b[0] = i);
                    }
                }
                SyncVariant::Finish => {
                    img.finish(&world, |img| {
                        if img.id().index() == 0 {
                            for k in 0..5 {
                                let dst = img.image(1 + ((i as usize + k) % (p - 1)));
                                img.copy_async_from(
                                    buf.slice(dst, 0..10),
                                    &src,
                                    0..10,
                                    CopyEvents::none(),
                                );
                            }
                        }
                    });
                    if img.id().index() == 0 {
                        src.with(|b| b[0] = i);
                    }
                }
            }
        }
        let dt = t0.elapsed().as_secs_f64();
        img.barrier(&world);
        dt
    });
    times[0]
}
