//! Fault injection and retry policy in simulated time: the virtual-time
//! mirror of `caf-net`'s chaos layer.
//!
//! The decision logic is *shared*, not re-implemented — [`ChaosWire`]
//! delegates every drop/duplicate/spike roll to the same
//! [`FaultPlan::decide`] the threaded fabric consults, keyed by the same
//! `(seed, link, wire sequence)` triple, so a fault schedule is one object
//! with two executions. This layer only translates the plan's `Duration`
//! vocabulary into the engine's integer nanoseconds and exposes the
//! retransmission-timer arithmetic models need to schedule ack-timeout
//! events.

use std::time::Duration;

use caf_core::fault::{FaultDecision, FaultPlan, RetryPolicy};

/// A fault plan plus retry policy, projected into integer-nanosecond
/// simulated time.
#[derive(Debug, Clone)]
pub struct ChaosWire {
    plan: FaultPlan,
    retry: RetryPolicy,
    spike_ns: u64,
}

impl ChaosWire {
    /// Wraps `plan` and `retry` for virtual-time use.
    pub fn new(plan: FaultPlan, retry: RetryPolicy) -> Self {
        let spike_ns = plan.spike_delay.as_nanos() as u64;
        ChaosWire { plan, retry, spike_ns }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether the plan perturbs anything at all.
    pub fn is_active(&self) -> bool {
        self.plan.is_active()
    }

    /// The fate of wire transmission `wire_seq` on `from → to` — the
    /// identical roll the threaded fabric would make.
    pub fn decide(&self, from: usize, to: usize, wire_seq: u64) -> FaultDecision {
        self.plan.decide(from, to, wire_seq)
    }

    /// Extra delivery delay from a delay spike, if `d` says so.
    pub fn spike_ns(&self, d: FaultDecision) -> u64 {
        if d.delay_spike {
            self.spike_ns
        } else {
            0
        }
    }

    /// Extra delivery delay from stall (straggler) windows covering either
    /// endpoint at simulated time `now_ns` (time zero = plan epoch).
    pub fn stall_extra_ns(&self, from: usize, to: usize, now_ns: u64) -> u64 {
        let at = Duration::from_nanos(now_ns);
        (self.plan.stall_extra(from, at) + self.plan.stall_extra(to, at)).as_nanos() as u64
    }

    /// Ack timeout in force after `attempts` transmissions (1 = original).
    pub fn timeout_ns(&self, attempts: u32) -> u64 {
        self.retry.timeout_after(attempts).as_nanos() as u64
    }

    /// Retransmission budget per message.
    pub fn max_retries(&self) -> u32 {
        self.retry.max_retries
    }

    /// Worst-case nanoseconds from first transmission to giving up.
    pub fn exhaustion_horizon_ns(&self) -> u64 {
        self.retry.exhaustion_horizon().as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire(drop_p: f64) -> ChaosWire {
        ChaosWire::new(
            FaultPlan::uniform_drop(0xFA11, drop_p).with_dup(0.1),
            RetryPolicy {
                ack_timeout: Duration::from_micros(10),
                backoff: 2,
                max_timeout: Duration::from_micros(50),
                max_retries: 3,
            },
        )
    }

    #[test]
    fn decisions_match_the_shared_plan_exactly() {
        let w = wire(0.3);
        let plan = FaultPlan::uniform_drop(0xFA11, 0.3).with_dup(0.1);
        for seq in 0..500 {
            assert_eq!(w.decide(2, 7, seq), plan.decide(2, 7, seq));
        }
    }

    #[test]
    fn timeout_schedule_in_nanoseconds() {
        let w = wire(0.0);
        assert_eq!(w.timeout_ns(1), 10_000);
        assert_eq!(w.timeout_ns(2), 20_000);
        assert_eq!(w.timeout_ns(3), 40_000);
        assert_eq!(w.timeout_ns(4), 50_000, "capped at max_timeout");
        assert_eq!(w.exhaustion_horizon_ns(), 10_000 + 20_000 + 40_000 + 50_000);
    }

    #[test]
    fn stall_windows_project_into_sim_time() {
        let plan =
            FaultPlan::none(1).with_stall(4, Duration::from_micros(100), Duration::from_micros(40));
        let w = ChaosWire::new(plan, RetryPolicy::default());
        assert_eq!(w.stall_extra_ns(4, 0, 50_000), 0, "before the window");
        assert_eq!(w.stall_extra_ns(4, 0, 100_000), 40_000, "window start");
        assert_eq!(w.stall_extra_ns(0, 4, 120_000), 20_000, "either endpoint");
        assert_eq!(w.stall_extra_ns(0, 4, 140_000), 0, "window closed");
        assert_eq!(w.stall_extra_ns(0, 1, 110_000), 0, "uninvolved link");
    }
}
