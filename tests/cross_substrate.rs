//! Cross-substrate agreement: the threaded runtime and the discrete-event
//! simulator run the same algorithms over the same shared state machines,
//! so their *logical* results must agree exactly.

use caf2::sim::{run_uts_sim, UtsSimConfig};
use caf2::uts::caf_uts::{run_uts, UtsConfig};
use caf2::uts::{count_tree, TreeSpec};
use caf2::RuntimeConfig;

/// UTS totals agree between sequential, threaded-parallel, and simulated
/// execution for several team sizes.
#[test]
fn uts_totals_agree_across_substrates() {
    let spec = TreeSpec::geo_fixed(4.0, 6, 19);
    let expect = count_tree(&spec).nodes;
    for p in [2usize, 4, 8] {
        let threaded = run_uts(p, RuntimeConfig::testing(), UtsConfig::new(spec));
        assert_eq!(threaded.total_nodes, expect, "threaded p={p}");
        let sim = run_uts_sim(UtsSimConfig::new(spec, p));
        assert_eq!(sim.total_nodes, expect, "simulated p={p}");
    }
}

/// The simulator's efficiency metric behaves sanely: in (0, 1], and not
/// degenerate at larger team sizes on a sufficiently large tree.
#[test]
fn simulated_efficiency_is_well_formed() {
    let spec = TreeSpec::geo_fixed(4.0, 9, 19);
    for p in [4usize, 32, 128] {
        let mut cfg = UtsSimConfig::new(spec, p);
        cfg.node_cost_ns = 20_000;
        let r = run_uts_sim(cfg);
        let e = r.efficiency(p, 20_000);
        assert!(e > 0.0 && e <= 1.0, "p={p}: efficiency {e} out of range");
        if p <= 32 {
            assert!(e > 0.5, "p={p}: efficiency {e} implausibly low");
        }
    }
}

/// Load balance comes out of the simulator the way Fig. 16 needs it:
/// relative work clusters around 1.0.
#[test]
fn simulated_load_balance_clusters_near_one() {
    let spec = TreeSpec::geo_fixed(4.0, 9, 19);
    let mut cfg = UtsSimConfig::new(spec, 64);
    cfg.node_cost_ns = 20_000;
    let r = run_uts_sim(cfg);
    let rel = r.relative_work();
    let within = rel.iter().filter(|&&x| (0.5..2.0).contains(&x)).count();
    assert!(
        within >= rel.len() * 9 / 10,
        "≥90 % of images should be within 2× of perfect balance: {rel:?}"
    );
}

/// The strict detector never uses more waves than the no-upper-bound
/// variant, in the simulator, across team sizes (the Fig. 18 claim).
#[test]
fn strict_finish_never_uses_more_waves() {
    let spec = TreeSpec::geo_fixed(4.0, 7, 19);
    for p in [8usize, 32, 128] {
        let strict =
            run_uts_sim(UtsSimConfig { strict_finish: true, ..UtsSimConfig::new(spec, p) });
        let loose =
            run_uts_sim(UtsSimConfig { strict_finish: false, ..UtsSimConfig::new(spec, p) });
        assert!(
            strict.waves <= loose.waves,
            "p={p}: strict {} > loose {}",
            strict.waves,
            loose.waves
        );
    }
}
