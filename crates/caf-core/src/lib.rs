//! # caf-core
//!
//! Substrate-independent logic for the Coarray Fortran 2.0
//! asynchronous-operations reproduction (Yang, Murthy & Mellor-Crummey,
//! IPDPS 2013):
//!
//! * [`ids`] — image/team/finish/event identifiers and epoch [`ids::Parity`];
//! * [`config`] — the interconnect cost model and runtime configuration;
//! * [`fault`] — seeded deterministic fault injection (drops, duplicates,
//!   delay spikes, stragglers, fail-stop crashes) and the retry policy
//!   that answers it;
//! * [`failure`] — heartbeat-based fail-stop failure detection:
//!   suspect/confirm transitions, incarnation numbers, posthumous-message
//!   filtering;
//! * [`topology`] — teams, `team_split`, binomial trees, dissemination
//!   rounds, hypercube lifeline neighbours;
//! * [`epoch`] — the even/odd epoch counters of the `finish` termination
//!   detector;
//! * [`termination`] — the paper's detection algorithm plus the baselines
//!   it is compared against, and a deterministic harness for exercising
//!   them;
//! * [`cofence`] — the directional fence algebra;
//! * [`model`] — a checkable rendering of the relaxed memory model;
//! * [`trace`] — protocol trace capture, bridging real executions and the
//!   schedule-exploration model checker (`caf-check`);
//! * [`rng`] — a tiny deterministic PRNG shared by harnesses and
//!   workloads.
//!
//! Both execution substrates — the threaded PGAS runtime (`caf-runtime`)
//! and the discrete-event simulator (`caf-sim`) — drive exactly this code,
//! which is how the repository can both *run* the constructs for real and
//! reproduce the paper's 4K–32K-core figures on one machine.

#![warn(missing_docs)]

pub mod cofence;
pub mod config;
pub mod epoch;
pub mod failure;
pub mod fault;
pub mod ids;
pub mod model;
pub mod rng;
pub mod termination;
pub mod topology;
pub mod trace;

pub use cofence::{CofenceSpec, LocalAccess, Pass};
pub use config::{CommMode, NetworkModel, RuntimeConfig};
pub use epoch::{EpochCounters, EpochState};
pub use failure::{FailureDetectorState, FailureEvent, FailureParams, PeerHealth};
pub use fault::{CrashFault, FaultDecision, FaultPlan, RetryPolicy, SeqTracker, StallWindow};
pub use ids::{EventId, FinishId, ImageId, Parity, TeamId, TeamRank};
pub use topology::{BinomialTree, Team};
pub use trace::{TraceEvent, TraceRecorder};
