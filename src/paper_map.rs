//! # Paper-to-API map
//!
//! Where each construct of *"Managing Asynchronous Operations in Coarray
//! Fortran 2.0"* lives in this library. Section numbers refer to the
//! paper.
//!
//! ## §II-A Teams
//!
//! | paper | here |
//! |---|---|
//! | `team_world` | [`caf_runtime::Image::world`] |
//! | `team_split(color, key)` | [`caf_runtime::Image::team_split`] |
//! | relative ranks | [`caf_core::topology::Team::rank_of`] / [`caf_core::ids::TeamRank`] |
//! | coarray allocation domain | [`caf_runtime::Image::coarray`] (collective, per team) |
//!
//! ## §II-B Events
//!
//! | paper | here |
//! |---|---|
//! | event coarray declaration | [`caf_runtime::Image::coevent`] → [`caf_runtime::CoEvent::on`] |
//! | local event | [`caf_runtime::Image::event`] |
//! | `event_notify` (release) | [`caf_runtime::Image::event_notify`] |
//! | `event_wait` (acquire) | [`caf_runtime::Image::event_wait`] |
//!
//! ## §II-C1 Asynchronous copy
//!
//! `copy_async(destA[p1], srcA[p2], preE, srcE, destE)` is
//! [`caf_runtime::Image::copy_async`] with endpoints as
//! [`caf_runtime::CoSlice`]s and the three optional events in
//! [`caf_runtime::CopyEvents`]. Local (non-coarray) buffers use
//! [`caf_runtime::Image::copy_async_from`] /
//! [`caf_runtime::Image::copy_async_to`] with a
//! [`caf_runtime::LocalArray`].
//!
//! ## §II-C2 Function shipping
//!
//! `spawn foo(A[p], B(i))[p]` is [`caf_runtime::Image::spawn`]: the
//! closure executes on the target image; captured [`caf_runtime::Coarray`]
//! handles are by-reference (they address the same storage everywhere),
//! ordinary captures are by-value — the paper's argument rules.
//! `spawn(e) foo(...)[p]` is [`caf_runtime::Image::spawn_notify`].
//!
//! ## §II-C3 Asynchronous collectives
//!
//! `team_broadcast_async(A(:), root, myteam, srcE, localE)` is
//! [`caf_runtime::Image::broadcast_async`] with
//! [`caf_runtime::AsyncCollEvents`]; asynchronous reductions/barriers are
//! [`caf_runtime::Image::allreduce_async_sum`] /
//! [`caf_runtime::Image::barrier_async`]. The synchronous complements
//! (barrier, broadcast, reduce, allreduce, gather, allgather, scatter,
//! alltoall, scan, sort) are methods on [`caf_runtime::Image`] too.
//!
//! ## §III-A `finish`
//!
//! The block construct is [`caf_runtime::Image::finish`]; its engine —
//! Fig. 7's epoch algorithm — is
//! [`caf_core::termination::EpochDetector`] over
//! [`caf_core::epoch::EpochState`], with Theorem 1's `L+1` bound
//! property-tested in `caf-core`. The §V baselines are
//! [`caf_core::termination::FourCounterDetector`],
//! [`caf_core::termination::CentralizedDetector`], and the deliberately
//! broken [`caf_core::termination::BarrierDetector`] (Fig. 5).
//!
//! ## §III-B `cofence`
//!
//! `cofence(DOWNWARD=…, UPWARD=…)` is [`caf_runtime::Image::cofence_dir`]
//! (or [`caf_runtime::Image::cofence`] for the full fence); the pass
//! algebra is [`caf_core::cofence::CofenceSpec`]. The relaxed memory
//! model — processor consistency, acquire/release events, directional
//! fences — is executable as [`caf_core::model`], with the paper's
//! Figs. 8–10 as unit tests.
//!
//! ## Fig. 1's completion points
//!
//! [`caf_runtime::Stage`]: `Initiated` → `LocalData` (cofence) →
//! `LocalOp` (events); global completion is the property of
//! [`caf_runtime::Image::finish`] rather than a per-op state. Handles:
//! [`caf_runtime::AsyncOp`] with
//! [`caf_runtime::Image::wait_local_data`] /
//! [`caf_runtime::Image::wait_local_op`].
//!
//! ## §IV Evaluation
//!
//! * Fig. 11/12 micro-benchmark → `caf_sim::pc_model`, `bench --bin fig12_cofence`
//! * RandomAccess (Figs. 13–14) → [`randomaccess`], `caf_sim::ra_model`
//! * UTS (Figs. 15–18) → [`uts`], `caf_sim::uts_model`
//!
//! EXPERIMENTS.md records paper-vs-measured for every figure.
