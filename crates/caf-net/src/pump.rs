//! The per-image communication engine (paper §III-B).
//!
//! GASNet completes the local-data side of a non-blocking operation before
//! the initiating call returns, which leaves no window between initiation
//! and local data completion for `cofence` to exploit. The paper's remedy
//! is to offload communication to a dedicated thread so the main thread
//! can compute immediately after initiating. [`CommPump`] implements both
//! strategies behind one interface:
//!
//! * [`CommMode::DedicatedThread`] — tasks (source-buffer snapshot +
//!   injection) run on a per-image communication thread, in order;
//!   initiation is a cheap enqueue.
//! * [`CommMode::Inline`] — tasks run on the calling thread before the
//!   call returns (the GASNet-like behaviour), so initiation already
//!   implies local data completion.

use crossbeam::channel::{unbounded, Sender};
use std::thread::JoinHandle;

pub use caf_core::config::CommMode;

type Task = Box<dyn FnOnce() + Send + 'static>;

enum Backend {
    Inline,
    Thread { tx: Sender<Task>, handle: Option<JoinHandle<()>> },
}

/// One image's communication engine.
pub struct CommPump {
    backend: Backend,
}

impl CommPump {
    /// Creates a pump for the given mode. In `DedicatedThread` mode this
    /// spawns the communication thread (named for debuggability).
    pub fn new(mode: CommMode, image_index: usize) -> Self {
        match mode {
            CommMode::Inline => CommPump { backend: Backend::Inline },
            CommMode::DedicatedThread => {
                let (tx, rx) = unbounded::<Task>();
                let handle = std::thread::Builder::new()
                    .name(format!("caf-comm-{image_index}"))
                    .spawn(move || {
                        // Drain until every sender hangs up (pump dropped).
                        for task in rx {
                            task();
                        }
                    })
                    .expect("spawning communication thread");
                CommPump { backend: Backend::Thread { tx, handle: Some(handle) } }
            }
        }
    }

    /// Submits a communication task. Inline mode runs it now; thread mode
    /// enqueues it for the communication thread (FIFO per image).
    pub fn submit(&self, task: impl FnOnce() + Send + 'static) {
        match &self.backend {
            Backend::Inline => task(),
            Backend::Thread { tx, .. } => {
                tx.send(Box::new(task)).expect("communication thread alive");
            }
        }
    }

    /// Whether a dedicated communication thread is in use.
    pub fn is_offloaded(&self) -> bool {
        matches!(self.backend, Backend::Thread { .. })
    }
}

impl Drop for CommPump {
    fn drop(&mut self) {
        if let Backend::Thread { tx, handle } = &mut self.backend {
            // Close the channel, then join so queued tasks finish before
            // the runtime tears down shared state.
            let (closed, _) = unbounded::<Task>();
            *tx = closed;
            if let Some(h) = handle.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    #[test]
    fn inline_mode_runs_synchronously() {
        let pump = CommPump::new(CommMode::Inline, 0);
        let hit = Arc::new(AtomicUsize::new(0));
        let h = hit.clone();
        pump.submit(move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hit.load(Ordering::SeqCst), 1, "inline task must run before return");
        assert!(!pump.is_offloaded());
    }

    #[test]
    fn thread_mode_runs_asynchronously_in_order() {
        let pump = CommPump::new(CommMode::DedicatedThread, 3);
        assert!(pump.is_offloaded());
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        for i in 0..100 {
            let log = log.clone();
            pump.submit(move || log.lock().push(i));
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while log.lock().len() < 100 {
            assert!(Instant::now() < deadline, "tasks never ran");
            std::thread::yield_now();
        }
        assert_eq!(*log.lock(), (0..100).collect::<Vec<_>>(), "FIFO order");
    }

    #[test]
    fn drop_joins_after_draining() {
        let hit = Arc::new(AtomicUsize::new(0));
        {
            let pump = CommPump::new(CommMode::DedicatedThread, 0);
            for _ in 0..50 {
                let h = hit.clone();
                pump.submit(move || {
                    h.fetch_add(1, Ordering::SeqCst);
                });
            }
        } // drop joins the comm thread
        assert_eq!(hit.load(Ordering::SeqCst), 50);
    }
}
