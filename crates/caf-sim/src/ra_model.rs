//! RandomAccess at paper scale (Figs. 13–14).
//!
//! The function-shipping kernel is simulated in full: every image issues
//! its updates as shipped read-modify-writes to uniformly random owners,
//! `bunch` updates per `finish` block, with
//!
//! * an **injection-rate** limit at the sender,
//! * a **service-rate** limit at the target (AM handler occupancy), and
//! * **bounded target inboxes** with sender stalls — the GASNet
//!   flow-control stand-in that produces the paper's Fig. 14 anomaly
//!   (bunches larger than ~256 *hurt*).
//!
//! The Get-Update-Put reference is modelled analytically: its blocking
//! gets serialize on the network round trip (they ride RDMA, so no
//! target-CPU term), and its puts pipeline behind them.
//!
//! Calibration note (see EXPERIMENTS.md): the AM handler occupancy is set
//! to the same order as a network round trip, reflecting the paper's
//! observation that function shipping performs *comparably* to
//! RDMA-based get/put on Gemini rather than dominating it.

use caf_core::rng::SplitMix64;
use caf_des::{Engine, SimNet};

use crate::finish_sim::FinishSim;

/// Simulation parameters for the RandomAccess models.
#[derive(Debug, Clone)]
pub struct RaSimConfig {
    /// Image count.
    pub images: usize,
    /// Updates issued by each image over the whole run.
    pub updates_per_image: usize,
    /// Updates per `finish` block (the Figs. 13–14 knob).
    pub bunch: usize,
    /// Interconnect model.
    pub net: SimNet,
    /// AM handler occupancy per shipped update at the target.
    pub handler_ns: u64,
    /// Target-inbox capacity before senders stall (GASNet flow control).
    pub inbox_cap: usize,
    /// Stall applied per send attempt against a full inbox.
    pub stall_ns: u64,
    /// Receiver-side cost of rejecting an over-capacity attempt (the
    /// credit-refusal/NACK crossing the wire and being processed). This
    /// is what makes oversized bunches *actively* harmful — congestion
    /// consumes the very service capacity it is waiting for, the
    /// flow-control pathology behind the paper's Fig. 14 rise.
    pub nack_ns: u64,
    /// Paper's detector vs. the no-upper-bound baseline.
    pub strict_finish: bool,
    /// Simulation seed.
    pub seed: u64,
}

impl RaSimConfig {
    /// Defaults loosely calibrated to the paper's Gemini systems.
    pub fn new(images: usize) -> Self {
        RaSimConfig {
            images,
            updates_per_image: 4096,
            bunch: 1024,
            net: SimNet::gemini_like(),
            handler_ns: 2_500,
            inbox_cap: 64,
            stall_ns: 6_000,
            nack_ns: 1_200,
            strict_finish: true,
            seed: 0x5eed,
        }
    }
}

/// Result of one kernel model run.
#[derive(Debug, Clone)]
pub struct RaSimResult {
    /// Virtual time for the whole update phase.
    pub sim_time_ns: u64,
    /// Giga-updates per second (all images).
    pub gups: f64,
    /// Total reduction waves across all finish blocks.
    pub waves: usize,
    /// `finish` blocks executed.
    pub finishes: usize,
    /// Sender stalls due to inbox backpressure.
    pub stalls: u64,
}

enum Ev {
    /// Image tries to issue its next update.
    Issue(usize),
    /// A shipped update begins executing at its target.
    Exec { at: usize, from: usize, tag: caf_core::ids::Parity },
    /// Delivery acknowledgement back at the sender.
    Ack { to: usize },
    /// The open wave completes.
    WaveDone,
}

struct Img {
    /// Updates left in the current bunch.
    in_bunch: usize,
    /// Updates left over the whole run.
    left: usize,
    /// Shipped-but-not-yet-executed updates queued at this image.
    inbox: usize,
    /// Handler busy horizon.
    busy_until: u64,
    /// Target of the in-flight (possibly stalled) update attempt. The
    /// update stream fixes the owner, so a stalled update retries the
    /// same target rather than re-rolling.
    pending_target: Option<usize>,
    /// Consecutive credit refusals (drives exponential backoff).
    fails: u32,
}

/// Runs the function-shipping kernel model.
pub fn run_ra_fs_sim(cfg: &RaSimConfig) -> RaSimResult {
    let p = cfg.images;
    let mut eng: Engine<Ev> = Engine::new();
    let mut rng = SplitMix64::new(cfg.seed);
    let mut imgs: Vec<Img> = (0..p)
        .map(|_| Img {
            in_bunch: cfg.bunch.min(cfg.updates_per_image),
            left: cfg.updates_per_image,
            inbox: 0,
            busy_until: 0,
            pending_target: None,
            fails: 0,
        })
        .collect();
    let mut fsim = FinishSim::new(p, cfg.strict_finish);
    let mut waves = 0usize;
    let mut finishes = 0usize;
    let mut stalls = 0u64;
    for i in 0..p {
        eng.schedule(0, Ev::Issue(i));
    }
    let mut end = 0u64;
    while let Some((now, ev)) = eng.pop() {
        end = now;
        match ev {
            Ev::Issue(img) => {
                if imgs[img].in_bunch == 0 {
                    // Bunch issued; this image waits at the finish. Entry
                    // is retried as acks arrive (strict) or now (loose).
                    try_enter(&mut eng, &mut fsim, &imgs, img, now, cfg, &mut rng);
                    continue;
                }
                let target =
                    imgs[img].pending_target.unwrap_or_else(|| rng.next_below(p as u64) as usize);
                if imgs[target].inbox >= cfg.inbox_cap {
                    // Credit refused: the refusal burns receiver capacity
                    // (the NACK crosses the wire and is processed) and the
                    // sender backs off exponentially — together, the
                    // congestion pathology behind Fig. 14's right side.
                    stalls += 1;
                    imgs[img].pending_target = Some(target);
                    imgs[target].busy_until = imgs[target].busy_until.max(now) + cfg.nack_ns;
                    let backoff = cfg.stall_ns.max(1) << imgs[img].fails.min(7);
                    imgs[img].fails += 1;
                    eng.schedule(backoff, Ev::Issue(img));
                    continue;
                }
                imgs[img].fails = 0;
                imgs[img].pending_target = None;
                imgs[img].in_bunch -= 1;
                imgs[img].left -= 1;
                let tag = fsim.on_send(img);
                imgs[target].inbox += 1;
                let arrive = now + cfg.net.delivery_delay(32, &mut rng);
                let start = arrive.max(imgs[target].busy_until);
                imgs[target].busy_until = start + cfg.handler_ns;
                eng.schedule_at(start + cfg.handler_ns, Ev::Exec { at: target, from: img, tag });
                eng.schedule(cfg.net.injection_ns.max(1), Ev::Issue(img));
            }
            Ev::Exec { at, from, tag } => {
                imgs[at].inbox -= 1;
                fsim.on_receive(at, tag);
                fsim.on_complete(at, tag);
                let ack = cfg.net.delivery_delay(8, &mut rng);
                eng.schedule(ack, Ev::Ack { to: from });
                try_enter(&mut eng, &mut fsim, &imgs, at, now, cfg, &mut rng);
            }
            Ev::Ack { to } => {
                fsim.on_delivered(to);
                try_enter(&mut eng, &mut fsim, &imgs, to, now, cfg, &mut rng);
            }
            Ev::WaveDone => {
                use caf_core::termination::WaveDecision;
                waves += 1;
                if fsim.complete_wave() == WaveDecision::Terminated {
                    finishes += 1;
                    // This finish block is done. Next bunch, or finished.
                    if imgs.iter().all(|s| s.left == 0) {
                        break;
                    }
                    fsim = FinishSim::new(p, cfg.strict_finish);
                    for (i, s) in imgs.iter_mut().enumerate() {
                        s.in_bunch = cfg.bunch.min(s.left);
                        eng.schedule(0, Ev::Issue(i));
                    }
                } else {
                    for i in 0..p {
                        try_enter(&mut eng, &mut fsim, &imgs, i, now, cfg, &mut rng);
                    }
                }
            }
        }
    }
    let updates = (p * cfg.updates_per_image) as u64;
    RaSimResult {
        sim_time_ns: end,
        gups: updates as f64 / end as f64, // ns → updates/ns = GUPS
        waves,
        finishes,
        stalls,
    }
}

fn try_enter(
    eng: &mut Engine<Ev>,
    fsim: &mut FinishSim,
    imgs: &[Img],
    img: usize,
    now: u64,
    cfg: &RaSimConfig,
    rng: &mut SplitMix64,
) {
    if imgs[img].in_bunch != 0 || fsim.terminated() {
        return;
    }
    if fsim.try_enter(img, now) {
        let cost = cfg.net.allreduce_cost(cfg.images, rng);
        eng.schedule(cost, Ev::WaveDone);
    }
}

/// Analytic model of the Get-Update-Put reference: each update is a
/// blocking RDMA get (one round trip) followed by a pipelined put; the
/// run ends with one finish block's wave pair.
pub fn run_ra_gup_sim(cfg: &RaSimConfig) -> RaSimResult {
    let mut rng = SplitMix64::new(cfg.seed);
    let rt = 2 * cfg.net.delivery_delay(16, &mut rng); // get round trip
    let per_update = rt + cfg.net.injection_ns; // + put injection
    let update_phase = cfg.updates_per_image as u64 * per_update;
    let final_waves = 2 * cfg.net.allreduce_cost(cfg.images, &mut rng);
    let end = update_phase + final_waves;
    let updates = (cfg.images * cfg.updates_per_image) as u64;
    RaSimResult {
        sim_time_ns: end,
        gups: updates as f64 / end as f64,
        waves: 2,
        finishes: 1,
        stalls: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(p: usize, bunch: usize) -> RaSimConfig {
        let mut c = RaSimConfig::new(p);
        c.updates_per_image = 512;
        c.bunch = bunch;
        c
    }

    #[test]
    fn fs_model_completes_all_bunches() {
        let r = run_ra_fs_sim(&cfg(8, 128));
        assert_eq!(r.finishes, 4);
        assert!(r.sim_time_ns > 0);
        assert!(r.waves >= r.finishes);
    }

    #[test]
    fn tiny_bunches_cost_more_than_medium() {
        // Fig. 14's left side: finish overhead dominates small bunches.
        let small = run_ra_fs_sim(&cfg(64, 16)).sim_time_ns;
        let medium = run_ra_fs_sim(&cfg(64, 256)).sim_time_ns;
        assert!(small > medium, "bunch16 {small} !> bunch256 {medium}");
    }

    #[test]
    fn oversized_bunches_trigger_backpressure() {
        // Fig. 14's right side: flow control stalls at large bunches.
        let mut big = cfg(16, 512);
        big.inbox_cap = 16;
        let r = run_ra_fs_sim(&big);
        assert!(r.stalls > 0, "expected backpressure stalls");
    }

    #[test]
    fn gup_time_is_round_trip_bound() {
        let r = run_ra_gup_sim(&cfg(8, 128));
        let rt_bound = 512 * 2 * 1500; // updates × 2 × latency (ns)
        assert!(r.sim_time_ns >= rt_bound as u64);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_ra_fs_sim(&cfg(8, 64));
        let b = run_ra_fs_sim(&cfg(8, 64));
        assert_eq!(a.sim_time_ns, b.sim_time_ns);
        assert_eq!(a.stalls, b.stalls);
    }
}
