//! A checkable rendering of the CAF 2.0 relaxed memory model (paper §III).
//!
//! The paper justifies `finish`, `cofence`, and events inside a relaxed
//! model whose per-image reordering rules are:
//!
//! * asynchronous operations, coarray reads/writes, and event operations
//!   are unordered unless a synchronization statement orders them;
//! * `cofence` constrains *implicitly synchronized* asynchronous
//!   operations directionally (its `DOWNWARD`/`UPWARD` classes);
//! * `event_notify` is a **release**: operations before it may not defer
//!   completion past it, but it is porous upward (later operations may
//!   begin before it);
//! * `event_wait` is an **acquire**: operations after it may not begin
//!   before it, but it is porous downward (earlier operations may complete
//!   after it);
//! * the end of a `finish` block orders everything (global completion).
//!
//! This module encodes one image's program as a statement sequence and
//! answers, for any asynchronous operation, whether its *local data
//! completion* may legally be deferred past a given program point
//! ([`may_complete_after`]) and whether its *initiation* may be hoisted
//! above one ([`may_initiate_before`]). A whole candidate execution can be
//! validated with [`validate_execution`]. Property tests use these to
//! check, e.g., that permissiveness is monotone and that a full `cofence`
//! is a two-way barrier for implicit operations.

use crate::cofence::{CofenceSpec, LocalAccess};
use crate::ids::EventId;

/// One statement of an image's (abstracted) program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Stmt {
    /// An asynchronous operation. `implicit` marks implicit completion
    /// (no event variables supplied), which is what `cofence` governs.
    Async {
        /// How the operation touches local memory.
        access: LocalAccess,
        /// True when initiated without completion events.
        implicit: bool,
    },
    /// A `cofence` statement.
    Cofence(CofenceSpec),
    /// `event_notify` — release semantics.
    Notify(EventId),
    /// `event_wait` — acquire semantics.
    Wait(EventId),
    /// `end finish` — full completion barrier.
    FinishEnd,
}

/// Whether one synchronization statement lets an (earlier) asynchronous
/// operation's completion move past it downward.
fn passes_down(stmt: &Stmt, access: LocalAccess, implicit: bool) -> bool {
    match stmt {
        // Plain operations impose no order on each other (relaxed model).
        Stmt::Async { .. } => true,
        // cofence constrains only implicitly synchronized operations.
        Stmt::Cofence(spec) => !implicit || !spec.blocks_down(access),
        // Release: nothing moves down past a notify. "Since, in general,
        // it's not possible to identify the updates of interest …, the
        // event_notify should prevent operations from moving downwards."
        Stmt::Notify(_) => false,
        // Acquire is porous downward.
        Stmt::Wait(_) => true,
        Stmt::FinishEnd => false,
    }
}

/// Whether one synchronization statement lets a (later) asynchronous
/// operation's initiation move past it upward.
fn passes_up(stmt: &Stmt, access: LocalAccess, implicit: bool) -> bool {
    match stmt {
        Stmt::Async { .. } => true,
        Stmt::Cofence(spec) => !implicit || spec.admits_up(access),
        // Release is porous upward: "the event_notify can be porous to
        // operations that appear afterward."
        Stmt::Notify(_) => true,
        // Acquire: nothing after a wait may begin before it.
        Stmt::Wait(_) => false,
        Stmt::FinishEnd => false,
    }
}

/// May the local data completion of the asynchronous operation at
/// `op_idx` be deferred past the program point *after* statement
/// `point_idx`? Requires `op_idx <= point_idx`. The operation must cross
/// every synchronization statement in `(op_idx, point_idx]`.
///
/// # Panics
/// Panics if `op_idx` does not name an `Async` statement or the indices
/// are out of order/range.
pub fn may_complete_after(program: &[Stmt], op_idx: usize, point_idx: usize) -> bool {
    assert!(op_idx <= point_idx && point_idx < program.len());
    let Stmt::Async { access, implicit } = program[op_idx] else {
        panic!("statement {op_idx} is not an asynchronous operation");
    };
    program[op_idx + 1..=point_idx].iter().all(|s| passes_down(s, access, implicit))
}

/// May the initiation of the asynchronous operation at `op_idx` be hoisted
/// above the program point *before* statement `point_idx`? Requires
/// `point_idx <= op_idx`. The operation must cross every synchronization
/// statement in `[point_idx, op_idx)` upward.
///
/// # Panics
/// Panics if `op_idx` does not name an `Async` statement or the indices
/// are out of order/range.
pub fn may_initiate_before(program: &[Stmt], op_idx: usize, point_idx: usize) -> bool {
    assert!(point_idx <= op_idx && op_idx < program.len());
    let Stmt::Async { access, implicit } = program[op_idx] else {
        panic!("statement {op_idx} is not an asynchronous operation");
    };
    program[point_idx..op_idx].iter().all(|s| passes_up(s, access, implicit))
}

/// A candidate execution of one image's program: for each `Async`
/// statement, the index of the *latest* program position by which its
/// local data completion occurred (`completed_by[k]` for the k-th async
/// statement, a statement index in the program), and the *earliest*
/// position at which it was initiated (`initiated_at[k]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Execution {
    /// Statement index by which each async op (in program order) completed.
    pub completed_by: Vec<usize>,
    /// Statement index at which each async op was initiated.
    pub initiated_at: Vec<usize>,
}

/// Validates a candidate execution against the model. Returns the list of
/// violations as human-readable strings (empty = legal).
pub fn validate_execution(program: &[Stmt], exec: &Execution) -> Vec<String> {
    let asyncs: Vec<usize> = program
        .iter()
        .enumerate()
        .filter_map(|(i, s)| matches!(s, Stmt::Async { .. }).then_some(i))
        .collect();
    let mut violations = Vec::new();
    if exec.completed_by.len() != asyncs.len() || exec.initiated_at.len() != asyncs.len() {
        violations.push(format!(
            "execution describes {} completions / {} initiations for {} async statements",
            exec.completed_by.len(),
            exec.initiated_at.len(),
            asyncs.len()
        ));
        return violations;
    }
    for (k, &op_idx) in asyncs.iter().enumerate() {
        let done = exec.completed_by[k];
        let init = exec.initiated_at[k];
        if init > op_idx {
            violations.push(format!("op {k}: initiation after its program position"));
            continue;
        }
        if done < init {
            violations.push(format!("op {k}: completes before it initiates"));
            continue;
        }
        if done > op_idx && !may_complete_after(program, op_idx, done) {
            violations.push(format!(
                "op {k} (stmt {op_idx}): completion deferred to {done} crosses a constraining fence"
            ));
        }
        if init < op_idx && !may_initiate_before(program, op_idx, init) {
            violations.push(format!(
                "op {k} (stmt {op_idx}): initiation hoisted to {init} crosses a constraining fence"
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cofence::Pass;
    use crate::ids::ImageId;

    const EV: EventId = EventId { owner: ImageId(0), slot: 0 };

    fn implicit(access: LocalAccess) -> Stmt {
        Stmt::Async { access, implicit: true }
    }

    #[test]
    fn plain_full_cofence_blocks_implicit_ops_both_ways() {
        let p = [
            implicit(LocalAccess::READ),
            Stmt::Cofence(CofenceSpec::FULL),
            implicit(LocalAccess::WRITE),
        ];
        assert!(!may_complete_after(&p, 0, 1));
        assert!(!may_initiate_before(&p, 2, 1));
    }

    #[test]
    fn explicitly_completed_ops_ignore_cofence() {
        let p = [
            Stmt::Async { access: LocalAccess::READ, implicit: false },
            Stmt::Cofence(CofenceSpec::FULL),
        ];
        assert!(may_complete_after(&p, 0, 1));
    }

    /// Paper Fig. 8 as a program: the write-class copy may defer past
    /// `cofence(DOWNWARD=WRITE)`, the read-class copy may not.
    #[test]
    fn fig8_program() {
        let p = [
            implicit(LocalAccess::WRITE), // line 5: remote → local inbuf
            implicit(LocalAccess::READ),  // line 6: local outbuf → remote
            Stmt::Cofence(CofenceSpec::new(Pass::Writes, Pass::None)), // line 8
        ];
        assert!(may_complete_after(&p, 0, 2));
        assert!(!may_complete_after(&p, 1, 2));
    }

    #[test]
    fn notify_is_release_wait_is_acquire() {
        let p = [
            implicit(LocalAccess::READ),
            Stmt::Notify(EV),
            implicit(LocalAccess::WRITE),
            Stmt::Wait(EV),
            implicit(LocalAccess::READ),
        ];
        // Nothing completes past the notify…
        assert!(!may_complete_after(&p, 0, 1));
        // …but the op after it may start before it (porous upward).
        assert!(may_initiate_before(&p, 2, 1));
        // Earlier ops may complete after the wait (porous downward)…
        assert!(may_complete_after(&p, 2, 3));
        // …but the op after the wait may not start before it.
        assert!(!may_initiate_before(&p, 4, 3));
    }

    #[test]
    fn finish_end_orders_everything() {
        let p = [implicit(LocalAccess::WRITE), Stmt::FinishEnd, implicit(LocalAccess::WRITE)];
        assert!(!may_complete_after(&p, 0, 1));
        assert!(!may_initiate_before(&p, 2, 1));
    }

    #[test]
    fn crossing_two_fences_requires_both_to_admit() {
        let p = [
            implicit(LocalAccess::WRITE),
            Stmt::Cofence(CofenceSpec::new(Pass::Writes, Pass::None)),
            Stmt::Cofence(CofenceSpec::new(Pass::Reads, Pass::None)),
        ];
        assert!(may_complete_after(&p, 0, 1));
        assert!(!may_complete_after(&p, 0, 2)); // second fence blocks writes
    }

    #[test]
    fn validate_accepts_program_order_execution() {
        let p = [
            implicit(LocalAccess::READ),
            Stmt::Cofence(CofenceSpec::FULL),
            implicit(LocalAccess::WRITE),
        ];
        let exec = Execution { completed_by: vec![0, 2], initiated_at: vec![0, 2] };
        assert!(validate_execution(&p, &exec).is_empty());
    }

    #[test]
    fn validate_rejects_illegal_deferral() {
        let p = [
            implicit(LocalAccess::READ),
            Stmt::Cofence(CofenceSpec::FULL),
            implicit(LocalAccess::WRITE),
        ];
        let exec = Execution { completed_by: vec![2, 2], initiated_at: vec![0, 2] };
        let v = validate_execution(&p, &exec);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("completion deferred"));
    }

    #[test]
    fn validate_rejects_time_travel() {
        let p = [implicit(LocalAccess::READ)];
        let exec = Execution { completed_by: vec![0], initiated_at: vec![0] };
        assert!(validate_execution(&p, &exec).is_empty());
        // completes before it initiates:
        let p2 = [Stmt::Wait(EV), implicit(LocalAccess::READ)];
        let bad = Execution { completed_by: vec![0], initiated_at: vec![1] };
        assert!(!validate_execution(&p2, &bad).is_empty());
    }
}
