//! Chaos stress: all primitives interleaved under an adversarial fabric —
//! real latency, non-FIFO delivery, tiny inbox capacity (heavy
//! backpressure), dedicated comm threads — checked for exact accounting.
//!
//! This is the test most likely to catch ordering bugs between the
//! progress engine, the comm pump, the finish detector, and flow control.

use caf2::{AsyncCollEvents, CommMode, NetworkModel, Runtime, RuntimeConfig, TeamRank};
use std::time::Duration;

fn chaos_cfg(seed: u64) -> RuntimeConfig {
    RuntimeConfig {
        comm_mode: CommMode::DedicatedThread,
        network: NetworkModel {
            latency: Duration::from_micros(100),
            injection_overhead: Duration::from_micros(2),
            inbox_capacity: Some(12),
            backpressure_stall: Duration::from_micros(50),
            ..NetworkModel::instant()
        },
        non_fifo: true,
        seed,
        ..RuntimeConfig::default()
    }
}

/// Mixed workload: per round, every image ships increments (some
/// transitively), fires implicit puts, runs a cofence, and joins an async
/// broadcast — all inside one finish; totals must balance exactly.
#[test]
fn mixed_primitives_account_exactly() {
    for seed in 0..3u64 {
        let n = 4;
        let rounds = 6;
        let outcome = Runtime::launch(n, chaos_cfg(seed), |img| {
            let w = img.world();
            let hits = img.coarray(&w, 1, 0u64);
            let puts = img.coarray(&w, n, 0u64);
            let bcast = img.coarray(&w, 4, 0u64);
            for round in 0..rounds {
                img.finish(&w, |img| {
                    let me = img.id().index();
                    // Transitive spawn chains of length 3.
                    let h = hits.clone();
                    img.spawn(img.image((me + 1) % n), move |q| {
                        h.with_local(q.id(), |s| s[0] += 1);
                        let h2 = h.clone();
                        q.spawn(q.image((q.id().index() + 1) % q.num_images()), move |r| {
                            h2.with_local(r.id(), |s| s[0] += 1);
                            let h3 = h2.clone();
                            r.spawn(r.image((r.id().index() + 1) % r.num_images()), move |s_| {
                                h3.with_local(s_.id(), |s| s[0] += 1);
                            });
                        });
                    });
                    // Implicit puts: mark (round, me) on every peer.
                    for peer in 0..n {
                        img.put_async(
                            puts.slice(img.image(peer), me..me + 1),
                            vec![(round as u64 + 1) * 100 + me as u64],
                        );
                    }
                    img.cofence();
                    // Async broadcast of image 0's counter snapshot.
                    if me == 0 {
                        bcast.with_local(img.id(), |s| s[0] = round as u64);
                    }
                    img.broadcast_async(&w, &bcast, 0..1, TeamRank(0), AsyncCollEvents::none());
                });
                // Global completion: everyone sees this round's broadcast.
                assert_eq!(bcast.read(img.id(), 0..1), vec![round as u64]);
                // Keep a fast image's *next* round (which overwrites the
                // broadcast slot) from landing before a slow image has
                // performed the read above: nobody exits this barrier
                // until everyone has read.
                img.barrier(&w);
            }
            let mine = hits.read(img.id(), 0..1)[0];
            let put_row = puts.read(img.id(), 0..n);
            (mine, put_row)
        });
        let total_hits: u64 = outcome.iter().map(|(h, _)| h).sum();
        assert_eq!(total_hits, (n * rounds * 3) as u64, "seed {seed}: lost spawn increments");
        for (i, (_, row)) in outcome.iter().enumerate() {
            for (src, &v) in row.iter().enumerate() {
                assert_eq!(
                    v,
                    (rounds as u64) * 100 + src as u64,
                    "seed {seed}: image {i} column {src} has stale put"
                );
            }
        }
    }
}

/// Collectives stay correct while user AM traffic saturates the fabric.
#[test]
fn collectives_survive_background_storm() {
    let n = 4;
    let sums = Runtime::launch(n, chaos_cfg(7), |img| {
        let w = img.world();
        let noise = img.coarray(&w, 8, 0u64);
        let mut acc = 0i64;
        img.finish(&w, |img| {
            for k in 0..10 {
                // Noise: implicit copies to everyone.
                for peer in 0..n {
                    img.put_async(noise.slice(img.image(peer), k % 8..k % 8 + 1), vec![k as u64]);
                }
                // Interleaved collectives (matched on all images).
                acc += img.allreduce(&w, img.id().index() as i64 + k as i64, |a, b| a + b);
                let g = img.allgather(&w, k);
                assert_eq!(g, vec![k; n]);
            }
        });
        acc
    });
    let expect: i64 = (0..10).map(|k| (0..4).map(|r| r + k).sum::<i64>()).sum();
    assert!(sums.into_iter().all(|s| s == expect));
}

/// Deep nesting: finish blocks inside finish blocks on rotating
/// sub-teams, each layer verified.
#[test]
fn nested_finish_on_subteams() {
    let n = 6;
    Runtime::launch(n, chaos_cfg(3), |img| {
        let w = img.world();
        let me = img.id().index();
        let sub = img.team_split(&w, (me % 2) as u64, me as u64);
        let marks = img.coarray(&w, 2, 0u64);
        img.finish(&w, |img| {
            let m = marks.clone();
            img.spawn(img.image((me + 2) % n), move |p| {
                m.with_local(p.id(), |s| s[0] += 1);
            });
            img.finish(&sub, |img| {
                let m = marks.clone();
                let peer =
                    sub.image_of(TeamRank((sub.rank_of(img.id()).unwrap().0 + 1) % sub.size()));
                img.spawn(peer, move |p| {
                    m.with_local(p.id(), |s| s[1] += 1);
                });
            });
            // Inner finish done: the sub-team spawn landed somewhere.
        });
        // Outer finish done: both counters fully populated.
        assert_eq!(marks.read(img.id(), 0..2), vec![1, 1]);
        img.barrier(&w);
    });
}
