//! `caf-check` — deterministic schedule-exploration model checker for the
//! finish/cofence protocol of *Managing Asynchronous Operations in
//! Coarray Fortran 2.0*.
//!
//! The checker drives the **pure protocol models** from `caf-core` — the
//! epoch, four-counter, centralized, and barrier termination detectors
//! and the cofence pass algebra — through *every* interleaving of bounded
//! scenarios: `p` images, a bounded tree of spawned functions, optionally
//! one fail-stop crash. A sleep-set partial-order reduction over a
//! vector-clock happens-before layer keeps `p ≤ 5`, depth `≤ 4`
//! tractable.
//!
//! Three oracle classes run during exploration:
//!
//! * **safety** — no detector reports termination while any message is
//!   outstanding (`sent − completed > 0` somewhere) or after being told
//!   about a crash; no cofence admits a pass-class it was fenced against;
//! * **liveness** — every fair schedule of the strict epoch algorithm
//!   terminates within `L + 1` waves (the paper's Theorem 1 as an
//!   executable assertion), plus deadlock and frozen-sum livelock
//!   detection for the other families;
//! * **differential** — all detector families agree on the verdict for
//!   the same event trace, and a [`caf_des`] replay of the same schedule
//!   reproduces the identical counter history.
//!
//! Counterexamples are minimized by two-level delta debugging
//! ([`shrink`]) and emitted as self-contained replay files ([`replay`])
//! that `caf-check replay <file>` and the fixture regression tests
//! consume. [`capture`] closes the loop with the real runtime: traces
//! recorded by `caf-runtime` through `caf-core`'s `TraceRecorder` are
//! validated against the same detector models. [`plan_bridge`] closes a
//! second loop, with the static analyzer: every `caf-lint` race or
//! deadlock diagnostic is checked for realizability by exhaustive
//! exploration of the plan's dynamic semantics (`caf-check plan-diff`).

pub mod capture;
pub mod cofence_check;
pub mod diff;
pub mod explore;
pub mod mutation;
pub mod plan_bridge;
pub mod replay;
pub mod scenario;
pub mod shrink;
pub mod vc;
pub mod world;

pub use explore::{explore, Counterexample, ExploreConfig, ExploreStats};
pub use mutation::{Family, Mutation};
pub use plan_bridge::{check_plan, explore_plan, PlanAgreement, PlanVerdict};
pub use replay::Replay;
pub use scenario::{scenarios, Scenario};
pub use shrink::shrink;
pub use world::{TKey, Violation, ViolationKind, World};
