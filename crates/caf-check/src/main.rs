//! `caf-check` CLI: explore, suite, replay, and mutate subcommands.

use std::process::ExitCode;
use std::time::Instant;

use caf_check::cofence_check::{self, CofenceMutation};
use caf_check::explore::{explore, Counterexample, ExploreConfig};
use caf_check::mutation::{Family, Mutation};
use caf_check::replay::Replay;
use caf_check::scenario::{parse_tree, scenarios, Scenario};
use caf_check::shrink::shrink;

const USAGE: &str = "\
caf-check — schedule-exploration model checker for the finish/cofence protocol

USAGE:
  caf-check explore [--images N] [--spawn '<from> <tree>']... [--crash V]
                    [--family F] [--mutation M] [--no-por] [--max-states N]
                    [--out FILE]
      Explore one scenario. Trees use the `target(child,child)` syntax,
      e.g. --spawn '0 1(2,2)'. A counterexample's replay file goes to
      FILE when --out is given, stdout otherwise.

  caf-check suite [--images N] [--depth D] [--crash-scenarios]
                  [--max-states N] [--por-ratio] [--quiet]
      Explore the curated scenario family for every detector family plus
      the cofence matrix. Exit 1 if any counterexample is found.

  caf-check mutate [--out DIR] [NAME...]
      Run every seeded mutation (or just NAME...) and confirm the checker
      catches each; shrink and print (or write) the counterexample.
      Exit 1 if any mutation escapes.

  caf-check replay FILE
      Re-execute a counterexample replay file and confirm its expectation.

  caf-check plan-diff [--max-states N] FILE...
      Differentially validate caf-lint on plan files: every static race
      must be realized by some explored schedule, no schedule may race
      where the analysis was silent, and deadlock diagnostics must match
      reachable stuck states. Exit 1 on any disagreement.

FAMILIES:  epoch-strict  epoch-loose  four-counter
MUTATIONS: drop-quiescence-wait merge-epochs skip-poison local-verdict
           single-wave-four-counter ack-complete-confusion
           stale-contribution cofence-swap-read-write cofence-ignore-upward
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd {
        "explore" => cmd_explore(rest),
        "suite" => cmd_suite(rest),
        "mutate" => cmd_mutate(rest),
        "replay" => cmd_replay(rest),
        "plan-diff" => cmd_plan_diff(rest),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("caf-check: {msg}");
            ExitCode::from(2)
        }
    }
}

struct Opts {
    images: usize,
    depth: usize,
    spawns: Vec<(usize, String)>,
    crash: Option<usize>,
    family: Option<Family>,
    mutation: Option<Mutation>,
    por: bool,
    max_states: u64,
    crash_scenarios: bool,
    por_ratio: bool,
    quiet: bool,
    out: Option<String>,
    names: Vec<String>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        images: 3,
        depth: 2,
        spawns: Vec::new(),
        crash: None,
        family: None,
        mutation: None,
        por: true,
        max_states: 2_000_000,
        crash_scenarios: false,
        por_ratio: false,
        quiet: false,
        out: None,
        names: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next().map(String::as_str).ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--images" => o.images = value("--images")?.parse().map_err(|e| format!("{e}"))?,
            "--depth" => o.depth = value("--depth")?.parse().map_err(|e| format!("{e}"))?,
            "--spawn" => {
                let v = value("--spawn")?;
                let (from, tree) = v
                    .split_once(' ')
                    .ok_or_else(|| format!("--spawn needs '<from> <tree>', got {v:?}"))?;
                o.spawns.push((
                    from.parse().map_err(|e| format!("bad spawn rank: {e}"))?,
                    tree.to_string(),
                ));
            }
            "--crash" => o.crash = Some(value("--crash")?.parse().map_err(|e| format!("{e}"))?),
            "--family" => o.family = Some(Family::parse(value("--family")?)?),
            "--mutation" => o.mutation = Some(Mutation::parse(value("--mutation")?)?),
            "--no-por" => o.por = false,
            "--max-states" => {
                o.max_states = value("--max-states")?.parse().map_err(|e| format!("{e}"))?
            }
            "--crash-scenarios" => o.crash_scenarios = true,
            "--por-ratio" => o.por_ratio = true,
            "--quiet" => o.quiet = true,
            "--out" => o.out = Some(value("--out")?.to_string()),
            other if !other.starts_with('-') => o.names.push(other.to_string()),
            other => return Err(format!("unknown flag {other:?}\n\n{USAGE}")),
        }
    }
    Ok(o)
}

fn report_ce(ce: &Counterexample) {
    println!("counterexample: {} violation", ce.violation.kind.name());
    println!("  scenario:  {}", ce.scenario.name());
    println!("  family:    {}", ce.family.name());
    if let Some(m) = ce.mutation {
        println!("  mutation:  {}", m.name());
    }
    println!("  detail:    {}", ce.violation.detail);
    println!("  schedule ({} steps):", ce.schedule.len());
    for k in &ce.schedule {
        println!("    {k}");
    }
}

fn cmd_explore(args: &[String]) -> Result<bool, String> {
    let o = parse_opts(args)?;
    let mut roots = Vec::new();
    for (from, tree) in &o.spawns {
        roots.push((*from, parse_tree(tree)?));
    }
    let scenario = Scenario { images: o.images, roots, crash: o.crash };
    let family = o.family.unwrap_or(Family::EpochStrict);
    let cfg = ExploreConfig { max_states: o.max_states, por: o.por, differential: true };
    let start = Instant::now();
    let (stats, ce) = explore(&scenario, family, o.mutation, &cfg);
    println!(
        "explored {}: {} states, {} schedules ({} terminated, {} aborted), \
         {} budget-pruned, {} sleep-cut, max schedule {}, {:.2?}{}",
        scenario.name(),
        stats.states,
        stats.schedules,
        stats.terminated,
        stats.aborted,
        stats.pruned_budget,
        stats.sleep_cut,
        stats.max_schedule_len,
        start.elapsed(),
        if stats.truncated { " [TRUNCATED]" } else { "" },
    );
    match ce {
        Some(ce) => {
            let small = shrink(&ce);
            report_ce(&small);
            let text = Replay::from_counterexample(&small).to_text();
            match &o.out {
                Some(path) => {
                    std::fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?;
                    println!("wrote {path}");
                }
                None => {
                    println!("--- replay file ---");
                    print!("{text}");
                }
            }
            Ok(false)
        }
        None => {
            println!("no counterexamples");
            Ok(true)
        }
    }
}

fn cmd_suite(args: &[String]) -> Result<bool, String> {
    let o = parse_opts(args)?;
    let all = scenarios(o.images, o.depth, o.crash_scenarios);
    let cfg = ExploreConfig { max_states: o.max_states, por: true, differential: true };
    let start = Instant::now();
    let mut total_states = 0u64;
    let mut total_schedules = 0u64;
    let mut truncated = 0usize;
    let mut failures = 0usize;
    let mut runs = 0usize;
    for s in &all {
        for family in Family::ALL {
            runs += 1;
            let t0 = Instant::now();
            let (stats, ce) = explore(s, family, None, &cfg);
            total_states += stats.states;
            total_schedules += stats.schedules;
            if stats.truncated {
                truncated += 1;
            }
            if !o.quiet {
                println!(
                    "  {:<28} {:<13} {:>9} states {:>9} schedules {:>8.2?}{}",
                    s.name(),
                    family.name(),
                    stats.states,
                    stats.schedules,
                    t0.elapsed(),
                    if stats.truncated { " [TRUNCATED]" } else { "" },
                );
            }
            if let Some(ce) = ce {
                failures += 1;
                let small = shrink(&ce);
                report_ce(&small);
            }
        }
    }
    // Cofence matrix: every pass pair × op-class pair × schedule.
    let (programs, cofence_violation) = cofence_check::check_matrix(None);
    if let Some(v) = &cofence_violation {
        failures += 1;
        println!("cofence matrix violation: {}", v.detail);
    }
    println!(
        "suite: {} scenario×family runs + {programs} cofence programs, \
         {total_states} states, {total_schedules} schedules, {truncated} truncated, \
         {failures} counterexamples, {:.2?}",
        runs,
        start.elapsed()
    );
    if o.por_ratio {
        por_ratio(o.images);
    }
    Ok(failures == 0)
}

/// Measures the sleep-set reduction on a representative scenario.
fn por_ratio(images: usize) {
    let scenario = Scenario {
        images: images.min(3),
        roots: vec![(0, parse_tree("1(2,2)").expect("static tree"))],
        crash: None,
    };
    let base = ExploreConfig { max_states: 50_000_000, por: true, differential: false };
    let t0 = Instant::now();
    let (with, _) = explore(&scenario, Family::EpochStrict, None, &base);
    let t_por = t0.elapsed();
    let t1 = Instant::now();
    let (without, _) =
        explore(&scenario, Family::EpochStrict, None, &ExploreConfig { por: false, ..base });
    let t_full = t1.elapsed();
    println!(
        "por-ratio on {}: {} states with sleep sets ({t_por:.2?}) vs {} without \
         ({t_full:.2?}) — {:.1}x reduction",
        scenario.name(),
        with.states,
        without.states,
        without.states as f64 / with.states.max(1) as f64,
    );
}

fn cmd_mutate(args: &[String]) -> Result<bool, String> {
    let o = parse_opts(args)?;
    let selected: Vec<String> = if o.names.is_empty() {
        Mutation::ALL
            .iter()
            .map(|m| m.name().to_string())
            .chain(CofenceMutation::ALL.iter().map(|m| m.name().to_string()))
            .collect()
    } else {
        o.names.clone()
    };
    let mut all_caught = true;
    for name in &selected {
        if let Ok(m) = CofenceMutation::parse(name) {
            let (_, v) = cofence_check::check_matrix(Some(m));
            match v {
                Some(v) => {
                    println!("{name}: CAUGHT ({}) — {}", v.kind.name(), v.detail)
                }
                None => {
                    println!("{name}: ESCAPED the cofence matrix");
                    all_caught = false;
                }
            }
            continue;
        }
        let m = Mutation::parse(name)?;
        match hunt_mutation(m, &o) {
            Some(ce) => {
                let small = shrink(&ce);
                println!(
                    "{name}: CAUGHT ({}) in {} after shrinking to {} steps",
                    small.violation.kind.name(),
                    small.scenario.name(),
                    small.schedule.len()
                );
                if let Some(dir) = &o.out {
                    let path = format!("{dir}/{name}.replay");
                    std::fs::write(&path, Replay::from_counterexample(&small).to_text())
                        .map_err(|e| format!("writing {path}: {e}"))?;
                    println!("  wrote {path}");
                }
            }
            None => {
                println!("{name}: ESCAPED — no counterexample in the search bound");
                all_caught = false;
            }
        }
    }
    Ok(all_caught)
}

/// Searches the curated scenario family (smallest first) for a
/// counterexample exposing `m`.
fn hunt_mutation(m: Mutation, o: &Opts) -> Option<Counterexample> {
    let cfg = ExploreConfig { max_states: o.max_states, por: true, differential: false };
    let mut all = scenarios(o.images, o.depth, m.needs_crash());
    if m.needs_crash() {
        all.retain(|s| s.crash.is_some());
    }
    all.sort_by_key(|s| (s.total_spawns(), s.roots.len()));
    for s in &all {
        let (_, ce) = explore(s, m.family(), Some(m), &cfg);
        if ce.is_some() {
            return ce;
        }
    }
    None
}

fn cmd_plan_diff(args: &[String]) -> Result<bool, String> {
    let o = parse_opts(args)?;
    if o.names.is_empty() {
        return Err("plan-diff needs at least one plan FILE".into());
    }
    let max_states = o.max_states as usize;
    let mut all_agree = true;
    for path in &o.names {
        let src = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let plan = caf_lint::parse(&src).map_err(|e| format!("{path}: {e}"))?;
        let agreement =
            caf_check::check_plan(&plan, max_states).map_err(|e| format!("{path}: {e}"))?;
        let name = std::path::Path::new(path)
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.clone());
        println!("{name}: {}", agreement.summary());
        if !agreement.ok() {
            for k in &agreement.unrealized {
                println!("  unrealized static race: {} steps {} -> {}", k.0, k.1, k.2);
            }
            for k in &agreement.unpredicted {
                println!("  unpredicted dynamic race: {} steps {} -> {}", k.0, k.1, k.2);
            }
            if agreement.lint_deadlock != agreement.verdict.deadlock {
                match &agreement.verdict.deadlock_sample {
                    Some(d) => println!("  dynamic deadlock not statically reported: {d}"),
                    None => println!("  static deadlock diagnostic never realized"),
                }
            }
            all_agree = false;
        }
    }
    Ok(all_agree)
}

fn cmd_replay(args: &[String]) -> Result<bool, String> {
    let [file] = args else {
        return Err("replay needs exactly one FILE argument".into());
    };
    let text = std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?;
    let replay = Replay::parse(&text).map_err(|e| format!("{file}: {e}"))?;
    match replay.run() {
        Ok(msg) => {
            println!("{file}: OK — {msg}");
            Ok(true)
        }
        Err(msg) => {
            println!("{file}: MISMATCH — {msg}");
            Ok(false)
        }
    }
}
