//! Vector clocks: the happens-before layer of the explorer.
//!
//! Every image carries a clock; every message snapshots its sender's
//! clock at send time and joins it into the receiver at delivery. The
//! explorer uses the resulting happens-before order three ways:
//!
//! * the **liveness oracle** bounds waves by the *causal* chain length of
//!   the run (`L` in Theorem 1 is the longest happens-before chain of
//!   messages, which for crash runs can be shorter than the scenario's
//!   static spawn depth);
//! * **shrinking** normalizes schedules to a canonical linearization of
//!   the happens-before partial order, so delta-debugged counterexamples
//!   are stable across exploration orders;
//! * model **sanity checks** assert that a delivery's clock always
//!   dominates the matching send.

/// A fixed-width vector clock over `n` images.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorClock {
    lanes: Vec<u64>,
}

impl VectorClock {
    /// The zero clock over `n` images.
    pub fn new(n: usize) -> Self {
        VectorClock { lanes: vec![0; n] }
    }

    /// Advances `image`'s own lane (a local step).
    pub fn tick(&mut self, image: usize) {
        self.lanes[image] += 1;
    }

    /// Joins `other` into `self` (element-wise max — message receipt).
    pub fn join(&mut self, other: &VectorClock) {
        for (a, b) in self.lanes.iter_mut().zip(&other.lanes) {
            *a = (*a).max(*b);
        }
    }

    /// Whether `self` happens-before-or-equals `other` (every lane ≤).
    pub fn le(&self, other: &VectorClock) -> bool {
        self.lanes.iter().zip(&other.lanes).all(|(a, b)| a <= b)
    }

    /// Strict domination: `self ≤ other` and they differ.
    pub fn dominates(&self, other: &VectorClock) -> bool {
        other.le(self) && self != other
    }

    /// `image`'s own lane value.
    pub fn lane(&self, image: usize) -> u64 {
        self.lanes[image]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_join_order_events() {
        let mut a = VectorClock::new(3);
        let mut b = VectorClock::new(3);
        a.tick(0); // a = [1,0,0]
        let snapshot = a.clone();
        b.join(&snapshot); // message 0 → 1
        b.tick(1); // b = [1,1,0]
        assert!(snapshot.le(&b));
        assert!(b.dominates(&snapshot));
        assert!(!snapshot.dominates(&b));
    }

    #[test]
    fn concurrent_clocks_are_unordered() {
        let mut a = VectorClock::new(2);
        let mut b = VectorClock::new(2);
        a.tick(0);
        b.tick(1);
        assert!(!a.le(&b));
        assert!(!b.le(&a));
        assert!(!a.dominates(&b));
        assert!(!b.dominates(&a));
    }

    #[test]
    fn le_is_reflexive() {
        let mut a = VectorClock::new(2);
        a.tick(0);
        assert!(a.le(&a));
        assert!(!a.dominates(&a));
    }
}
