//! Differential oracles: the same event trace, replayed through every
//! detector implementation, must yield the same verdict — and replayed
//! through the DES engine must reproduce the same counter history.
//!
//! The explorer hands us the ordered [`MsgStep`] trace of a crash-free
//! terminal state that the world's own detector declared terminated. We
//! then:
//!
//! 1. replay the trace through fresh strict-epoch, loose-epoch, and
//!    four-counter detector banks and run synchronous verdict waves: all
//!    three must declare termination within a small bounded number of
//!    waves (strict and loose in one, four-counter in two);
//! 2. replay it through the X10-style centralized vector protocol: one
//!    quiescent report round must make the home declare termination;
//! 3. check the (unsound) barrier detector one way: it may declare
//!    termination too *early* elsewhere, but on a truly terminated trace
//!    it must be locally done everywhere — it never misses a true
//!    positive;
//! 4. schedule the trace into [`caf_des::Engine`] with one event per
//!    tick and drive a fresh epoch bank from the popped events: the
//!    resulting per-step cumulative counter snapshots must be identical
//!    to the history the exploration recorded, proving the world model
//!    and the DES engine agree on what a schedule *is*.

use std::collections::BTreeMap;

use caf_core::ids::{ImageId, Parity};
use caf_core::termination::{
    BarrierDetector, CentralizedDetector, CentralizedHome, EpochDetector, WaveDecision,
    WaveDetector,
};

use crate::world::{MsgStep, Violation, ViolationKind, World};

/// Maximum synchronous verdict waves a wave detector may need on a fully
/// drained trace (four-counter needs 2; leave headroom for 1 more).
const MAX_VERDICT_WAVES: usize = 3;

/// Runs every differential oracle against a crash-free terminated
/// terminal world. Returns the first disagreement found.
pub fn check_terminal(world: &World) -> Option<Violation> {
    let n = world.images();
    let trace = complete_acks(world.msg_trace());
    for (name, strict) in [("epoch-strict", true), ("epoch-loose", false)] {
        if let Err(detail) = wave_verdict(n, &trace, || EpochDetector::new(strict), 1) {
            return Some(Violation {
                kind: ViolationKind::Differential,
                detail: format!("{name} replay disagreed: {detail}"),
            });
        }
    }
    if let Err(detail) = wave_verdict(n, &trace, caf_core::termination::FourCounterDetector::new, 2)
    {
        return Some(Violation {
            kind: ViolationKind::Differential,
            detail: format!("four-counter replay disagreed: {detail}"),
        });
    }
    if let Err(detail) = centralized_verdict(n, &trace) {
        return Some(Violation {
            kind: ViolationKind::Differential,
            detail: format!("centralized replay disagreed: {detail}"),
        });
    }
    if let Err(detail) = barrier_one_way(n, &trace) {
        return Some(Violation {
            kind: ViolationKind::Differential,
            detail: format!("barrier replay missed a true termination: {detail}"),
        });
    }
    if world.family().theorem1_applies() || !world.history().is_empty() {
        if let Err(detail) = des_replay(world) {
            return Some(Violation { kind: ViolationKind::DesMismatch, detail });
        }
    }
    None
}

/// A world may terminate with delivery acks still on the wire (the sender
/// no longer needs them). Append the missing acks so replays reach full
/// message quiescence before their verdict rounds.
fn complete_acks(trace: &[MsgStep]) -> Vec<MsgStep> {
    let mut out = trace.to_vec();
    let mut sender: BTreeMap<&str, usize> = BTreeMap::new();
    for step in trace {
        match step {
            MsgStep::Send { id, from, .. } => {
                sender.insert(id, *from);
            }
            MsgStep::Ack { id, .. } => {
                sender.remove(id.as_str());
            }
            _ => {}
        }
    }
    for (id, from) in sender {
        out.push(MsgStep::Ack { id: id.to_string(), from });
    }
    out
}

/// Replays `trace` through a fresh bank of wave detectors and runs
/// synchronous verdict waves. Succeeds iff every image declares
/// `Terminated` in the same wave, in exactly `expect_waves` waves.
fn wave_verdict<D: WaveDetector, F: Fn() -> D>(
    n: usize,
    trace: &[MsgStep],
    fresh: F,
    expect_waves: usize,
) -> Result<(), String> {
    let mut bank: Vec<D> = (0..n).map(|_| fresh()).collect();
    let mut tags: BTreeMap<&str, Parity> = BTreeMap::new();
    for step in trace {
        match step {
            MsgStep::Send { id, from, .. } => {
                tags.insert(id, bank[*from].on_send());
            }
            MsgStep::Deliver { id, to } => bank[*to].on_receive(tags[id.as_str()]),
            MsgStep::Exec { id, to } => bank[*to].on_complete(tags[id.as_str()]),
            MsgStep::Ack { id, from } => bank[*from].on_delivered(tags[id.as_str()]),
        }
    }
    for wave in 1..=MAX_VERDICT_WAVES {
        if let Some(i) = (0..n).find(|&i| !bank[i].ready()) {
            return Err(format!("image {i} not ready for verdict wave {wave} on drained trace"));
        }
        let mut sum = [0i64; 2];
        let contributions: Vec<_> = bank.iter_mut().map(|d| d.enter_wave()).collect();
        for c in &contributions {
            sum[0] += c[0];
            sum[1] += c[1];
        }
        let decisions: Vec<WaveDecision> = bank.iter_mut().map(|d| d.exit_wave(sum)).collect();
        if decisions.contains(&WaveDecision::Terminated) {
            if decisions.iter().any(|d| *d != WaveDecision::Terminated) {
                return Err(format!("split verdict in wave {wave}: {decisions:?}"));
            }
            if wave != expect_waves {
                return Err(format!("terminated in wave {wave}, expected wave {expect_waves}"));
            }
            return Ok(());
        }
    }
    Err(format!("no termination within {MAX_VERDICT_WAVES} verdict waves"))
}

/// Replays `trace` through the centralized vector protocol: after one
/// quiescent report round the home must declare termination.
fn centralized_verdict(n: usize, trace: &[MsgStep]) -> Result<(), String> {
    let mut home = CentralizedHome::new(n);
    let mut workers: Vec<CentralizedDetector> =
        (0..n).map(|i| CentralizedDetector::new(ImageId(i), n)).collect();
    for step in trace {
        match step {
            MsgStep::Send { from, to, .. } => workers[*from].on_spawn(ImageId(*to)),
            MsgStep::Deliver { to, .. } => workers[*to].on_activity_start(),
            MsgStep::Exec { to, .. } => workers[*to].on_activity_complete(),
            MsgStep::Ack { .. } => {}
        }
    }
    let mut done = false;
    for (i, w) in workers.iter_mut().enumerate() {
        if !w.quiescent() {
            return Err(format!("worker {i} not quiescent on drained trace"));
        }
        if let Some(r) = w.take_report() {
            done = home.ingest(&r);
        }
    }
    if !done {
        return Err("home did not declare termination after a full report round".into());
    }
    Ok(())
}

/// One-way barrier check: the unsound Fig. 5 detector may fire early on
/// other traces, but on a truly terminated one every image must be
/// locally done.
fn barrier_one_way(n: usize, trace: &[MsgStep]) -> Result<(), String> {
    let mut bank: Vec<BarrierDetector> = (0..n).map(|_| BarrierDetector::new()).collect();
    for step in trace {
        match step {
            MsgStep::Send { from, .. } => {
                bank[*from].on_send();
            }
            MsgStep::Deliver { id: _, to } => bank[*to].on_receive(Parity::Even),
            MsgStep::Exec { id: _, to } => bank[*to].on_complete(Parity::Even),
            MsgStep::Ack { id: _, from } => bank[*from].on_delivered(Parity::Even),
        }
    }
    match (0..n).find(|&i| !bank[i].locally_done()) {
        Some(i) => Err(format!("image {i} not locally done")),
        None => Ok(()),
    }
}

/// Replays the message trace through the DES engine, one event per tick,
/// driving a fresh epoch bank; the per-step cumulative counter snapshots
/// must equal the exploration-recorded history exactly. Cumulative
/// counters are invariant under wave folds, so the comparison is valid
/// even though the replay runs no waves.
fn des_replay(world: &World) -> Result<(), String> {
    let n = world.images();
    let mut engine: caf_des::Engine<MsgStep> = caf_des::Engine::new();
    for (i, step) in world.msg_trace().iter().enumerate() {
        engine.schedule_at(i as caf_des::SimTime, step.clone());
    }
    let mut bank: Vec<EpochDetector> = (0..n).map(|_| EpochDetector::new(true)).collect();
    let mut tags: BTreeMap<String, Parity> = BTreeMap::new();
    let mut history: Vec<(usize, [u64; 4])> = Vec::new();
    let snapshot = |bank: &Vec<EpochDetector>, image: usize| {
        let s = bank[image].epochs();
        let (e, o) = (s.counters(Parity::Even), s.counters(Parity::Odd));
        (
            image,
            [
                e.sent + o.sent,
                e.delivered + o.delivered,
                e.received + o.received,
                e.completed + o.completed,
            ],
        )
    };
    while let Some((_, step)) = engine.pop() {
        let image = match &step {
            MsgStep::Send { id, from, .. } => {
                let tag = bank[*from].on_send();
                tags.insert(id.clone(), tag);
                *from
            }
            MsgStep::Deliver { id, to } => {
                bank[*to].on_receive(tags[id]);
                *to
            }
            MsgStep::Exec { id, to } => {
                bank[*to].on_complete(tags[id]);
                *to
            }
            MsgStep::Ack { id, from } => {
                bank[*from].on_delivered(tags[id]);
                *from
            }
        };
        history.push(snapshot(&bank, image));
    }
    let recorded = world.history();
    if history.len() != recorded.len() {
        return Err(format!(
            "DES replay produced {} snapshots, exploration recorded {}",
            history.len(),
            recorded.len()
        ));
    }
    for (k, (a, b)) in history.iter().zip(recorded).enumerate() {
        if a != b {
            return Err(format!(
                "counter history diverged at step {k}: DES {a:?} vs explored {b:?}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutation::Family;
    use crate::scenario::{parse_tree, Scenario};
    use crate::world::World;

    fn run_to_terminal(scenario: &Scenario, family: Family) -> World {
        let mut w = World::new(scenario, family, None);
        for _ in 0..10_000 {
            let Some(k) = w.enabled().first().cloned() else {
                return w;
            };
            w.step(&k).expect("clean protocol must not violate");
        }
        panic!("did not quiesce");
    }

    fn chain(images: usize, tree: &str) -> Scenario {
        Scenario { images, roots: vec![(0, parse_tree(tree).unwrap())], crash: None }
    }

    #[test]
    fn clean_terminal_traces_pass_all_oracles() {
        for family in Family::ALL {
            for s in [Scenario::empty(3), chain(3, "1"), chain(3, "1(2)"), chain(3, "1(2,2)")] {
                let w = run_to_terminal(&s, family);
                assert_eq!(w.done, Some(crate::world::Outcome::Terminated));
                let v = check_terminal(&w);
                assert!(v.is_none(), "{} × {}: {v:?}", s.name(), family.name());
            }
        }
    }

    #[test]
    fn corrupted_trace_is_flagged() {
        // Drop the Exec of the last message: every replay family must
        // notice the trace no longer quiesces or terminates.
        let w = run_to_terminal(&chain(2, "1"), Family::EpochStrict);
        let mut trace = complete_acks(w.msg_trace());
        let pos = trace
            .iter()
            .position(|s| matches!(s, MsgStep::Exec { .. }))
            .expect("trace has an exec");
        trace.remove(pos);
        assert!(
            wave_verdict(2, &trace, || EpochDetector::new(true), 1).is_err(),
            "strict replay must reject an incomplete trace"
        );
        assert!(centralized_verdict(2, &trace).is_err());
        assert!(barrier_one_way(2, &trace).is_err());
    }

    #[test]
    fn des_history_matches_recorded_history() {
        let w = run_to_terminal(&chain(3, "1(2)"), Family::EpochStrict);
        assert!(des_replay(&w).is_ok());
    }
}
