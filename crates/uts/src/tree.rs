//! UTS tree specifications and node expansion.
//!
//! The Unbalanced Tree Search benchmark (Olivier et al., LCPC'06) counts
//! the nodes of an implicit tree: each node's child count is a function of
//! its 20-byte descriptor, and each child's descriptor is a hash of the
//! parent's. Supported families:
//!
//! * **Geometric** — child count geometrically distributed with
//!   depth-dependent expectation `b(d)` under one of four shape
//!   functions (`LINEAR`, `EXPDEC`, `CYCLIC`, `FIXED`);
//! * **Binomial** — the root has `b0` children; every other node has
//!   `m` children with probability `q` and none otherwise.
//!
//! The standard workloads (T1, T1L, T1WL, T2, T3) are provided as
//! constructors; T1's published size (4,130,071 nodes) validates the
//! whole generator stack.

use crate::rng::UtsRng;

/// Shape function of the geometric branching factor (UTS `-a`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeoShape {
    /// `b(d) = b0 · (1 − d/gen_mx)` (UTS shape 0, the default).
    Linear,
    /// `b(d) = b0 · d^(−ln b0 / ln gen_mx)` (UTS shape 1).
    ExpDec,
    /// Cyclic variation with period `gen_mx` (UTS shape 2).
    Cyclic,
    /// Constant `b0` up to the depth limit (UTS shape 3).
    Fixed,
}

/// A tree family plus its parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TreeKind {
    /// Geometric tree (UTS `-t 1`).
    Geometric {
        /// Expected branching factor at the root (`-b`).
        b0: f64,
        /// Depth horizon (`-d`).
        gen_mx: usize,
        /// Branching-shape function (`-a`).
        shape: GeoShape,
    },
    /// Binomial tree (UTS `-t 0`).
    Binomial {
        /// Root child count (`-b`).
        b0: usize,
        /// Probability a non-root node is internal (`-q`).
        q: f64,
        /// Children of an internal non-root node (`-m`).
        m: usize,
    },
}

/// A complete workload description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeSpec {
    /// Family and parameters.
    pub kind: TreeKind,
    /// Root RNG seed (`-r`).
    pub seed: i32,
}

/// One implicit tree node: descriptor state plus its depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Node {
    /// The node's 20-byte splittable-RNG state.
    pub state: UtsRng,
    /// Depth below the root (root = 0).
    pub depth: u32,
}

impl TreeSpec {
    /// The published T1 workload: `-t 1 -a 3 -d 10 -b 4 -r 19`;
    /// 4,130,071 nodes, depth 10.
    pub fn t1() -> Self {
        TreeSpec {
            kind: TreeKind::Geometric { b0: 4.0, gen_mx: 10, shape: GeoShape::Fixed },
            seed: 19,
        }
    }

    /// T1L: `-t 1 -a 3 -d 13 -b 4 -r 29`; 102,181,082 nodes.
    pub fn t1l() -> Self {
        TreeSpec {
            kind: TreeKind::Geometric { b0: 4.0, gen_mx: 13, shape: GeoShape::Fixed },
            seed: 29,
        }
    }

    /// T1WL, the paper's workload (§IV-C3): geometric, expected children
    /// 4, depth horizon 18, seed 19. O(10¹¹) nodes — use the simulator or
    /// a scaled spec for anything but a supercomputer.
    pub fn t1wl() -> Self {
        TreeSpec {
            kind: TreeKind::Geometric { b0: 4.0, gen_mx: 18, shape: GeoShape::Fixed },
            seed: 19,
        }
    }

    /// T3: a binomial workload `-t 0 -b 2000 -q 0.124875 -m 8 -r 42`
    /// (4,112,897 nodes).
    pub fn t3() -> Self {
        TreeSpec { kind: TreeKind::Binomial { b0: 2000, q: 0.124_875, m: 8 }, seed: 42 }
    }

    /// A geometric FIXED-shape tree scaled by depth — the knob the
    /// benches use to fit paper-shaped workloads in laptop budgets.
    pub fn geo_fixed(b0: f64, gen_mx: usize, seed: i32) -> Self {
        TreeSpec { kind: TreeKind::Geometric { b0, gen_mx, shape: GeoShape::Fixed }, seed }
    }

    /// The root node.
    pub fn root(&self) -> Node {
        Node { state: UtsRng::init(self.seed), depth: 0 }
    }

    /// Number of children of `node` under this spec (`uts_numChildren`).
    pub fn num_children(&self, node: &Node) -> usize {
        match self.kind {
            TreeKind::Geometric { b0, gen_mx, shape } => {
                let depth = node.depth as usize;
                let b_i = if depth == 0 {
                    b0
                } else {
                    match shape {
                        GeoShape::Fixed => {
                            if depth < gen_mx {
                                b0
                            } else {
                                0.0
                            }
                        }
                        GeoShape::Linear => {
                            if depth < gen_mx {
                                b0 * (1.0 - depth as f64 / gen_mx as f64)
                            } else {
                                0.0
                            }
                        }
                        GeoShape::ExpDec => {
                            b0 * (depth as f64).powf(-b0.ln() / (gen_mx as f64).ln())
                        }
                        GeoShape::Cyclic => {
                            if depth > 5 * gen_mx {
                                0.0
                            } else {
                                let period = (depth % gen_mx) as f64 / gen_mx as f64;
                                b0.powf(1.0 - 2.0 * (0.5 - period).abs())
                            }
                        }
                    }
                };
                if b_i <= 0.0 {
                    return 0;
                }
                // Geometric draw: floor(ln(1−u) / ln(1−p)), p = 1/(1+b).
                let p = 1.0 / (1.0 + b_i);
                let u = UtsRng::to_prob(node.state.rand());
                ((1.0 - u).ln() / (1.0 - p).ln()).floor() as usize
            }
            TreeKind::Binomial { b0, q, m } => {
                if node.depth == 0 {
                    b0
                } else {
                    let u = UtsRng::to_prob(node.state.rand());
                    if u < q {
                        m
                    } else {
                        0
                    }
                }
            }
        }
    }

    /// The `i`-th child of `node`.
    pub fn child(&self, node: &Node, i: usize) -> Node {
        Node { state: node.state.spawn(i as i32), depth: node.depth + 1 }
    }

    /// Expands `node`, pushing its children onto `out`. Returns the child
    /// count.
    pub fn expand_into(&self, node: &Node, out: &mut Vec<Node>) -> usize {
        let n = self.num_children(node);
        out.reserve(n);
        for i in 0..n {
            out.push(self.child(node, i));
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_of_t1_has_children() {
        let spec = TreeSpec::t1();
        let n = spec.num_children(&spec.root());
        assert!(n > 0, "T1's root must branch");
    }

    #[test]
    fn fixed_shape_respects_depth_horizon() {
        let spec = TreeSpec::geo_fixed(4.0, 3, 19);
        let mut node = spec.root();
        // Descend to the horizon: nodes at depth ≥ gen_mx are leaves.
        for _ in 0..3 {
            node = spec.child(&node, 0);
        }
        assert_eq!(node.depth, 3);
        assert_eq!(spec.num_children(&node), 0);
    }

    #[test]
    fn binomial_root_has_exactly_b0_children() {
        let spec = TreeSpec { kind: TreeKind::Binomial { b0: 7, q: 0.1, m: 3 }, seed: 5 };
        assert_eq!(spec.num_children(&spec.root()), 7);
        // Non-root: either m or 0.
        let c = spec.child(&spec.root(), 0);
        let n = spec.num_children(&c);
        assert!(n == 0 || n == 3);
    }

    #[test]
    fn children_are_distinct_and_deterministic() {
        let spec = TreeSpec::t1();
        let root = spec.root();
        let a = spec.child(&root, 0);
        let b = spec.child(&root, 1);
        assert_ne!(a.state, b.state);
        assert_eq!(a, spec.child(&root, 0));
        assert_eq!(a.depth, 1);
    }

    #[test]
    fn expand_into_matches_num_children() {
        let spec = TreeSpec::t1();
        let root = spec.root();
        let mut v = Vec::new();
        let n = spec.expand_into(&root, &mut v);
        assert_eq!(n, v.len());
        assert_eq!(n, spec.num_children(&root));
    }
}
