//! Lock-free fabric traffic counters, used by benches and ablations.

use std::sync::atomic::{AtomicU64, Ordering};

/// Aggregate counters for one fabric instance. All methods are safe to
/// call concurrently; counts are monotone.
#[derive(Debug, Default)]
pub struct FabricStats {
    messages: AtomicU64,
    bytes: AtomicU64,
    backpressure_stalls: AtomicU64,
    delivered: AtomicU64,
    wire_drops: AtomicU64,
    wire_dups: AtomicU64,
    retries: AtomicU64,
    retries_exhausted: AtomicU64,
    dups_discarded: AtomicU64,
    acks: AtomicU64,
    heartbeats: AtomicU64,
    crash_drops: AtomicU64,
    posthumous_drops: AtomicU64,
}

impl FabricStats {
    pub(crate) fn note_send(&self, payload_bytes: usize) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(payload_bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn note_backpressure_stall(&self) {
        self.backpressure_stalls.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_delivered(&self) {
        self.delivered.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_wire_drop(&self) {
        self.wire_drops.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_wire_dup(&self) {
        self.wire_dups.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_retry_exhausted(&self) {
        self.retries_exhausted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_dup_discarded(&self) {
        self.dups_discarded.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_ack(&self) {
        self.acks.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_heartbeat(&self) {
        self.heartbeats.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_crash_drop(&self) {
        self.crash_drops.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_posthumous_drop(&self) {
        self.posthumous_drops.fetch_add(1, Ordering::Relaxed);
    }

    /// Total logical messages sent through the fabric (excludes protocol
    /// acks and retransmissions).
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Total payload bytes sent through the fabric.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Total sender stalls caused by inbox backpressure.
    pub fn backpressure_stalls(&self) -> u64 {
        self.backpressure_stalls.load(Ordering::Relaxed)
    }

    /// Logical messages surfaced to receivers (each exactly once). The
    /// no-progress watchdog folds this into its progress fingerprint.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// Wire transmissions destroyed by fault injection.
    pub fn wire_drops(&self) -> u64 {
        self.wire_drops.load(Ordering::Relaxed)
    }

    /// Wire transmissions duplicated by fault injection.
    pub fn wire_dups(&self) -> u64 {
        self.wire_dups.load(Ordering::Relaxed)
    }

    /// Retransmissions performed by the reliable-delivery layer.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Messages abandoned after the retry budget was exhausted.
    pub fn retries_exhausted(&self) -> u64 {
        self.retries_exhausted.load(Ordering::Relaxed)
    }

    /// Duplicate deliveries filtered out by receiver-side dedup.
    pub fn dups_discarded(&self) -> u64 {
        self.dups_discarded.load(Ordering::Relaxed)
    }

    /// Acknowledgements sent by receivers.
    pub fn acks(&self) -> u64 {
        self.acks.load(Ordering::Relaxed)
    }

    /// Heartbeat frames emitted by the failure-detection layer.
    pub fn heartbeats(&self) -> u64 {
        self.heartbeats.load(Ordering::Relaxed)
    }

    /// Wire transmissions destroyed because an endpoint had fail-stopped
    /// (a dead image neither injects nor receives).
    pub fn crash_drops(&self) -> u64 {
        self.crash_drops.load(Ordering::Relaxed)
    }

    /// Frames discarded by the incarnation filter: traffic from a peer
    /// already confirmed dead at that incarnation.
    pub fn posthumous_drops(&self) -> u64 {
        self.posthumous_drops.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = FabricStats::default();
        s.note_send(10);
        s.note_send(5);
        s.note_backpressure_stall();
        assert_eq!(s.messages(), 2);
        assert_eq!(s.bytes(), 15);
        assert_eq!(s.backpressure_stalls(), 1);
    }
}
