//! Fail-stop failure tolerance, end to end on the threaded runtime: an
//! image dies (scheduled crash fault or uncaught panic) and every
//! survivor's launch returns `RuntimeError::ImageFailed` — never a hang,
//! never `Ok` — with the death identified, the detection latency
//! measured, and each survivor's parting construct named.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use caf_core::config::RuntimeConfig;
use caf_core::failure::FailureParams;
use caf_core::fault::{FaultPlan, RetryPolicy};
use caf_runtime::{Runtime, RuntimeError};

/// Heartbeat detection is wall-clock sensitive: several of these tests
/// launching 4+ image threads each *concurrently* can oversubscribe the
/// host enough to starve a healthy image past the aggressive detection
/// horizon, naming the wrong victim. Serialize them.
static SERIAL: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Fast heartbeats but *wider* silence windows than
/// [`FailureParams::aggressive`]: a healthy image that the host
/// scheduler stalls for a few milliseconds must not be confirmed dead,
/// or the detector names the wrong victim. 25 ms of slack per window
/// keeps detection well under the watchdog bound while tolerating
/// realistic CI jitter.
fn tolerant_params() -> FailureParams {
    FailureParams {
        heartbeat_period: Duration::from_micros(500),
        suspect_after: Duration::from_millis(25),
        confirm_after: Duration::from_millis(25),
    }
}

fn failure_cfg(seed: u64) -> RuntimeConfig {
    let mut cfg = RuntimeConfig::testing();
    cfg.seed = seed;
    cfg.retry = RetryPolicy::aggressive();
    cfg.failure = Some(tolerant_params());
    cfg
}

/// A crash fault fired mid-`finish` is confirmed by heartbeat timeout and
/// every survivor aborts with a full report instead of hanging on the
/// termination allreduce.
#[test]
fn crash_during_finish_fails_every_survivor() {
    let _serial = serialize();
    let mut cfg = failure_cfg(0xFA11);
    cfg.faults = Some(FaultPlan::none(cfg.seed).with_crash(1, 40));
    let t0 = Instant::now();
    let out: Result<Vec<()>, RuntimeError> = Runtime::try_launch(4, cfg, |img| {
        let w = img.world();
        let counters = img.coarray(&w, 1, 0i64);
        img.finish(&w, |img| {
            // Enough traffic that image 1's crash point (wire seq 40)
            // fires while the block is open on every image.
            for round in 0..200 {
                let target = img.image((img.id().index() + 1 + round % 3) % img.num_images());
                let c = counters.clone();
                img.spawn(target, move |peer| {
                    c.with_local(peer.id(), |seg| seg[0] += 1);
                });
            }
        });
        unreachable!("finish with a crashed member must never complete");
    });
    let elapsed = t0.elapsed();
    let report = match out {
        Err(RuntimeError::ImageFailed(r)) => r,
        other => panic!("crashed member must fail the launch, got {other:?}"),
    };
    assert_eq!(report.image, 1, "the scheduled victim must be named: {report}");
    assert_eq!(report.incarnation, 1);
    let latency = report.detection_latency.expect("fabric saw the crash fire");
    let horizon = tolerant_params().detection_horizon();
    assert!(
        latency < horizon + Duration::from_secs(2),
        "detection latency {latency:?} beyond horizon {horizon:?}"
    );
    assert!(
        elapsed < horizon * 20 + Duration::from_secs(5),
        "failure detection took {elapsed:?} — this is supposed to beat a watchdog"
    );
    assert!(report.panic.is_none(), "a crash fault is not a panic");
    assert!(report.crash_drops > 0, "the dead image's traffic must be destroyed: {report}");
    // Every survivor (not the victim) files an observation, each from a
    // real blocking construct.
    let who: Vec<usize> = report.observers.iter().map(|o| o.image).collect();
    assert_eq!(who, vec![0, 2, 3], "all survivors and only survivors: {report}");
    for obs in &report.observers {
        assert!(
            [
                "finish",
                "barrier",
                "collective",
                "send",
                "event_wait",
                "copy",
                "cofence",
                "shutdown"
            ]
            .contains(&obs.construct),
            "unknown construct {:?}",
            obs.construct
        );
    }
}

/// An uncaught panic in the image closure is caught at the image
/// boundary, translated into the same fail-stop verdict, and carries the
/// panic message. Shutdown stays idempotent: survivors drain and join.
#[test]
fn panicking_image_becomes_image_failed() {
    let _serial = serialize();
    let cfg = failure_cfg(0xFA12);
    let out: Result<Vec<()>, RuntimeError> = Runtime::try_launch(3, cfg, |img| {
        let w = img.world();
        if img.id().index() == 2 {
            panic!("deliberate test panic");
        }
        img.barrier(&w);
    });
    let report = match out {
        Err(RuntimeError::ImageFailed(r)) => r,
        other => panic!("panicking image must fail the launch, got {other:?}"),
    };
    assert_eq!(report.image, 2);
    let msg = report.panic.as_deref().expect("panic message captured");
    assert!(msg.contains("deliberate test panic"), "got {msg:?}");
    let who: Vec<usize> = report.observers.iter().map(|o| o.image).collect();
    assert_eq!(who, vec![0, 1], "both survivors observe the death: {report}");
}

/// Without failure detection configured, a panic propagates exactly as
/// before — the fail-stop boundary must not change existing behavior.
#[test]
#[should_panic(expected = "plain panic propagates")]
fn panic_propagates_without_failure_detection() {
    let _serial = serialize();
    let _ = Runtime::launch(2, RuntimeConfig::testing(), |img| {
        // Every image panics (a lone survivor would block in the final
        // shutdown barrier — there is nothing watching in this config).
        panic!("plain panic propagates from image {}", img.id().index());
    });
}

/// The same crash is detected deterministically across seeds: every run
/// fails (never hangs, never returns Ok) and names the same victim.
#[test]
fn crash_verdict_is_stable_across_seeds() {
    let _serial = serialize();
    for seed in [1u64, 2, 3, 0xDEAD, 0xBEEF] {
        let mut cfg = failure_cfg(seed);
        cfg.faults = Some(FaultPlan::none(seed).with_crash(0, 25));
        let out: Result<Vec<()>, RuntimeError> = Runtime::try_launch(3, cfg, |img| {
            let w = img.world();
            let counters = img.coarray(&w, 1, 0i64);
            img.finish(&w, |img| {
                for _ in 0..100 {
                    let target = img.image((img.id().index() + 1) % img.num_images());
                    let c = counters.clone();
                    img.spawn(target, move |peer| {
                        c.with_local(peer.id(), |seg| seg[0] += 1);
                    });
                }
            });
            unreachable!("finish with a crashed member must never complete");
        });
        match out {
            Err(RuntimeError::ImageFailed(r)) => {
                assert_eq!(r.image, 0, "seed {seed}: wrong victim: {r}");
            }
            other => panic!("seed {seed}: expected ImageFailed, got {other:?}"),
        }
    }
}

/// A crashed image also poisons *blocking event waits* — a survivor
/// parked in `event_wait` on a notification the dead image would have
/// sent unblocks with the failure verdict.
#[test]
fn event_wait_on_a_dead_notifier_unblocks() {
    let _serial = serialize();
    let mut cfg = failure_cfg(0xFA13);
    // Image 1 crashes almost immediately (before its notify's wire
    // transmission can be delivered — seq 0 arms on first traffic).
    cfg.faults = Some(FaultPlan::none(cfg.seed).with_crash(1, 0));
    let waited = AtomicUsize::new(0);
    let out: Result<Vec<()>, RuntimeError> = Runtime::try_launch(2, cfg, |img| {
        let ev = img.event();
        if img.id().index() == 0 {
            waited.fetch_add(1, Ordering::SeqCst);
            img.event_wait(ev); // nobody will ever notify
            unreachable!("the notifier is dead");
        }
        // Image 1: generate traffic until the crash point fires.
        loop {
            let e = img.event();
            img.spawn(img.image(0), move |_| {});
            img.event_try(e);
            std::thread::yield_now();
        }
    });
    assert_eq!(waited.load(Ordering::SeqCst), 1);
    match out {
        Err(RuntimeError::ImageFailed(r)) => {
            assert_eq!(r.image, 1);
            let obs: Vec<_> = r.observers.iter().map(|o| (o.image, o.construct)).collect();
            assert!(
                obs.contains(&(0, "event_wait")),
                "survivor must report the construct it was parked in: {r}"
            );
        }
        other => panic!("expected ImageFailed, got {other:?}"),
    }
}
