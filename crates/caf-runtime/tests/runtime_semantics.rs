//! End-to-end semantics tests of the threaded CAF 2.0 runtime: events,
//! asynchronous copies at every endpoint combination, collectives,
//! function shipping, finish (including the transitive-spawn case of
//! paper Fig. 5), cofence, and async collectives — under both comm modes
//! and with latency and reordering enabled.

use caf_runtime::{
    AsyncCollEvents, CommMode, CopyEvents, NetworkModel, Pass, Runtime, RuntimeConfig, TeamRank,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

fn cfg_fast() -> RuntimeConfig {
    RuntimeConfig::testing()
}

fn cfg_threaded() -> RuntimeConfig {
    RuntimeConfig { comm_mode: CommMode::DedicatedThread, ..RuntimeConfig::testing() }
}

fn cfg_latency() -> RuntimeConfig {
    RuntimeConfig {
        comm_mode: CommMode::DedicatedThread,
        network: NetworkModel { latency: Duration::from_micros(300), ..NetworkModel::instant() },
        non_fifo: true,
        ..RuntimeConfig::default()
    }
}

// ----------------------------------------------------------------------
// Events
// ----------------------------------------------------------------------

#[test]
fn local_event_notify_wait() {
    Runtime::launch(1, cfg_fast(), |img| {
        let ev = img.event();
        img.event_notify(ev);
        img.event_wait(ev); // must not block
        assert!(!img.event_try(ev));
    });
}

#[test]
fn remote_event_notification_via_coevent() {
    Runtime::launch(4, cfg_fast(), |img| {
        let ce = img.coevent();
        let me = img.id();
        let n = img.num_images();
        // Everyone notifies its right neighbour's cell, then waits on its
        // own: a ring handshake purely through events.
        let right = img.image((me.index() + 1) % n);
        img.event_notify(ce.on(right));
        img.event_wait(ce.on(me));
    });
}

#[test]
fn event_counting_semantics_accumulate() {
    Runtime::launch(2, cfg_fast(), |img| {
        let ce = img.coevent();
        if img.id().index() == 0 {
            for _ in 0..5 {
                img.event_notify(ce.on(img.image(1)));
            }
        } else {
            for _ in 0..5 {
                img.event_wait(ce.on(img.id()));
            }
            assert!(!img.event_try(ce.on(img.id())));
        }
        img.barrier(&img.world());
    });
}

// ----------------------------------------------------------------------
// copy_async flows
// ----------------------------------------------------------------------

#[test]
fn copy_local_to_remote_delivers() {
    for cfg in [cfg_fast(), cfg_threaded(), cfg_latency()] {
        Runtime::launch(3, cfg, |img| {
            let w = img.world();
            let a = img.coarray(&w, 8, 0u64);
            if img.id().index() == 0 {
                a.with_local(img.id(), |seg| {
                    seg.iter_mut().enumerate().for_each(|(i, v)| *v = i as u64 + 1)
                });
                let ce = img.coevent();
                let dst = img.image(1);
                img.copy_async(
                    a.slice(dst, 0..8),
                    a.slice(img.id(), 0..8),
                    CopyEvents::on_dest(ce.on(dst)),
                );
            }
            if img.id().index() == 1 {
                let ce = img.coevent();
                img.event_wait(ce.on(img.id()));
                assert_eq!(a.read(img.id(), 0..8), (1..=8).collect::<Vec<u64>>());
            } else {
                let _ = img.coevent(); // SPMD-matched coevent allocation
            }
            img.barrier(&w);
        });
    }
}

#[test]
fn copy_remote_get_into_local_array() {
    Runtime::launch(2, cfg_threaded(), |img| {
        let w = img.world();
        let a = img.coarray(&w, 4, 0u32);
        if img.id().index() == 1 {
            a.with_local(img.id(), |seg| seg.copy_from_slice(&[9, 8, 7, 6]));
        }
        img.barrier(&w);
        if img.id().index() == 0 {
            let dst = caf_runtime::LocalArray::new(vec![0u32; 4]);
            let op = img.copy_async_to(&dst, 0, a.slice(img.image(1), 0..4), CopyEvents::none());
            img.wait_local_data(&op); // get: data readable at LDC
            assert_eq!(dst.read(0..4), vec![9, 8, 7, 6]);
        }
        img.barrier(&w);
    });
}

#[test]
fn copy_third_party_transfers_between_remotes() {
    Runtime::launch(3, cfg_threaded(), |img| {
        let w = img.world();
        let a = img.coarray(&w, 2, 0i32);
        if img.id().index() == 1 {
            a.with_local(img.id(), |seg| seg.copy_from_slice(&[5, 6]));
        }
        img.barrier(&w);
        if img.id().index() == 0 {
            // Initiator 0 copies from image 1 to image 2.
            let op = img.copy_async(
                a.slice(img.image(2), 0..2),
                a.slice(img.image(1), 0..2),
                CopyEvents::none(),
            );
            img.wait_local_op(&op);
        }
        img.barrier(&w);
        if img.id().index() == 2 {
            assert_eq!(a.read(img.id(), 0..2), vec![5, 6]);
        }
    });
}

#[test]
fn predicated_copy_waits_for_pre_event() {
    Runtime::launch(2, cfg_threaded(), |img| {
        let w = img.world();
        let a = img.coarray(&w, 1, 0u8);
        let ce = img.coevent();
        if img.id().index() == 0 {
            let pre = img.event();
            a.with_local(img.id(), |seg| seg[0] = 42);
            img.copy_async(
                a.slice(img.image(1), 0..1),
                a.slice(img.id(), 0..1),
                CopyEvents { pre: Some(pre), dest: Some(ce.on(img.image(1))), src: None },
            );
            // The copy must not proceed yet; give it a chance to misfire.
            std::thread::sleep(Duration::from_millis(30));
            img.event_notify(pre);
        } else {
            img.event_wait(ce.on(img.id()));
            assert_eq!(a.read(img.id(), 0..1), vec![42]);
        }
        img.barrier(&w);
    });
}

#[test]
fn get_and_put_blocking_round_trip() {
    Runtime::launch(3, cfg_latency(), |img| {
        let w = img.world();
        let a = img.coarray(&w, 4, 0u64);
        let me = img.id().index() as u64;
        a.with_local(img.id(), |seg| seg.fill(me + 1));
        img.barrier(&w);
        let peer = img.image((img.id().index() + 1) % 3);
        let got = img.get_blocking(a.slice(peer, 0..4));
        assert_eq!(got, vec![(peer.index() as u64) + 1; 4]);
        img.barrier(&w);
        // Everybody puts its rank into slot (rank) of image 0.
        img.put_blocking(a.slice(img.image(0), img.id().index()..img.id().index() + 1), vec![me]);
        img.barrier(&w);
        if img.id().index() == 0 {
            assert_eq!(a.read(img.id(), 0..3), vec![0, 1, 2]);
        }
    });
}

// ----------------------------------------------------------------------
// Cofence
// ----------------------------------------------------------------------

#[test]
fn cofence_releases_source_buffer() {
    Runtime::launch(2, cfg_threaded(), |img| {
        let w = img.world();
        let a = img.coarray(&w, 1, 0u64);
        img.finish(&w, |img| {
            if img.id().index() == 0 {
                let src = caf_runtime::LocalArray::new(vec![7u64]);
                img.copy_async_from(a.slice(img.image(1), 0..1), &src, 0..1, CopyEvents::none());
                assert_eq!(img.pending_implicit_ops(), 1);
                img.cofence();
                assert_eq!(img.pending_implicit_ops(), 0);
                // Source is snapshot-complete: safe to reuse.
                src.write(0, &[99]);
            }
        });
        if img.id().index() == 1 {
            assert_eq!(a.read(img.id(), 0..1), vec![7]);
        }
    });
}

#[test]
fn directional_cofence_lets_writes_pass() {
    Runtime::launch(2, cfg_threaded(), |img| {
        let w = img.world();
        let a = img.coarray(&w, 2, 0u64);
        img.finish(&w, |img| {
            if img.id().index() == 0 {
                // A get (local write class) and a put (local read class).
                let dstbuf = caf_runtime::LocalArray::new(vec![0u64]);
                img.copy_async_to(&dstbuf, 0, a.slice(img.image(1), 0..1), CopyEvents::none());
                let srcbuf = caf_runtime::LocalArray::new(vec![3u64]);
                img.copy_async_from(a.slice(img.image(1), 1..2), &srcbuf, 0..1, CopyEvents::none());
                assert_eq!(img.pending_implicit_ops(), 2);
                // DOWNWARD=WRITE: the get may pass; the put must be LDC.
                img.cofence_dir(Pass::Writes, Pass::None);
                assert!(img.pending_implicit_ops() <= 1);
                img.cofence(); // full fence drains everything
                assert_eq!(img.pending_implicit_ops(), 0);
            }
        });
    });
}

// ----------------------------------------------------------------------
// Collectives
// ----------------------------------------------------------------------

#[test]
fn collectives_compute_correct_values() {
    for n in [1usize, 2, 3, 5, 8] {
        Runtime::launch(n, cfg_fast(), |img| {
            let w = img.world();
            let me = img.id().index();
            let rank = TeamRank(me);

            // allreduce sum of ranks
            let sum = img.allreduce(&w, me as i64, |a, b| a + b);
            assert_eq!(sum, (0..n as i64).sum::<i64>());

            // broadcast from the last rank
            let root = TeamRank(n - 1);
            let v = img.broadcast(&w, root, (me == n - 1).then_some(me * 10));
            assert_eq!(v, (n - 1) * 10);

            // reduce max to rank 0
            let m = img.reduce(&w, TeamRank(0), me as u64, |a, b| a.max(b));
            if me == 0 {
                assert_eq!(m, Some((n - 1) as u64));
            } else {
                assert_eq!(m, None);
            }

            // gather / allgather
            let g = img.gather(&w, TeamRank(0), me);
            if me == 0 {
                assert_eq!(g, Some((0..n).collect::<Vec<_>>()));
            }
            assert_eq!(img.allgather(&w, me * 2), (0..n).map(|k| k * 2).collect::<Vec<_>>());

            // scatter
            let mine =
                img.scatter(&w, TeamRank(0), (me == 0).then(|| (0..n).map(|k| k * 3).collect()));
            assert_eq!(mine, me * 3);

            // alltoall: send (me, k) to k; receive (k, me).
            let out: Vec<(usize, usize)> = (0..n).map(|k| (me, k)).collect();
            let got = img.alltoall(&w, out);
            assert_eq!(got, (0..n).map(|k| (k, me)).collect::<Vec<_>>());

            // inclusive scan of ones = rank + 1
            let s = img.scan(&w, 1u64, |a, b| a + b);
            assert_eq!(s, me as u64 + 1);

            let _ = rank;
        });
    }
}

#[test]
fn sample_sort_globally_orders() {
    let n = 4;
    let runs = Runtime::launch(n, cfg_fast(), |img| {
        let w = img.world();
        // Deterministic pseudo-random local data, distinct across images.
        let mine: Vec<u64> = (0..50)
            .map(|i| caf_core::rng::splitmix64_hash((img.id().index() * 1000 + i) as u64) % 1000)
            .collect();
        let run = img.sort(&w, mine);
        assert!(run.windows(2).all(|p| p[0] <= p[1]), "local run sorted");
        run
    });
    // Runs concatenated in rank order are globally sorted and a
    // permutation of the input.
    let all: Vec<u64> = runs.concat();
    assert!(all.windows(2).all(|p| p[0] <= p[1]), "global order across ranks");
    assert_eq!(all.len(), n * 50);
}

#[test]
fn team_split_isolates_collectives() {
    Runtime::launch(6, cfg_fast(), |img| {
        let w = img.world();
        let me = img.id().index();
        let color = (me % 2) as u64;
        let sub = img.team_split(&w, color, me as u64);
        assert_eq!(sub.size(), 3);
        // Sum of ranks within my parity class only.
        let sum = img.allreduce(&sub, me as i64, |a, b| a + b);
        let expect: i64 = (0..6i64).filter(|k| k % 2 == me as i64 % 2).sum();
        assert_eq!(sum, expect);
        // Ranks within the sub-team follow the key order (ascending rank).
        let my_sub_rank = sub.rank_of(img.id()).unwrap();
        assert_eq!(my_sub_rank.0, me / 2);
        img.barrier(&w);
    });
}

// ----------------------------------------------------------------------
// Finish & function shipping
// ----------------------------------------------------------------------

#[test]
fn finish_covers_transitive_spawns_fig5() {
    // Paper Fig. 5: p ships f1 to q, which ships f2 to r. A barrier would
    // miss f2; finish must not.
    for cfg in [cfg_fast(), cfg_latency()] {
        Runtime::launch(3, cfg, |img| {
            let w = img.world();
            let a = img.coarray(&w, 1, 0u64);
            img.finish(&w, |img| {
                if img.id().index() == 0 {
                    let a1 = a.clone();
                    img.spawn(img.image(1), move |q| {
                        let a2 = a1.clone();
                        // Transitive spawn with extra work to stretch the
                        // race window.
                        std::thread::sleep(Duration::from_millis(5));
                        q.spawn(q.image(2), move |r| {
                            std::thread::sleep(Duration::from_millis(5));
                            a2.with_local(r.id(), |seg| seg[0] = 77);
                        });
                    });
                }
            });
            // After end finish, f2's effect must be globally visible.
            if img.id().index() == 2 {
                assert_eq!(a.read(img.id(), 0..1), vec![77]);
            }
            img.barrier(&w);
        });
    }
}

#[test]
fn finish_handles_spawn_storms() {
    let n = 4;
    let counts = Runtime::launch(n, cfg_latency(), |img| {
        let w = img.world();
        let hits = img.coarray(&w, 1, 0u64);
        img.finish(&w, |img| {
            for i in 0..50 {
                let t = img.image((img.id().index() + i + 1) % n);
                let h = hits.clone();
                img.spawn(t, move |peer| {
                    h.with_local(peer.id(), |seg| seg[0] += 1);
                });
            }
        });
        hits.read(img.id(), 0..1)[0]
    });
    assert_eq!(counts.iter().sum::<u64>(), (4 * 50) as u64);
}

#[test]
fn nested_finish_blocks_work() {
    Runtime::launch(2, cfg_fast(), |img| {
        let w = img.world();
        let a = img.coarray(&w, 2, 0u64);
        img.finish(&w, |img| {
            let a1 = a.clone();
            let peer = img.image((img.id().index() + 1) % 2);
            img.spawn(peer, move |p| {
                a1.with_local(p.id(), |seg| seg[0] += 1);
            });
            img.finish(&w, |img| {
                let a2 = a.clone();
                img.spawn(peer, move |p| {
                    a2.with_local(p.id(), |seg| seg[1] += 1);
                });
            });
            // Inner finish guarantees the inner spawn landed.
            assert_eq!(a.read(img.id(), 1..2), vec![1]);
        });
        assert_eq!(a.read(img.id(), 0..2), vec![1, 1]);
    });
}

#[test]
fn spawn_notify_signals_completion() {
    Runtime::launch(2, cfg_fast(), |img| {
        if img.id().index() == 0 {
            let done = img.event();
            let flag = std::sync::Arc::new(AtomicUsize::new(0));
            let f2 = flag.clone();
            img.spawn_notify(img.image(1), done, move |_peer| {
                f2.store(1, Ordering::SeqCst);
            });
            img.event_wait(done);
            assert_eq!(flag.load(Ordering::SeqCst), 1);
        }
        img.barrier(&img.world());
    });
}

#[test]
fn finish_waves_bounded_by_chain_length() {
    // L = 2 (spawn chain of two) → at most 3 waves with the strict
    // detector.
    Runtime::launch(3, cfg_fast(), |img| {
        let w = img.world();
        img.finish(&w, |img| {
            if img.id().index() == 0 {
                img.spawn(img.image(1), move |q| {
                    q.spawn(q.image(2), move |_r| {});
                });
            }
        });
        assert!(
            img.last_finish_waves() <= 3,
            "L=2 must need ≤3 waves, took {}",
            img.last_finish_waves()
        );
    });
}

// ----------------------------------------------------------------------
// Asynchronous collectives
// ----------------------------------------------------------------------

#[test]
fn broadcast_async_replicates_root_segment() {
    for n in [2usize, 3, 5, 8] {
        Runtime::launch(n, cfg_threaded(), |img| {
            let w = img.world();
            let a = img.coarray(&w, 4, 0u64);
            if img.id().index() == 0 {
                a.with_local(img.id(), |seg| seg.copy_from_slice(&[4, 3, 2, 1]));
            }
            img.finish(&w, |img| {
                img.broadcast_async(&w, &a, 0..4, TeamRank(0), AsyncCollEvents::none());
            });
            assert_eq!(a.read(img.id(), 0..4), vec![4, 3, 2, 1]);
        });
    }
}

#[test]
fn broadcast_async_events_fire_in_order() {
    Runtime::launch(4, cfg_threaded(), |img| {
        let w = img.world();
        let a = img.coarray(&w, 1, 0u64);
        if img.id().index() == 0 {
            a.with_local(img.id(), |seg| seg[0] = 11);
        }
        let src_e = img.event();
        let op_e = img.event();
        let op = img.broadcast_async(
            &w,
            &a,
            0..1,
            TeamRank(0),
            AsyncCollEvents { src: Some(src_e), local_op: Some(op_e) },
        );
        img.event_wait(src_e); // local data completion
        assert!(op.local_data_complete());
        assert_eq!(a.read(img.id(), 0..1), vec![11]);
        img.event_wait(op_e); // local operation completion
        assert!(op.local_op_complete());
        img.barrier(&w);
    });
}

#[test]
fn allreduce_async_sum_matches_sync() {
    Runtime::launch(5, cfg_threaded(), |img| {
        let w = img.world();
        let me = img.id().index() as i64;
        let handle = img.allreduce_async_sum(&w, me * me, AsyncCollEvents::none());
        // Overlap: do a sync collective while the async one progresses.
        let sync_sum = img.allreduce(&w, me, |a, b| a + b);
        assert_eq!(sync_sum, 1 + 2 + 3 + 4);
        let async_sum = img.async_result(&handle);
        assert_eq!(async_sum, 1 + 4 + 9 + 16);
        img.barrier(&w);
    });
}

#[test]
fn barrier_async_completes() {
    Runtime::launch(3, cfg_threaded(), |img| {
        let w = img.world();
        let h = img.barrier_async(&w, AsyncCollEvents::none());
        let _ = img.async_result(&h);
        img.barrier(&w);
    });
}

#[test]
fn broadcast_async_from_nonzero_root() {
    Runtime::launch(5, cfg_threaded(), |img| {
        let w = img.world();
        let a = img.coarray(&w, 2, 0u64);
        if img.id().index() == 3 {
            a.with_local(img.id(), |seg| seg.copy_from_slice(&[21, 12]));
        }
        img.finish(&w, |img| {
            img.broadcast_async(&w, &a, 0..2, TeamRank(3), AsyncCollEvents::none());
        });
        assert_eq!(a.read(img.id(), 0..2), vec![21, 12]);
    });
}

#[test]
fn broadcast_async_on_subteam_does_not_leak() {
    Runtime::launch(6, cfg_threaded(), |img| {
        let w = img.world();
        let me = img.id().index();
        let sub = img.team_split(&w, (me % 2) as u64, me as u64);
        let a = img.coarray(&w, 1, 0u64);
        // Each parity class broadcasts a different value from its rank-0.
        let val = if me % 2 == 0 { 100 } else { 200 };
        if sub.rank_of(img.id()) == Some(TeamRank(0)) {
            a.with_local(img.id(), |seg| seg[0] = val);
        }
        img.finish(&sub, |img| {
            img.broadcast_async(&sub, &a, 0..1, TeamRank(0), AsyncCollEvents::none());
        });
        assert_eq!(a.read(img.id(), 0..1), vec![val], "subteam broadcast leaked");
        img.barrier(&w);
    });
}

#[test]
fn overlapping_async_reductions_stay_separate() {
    Runtime::launch(4, cfg_threaded(), |img| {
        let w = img.world();
        let me = img.id().index() as i64;
        // Three reductions in flight at once, consumed out of order.
        let h1 = img.allreduce_async_sum(&w, me, AsyncCollEvents::none());
        let h2 = img.allreduce_async_sum(&w, me * 10, AsyncCollEvents::none());
        let h3 = img.allreduce_async_sum(&w, 1, AsyncCollEvents::none());
        assert_eq!(img.async_result(&h3), 4);
        assert_eq!(img.async_result(&h1), 6);
        assert_eq!(img.async_result(&h2), 60);
        img.barrier(&w);
    });
}

#[test]
fn broadcast_async_rounds_back_to_back() {
    // Repeated async broadcasts on the same coarray: each round's data
    // fully replaces the previous (finish separates rounds).
    Runtime::launch(4, cfg_threaded(), |img| {
        let w = img.world();
        let a = img.coarray(&w, 1, 0u64);
        for round in 1..=5u64 {
            if img.id().index() == 0 {
                a.with_local(img.id(), |seg| seg[0] = round * 7);
            }
            img.finish(&w, |img| {
                img.broadcast_async(&w, &a, 0..1, TeamRank(0), AsyncCollEvents::none());
            });
            assert_eq!(a.read(img.id(), 0..1), vec![round * 7], "round {round}");
            // A fast root may start the next round's broadcast (which
            // overwrites the slot) before a slow image performs the read
            // above; hold everyone here until all reads are done.
            img.barrier(&w);
        }
    });
}

// ----------------------------------------------------------------------
// Flow control
// ----------------------------------------------------------------------

/// Regression: mutual spawn storms under a tiny inbox capacity must not
/// deadlock. Acknowledgements are reply-class traffic exempt from flow
/// control (the GASNet request/reply rule); with them throttled, image A
/// blocks sending a spawn into B's full inbox while B blocks sending A's
/// ack into A's full inbox — a cycle this test used to hit.
#[test]
fn backpressure_does_not_deadlock_ack_cycles() {
    let cfg = RuntimeConfig {
        comm_mode: CommMode::DedicatedThread,
        network: NetworkModel {
            inbox_capacity: Some(8),
            backpressure_stall: Duration::from_micros(20),
            ..NetworkModel::instant()
        },
        ..RuntimeConfig::default()
    };
    let n = 4;
    let counts = Runtime::launch(n, cfg, |img| {
        let w = img.world();
        let hits = img.coarray(&w, 1, 0u64);
        img.finish(&w, |img| {
            for i in 0..200 {
                let t = img.image((img.id().index() + 1 + i % (n - 1)) % n);
                let h = hits.clone();
                img.spawn(t, move |peer| {
                    h.with_local(peer.id(), |seg| seg[0] += 1);
                });
            }
        });
        hits.read(img.id(), 0..1)[0]
    });
    assert_eq!(counts.iter().sum::<u64>(), (n * 200) as u64);
}

// ----------------------------------------------------------------------
// Memory-model hooks
// ----------------------------------------------------------------------

#[test]
fn implicit_ops_visible_to_detector() {
    Runtime::launch(2, cfg_threaded(), |img| {
        let w = img.world();
        let a = img.coarray(&w, 1, 0u64);
        img.finish(&w, |img| {
            if img.id().index() == 0 {
                img.put_async(a.slice(img.image(1), 0..1), vec![1]);
                // At least one message outstanding inside the finish.
                assert!(img.finish_local_imbalance().unwrap_or(0) >= 1);
            }
        });
        if img.id().index() == 1 {
            assert_eq!(a.read(img.id(), 0..1), vec![1]);
        }
        img.barrier(&w);
    });
}
