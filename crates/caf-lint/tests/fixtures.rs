//! Golden regression over the shipped plan corpus: the rendered
//! diagnostics for every fixture under `tests/fixtures/lints/` and every
//! example under `examples/plans/` must match their committed `.golden`
//! byte for byte (the goldens are exactly what `caf-lint check` prints).

use std::fs;
use std::path::{Path, PathBuf};

use caf_lint::{lint, parse, render};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn check_dir(dir: &str, want_errors: Option<bool>) -> usize {
    let mut plans: Vec<PathBuf> = fs::read_dir(repo_root().join(dir))
        .unwrap_or_else(|e| panic!("reading {dir}: {e}"))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "plan"))
        .collect();
    plans.sort();
    for path in &plans {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let src = fs::read_to_string(path).unwrap();
        let plan = parse(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let diags = lint(&plan).unwrap_or_else(|e| panic!("{name}: {e}"));
        let golden_path = path.with_extension("golden");
        let golden = fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("{name}: missing golden ({e})"));
        let got = render(&name, &diags);
        assert_eq!(got, golden, "{name}: rendered diagnostics drifted from the golden");
        if let Some(expect) = want_errors {
            assert_eq!(
                diags.iter().any(|d| d.is_error()),
                expect,
                "{name}: error expectation flipped"
            );
        }
    }
    plans.len()
}

#[test]
fn example_plan_goldens_match_and_stay_error_free() {
    assert_eq!(check_dir("examples/plans", Some(false)), 5);
}

#[test]
fn fixture_goldens_match() {
    // Most fixtures carry errors; the two "mild" fence fixtures carry
    // warnings only — the goldens pin both shapes exactly.
    assert!(check_dir("tests/fixtures/lints", None) >= 8);
}

#[test]
fn every_fixture_is_caught_somehow() {
    for entry in fs::read_dir(repo_root().join("tests/fixtures/lints")).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|x| x != "plan") {
            continue;
        }
        let plan = parse(&fs::read_to_string(&path).unwrap()).unwrap();
        let diags = lint(&plan).unwrap();
        assert!(!diags.is_empty(), "{}: seeded misuse went completely undetected", path.display());
    }
}
