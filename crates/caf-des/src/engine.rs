//! The discrete-event engine: a deterministic time-ordered event queue.
//!
//! Models drive the loop themselves (`while let Some((t, e)) = engine.pop()`),
//! which keeps the engine free of callback lifetimes and lets a model hold
//! `&mut` to both its own state and the engine. Determinism: ties in time
//! break by schedule order, and nothing else consults wall clocks or
//! ambient randomness.

use std::collections::BinaryHeap;

/// Simulated time in nanoseconds since simulation start.
pub type SimTime = u64;

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Earliest first (max-heap inverted), ties by schedule order.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic discrete-event queue carrying events of type `E`.
pub struct Engine<E> {
    queue: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    seq: u64,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Engine::new()
    }
}

impl<E> Engine<E> {
    /// An empty engine at time zero.
    pub fn new() -> Self {
        Engine { queue: BinaryHeap::new(), now: 0, seq: 0, processed: 0 }
    }

    /// Current simulated time (the timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events processed so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Events still pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `ev` to fire `delay` after the current time.
    pub fn schedule(&mut self, delay: SimTime, ev: E) {
        self.schedule_at(self.now + delay, ev);
    }

    /// Schedules `ev` at an absolute time (must not precede `now`).
    pub fn schedule_at(&mut self, at: SimTime, ev: E) {
        debug_assert!(at >= self.now, "cannot schedule into the past");
        self.seq += 1;
        self.queue.push(Scheduled { at: at.max(self.now), seq: self.seq, ev });
    }

    /// Pops the next event, advancing time to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.queue.pop()?;
        debug_assert!(s.at >= self.now, "time went backwards");
        self.now = s.at;
        self.processed += 1;
        Some((s.at, s.ev))
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|s| s.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut e = Engine::new();
        e.schedule(30, "c");
        e.schedule(10, "a");
        e.schedule(20, "b");
        assert_eq!(e.pop(), Some((10, "a")));
        assert_eq!(e.pop(), Some((20, "b")));
        assert_eq!(e.now(), 20);
        assert_eq!(e.pop(), Some((30, "c")));
        assert_eq!(e.pop(), None);
        assert_eq!(e.processed(), 3);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut e = Engine::new();
        for i in 0..10 {
            e.schedule(5, i);
        }
        for i in 0..10 {
            assert_eq!(e.pop(), Some((5, i)));
        }
    }

    #[test]
    fn relative_scheduling_compounds() {
        let mut e = Engine::new();
        e.schedule(10, 1u8);
        let (t, _) = e.pop().unwrap();
        assert_eq!(t, 10);
        e.schedule(5, 2u8); // relative to now=10
        assert_eq!(e.pop(), Some((15, 2)));
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut e = Engine::new();
            let mut order = Vec::new();
            for i in 0..50u64 {
                e.schedule(i % 7, i);
            }
            while let Some((_, ev)) = e.pop() {
                order.push(ev);
                if ev % 5 == 0 && order.len() < 100 {
                    e.schedule(3, ev + 1000);
                }
            }
            order
        };
        assert_eq!(run(), run());
    }
}
