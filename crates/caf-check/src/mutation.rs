//! Detector families and seeded protocol mutations.
//!
//! The explorer drives the *real* detectors from `caf-core` through a
//! thin dispatch enum. Mutations are applied from the outside, as
//! perturbations of the wrapper — the production code is never modified,
//! yet each mutation reproduces a classic termination-detection bug
//! precisely enough for the checker to exhibit it:
//!
//! * [`Mutation::DropQuiescenceWait`] — skip Fig. 7 line 4 entirely
//!   (always ready): breaks the Theorem 1 wave bound.
//! * [`Mutation::MergeEpochs`] — strip parity tags off every message, so
//!   receivers never flip into the odd epoch: events concurrent with an
//!   in-flight reduction leak into its cut (the classic false-zero).
//! * [`Mutation::SkipPoison`] — ignore fail-stop poison: a crash turns
//!   into a deadlock instead of an abort.
//! * [`Mutation::LocalVerdict`] — decide termination from the image's own
//!   contribution instead of the reduced global sum: images diverge.
//! * [`Mutation::SingleWaveFourCounter`] — drop Mattern's count-twice
//!   stability rule: terminate on the first balanced wave.
//! * [`Mutation::AckCompleteConfusion`] — wire delivery acks into the
//!   completion callback: the sender never quiesces.
//! * [`Mutation::StaleContribution`] — contribute the first wave's value
//!   forever (a forgotten counter fold): the sum can never reach zero.

use caf_core::ids::Parity;
use caf_core::termination::{
    Contribution, EpochDetector, FourCounterDetector, WaveDecision, WaveDetector,
};

/// Which wave-detector family the explorer drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// The paper's algorithm with the quiescence precondition (Fig. 7).
    EpochStrict,
    /// The "algorithm w/o upper bound" baseline (no quiescence wait).
    EpochLoose,
    /// Mattern's four-counter algorithm (AM++).
    FourCounter,
}

impl Family {
    /// All explorable families.
    pub const ALL: [Family; 3] = [Family::EpochStrict, Family::EpochLoose, Family::FourCounter];

    /// Stable name used in replay files and reports.
    pub fn name(self) -> &'static str {
        match self {
            Family::EpochStrict => "epoch-strict",
            Family::EpochLoose => "epoch-loose",
            Family::FourCounter => "four-counter",
        }
    }

    /// Parses [`Family::name`].
    pub fn parse(s: &str) -> Result<Family, String> {
        Family::ALL
            .into_iter()
            .find(|f| f.name() == s)
            .ok_or_else(|| format!("unknown detector family {s:?}"))
    }

    /// Whether the Theorem 1 `L + 1` wave bound applies to this family.
    pub fn theorem1_applies(self) -> bool {
        matches!(self, Family::EpochStrict)
    }
}

/// Enum dispatch over the concrete wave detectors.
#[derive(Debug, Clone)]
enum Det {
    Epoch(EpochDetector),
    Four(FourCounterDetector),
}

impl Det {
    fn new(family: Family) -> Det {
        match family {
            Family::EpochStrict => Det::Epoch(EpochDetector::new(true)),
            Family::EpochLoose => Det::Epoch(EpochDetector::new(false)),
            Family::FourCounter => Det::Four(FourCounterDetector::new()),
        }
    }

    fn inner(&mut self) -> &mut dyn WaveDetector {
        match self {
            Det::Epoch(d) => d,
            Det::Four(d) => d,
        }
    }

    fn inner_ref(&self) -> &dyn WaveDetector {
        match self {
            Det::Epoch(d) => d,
            Det::Four(d) => d,
        }
    }
}

/// A seeded protocol mutation (see module docs for the bug each models).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Always ready: the quiescence wait of Fig. 7 line 4 is skipped.
    DropQuiescenceWait,
    /// Message parity tags are stripped (no even/odd epoch separation).
    MergeEpochs,
    /// Fail-stop poison is swallowed instead of propagated.
    SkipPoison,
    /// Termination decided from the local contribution, not the sum.
    LocalVerdict,
    /// Four-counter terminates on the first balanced wave (no stability).
    SingleWaveFourCounter,
    /// Delivery acks are counted as completions.
    AckCompleteConfusion,
    /// Every wave re-contributes the first wave's value.
    StaleContribution,
}

impl Mutation {
    /// All detector-level mutations (the cofence mutations live in
    /// `cofence_check`).
    pub const ALL: [Mutation; 7] = [
        Mutation::DropQuiescenceWait,
        Mutation::MergeEpochs,
        Mutation::SkipPoison,
        Mutation::LocalVerdict,
        Mutation::SingleWaveFourCounter,
        Mutation::AckCompleteConfusion,
        Mutation::StaleContribution,
    ];

    /// Stable name used by the CLI, replay files, and `mutate_check.sh`.
    pub fn name(self) -> &'static str {
        match self {
            Mutation::DropQuiescenceWait => "drop-quiescence-wait",
            Mutation::MergeEpochs => "merge-epochs",
            Mutation::SkipPoison => "skip-poison",
            Mutation::LocalVerdict => "local-verdict",
            Mutation::SingleWaveFourCounter => "single-wave-four-counter",
            Mutation::AckCompleteConfusion => "ack-complete-confusion",
            Mutation::StaleContribution => "stale-contribution",
        }
    }

    /// Parses [`Mutation::name`].
    pub fn parse(s: &str) -> Result<Mutation, String> {
        Mutation::ALL
            .into_iter()
            .find(|m| m.name() == s)
            .ok_or_else(|| format!("unknown mutation {s:?}"))
    }

    /// The family whose exploration exhibits this mutation's bug.
    pub fn family(self) -> Family {
        match self {
            Mutation::SingleWaveFourCounter => Family::FourCounter,
            _ => Family::EpochStrict,
        }
    }

    /// Whether the mutation needs a crash scenario to be observable.
    pub fn needs_crash(self) -> bool {
        matches!(self, Mutation::SkipPoison)
    }
}

/// A detector of some family with an optional mutation applied. This is
/// what the explorer's world actually holds, one per image.
#[derive(Debug, Clone)]
pub struct CheckedDetector {
    det: Det,
    mutation: Option<Mutation>,
    /// `StaleContribution`: the cached first-wave contribution.
    first_contribution: Option<Contribution>,
    /// `LocalVerdict`: the contribution of the currently open wave.
    last_contribution: Contribution,
    /// Poison this wrapper has seen, even when `SkipPoison` swallows it
    /// (the oracle needs ground truth about what the detector was told).
    poison_seen: Option<usize>,
}

impl CheckedDetector {
    /// A fresh, optionally mutated detector of `family`.
    pub fn new(family: Family, mutation: Option<Mutation>) -> Self {
        CheckedDetector {
            det: Det::new(family),
            mutation,
            first_contribution: None,
            last_contribution: [0, 0],
            poison_seen: None,
        }
    }
}

impl WaveDetector for CheckedDetector {
    fn on_send(&mut self) -> Parity {
        let tag = self.det.inner().on_send();
        if self.mutation == Some(Mutation::MergeEpochs) {
            // No epoch separation: every message travels tagged Even, so
            // receivers never flip into the odd epoch.
            Parity::Even
        } else {
            tag
        }
    }

    fn on_delivered(&mut self, tag: Parity) {
        if self.mutation == Some(Mutation::AckCompleteConfusion) {
            self.det.inner().on_complete(tag);
        } else {
            self.det.inner().on_delivered(tag);
        }
    }

    fn on_receive(&mut self, tag: Parity) {
        self.det.inner().on_receive(tag);
    }

    fn on_complete(&mut self, tag: Parity) {
        self.det.inner().on_complete(tag);
    }

    fn ready(&self) -> bool {
        if self.mutation == Some(Mutation::DropQuiescenceWait) {
            return true;
        }
        self.det.inner_ref().ready()
    }

    fn enter_wave(&mut self) -> Contribution {
        let real = self.det.inner().enter_wave();
        self.last_contribution = real;
        match self.mutation {
            Some(Mutation::StaleContribution) => *self.first_contribution.get_or_insert(real),
            _ => real,
        }
    }

    fn exit_wave(&mut self, reduced: Contribution) -> WaveDecision {
        let real = self.det.inner().exit_wave(reduced);
        match self.mutation {
            Some(Mutation::LocalVerdict) if real != WaveDecision::Poisoned => {
                if self.last_contribution[0] == 0 {
                    WaveDecision::Terminated
                } else {
                    WaveDecision::Continue
                }
            }
            Some(Mutation::SingleWaveFourCounter) if real != WaveDecision::Poisoned => {
                if reduced[0] == reduced[1] {
                    WaveDecision::Terminated
                } else {
                    WaveDecision::Continue
                }
            }
            _ => real,
        }
    }

    fn waves(&self) -> usize {
        self.det.inner_ref().waves()
    }

    fn poison(&mut self, image: usize) {
        self.poison_seen.get_or_insert(image);
        if self.mutation == Some(Mutation::SkipPoison) {
            return;
        }
        self.det.inner().poison(image);
    }

    fn poisoned_by(&self) -> Option<usize> {
        self.det.inner_ref().poisoned_by()
    }
}

impl CheckedDetector {
    /// Whether this detector was ever told about a crash, regardless of
    /// whether the (possibly mutated) implementation honored it.
    pub fn poison_seen(&self) -> Option<usize> {
        self.poison_seen
    }

    /// Cumulative `[sent, delivered, received, completed]` across both
    /// parities — wave-fold independent, so a DES replay that schedules
    /// the same message steps must reproduce it exactly. `None` for
    /// non-epoch families.
    pub fn epoch_counters(&self) -> Option<[u64; 4]> {
        match &self.det {
            Det::Epoch(d) => {
                let s = d.epochs();
                let (e, o) = (s.counters(Parity::Even), s.counters(Parity::Odd));
                Some([
                    e.sent + o.sent,
                    e.delivered + o.delivered,
                    e.received + o.received,
                    e.completed + o.completed,
                ])
            }
            Det::Four(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmutated_wrapper_is_transparent() {
        let mut w = CheckedDetector::new(Family::EpochStrict, None);
        let mut d = EpochDetector::new(true);
        assert_eq!(w.on_send(), d.on_send());
        assert_eq!(w.ready(), d.ready());
        w.on_delivered(Parity::Even);
        d.on_delivered(Parity::Even);
        assert_eq!(w.enter_wave(), d.enter_wave());
        assert_eq!(w.exit_wave([0, 0]), d.exit_wave([0, 0]));
        assert_eq!(w.waves(), d.waves());
    }

    #[test]
    fn merge_epochs_strips_odd_tags() {
        let mut w = CheckedDetector::new(Family::EpochStrict, Some(Mutation::MergeEpochs));
        w.enter_wave(); // detector now in the odd epoch
        assert_eq!(w.on_send(), Parity::Even, "mutated tag must stay Even");
        let mut clean = CheckedDetector::new(Family::EpochStrict, None);
        clean.enter_wave();
        assert_eq!(clean.on_send(), Parity::Odd);
    }

    #[test]
    fn skip_poison_swallows_but_records() {
        let mut w = CheckedDetector::new(Family::EpochStrict, Some(Mutation::SkipPoison));
        w.poison(2);
        assert_eq!(w.poisoned_by(), None, "mutation must swallow the poison");
        assert_eq!(w.poison_seen(), Some(2), "ground truth must survive");
    }

    #[test]
    fn drop_quiescence_wait_is_always_ready() {
        let mut w = CheckedDetector::new(Family::EpochStrict, Some(Mutation::DropQuiescenceWait));
        w.on_send(); // unacked: the real strict detector would block
        assert!(w.ready());
    }

    #[test]
    fn names_round_trip() {
        for m in Mutation::ALL {
            assert_eq!(Mutation::parse(m.name()).unwrap(), m);
        }
        for f in Family::ALL {
            assert_eq!(Family::parse(f.name()).unwrap(), f);
        }
    }
}
