//! The relaxed-memory-model checker applied to the paper's own examples
//! (§III-B Figs. 8–10 and the event semantics of §III-B4), plus runtime
//! behaviour spot-checks that the abstract rules describe real executions.

use caf2::core::model::{may_complete_after, may_initiate_before, Stmt};
use caf2::core::{CofenceSpec, LocalAccess, Pass};
use caf2::{Runtime, RuntimeConfig};

fn implicit(access: LocalAccess) -> Stmt {
    Stmt::Async { access, implicit: true }
}

/// Fig. 8 as a program: line 1's copy is constrained by the plain
/// cofence at line 3; line 5's local-write copy passes the
/// `cofence(DOWNWARD=WRITE)` at line 8 while line 6's local-read copy is
/// held.
#[test]
fn fig8_reorderings() {
    let program = [
        implicit(LocalAccess::READ),      // line 1: outbuf(i) → remote
        Stmt::Cofence(CofenceSpec::FULL), // line 3
        implicit(LocalAccess::WRITE),     // line 5: remote → inbuf(i+1)
        implicit(LocalAccess::READ),      // line 6: outbuf(i+2) → remote
        Stmt::Cofence(CofenceSpec::new(Pass::Writes, Pass::None)), // line 8
    ];
    assert!(!may_complete_after(&program, 0, 1), "line 1 may not cross line 3");
    assert!(may_complete_after(&program, 2, 4), "line 5 may complete below line 8");
    assert!(!may_complete_after(&program, 3, 4), "line 6 must be data-complete at line 8");
}

/// Fig. 9, root side: `cofence(WRITE, WRITE)` holds the broadcast's
/// local read of `buf` but lets unrelated local writes move both ways.
#[test]
fn fig9_root_side() {
    let program = [
        implicit(LocalAccess::READ), // broadcast_async(buf, p): reads buf
        Stmt::Cofence(CofenceSpec::new(Pass::Writes, Pass::Writes)),
        implicit(LocalAccess::WRITE), // buf = … (next round's fill)
    ];
    assert!(!may_complete_after(&program, 0, 1));
    assert!(may_initiate_before(&program, 2, 1), "the refill may start early");
}

/// §III-B4: notify is a release (nothing moves down past it, later ops
/// may hoist above it); wait is an acquire (nothing hoists above it,
/// earlier ops may sink below it).
#[test]
fn event_acquire_release() {
    use caf2::core::ids::{EventId, ImageId};
    let ev = EventId { owner: ImageId(0), slot: 0 };
    let program = [
        implicit(LocalAccess::WRITE),
        Stmt::Notify(ev),
        implicit(LocalAccess::WRITE),
        Stmt::Wait(ev),
        implicit(LocalAccess::WRITE),
    ];
    assert!(!may_complete_after(&program, 0, 1));
    assert!(may_initiate_before(&program, 2, 1));
    assert!(may_complete_after(&program, 2, 3));
    assert!(!may_initiate_before(&program, 4, 3));
}

/// Runtime counterpart of the release rule: data written before a notify
/// is visible to the waiter after its wait (the classic message-passing
/// litmus test), repeated to give races a chance.
#[test]
fn notify_release_wait_acquire_litmus() {
    for _ in 0..20 {
        Runtime::launch(2, RuntimeConfig::testing(), |img| {
            let w = img.world();
            let data = img.coarray(&w, 1, 0u64);
            let flag = img.coevent();
            if img.id().index() == 0 {
                // put then notify: the put is explicit-completion, and we
                // wait for delivery before releasing.
                let op = img.put_async(data.slice(img.image(1), 0..1), vec![42]);
                img.wait_local_op(&op);
                img.event_notify(flag.on(img.image(1)));
            } else {
                img.event_wait(flag.on(img.id()));
                assert_eq!(data.read(img.id(), 0..1), vec![42], "acquire saw stale data");
            }
            img.barrier(&w);
        });
    }
}

/// Fig. 10's dynamic scoping at runtime: a cofence inside a shipped
/// function only waits for that function's own operations — the paper's
/// line-3 cofence must not be able to observe the program's line-6 copy.
#[test]
fn cofence_scoping_in_shipped_functions() {
    Runtime::launch(2, RuntimeConfig::testing(), |img| {
        let w = img.world();
        let a = img.coarray(&w, 2, 0u64);
        img.finish(&w, |img| {
            if img.id().index() == 0 {
                // Program-level implicit copy (paper line 6).
                img.put_async(a.slice(img.image(1), 0..1), vec![7]);
                let outer_pending = img.pending_implicit_ops();
                assert_eq!(outer_pending, 1);
                let a2 = a.clone();
                img.spawn(img.image(1), move |q| {
                    // Inside the shipped function: a fresh scope.
                    assert_eq!(q.pending_implicit_ops(), 0);
                    q.put_async(a2.slice(q.image(0), 1..2), vec![8]);
                    assert_eq!(q.pending_implicit_ops(), 1);
                    q.cofence(); // captures only the spawned fn's op
                    assert_eq!(q.pending_implicit_ops(), 0);
                });
                // Back in the program scope: the outer op is still here
                // (it may or may not have completed, but the scope is
                // intact).
                let _ = img.pending_implicit_ops();
            }
        });
        assert_eq!(a.read(img.id(), 0..2)[0], if img.id().index() == 1 { 7 } else { 0 });
    });
}
