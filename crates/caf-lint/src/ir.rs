//! The plan IR: a loop-free description of an SPMD program's
//! asynchronous structure, precise enough for the four static analyses
//! and small enough for the model checker to explore exhaustively.
//!
//! A [`Plan`] declares coarrays, events, spawnable functions, and a
//! sequence of top-level blocks. Each block either applies to every
//! image (`all`) or to one rank (`image n`); an image's *program* is the
//! concatenation of the blocks that apply to it, in source order. This
//! mirrors how SPMD sources read: shared structure once, divergent roles
//! guarded by rank tests.
//!
//! Statements are deliberately loop-free: plans model one iteration (or
//! a bounded unrolling) of the program's communication skeleton, which
//! keeps both the static happens-before relation and the `caf-check`
//! schedule exploration decidable.
//!
//! [`lower`] flattens a plan into per-image [`Ctx`] step sequences (plus
//! one symbolic context per spawnable function) with every copy's local
//! access class precomputed through the paper's classification: a local
//! source *reads* local memory, a local destination *writes* it, both
//! sides local is read-write, neither is a third-party copy with no
//! local obligation. The analyses and the dynamic explorer both consume
//! this one lowering, so the two semantics cannot drift on
//! classification.

use std::collections::BTreeMap;
use std::fmt;

use caf_core::cofence::{CofenceSpec, LocalAccess};

/// Where a remote endpoint, spawn, or event post lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Target {
    /// An absolute image rank.
    Abs(usize),
    /// A rank relative to the executing image (`+k`/`-k`, modulo `p`).
    Rel(i64),
}

impl Target {
    /// Resolves the target against the executing image.
    pub fn resolve(self, me: usize, images: usize) -> usize {
        match self {
            Target::Abs(n) => n % images,
            Target::Rel(k) => {
                let p = images as i64;
                (((me as i64 + k) % p + p) % p) as usize
            }
        }
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Abs(n) => write!(f, "{n}"),
            Target::Rel(k) if *k >= 0 => write!(f, "+{k}"),
            Target::Rel(k) => write!(f, "{k}"),
        }
    }
}

/// One endpoint of an asynchronous copy: a named coarray, local to the
/// executing image or on a target image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemRef {
    /// Declared coarray name.
    pub var: String,
    /// `None` = the executing image's segment; `Some` = a remote segment.
    pub image: Option<Target>,
}

impl MemRef {
    /// A local segment reference.
    pub fn local(var: &str) -> Self {
        MemRef { var: var.to_string(), image: None }
    }

    /// A remote segment reference.
    pub fn at(var: &str, t: Target) -> Self {
        MemRef { var: var.to_string(), image: Some(t) }
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.image {
            None => write!(f, "{}", self.var),
            Some(t) => write!(f, "{}@{}", self.var, t),
        }
    }
}

/// An event reference: the named event on the executing image or on a
/// target image (`notify`/`post` may signal a remote image's instance).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRef {
    /// Declared event name.
    pub event: String,
    /// `None` = the executing image's instance.
    pub image: Option<Target>,
}

impl fmt::Display for EventRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.image {
            None => write!(f, "{}", self.event),
            Some(t) => write!(f, "{}@{}", self.event, t),
        }
    }
}

/// One plan statement. `line` is the source line for diagnostics (0 for
/// builder-made plans).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// Statement payload.
    pub kind: StmtKind,
    /// 1-based source line, or 0 when built programmatically.
    pub line: usize,
}

/// Statement payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// `copy src -> dst [notify ev]`: an asynchronous copy. Either side
    /// may be local or remote; the local-access class follows.
    Copy {
        /// Source endpoint.
        src: MemRef,
        /// Destination endpoint.
        dst: MemRef,
        /// Optional completion event, signalled when the copy's remote
        /// side has been delivered (the runtime's `CopyEvents::on_dest`).
        notify: Option<EventRef>,
    },
    /// `cofence [down=…] [up=…]`: a directional fence.
    Cofence(CofenceSpec),
    /// `finish { … }`: a team-collective finish block.
    Finish(Vec<Stmt>),
    /// `spawn f @t [notify ev]`: ship function `f` to image `t`.
    Spawn {
        /// Name of the spawned function.
        func: String,
        /// Target image.
        target: Target,
        /// Optional completion event signalled when the shipped function
        /// has executed (the runtime's `spawn_notify`).
        notify: Option<EventRef>,
    },
    /// `post ev[@t]`: signal an event instance.
    Post(EventRef),
    /// `wait ev`: block on the executing image's event instance.
    Wait(String),
    /// `barrier`: a team barrier (implies completion of the executing
    /// image's pending implicit operations — a full fence — and is a
    /// global synchronization point).
    Barrier,
    /// `read v` / `write v`: a synchronous local access to a coarray's
    /// local segment (`write: true` for stores).
    Access {
        /// Coarray accessed.
        var: String,
        /// Store (true) or load (false).
        write: bool,
    },
}

/// A top-level block: the images it applies to plus its body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// `None` = all images; `Some(n)` = only rank `n`.
    pub image: Option<usize>,
    /// The block body.
    pub body: Vec<Stmt>,
}

/// A spawnable function definition. The body runs on the spawn target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Body statements (no `finish` or `barrier` allowed — shipped
    /// functions must not block on collectives; the lowering rejects
    /// them).
    pub body: Vec<Stmt>,
}

/// A whole plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// Number of images (`p ≥ 2`).
    pub images: usize,
    /// Declared coarrays.
    pub coarrays: Vec<String>,
    /// Declared events.
    pub events: Vec<String>,
    /// Spawnable functions.
    pub fns: Vec<FnDef>,
    /// Top-level blocks, in source order.
    pub blocks: Vec<Block>,
}

// ---------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------

/// What a lowered step is, with targets still symbolic (resolved per
/// executing image by the dynamic explorer) but local-access classes
/// fixed at lowering time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepKind {
    /// An asynchronous operation (copy or spawn).
    Op(OpStep),
    /// A fence: an explicit `cofence`, or the full fence a `barrier`
    /// implies (`explicit` distinguishes them for the weakening
    /// analysis, which only tunes fences the programmer wrote).
    Fence {
        /// The fence's pass pair.
        spec: CofenceSpec,
        /// True for a source-level `cofence`.
        explicit: bool,
    },
    /// Start of finish block `id` (ordinal over the whole plan source, so
    /// the same source block has the same id on every image).
    FinishBegin(usize),
    /// End of finish block `id`.
    FinishEnd(usize),
    /// A team barrier (also lowered with a paired `Fence`; this step
    /// carries the collective rendezvous, ordinal `id`).
    Barrier(usize),
    /// Signal an event instance.
    Post(EventRef),
    /// Block on the executing image's instance of the named event.
    Wait(String),
    /// Synchronous local access.
    Access {
        /// Coarray accessed.
        var: String,
        /// Store (true) or load (false).
        write: bool,
    },
}

/// A lowered asynchronous operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpStep {
    /// How the op touches the executing image's local memory.
    pub access: LocalAccess,
    /// Local coarrays the op reads (source snapshot / argument marshal).
    pub reads: Vec<String>,
    /// Local coarrays the op writes (destination landing).
    pub writes: Vec<String>,
    /// Spawned function, for spawns.
    pub spawn: Option<(String, Target)>,
    /// Completion event, if any.
    pub notify: Option<EventRef>,
    /// Rendering for diagnostics (e.g. ``copy field -> field@+1``).
    pub desc: String,
}

/// One lowered step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Step payload.
    pub kind: StepKind,
    /// Source line (0 = builder).
    pub line: usize,
    /// Finish ids enclosing this step, outermost first.
    pub finishes: Vec<usize>,
}

/// Identifies a lowered context: one image's program or one function
/// body (analyzed symbolically, instantiated per spawn by the dynamic
/// explorer).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum CtxId {
    /// The top-level program of an image.
    Program(usize),
    /// A spawnable function body.
    Func(String),
}

impl fmt::Display for CtxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtxId::Program(i) => write!(f, "image {i}"),
            CtxId::Func(name) => write!(f, "fn {name}"),
        }
    }
}

/// A lowered straight-line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ctx {
    /// Who this context is.
    pub id: CtxId,
    /// The flattened steps.
    pub steps: Vec<Step>,
}

/// The full lowering of a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lowered {
    /// Image count, copied from the plan.
    pub images: usize,
    /// One context per image, rank order.
    pub programs: Vec<Ctx>,
    /// Function bodies by name.
    pub fns: BTreeMap<String, Ctx>,
}

/// Classifies a copy's local access on the executing image. `local` says
/// whether an endpoint with a symbolic target could still be the
/// executing image — for function bodies the executor is unknown, so
/// only bare (target-free) references count as local, which is the
/// conservative reading the docs promise.
fn copy_access(src: &MemRef, dst: &MemRef) -> (LocalAccess, Vec<String>, Vec<String>) {
    let src_local = src.image.is_none();
    let dst_local = dst.image.is_none();
    let access = LocalAccess { reads: src_local, writes: dst_local };
    let reads = if src_local { vec![src.var.clone()] } else { Vec::new() };
    let writes = if dst_local { vec![dst.var.clone()] } else { Vec::new() };
    (access, reads, writes)
}

/// A lowering or validation failure, with the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    /// 1-based source line (0 when built programmatically).
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.msg)
        } else {
            write!(f, "{}", self.msg)
        }
    }
}

impl std::error::Error for PlanError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, PlanError> {
    Err(PlanError { line, msg: msg.into() })
}

struct LowerState<'p> {
    plan: &'p Plan,
    next_finish: usize,
    next_barrier: usize,
}

impl Plan {
    /// Validates names and structure, then flattens every image program
    /// and function body into straight-line step sequences.
    pub fn lower(&self) -> Result<Lowered, PlanError> {
        if self.images < 2 {
            return err(0, format!("plan needs at least 2 images, got {}", self.images));
        }
        for b in &self.blocks {
            if let Some(n) = b.image {
                if n >= self.images {
                    return err(
                        b.body.first().map_or(0, |s| s.line),
                        format!("image {n} out of range (plan has {} images)", self.images),
                    );
                }
            }
        }
        // Finish/barrier ordinals restart from zero for every image's
        // walk over the same source blocks, so the same source construct
        // gets the same id on every image — that id is the collective
        // rendezvous key.
        let mut st = LowerState { plan: self, next_finish: 0, next_barrier: 0 };
        let mut programs = Vec::new();
        for image in 0..self.images {
            st.next_finish = 0;
            st.next_barrier = 0;
            let mut steps = Vec::new();
            for b in &self.blocks {
                let applies = b.image.is_none_or(|n| n == image);
                st.lower_body(&b.body, applies, false, &mut Vec::new(), &mut steps)?;
            }
            programs.push(Ctx { id: CtxId::Program(image), steps });
        }
        let mut fns = BTreeMap::new();
        for f in &self.fns {
            st.next_finish = usize::MAX / 2; // fn-local ids can't collide with source finishes
            st.next_barrier = usize::MAX / 2;
            let mut steps = Vec::new();
            st.lower_body(&f.body, true, true, &mut Vec::new(), &mut steps)?;
            if fns
                .insert(f.name.clone(), Ctx { id: CtxId::Func(f.name.clone()), steps })
                .is_some()
            {
                return err(0, format!("function {:?} defined twice", f.name));
            }
        }
        Ok(Lowered { images: self.images, programs, fns })
    }

    fn has_coarray(&self, v: &str) -> bool {
        self.coarrays.iter().any(|c| c == v)
    }

    fn has_event(&self, e: &str) -> bool {
        self.events.iter().any(|c| c == e)
    }

    fn has_fn(&self, f: &str) -> bool {
        self.fns.iter().any(|d| d.name == f)
    }
}

impl LowerState<'_> {
    /// Lowers `body`. When `applies` is false the walk still *numbers*
    /// finish and barrier constructs (they exist in the source and other
    /// images rendezvous on them) but emits nothing.
    fn lower_body(
        &mut self,
        body: &[Stmt],
        applies: bool,
        in_fn: bool,
        finishes: &mut Vec<usize>,
        out: &mut Vec<Step>,
    ) -> Result<(), PlanError> {
        for stmt in body {
            let line = stmt.line;
            match &stmt.kind {
                StmtKind::Copy { src, dst, notify } => {
                    for v in [&src.var, &dst.var] {
                        if !self.plan.has_coarray(v) {
                            return err(line, format!("undeclared coarray {v:?}"));
                        }
                    }
                    if let Some(ev) = notify {
                        if !self.plan.has_event(&ev.event) {
                            return err(line, format!("undeclared event {:?}", ev.event));
                        }
                    }
                    if !applies {
                        continue;
                    }
                    let (access, reads, writes) = copy_access(src, dst);
                    out.push(Step {
                        kind: StepKind::Op(OpStep {
                            access,
                            reads,
                            writes,
                            spawn: None,
                            notify: notify.clone(),
                            desc: format!("copy {src} -> {dst}"),
                        }),
                        line,
                        finishes: finishes.clone(),
                    });
                }
                StmtKind::Spawn { func, target, notify } => {
                    if !self.plan.has_fn(func) {
                        return err(line, format!("spawn of undefined function {func:?}"));
                    }
                    if let Some(ev) = notify {
                        if !self.plan.has_event(&ev.event) {
                            return err(line, format!("undeclared event {:?}", ev.event));
                        }
                    }
                    if !applies {
                        continue;
                    }
                    out.push(Step {
                        kind: StepKind::Op(OpStep {
                            // Argument marshalling reads local memory but
                            // no *named* coarray: spawns participate in
                            // fence classification, not var conflicts.
                            access: LocalAccess::READ,
                            reads: Vec::new(),
                            writes: Vec::new(),
                            spawn: Some((func.clone(), *target)),
                            notify: notify.clone(),
                            desc: format!("spawn {func} @{target}"),
                        }),
                        line,
                        finishes: finishes.clone(),
                    });
                }
                StmtKind::Cofence(spec) => {
                    if applies {
                        out.push(Step {
                            kind: StepKind::Fence { spec: *spec, explicit: true },
                            line,
                            finishes: finishes.clone(),
                        });
                    }
                }
                StmtKind::Finish(inner) => {
                    if in_fn {
                        return err(line, "finish inside a shipped function is not supported");
                    }
                    let id = self.next_finish;
                    self.next_finish += 1;
                    if applies {
                        out.push(Step {
                            kind: StepKind::FinishBegin(id),
                            line,
                            finishes: finishes.clone(),
                        });
                    }
                    finishes.push(id);
                    self.lower_body(inner, applies, in_fn, finishes, out)?;
                    finishes.pop();
                    if applies {
                        out.push(Step {
                            kind: StepKind::FinishEnd(id),
                            line,
                            finishes: finishes.clone(),
                        });
                    }
                }
                StmtKind::Barrier => {
                    if in_fn {
                        return err(line, "barrier inside a shipped function is not supported");
                    }
                    let id = self.next_barrier;
                    self.next_barrier += 1;
                    if applies {
                        // A barrier is a full fence for the image's own
                        // pending implicit operations, then a collective
                        // rendezvous.
                        out.push(Step {
                            kind: StepKind::Fence { spec: CofenceSpec::FULL, explicit: false },
                            line,
                            finishes: finishes.clone(),
                        });
                        out.push(Step {
                            kind: StepKind::Barrier(id),
                            line,
                            finishes: finishes.clone(),
                        });
                    }
                }
                StmtKind::Post(ev) => {
                    if !self.plan.has_event(&ev.event) {
                        return err(line, format!("undeclared event {:?}", ev.event));
                    }
                    if applies {
                        out.push(Step {
                            kind: StepKind::Post(ev.clone()),
                            line,
                            finishes: finishes.clone(),
                        });
                    }
                }
                StmtKind::Wait(ev) => {
                    if !self.plan.has_event(ev) {
                        return err(line, format!("undeclared event {ev:?}"));
                    }
                    if applies {
                        out.push(Step {
                            kind: StepKind::Wait(ev.clone()),
                            line,
                            finishes: finishes.clone(),
                        });
                    }
                }
                StmtKind::Access { var, write } => {
                    if !self.plan.has_coarray(var) {
                        return err(line, format!("undeclared coarray {var:?}"));
                    }
                    if applies {
                        out.push(Step {
                            kind: StepKind::Access { var: var.clone(), write: *write },
                            line,
                            finishes: finishes.clone(),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

impl Step {
    /// The op payload, when this step is an async operation.
    pub fn op(&self) -> Option<&OpStep> {
        match &self.kind {
            StepKind::Op(op) => Some(op),
            _ => None,
        }
    }

    /// Short rendering for diagnostics.
    pub fn describe(&self) -> String {
        match &self.kind {
            StepKind::Op(op) => op.desc.clone(),
            StepKind::Fence { spec, explicit: true } => spec.render(),
            StepKind::Fence { explicit: false, .. } => "barrier (implied full fence)".into(),
            StepKind::FinishBegin(_) => "finish {".into(),
            StepKind::FinishEnd(_) => "} (finish end)".into(),
            StepKind::Barrier(_) => "barrier".into(),
            StepKind::Post(ev) => format!("post {ev}"),
            StepKind::Wait(ev) => format!("wait {ev}"),
            StepKind::Access { var, write: true } => format!("write {var}"),
            StepKind::Access { var, write: false } => format!("read {var}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caf_core::cofence::Pass;

    fn s(kind: StmtKind) -> Stmt {
        Stmt { kind, line: 0 }
    }

    fn tiny_plan() -> Plan {
        Plan {
            images: 3,
            coarrays: vec!["a".into(), "b".into()],
            events: vec!["e".into()],
            fns: vec![FnDef {
                name: "f".into(),
                body: vec![s(StmtKind::Access { var: "a".into(), write: true })],
            }],
            blocks: vec![Block {
                image: None,
                body: vec![
                    s(StmtKind::Copy {
                        src: MemRef::local("a"),
                        dst: MemRef::at("b", Target::Rel(1)),
                        notify: None,
                    }),
                    s(StmtKind::Cofence(CofenceSpec::new(Pass::Writes, Pass::Any))),
                    s(StmtKind::Finish(vec![s(StmtKind::Spawn {
                        func: "f".into(),
                        target: Target::Rel(1),
                        notify: None,
                    })])),
                    s(StmtKind::Barrier),
                ],
            }],
        }
    }

    #[test]
    fn lowering_flattens_and_classifies() {
        let low = tiny_plan().lower().unwrap();
        assert_eq!(low.programs.len(), 3);
        let p0 = &low.programs[0];
        // copy, cofence, finish-begin, spawn, finish-end, fence, barrier
        assert_eq!(p0.steps.len(), 7);
        let op = p0.steps[0].op().unwrap();
        assert_eq!(op.access, LocalAccess::READ);
        assert_eq!(op.reads, vec!["a".to_string()]);
        assert!(op.writes.is_empty());
        assert!(matches!(p0.steps[2].kind, StepKind::FinishBegin(0)));
        let spawn = p0.steps[3].op().unwrap();
        assert_eq!(spawn.spawn, Some(("f".to_string(), Target::Rel(1))));
        assert_eq!(p0.steps[3].finishes, vec![0]);
        assert!(matches!(p0.steps[5].kind, StepKind::Fence { explicit: false, .. }));
        assert!(matches!(p0.steps[6].kind, StepKind::Barrier(0)));
        assert_eq!(low.fns.len(), 1);
    }

    #[test]
    fn image_guards_and_target_resolution() {
        let mut plan = tiny_plan();
        plan.blocks.push(Block {
            image: Some(2),
            body: vec![s(StmtKind::Access { var: "a".into(), write: false })],
        });
        let low = plan.lower().unwrap();
        assert_eq!(low.programs[0].steps.len(), 7);
        assert_eq!(low.programs[2].steps.len(), 8);
        assert_eq!(Target::Rel(-1).resolve(0, 3), 2);
        assert_eq!(Target::Rel(1).resolve(2, 3), 0);
        assert_eq!(Target::Abs(2).resolve(0, 3), 2);
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let mut plan = tiny_plan();
        plan.blocks[0]
            .body
            .push(s(StmtKind::Access { var: "nope".into(), write: true }));
        assert!(plan.lower().is_err());

        let mut plan = tiny_plan();
        plan.fns[0].body.push(s(StmtKind::Barrier));
        assert!(plan.lower().is_err());

        let mut plan = tiny_plan();
        plan.images = 1;
        assert!(plan.lower().is_err());

        let mut plan = tiny_plan();
        plan.blocks[0].body.push(s(StmtKind::Spawn {
            func: "ghost".into(),
            target: Target::Abs(0),
            notify: None,
        }));
        assert!(plan.lower().is_err());
    }

    #[test]
    fn copy_classification_covers_all_four_shapes() {
        let put = copy_access(&MemRef::local("a"), &MemRef::at("a", Target::Abs(1)));
        assert_eq!(put.0, LocalAccess::READ);
        let get = copy_access(&MemRef::at("a", Target::Abs(1)), &MemRef::local("a"));
        assert_eq!(get.0, LocalAccess::WRITE);
        let memcpy = copy_access(&MemRef::local("a"), &MemRef::local("b"));
        assert_eq!(memcpy.0, LocalAccess::READ_WRITE);
        let third = copy_access(&MemRef::at("a", Target::Abs(1)), &MemRef::at("b", Target::Abs(2)));
        assert_eq!(third.0, LocalAccess::NONE);
        assert!(third.1.is_empty() && third.2.is_empty());
    }
}
