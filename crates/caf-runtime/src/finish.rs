//! The `finish` construct (paper §III-A).
//!
//! `finish(team) … end finish` is collective: every team member enters a
//! matching block, and `end finish` blocks until *global completion* of
//! every asynchronous operation initiated inside the block by any member —
//! including transitively spawned shipped functions, the case a plain
//! barrier provably misses (paper Fig. 5).
//!
//! The engine is the epoch termination detector from `caf-core`: every
//! message sent under the block is epoch-tagged; at `end finish` each
//! image loops — wait for local quiescence, synchronous team
//! `allreduce(SUM, sent − completed)`, check for zero — at most `L + 1`
//! waves (Theorem 1). The final wave doubles as the closing barrier.

use caf_core::ids::FinishId;
use caf_core::termination::{WaveDecision, WaveDetector};
use caf_core::topology::Team;
use caf_core::trace::TraceEvent;

use crate::image::Image;
use crate::state::ImageState;

impl Image {
    /// Runs `body` inside a finish block over `team`, then blocks until
    /// global completion of all asynchronous operations initiated within
    /// (by any member, transitively). Returns `body`'s value.
    ///
    /// Blocks may be nested (inner teams may differ); operations are
    /// attributed to the innermost enclosing block. A shipped function
    /// executes under the finish block of its `spawn`, wherever it runs
    /// (dynamic scoping) — so work it spawns is tracked too.
    ///
    /// # Panics
    /// Panics if this image is not a member of `team`, or if `body`
    /// panics.
    pub fn finish<R>(&self, team: &Team, body: impl FnOnce(&Image) -> R) -> R {
        assert!(
            team.rank_of(self.id()).is_some(),
            "finish is collective: {} must be a member of {}",
            self.id(),
            team.id()
        );
        let fid = {
            let seq = ImageState::bump(&mut self.st.borrow_mut().finish_seq, team.id());
            FinishId { team: team.id(), seq }
        };
        // Materialize the frame and enter the attribution context.
        self.with_frame(fid, |_| ());
        self.st.borrow_mut().ctx_stack.push(Some(fid));
        let result = body(self);
        self.st.borrow_mut().ctx_stack.pop();

        // Termination-detection loop (Fig. 7).
        let mut waves = 0usize;
        loop {
            self.wait_until("finish", || self.with_frame(fid, |d| d.ready()));
            let contribution = self.with_frame(fid, |d| d.enter_wave());
            self.trace(|| TraceEvent::EnterWave {
                image: self.id().index(),
                finish: Image::trace_fid(fid),
                contribution,
            });
            let sum = self.allreduce(team, contribution, |a, b| [a[0] + b[0], a[1] + b[1]]);
            waves += 1;
            let decision = self.with_frame(fid, |d| d.exit_wave(sum));
            self.trace(|| TraceEvent::ExitWave {
                image: self.id().index(),
                finish: Image::trace_fid(fid),
                sum,
                terminated: decision == WaveDecision::Terminated,
            });
            match decision {
                WaveDecision::Terminated => break,
                WaveDecision::Continue => {}
                // A member died: the block can never complete. Normally
                // the failure aborts this image inside the allreduce;
                // this arm catches a poison that landed between waves.
                WaveDecision::Poisoned => {
                    self.check_failure("finish");
                    unreachable!("poisoned finish without a registered failure");
                }
            }
        }
        {
            let mut st = self.st.borrow_mut();
            st.last_finish_waves = waves;
            // Drop the frame. A straggler delivery ack can recreate an
            // empty frame after this (only in the no-upper-bound variant,
            // which doesn't wait for acks); that costs one map entry and
            // is harmless.
            st.finish_frames.remove(&fid);
        }
        result
    }
}
