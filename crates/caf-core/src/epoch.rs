//! Epoch bookkeeping for `finish` termination detection (paper §III-A2,
//! Fig. 7).
//!
//! The lifetime of a `finish` block is divided into consecutively numbered
//! *epochs*; the algorithm only distinguishes even from odd. Each image
//! keeps one [`EpochCounters`] set per parity and a *present epoch* parity
//! pointer. Every message carries the sender's parity at send time; the
//! sending, delivery-acknowledgement, reception, and completion of a
//! message are all counted under that tag's counters — this is what makes
//! the allreduce time cut consistent without FIFO channels or global
//! clocks.
//!
//! Transitions:
//! * `Even → Odd` when the image enters the allreduce, or receives an
//!   odd-tagged message;
//! * `Odd → Even` when the image exits the allreduce, at which point the
//!   odd counters are *folded into* the even counters (counting is
//!   cumulative over the life of the finish block).

use crate::ids::Parity;

/// The four per-epoch counters of Fig. 7: messages this image has `sent`,
/// had `delivered` remotely (acknowledged), `received`, and `completed`
/// executing locally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochCounters {
    /// Messages sent by this image under this parity.
    pub sent: u64,
    /// Of those sent, how many are acknowledged as delivered at the target.
    pub delivered: u64,
    /// Messages received by this image under this parity.
    pub received: u64,
    /// Of those received, how many finished executing locally.
    pub completed: u64,
}

impl EpochCounters {
    /// Adds `other`'s counts into `self` (the odd→even fold).
    fn absorb(&mut self, other: &EpochCounters) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.received += other.received;
        self.completed += other.completed;
    }
}

/// Per-image epoch state for one `finish` block: the even and odd counter
/// sets plus the present-epoch parity pointer.
#[derive(Debug, Clone, Default)]
pub struct EpochState {
    even: EpochCounters,
    odd: EpochCounters,
    parity: Parity,
}

impl EpochState {
    /// Fresh state: present epoch is even (epoch 0), all counters zero.
    pub fn new() -> Self {
        EpochState::default()
    }

    /// Present-epoch parity.
    #[inline]
    pub fn parity(&self) -> Parity {
        self.parity
    }

    /// Counter set for a parity.
    #[inline]
    pub fn counters(&self, parity: Parity) -> &EpochCounters {
        match parity {
            Parity::Even => &self.even,
            Parity::Odd => &self.odd,
        }
    }

    #[inline]
    fn counters_mut(&mut self, parity: Parity) -> &mut EpochCounters {
        match parity {
            Parity::Even => &mut self.even,
            Parity::Odd => &mut self.odd,
        }
    }

    /// Records an outgoing message and returns the parity tag it must
    /// carry (the sender's present epoch).
    pub fn on_send(&mut self) -> Parity {
        let p = self.parity;
        self.counters_mut(p).sent += 1;
        p
    }

    /// Records the delivery acknowledgement of a message this image sent.
    /// Counted in the *present* epoch: if the originating send has already
    /// been folded into the even side, the ack lands on the even side too,
    /// re-balancing `sent == delivered`; if the image is still in the odd
    /// epoch, both sides meet at the next fold.
    pub fn on_delivered(&mut self) {
        let p = self.parity;
        self.counters_mut(p).delivered += 1;
    }

    /// Records reception of a message tagged `tag`. Receiving an
    /// odd-tagged message first pushes this image into the odd epoch
    /// (Fig. 7 line 32), so the message's reception and completion are
    /// counted on the odd side of the current cut — keeping the cut
    /// consistent. The count itself lands in the (possibly just flipped)
    /// present epoch.
    pub fn on_receive(&mut self, tag: Parity) {
        if tag == Parity::Odd {
            self.parity = Parity::Odd;
        }
        let p = self.parity;
        self.counters_mut(p).received += 1;
    }

    /// Records local completion of a received message, in the present
    /// epoch.
    pub fn on_complete(&mut self) {
        let p = self.parity;
        self.counters_mut(p).completed += 1;
    }

    /// The wait condition of Fig. 7 line 4: "a process waits until all
    /// messages it sent were received and all spawned functions received
    /// completed execution before the process performs a new sum
    /// reduction." The condition is over cumulative totals (both
    /// parities): it is a throttle that bounds the number of waves by
    /// `L + 1` (Theorem 1, Fig. 18); the consistent cut itself comes from
    /// the even-side contribution in [`EpochState::enter_wave`].
    pub fn ready_for_wave(&self) -> bool {
        self.even.sent + self.odd.sent == self.even.delivered + self.odd.delivered
            && self.even.received + self.odd.received == self.even.completed + self.odd.completed
    }

    /// Enters the allreduce: flips into the odd epoch (if not already
    /// there) and returns this image's contribution to the sum,
    /// `even.sent − even.completed` (Fig. 7 lines 6–8).
    pub fn enter_wave(&mut self) -> i64 {
        self.parity = Parity::Odd;
        self.even.sent as i64 - self.even.completed as i64
    }

    /// Exits the allreduce: folds the odd counters into the even counters,
    /// zeroes the odd set, and returns to the even epoch (Fig. 7
    /// lines 15–26).
    pub fn exit_wave(&mut self) {
        let odd = std::mem::take(&mut self.odd);
        self.even.absorb(&odd);
        self.parity = Parity::Even;
    }

    /// Sum of messages this image has sent minus completed, over both
    /// parities — used by invariant checks in tests.
    pub fn local_imbalance(&self) -> i64 {
        (self.even.sent + self.odd.sent) as i64 - (self.even.completed + self.odd.completed) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_is_ready_and_balanced() {
        let s = EpochState::new();
        assert!(s.ready_for_wave());
        assert_eq!(s.parity(), Parity::Even);
        assert_eq!(s.local_imbalance(), 0);
    }

    #[test]
    fn send_tags_with_present_parity() {
        let mut s = EpochState::new();
        assert_eq!(s.on_send(), Parity::Even);
        assert!(!s.ready_for_wave()); // sent=1, delivered=0
        s.on_delivered();
        assert!(s.ready_for_wave());
        // Entering a wave flips to odd; sends are now odd-tagged.
        let contrib = s.enter_wave();
        assert_eq!(contrib, 1); // sent 1, completed 0
        assert_eq!(s.on_send(), Parity::Odd);
    }

    #[test]
    fn odd_message_reception_flips_parity() {
        let mut s = EpochState::new();
        assert_eq!(s.parity(), Parity::Even);
        s.on_receive(Parity::Odd);
        assert_eq!(s.parity(), Parity::Odd);
        // An uncompleted reception blocks wave readiness (cumulative wait
        // condition), whichever side it was counted on.
        assert!(!s.ready_for_wave());
        s.on_complete();
        assert!(s.ready_for_wave());
        // Odd-side counts are folded into the even side at wave exit.
        s.enter_wave();
        s.exit_wave();
        assert_eq!(s.counters(Parity::Even).received, 1);
        assert_eq!(s.counters(Parity::Even).completed, 1);
        assert_eq!(s.counters(Parity::Odd).received, 0);
        assert!(s.ready_for_wave());
    }

    #[test]
    fn even_message_reception_does_not_flip() {
        let mut s = EpochState::new();
        s.on_receive(Parity::Even);
        assert_eq!(s.parity(), Parity::Even);
        assert!(!s.ready_for_wave());
        s.on_complete();
        assert!(s.ready_for_wave());
    }

    #[test]
    fn fold_accumulates_cumulatively() {
        let mut s = EpochState::new();
        s.on_send(); // even
        s.on_delivered();
        s.enter_wave();
        s.on_send(); // odd
        s.on_delivered();
        s.exit_wave();
        assert_eq!(s.counters(Parity::Even).sent, 2);
        assert_eq!(s.counters(Parity::Even).delivered, 2);
        // Contribution of next wave is cumulative sent − completed.
        assert_eq!(s.enter_wave(), 2);
    }

    #[test]
    fn imbalance_tracks_sent_minus_completed() {
        let mut s = EpochState::new();
        s.on_send();
        assert_eq!(s.local_imbalance(), 1);
        s.on_receive(Parity::Even);
        s.on_complete();
        assert_eq!(s.local_imbalance(), 0); // 1 sent − 1 completed
    }
}
