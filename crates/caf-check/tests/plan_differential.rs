//! The differential oracle between `caf-lint` (static happens-before)
//! and `caf-check` (exhaustive plan exploration), run over the shipped
//! corpus: every race or deadlock the linter reports on a fixture must
//! be realizable in some explored interleaving, and every clean example
//! plan must be counterexample-free under exhaustive search.

use std::fs;
use std::path::{Path, PathBuf};

use caf_check::check_plan;
use caf_lint::{lint, parse, Analysis, Plan};

/// Comfortably above the largest corpus plan (stencil: ~11k states).
const CAP: usize = 300_000;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn plan_files(dir: &str) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(repo_root().join(dir))
        .unwrap_or_else(|e| panic!("reading {dir}: {e}"))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "plan"))
        .collect();
    out.sort();
    assert!(!out.is_empty(), "no .plan files under {dir}");
    out
}

fn load(path: &Path) -> Plan {
    let src = fs::read_to_string(path).unwrap();
    parse(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn example_plans_are_clean_and_counterexample_free() {
    let files = plan_files("examples/plans");
    assert_eq!(files.len(), 5, "expected the five example plans");
    for path in files {
        let plan = load(&path);
        let diags = lint(&plan).unwrap();
        assert!(
            diags.iter().all(|d| !d.is_error()),
            "{}: unexpected error diagnostics {diags:?}",
            path.display()
        );
        let a = check_plan(&plan, CAP).unwrap();
        assert!(a.ok(), "{}: {}", path.display(), a.summary());
        assert!(
            a.verdict.races.is_empty() && !a.verdict.deadlock,
            "{}: explorer found a counterexample in a lint-clean plan: {}",
            path.display(),
            a.summary()
        );
    }
}

#[test]
fn fixture_diagnostics_are_realizable() {
    let files = plan_files("tests/fixtures/lints");
    assert!(files.len() >= 8, "seeded-misuse corpus shrank to {}", files.len());
    for path in files {
        let plan = load(&path);
        let a = check_plan(&plan, CAP).unwrap();
        // `ok()` asserts both directions: every static race was realized
        // in some interleaving, no dynamic race was unpredicted, and the
        // deadlock verdicts agree.
        assert!(a.ok(), "{}: {}", path.display(), a.summary());
    }
}

#[test]
fn fixture_corpus_spans_all_four_analyses() {
    let mut seen = std::collections::BTreeSet::new();
    let mut distinct = std::collections::BTreeSet::new();
    for path in plan_files("tests/fixtures/lints") {
        for d in lint(&load(&path)).unwrap() {
            seen.insert(d.analysis);
            distinct.insert((d.analysis, d.message.clone()));
        }
    }
    for a in [Analysis::Race, Analysis::Fence, Analysis::Finish, Analysis::Event] {
        assert!(seen.contains(&a), "no fixture exercises the {a:?} analysis");
    }
    assert!(distinct.len() >= 8, "only {} distinct diagnostics", distinct.len());
}

#[test]
fn deleting_a_needed_fence_is_flagged_by_both_sides() {
    for name in ["stencil", "pipeline"] {
        let src =
            fs::read_to_string(repo_root().join(format!("examples/plans/{name}.plan"))).unwrap();
        let mutated: String = src
            .lines()
            .filter(|l| !l.trim_start().starts_with("cofence"))
            .collect::<Vec<_>>()
            .join("\n");
        let plan = parse(&mutated).unwrap();
        let diags = lint(&plan).unwrap();
        assert!(
            diags.iter().any(|d| d.is_error() && d.analysis == Analysis::Race),
            "{name}: fence deletion went unnoticed statically: {diags:?}"
        );
        let a = check_plan(&plan, CAP).unwrap();
        assert!(a.ok(), "{name} mutant: {}", a.summary());
        assert!(!a.verdict.races.is_empty(), "{name} mutant: explorer never realized the race");
    }
}
