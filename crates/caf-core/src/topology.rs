//! Teams and the communication topologies built over them.
//!
//! A CAF 2.0 *team* (paper §II-A) is a first-class process subset serving
//! three purposes: a coarray allocation domain, a relative-rank name space,
//! and an isolated collective-communication domain. This module provides
//! the pure membership/rank bookkeeping plus the tree and round schedules
//! that both the threaded runtime and the discrete-event simulator use to
//! drive collectives:
//!
//! * **binomial trees** for broadcast / reduce (and hence the synchronous
//!   `allreduce` at the heart of `finish` termination detection),
//! * **dissemination rounds** for barriers,
//! * **hypercube neighbours** for UTS lifelines (paper §IV-C2c: offsets
//!   2⁰, 2¹, …, 2^⌊log₂ p⌋).

use crate::ids::{ImageId, TeamId, TeamRank};

/// Immutable description of a team: its id and its members listed by
/// team rank (so `members[k]` is the global image with team rank `k`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Team {
    id: TeamId,
    members: Vec<ImageId>,
}

impl Team {
    /// Creates a team from its member list. Members must be distinct.
    ///
    /// # Panics
    /// Panics if `members` is empty or contains duplicates.
    pub fn new(id: TeamId, members: Vec<ImageId>) -> Self {
        assert!(!members.is_empty(), "a team must have at least one member");
        let mut seen = members.iter().map(|m| m.0).collect::<Vec<_>>();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), members.len(), "team members must be distinct");
        Team { id, members }
    }

    /// The whole-world team over images `0..n`.
    pub fn world(n: usize) -> Self {
        Team::new(TeamId::WORLD, (0..n).map(ImageId).collect())
    }

    /// This team's id.
    #[inline]
    pub fn id(&self) -> TeamId {
        self.id
    }

    /// Number of members.
    #[inline]
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Members in team-rank order.
    #[inline]
    pub fn members(&self) -> &[ImageId] {
        &self.members
    }

    /// Global image holding team rank `rank`.
    ///
    /// # Panics
    /// Panics if `rank` is out of range.
    #[inline]
    pub fn image_of(&self, rank: TeamRank) -> ImageId {
        self.members[rank.0]
    }

    /// Team rank of a global image, or `None` if it is not a member.
    pub fn rank_of(&self, image: ImageId) -> Option<TeamRank> {
        self.members.iter().position(|&m| m == image).map(TeamRank)
    }

    /// Splits this team the way CAF 2.0 `team_split(color, key)` does:
    /// members with equal `color` form a new team, ordered by `key`
    /// (ties broken by original rank). Returns `(color, members)` pairs in
    /// ascending color order.
    ///
    /// `color_key` is evaluated per member rank. The caller assigns the new
    /// `TeamId`s, since id allocation is a runtime concern.
    pub fn split_by(&self, color_key: impl Fn(TeamRank) -> (u64, u64)) -> Vec<(u64, Vec<ImageId>)> {
        let mut tagged: Vec<(u64, u64, usize)> = (0..self.size())
            .map(|r| {
                let (color, key) = color_key(TeamRank(r));
                (color, key, r)
            })
            .collect();
        tagged.sort_by_key(|&(color, key, r)| (color, key, r));
        let mut out: Vec<(u64, Vec<ImageId>)> = Vec::new();
        for (color, _key, r) in tagged {
            match out.last_mut() {
                Some((c, v)) if *c == color => v.push(self.members[r]),
                _ => out.push((color, vec![self.members[r]])),
            }
        }
        out
    }
}

/// Number of dissemination/tree rounds for a team of `n`: ⌈log₂ n⌉.
#[inline]
pub fn log2_rounds(n: usize) -> usize {
    assert!(n > 0);
    (usize::BITS - (n - 1).leading_zeros()) as usize
}

/// Binomial-tree relations for a broadcast/reduce rooted at team rank
/// `root` in a team of `size` members.
///
/// Ranks are rotated so the root is virtual rank 0; virtual rank `v` has
/// parent `v - 2^k` where `2^k` is `v`'s lowest set bit, and children
/// `v + 2^j` for `j` above `v`'s lowest set bit, while `< size`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinomialTree {
    size: usize,
    root: usize,
}

impl BinomialTree {
    /// Tree over `size` ranks rooted at `root`.
    ///
    /// # Panics
    /// Panics if `root >= size` or `size == 0`.
    pub fn new(size: usize, root: TeamRank) -> Self {
        assert!(size > 0 && root.0 < size);
        BinomialTree { size, root: root.0 }
    }

    #[inline]
    fn virtual_of(&self, rank: TeamRank) -> usize {
        (rank.0 + self.size - self.root) % self.size
    }

    #[inline]
    fn rank_at(&self, v: usize) -> TeamRank {
        TeamRank((v + self.root) % self.size)
    }

    /// Parent of `rank` in the tree, or `None` for the root.
    pub fn parent(&self, rank: TeamRank) -> Option<TeamRank> {
        let v = self.virtual_of(rank);
        if v == 0 {
            None
        } else {
            let low = v & v.wrapping_neg();
            Some(self.rank_at(v - low))
        }
    }

    /// Children of `rank`, in the order a broadcast should send to them
    /// (largest subtree first, so the deepest subtree starts earliest).
    pub fn children(&self, rank: TeamRank) -> Vec<TeamRank> {
        let v = self.virtual_of(rank);
        let low = if v == 0 { self.size.next_power_of_two() } else { v & v.wrapping_neg() };
        let mut out = Vec::new();
        let mut bit = low >> 1;
        while bit > 0 {
            let child = v + bit;
            if child < self.size {
                out.push(self.rank_at(child));
            }
            bit >>= 1;
        }
        out
    }

    /// Depth of the tree (max edges root→leaf): ⌈log₂ size⌉.
    pub fn depth(&self) -> usize {
        log2_rounds(self.size)
    }
}

/// Peers contacted by `rank` in each round of a dissemination barrier over
/// `size` ranks: in round `i` (0-based), send to `(rank + 2^i) mod size`
/// and expect from `(rank − 2^i) mod size`.
pub fn dissemination_peers(size: usize, rank: TeamRank) -> Vec<(TeamRank, TeamRank)> {
    assert!(rank.0 < size);
    (0..log2_rounds(size.max(2)))
        .map(|i| {
            let d = 1usize << i;
            let to = TeamRank((rank.0 + d) % size);
            let from = TeamRank((rank.0 + size - d % size) % size);
            (to, from)
        })
        .collect()
}

/// Hypercube lifeline neighbours of `rank` in a team of `size` (paper
/// §IV-C2c): ranks `rank XOR 2^i` for `i = 0..⌈log₂ size⌉`, keeping those
/// `< size`.
pub fn hypercube_neighbors(size: usize, rank: TeamRank) -> Vec<TeamRank> {
    assert!(rank.0 < size);
    if size == 1 {
        return Vec::new();
    }
    (0..log2_rounds(size))
        .filter_map(|i| {
            let n = rank.0 ^ (1usize << i);
            (n < size).then_some(TeamRank(n))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_team_ranks_are_identity() {
        let t = Team::world(5);
        assert_eq!(t.size(), 5);
        for i in 0..5 {
            assert_eq!(t.rank_of(ImageId(i)), Some(TeamRank(i)));
            assert_eq!(t.image_of(TeamRank(i)), ImageId(i));
        }
        assert_eq!(t.rank_of(ImageId(5)), None);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_members_rejected() {
        Team::new(TeamId(1), vec![ImageId(0), ImageId(0)]);
    }

    #[test]
    fn split_groups_by_color_and_orders_by_key() {
        let t = Team::world(6);
        // Colors: even/odd rank. Key: reverse order within the color.
        let groups = t.split_by(|r| ((r.0 % 2) as u64, (10 - r.0) as u64));
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, 0);
        assert_eq!(groups[0].1, vec![ImageId(4), ImageId(2), ImageId(0)]);
        assert_eq!(groups[1].1, vec![ImageId(5), ImageId(3), ImageId(1)]);
    }

    #[test]
    fn log2_rounds_values() {
        assert_eq!(log2_rounds(1), 0);
        assert_eq!(log2_rounds(2), 1);
        assert_eq!(log2_rounds(3), 2);
        assert_eq!(log2_rounds(4), 2);
        assert_eq!(log2_rounds(5), 3);
        assert_eq!(log2_rounds(1024), 10);
    }

    /// Every non-root rank has exactly one parent, and parent/child
    /// relations are mutual, for assorted sizes and roots.
    #[test]
    fn binomial_tree_is_consistent() {
        for size in 1..=33 {
            for root in [0, size / 2, size - 1] {
                let tree = BinomialTree::new(size, TeamRank(root));
                let mut reached = vec![false; size];
                // Walk down from the root; every rank must be reached once.
                let mut stack = vec![TeamRank(root)];
                while let Some(r) = stack.pop() {
                    assert!(!reached[r.0], "rank {} reached twice", r.0);
                    reached[r.0] = true;
                    for c in tree.children(r) {
                        assert_eq!(tree.parent(c), Some(r));
                        stack.push(c);
                    }
                }
                assert!(reached.iter().all(|&x| x), "size={size} root={root}");
                assert_eq!(tree.parent(TeamRank(root)), None);
            }
        }
    }

    #[test]
    fn binomial_depth_is_log() {
        assert_eq!(BinomialTree::new(1, TeamRank(0)).depth(), 0);
        assert_eq!(BinomialTree::new(8, TeamRank(0)).depth(), 3);
        assert_eq!(BinomialTree::new(9, TeamRank(4)).depth(), 4);
    }

    /// After all dissemination rounds, information from every rank has
    /// reached every other rank (the barrier correctness property).
    #[test]
    fn dissemination_reaches_everyone() {
        for size in 1..=17 {
            // knows[r] = bitmask of ranks whose arrival r has heard about.
            let mut knows: Vec<u128> = (0..size).map(|r| 1u128 << r).collect();
            let rounds = log2_rounds(size.max(2));
            for round in 0..rounds {
                let snapshot = knows.clone();
                for (r, snap) in snapshot.iter().enumerate() {
                    let (to, _from) = dissemination_peers(size, TeamRank(r))[round];
                    knows[to.0] |= snap;
                }
            }
            let all = (1u128 << size) - 1;
            for (r, k) in knows.iter().enumerate() {
                assert_eq!(*k, all, "size={size} rank={r}");
            }
        }
    }

    #[test]
    fn hypercube_neighbors_are_symmetric_and_bounded() {
        for size in 1..=20 {
            for r in 0..size {
                for n in hypercube_neighbors(size, TeamRank(r)) {
                    assert!(n.0 < size);
                    assert_ne!(n.0, r);
                    assert!(
                        hypercube_neighbors(size, n).contains(&TeamRank(r)),
                        "size={size}: {r} -> {} not symmetric",
                        n.0
                    );
                }
            }
        }
        // p = 8: each rank has exactly 3 neighbours.
        assert_eq!(hypercube_neighbors(8, TeamRank(5)).len(), 3);
    }
}
