//! The paper's §III-B cofence pass/block table, written out by hand and
//! checked exhaustively against the implementation: every `DOWNWARD` ×
//! `UPWARD` argument pair (None/READ/WRITE/ANY both ways, 16 fences)
//! against every async-operation class — asynchronous copy with a local
//! source (local read), asynchronous copy with a local destination (local
//! write), asynchronous collective (local read *and* write), and shipped
//! function (argument marshalling, local read).
//!
//! The expectations below are literal table entries, not a re-derivation
//! through `Pass::admits` — that function is the thing under test.

use caf_core::cofence::{CofenceSpec, LocalAccess, Pass};

/// `(class name, local access)` for each async-operation class.
const OP_CLASSES: [(&str, LocalAccess); 4] = [
    ("copy-read", LocalAccess::READ),
    ("copy-write", LocalAccess::WRITE),
    ("async-collective", LocalAccess::READ_WRITE),
    ("shipped-fn", LocalAccess::READ),
];

/// The hand-written table: may an operation of the given class cross a
/// fence argument? Rows follow `OP_CLASSES`; columns are the fence
/// argument None / READ / WRITE / ANY. Identical in both directions —
/// the paper gives one crossing rule, applied downward and upward.
const CROSSES: [[bool; 4]; 4] = [
    // None   READ   WRITE  ANY
    [false, true, false, true],  // copy-read
    [false, false, true, true],  // copy-write
    [false, false, false, true], // async-collective: only ANY
    [false, true, false, true],  // shipped-fn marshals = local read
];

const ARGS: [Pass; 4] = [Pass::None, Pass::Reads, Pass::Writes, Pass::Any];

#[test]
fn downward_matches_the_paper_table_for_every_fence_and_class() {
    for (d_idx, &down) in ARGS.iter().enumerate() {
        for &up in &ARGS {
            let fence = CofenceSpec::new(down, up);
            for (row, &(name, access)) in OP_CLASSES.iter().enumerate() {
                let expect_cross = CROSSES[row][d_idx];
                assert_eq!(
                    !fence.blocks_down(access),
                    expect_cross,
                    "cofence(DOWNWARD={down:?}, UPWARD={up:?}) × {name}: \
                     downward crossing must be {expect_cross}"
                );
            }
        }
    }
}

#[test]
fn upward_matches_the_paper_table_for_every_fence_and_class() {
    for &down in &ARGS {
        for (u_idx, &up) in ARGS.iter().enumerate() {
            let fence = CofenceSpec::new(down, up);
            for (row, &(name, access)) in OP_CLASSES.iter().enumerate() {
                let expect_cross = CROSSES[row][u_idx];
                assert_eq!(
                    fence.admits_up(access),
                    expect_cross,
                    "cofence(DOWNWARD={down:?}, UPWARD={up:?}) × {name}: \
                     upward crossing must be {expect_cross}"
                );
            }
        }
    }
}

#[test]
fn directions_are_independent() {
    // The downward verdict must not depend on the upward argument and
    // vice versa: 16 fences, every class, both directions pinned to the
    // row computed above.
    for &(name, access) in &OP_CLASSES {
        for &d in &ARGS {
            let verdicts: Vec<bool> =
                ARGS.iter().map(|&u| CofenceSpec::new(d, u).blocks_down(access)).collect();
            assert!(
                verdicts.windows(2).all(|w| w[0] == w[1]),
                "{name}: downward verdict varies with the upward argument"
            );
        }
        for &u in &ARGS {
            let verdicts: Vec<bool> =
                ARGS.iter().map(|&d| CofenceSpec::new(d, u).admits_up(access)).collect();
            assert!(
                verdicts.windows(2).all(|w| w[0] == w[1]),
                "{name}: upward verdict varies with the downward argument"
            );
        }
    }
}

#[test]
fn the_default_fence_is_the_full_fence() {
    // `cofence()` with no arguments blocks everything both ways — the
    // conservative default the paper specifies.
    let fence = CofenceSpec::default();
    assert_eq!(fence, CofenceSpec::FULL);
    for &(name, access) in &OP_CLASSES {
        assert!(fence.blocks_down(access), "{name} crossed the full fence downward");
        assert!(!fence.admits_up(access), "{name} crossed the full fence upward");
    }
}

#[test]
fn a_no_local_memory_op_still_only_crosses_any() {
    // A purely remote-to-remote third-party copy touches no local memory;
    // READ and WRITE name *classes*, and an operation in neither class
    // only crosses ANY.
    let access = LocalAccess::NONE;
    assert!(!CofenceSpec::new(Pass::Reads, Pass::Reads).admits_up(access));
    assert!(!CofenceSpec::new(Pass::Writes, Pass::Writes).admits_up(access));
    assert!(CofenceSpec::new(Pass::Any, Pass::Any).admits_up(access));
    assert!(CofenceSpec::new(Pass::Reads, Pass::None).blocks_down(access));
    assert!(!CofenceSpec::new(Pass::Any, Pass::None).blocks_down(access));
}
