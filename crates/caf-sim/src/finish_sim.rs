//! Virtual-time `finish` coordination.
//!
//! Drives one [`EpochDetector`] per simulated image — the *same* state
//! machine the threaded runtime uses — and models the synchronous team
//! allreduce: a wave opens as images become eligible (idle, queue drained,
//! detector-ready) and closes `allreduce_cost(p)` after the last image
//! enters; every image receives the same sum. Messages delivered while a
//! wave is open are counted in the odd epoch by the detector itself, so
//! the consistent-cut arithmetic is identical to the real runtime's.

use caf_core::ids::Parity;
use caf_core::termination::{EpochDetector, WaveDecision, WaveDetector};

/// Per-`finish`-block wave coordinator over `p` simulated images.
pub struct FinishSim {
    detectors: Vec<EpochDetector>,
    in_wave: Vec<bool>,
    entered: usize,
    sum: [i64; 2],
    waves: usize,
    terminated: bool,
    /// Entry time of the latest entrant (the wave's start for costing).
    pub last_entry_ns: u64,
}

impl FinishSim {
    /// Coordinator for `p` images; `strict` selects the paper's
    /// wait-for-quiescence algorithm vs. the Fig. 18 no-upper-bound
    /// baseline.
    pub fn new(p: usize, strict: bool) -> Self {
        FinishSim {
            detectors: (0..p).map(|_| EpochDetector::new(strict)).collect(),
            in_wave: vec![false; p],
            entered: 0,
            sum: [0; 2],
            waves: 0,
            terminated: false,
            last_entry_ns: 0,
        }
    }

    /// Records a send by `img`; returns the message's epoch tag.
    pub fn on_send(&mut self, img: usize) -> Parity {
        self.detectors[img].on_send()
    }

    /// Records delivery of a `tag`-tagged message at `img`.
    pub fn on_receive(&mut self, img: usize, tag: Parity) {
        self.detectors[img].on_receive(tag);
    }

    /// Records completion of a received message's handler at `img`.
    pub fn on_complete(&mut self, img: usize, tag: Parity) {
        self.detectors[img].on_complete(tag);
    }

    /// Records a delivery acknowledgement arriving back at sender `img`.
    pub fn on_delivered(&mut self, img: usize) {
        self.detectors[img].on_delivered(Parity::Even);
    }

    /// Whether `img`'s detector permits joining the next wave.
    pub fn detector_ready(&self, img: usize) -> bool {
        self.detectors[img].ready()
    }

    /// Whether `img` is currently inside the open wave.
    pub fn in_wave(&self, img: usize) -> bool {
        self.in_wave[img]
    }

    /// Global termination already detected?
    pub fn terminated(&self) -> bool {
        self.terminated
    }

    /// Waves completed so far (the Fig. 18 metric).
    pub fn waves(&self) -> usize {
        self.waves
    }

    /// Attempts to enter `img` into the open wave at time `now_ns`
    /// (the model must have checked that `img` is otherwise idle).
    /// Returns `true` if this entry completed the wave — the caller then
    /// schedules a wave-completion event at `now + allreduce_cost`.
    pub fn try_enter(&mut self, img: usize, now_ns: u64) -> bool {
        if self.terminated || self.in_wave[img] || !self.detectors[img].ready() {
            return false;
        }
        self.in_wave[img] = true;
        self.entered += 1;
        let c = self.detectors[img].enter_wave();
        self.sum[0] += c[0];
        self.sum[1] += c[1];
        self.last_entry_ns = now_ns;
        self.entered == self.detectors.len()
    }

    /// Completes the wave: every image exits with the global sum.
    pub fn complete_wave(&mut self) -> WaveDecision {
        assert_eq!(self.entered, self.detectors.len(), "wave completed early");
        let sum = std::mem::take(&mut self.sum);
        self.waves += 1;
        self.entered = 0;
        let mut decision = WaveDecision::Continue;
        for (i, d) in self.detectors.iter_mut().enumerate() {
            decision = d.exit_wave(sum);
            self.in_wave[i] = false;
        }
        if decision == WaveDecision::Terminated {
            self.terminated = true;
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_system_terminates_in_one_wave() {
        let mut f = FinishSim::new(3, true);
        assert!(!f.try_enter(0, 10));
        assert!(!f.try_enter(1, 20));
        assert!(f.try_enter(2, 30), "last entrant closes the wave");
        assert_eq!(f.last_entry_ns, 30);
        assert_eq!(f.complete_wave(), WaveDecision::Terminated);
        assert!(f.terminated());
        assert_eq!(f.waves(), 1);
    }

    #[test]
    fn outstanding_message_forces_second_wave() {
        let mut f = FinishSim::new(2, true);
        let tag = f.on_send(0);
        // Image 1 idle, enters. Image 0 not ready (unacked send).
        assert!(!f.try_enter(1, 0));
        assert!(!f.try_enter(0, 0));
        // Message lands & completes at 1; ack returns to 0.
        f.on_receive(1, tag);
        f.on_complete(1, tag);
        f.on_delivered(0);
        assert!(f.try_enter(0, 5), "now ready; wave closes");
        // Image 1 entered before the completion was counted in its even
        // epoch? It entered at t=0 with contribution 0; image 0
        // contributes sent−completed = 1 → sum ≠ 0 → continue… unless
        // image 1's counts landed pre-entry. Either way the protocol
        // must terminate within two waves.
        let d1 = f.complete_wave();
        if d1 == WaveDecision::Continue {
            assert!(!f.try_enter(0, 10) && f.try_enter(1, 10) || f.try_enter(0, 10));
            while !f.in_wave(0) {
                f.try_enter(0, 11);
            }
            while !f.in_wave(1) {
                f.try_enter(1, 11);
            }
            assert_eq!(f.complete_wave(), WaveDecision::Terminated);
        }
        assert!(f.terminated());
        assert!(f.waves() <= 2);
    }

    #[test]
    fn loose_detector_enters_despite_outstanding_sends() {
        let mut f = FinishSim::new(2, false);
        let _tag = f.on_send(0);
        assert!(!f.try_enter(0, 0), "first entrant doesn't close");
        assert!(f.try_enter(1, 0));
        // Sum sees the un-completed send → continue.
        assert_eq!(f.complete_wave(), WaveDecision::Continue);
    }

    #[test]
    #[should_panic(expected = "wave completed early")]
    fn early_completion_is_rejected() {
        let mut f = FinishSim::new(2, true);
        f.try_enter(0, 0);
        f.complete_wave();
    }
}
