//! Criterion micro-benchmarks for the runtime's hot primitives and the
//! UTS generator (including the SHA-1 vs. SplitMix hash ablation).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use caf_core::rng::splitmix64_hash;
use caf_core::termination::harness::{chain, Harness, SpawnPlan};
use caf_core::termination::EpochDetector;
use caf_runtime::{CopyEvents, Runtime, RuntimeConfig};
use uts::{count_tree, TreeSpec, UtsRng};

/// SHA-1 descriptor derivation vs. the SplitMix alternative — the
/// work-grain knob of the UTS hash ablation.
fn bench_hashes(c: &mut Criterion) {
    let mut g = c.benchmark_group("uts_hash");
    g.throughput(Throughput::Elements(1));
    let state = UtsRng::init(19);
    g.bench_function("sha1_spawn", |b| {
        let mut i = 0i32;
        b.iter(|| {
            i = i.wrapping_add(1);
            std::hint::black_box(state.spawn(i))
        })
    });
    g.bench_function("splitmix_hash", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            std::hint::black_box(splitmix64_hash(i))
        })
    });
    g.finish();
}

/// Sequential UTS expansion throughput (nodes/second).
fn bench_uts_expand(c: &mut Criterion) {
    let spec = TreeSpec::geo_fixed(4.0, 5, 19);
    let nodes = count_tree(&spec).nodes;
    let mut g = c.benchmark_group("uts_expand");
    g.throughput(Throughput::Elements(nodes));
    g.bench_function("geo_d5_full_tree", |b| b.iter(|| std::hint::black_box(count_tree(&spec))));
    g.finish();
}

/// The epoch detector's pure state-machine cost: a full protocol run
/// (sends, receives, acks, waves) on the abstract harness.
fn bench_detector(c: &mut Criterion) {
    c.bench_function("epoch_detector_chain5_8imgs", |b| {
        b.iter_batched(
            || {
                let mut plan = SpawnPlan::default();
                plan.spawn(0, chain(&[1, 2, 3, 4, 5]));
                plan
            },
            |plan| {
                let mut h = Harness::new(8, || Box::new(EpochDetector::new(true)));
                std::hint::black_box(h.run(plan))
            },
            BatchSize::SmallInput,
        )
    });
}

/// Whole-runtime primitives, measured end-to-end per operation by
/// batching inside one launch (launch cost amortized out).
fn bench_runtime_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime");
    g.sample_size(10);

    g.bench_function("spawn_roundtrip_2imgs_x1000", |b| {
        b.iter(|| {
            Runtime::launch(2, RuntimeConfig::testing(), |img| {
                if img.id().index() == 0 {
                    for _ in 0..1000 {
                        let done = img.event();
                        img.spawn_notify(img.image(1), done, |_p| {});
                        img.event_wait(done);
                    }
                }
                img.barrier(&img.world());
            })
        })
    });

    g.bench_function("copy_async_initiate_x1000", |b| {
        b.iter(|| {
            Runtime::launch(2, RuntimeConfig::testing(), |img| {
                let w = img.world();
                let a = img.coarray(&w, 16, 0u64);
                let src = caf_runtime::LocalArray::new(vec![1u64; 16]);
                if img.id().index() == 0 {
                    for _ in 0..1000 {
                        img.copy_async_from(
                            a.slice(img.image(1), 0..16),
                            &src,
                            0..16,
                            CopyEvents::none(),
                        );
                    }
                    img.cofence();
                }
                img.finish(&w, |_| {});
            })
        })
    });

    g.bench_function("empty_finish_4imgs_x100", |b| {
        b.iter(|| {
            Runtime::launch(4, RuntimeConfig::testing(), |img| {
                let w = img.world();
                for _ in 0..100 {
                    img.finish(&w, |_| {});
                }
            })
        })
    });

    g.bench_function("barrier_4imgs_x1000", |b| {
        b.iter(|| {
            Runtime::launch(4, RuntimeConfig::testing(), |img| {
                let w = img.world();
                for _ in 0..1000 {
                    img.barrier(&w);
                }
            })
        })
    });

    g.finish();
}

criterion_group!(benches, bench_hashes, bench_uts_expand, bench_detector, bench_runtime_ops);
criterion_main!(benches);
