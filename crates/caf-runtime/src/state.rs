//! Per-image mutable state.
//!
//! Everything here is touched only by the image's own thread (AM handlers
//! run on it during progress), so it sits behind a `RefCell` in
//! [`crate::image::Image`]. State shared with communication threads —
//! event tables, coarray segments, completion cells — lives elsewhere
//! behind locks.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use caf_core::cofence::LocalAccess;
use caf_core::ids::{FinishId, TeamId};
use caf_core::rng::SplitMix64;
use caf_core::termination::EpochDetector;

use crate::completion::Completion;
use crate::event::Event;
use crate::msg::CollKey;

/// Detector state for one dynamic `finish` block on this image. Frames
/// are created lazily: a message belonging to finish `F` can arrive before
/// this image has entered `F` (paper Fig. 5 is exactly that race), so
/// reception must be able to materialize the frame.
pub(crate) struct FinishFrame {
    /// The paper's termination detector for this block.
    pub detector: EpochDetector,
}

/// An implicitly completed asynchronous operation awaiting local data
/// completion, tracked for `cofence`.
pub(crate) struct PendingOp {
    /// The operation's completion cell.
    pub completion: Arc<Completion>,
    /// How the operation touches this image's local memory (its cofence
    /// class).
    pub access: LocalAccess,
}

/// Registration side of an asynchronous-collective instance: the local
/// call's completion cell and its optional events (`srcE` / `localE` in
/// the paper's API).
pub(crate) struct AsyncReg {
    /// Completion cell of the local call's descriptor.
    pub completion: Arc<Completion>,
    /// Event for local data completion (`srcE` in the paper's API).
    pub data_event: Option<Event>,
    /// Event for local operation completion (`localE`).
    pub local_event: Option<Event>,
}

/// All single-thread mutable state of one image.
pub(crate) struct ImageState {
    /// Per-finish detector frames (lazily created).
    pub finish_frames: HashMap<FinishId, FinishFrame>,
    /// Next finish sequence number per team.
    pub finish_seq: HashMap<TeamId, u64>,
    /// Dynamic attribution context: what finish (if any) newly initiated
    /// operations belong to. The main program pushes on `finish` entry;
    /// AM handlers push the incoming message's attribution (dynamic
    /// scoping of transitively spawned work).
    pub ctx_stack: Vec<Option<FinishId>>,
    /// Buffered synchronous-collective hops that arrived before the local
    /// matching call consumed them.
    pub coll_buf: HashMap<CollKey, Box<dyn Any + Send>>,
    /// Next collective sequence number per team (SPMD-matched).
    pub coll_seq: HashMap<TeamId, u64>,
    /// Next collective-allocation sequence number per team.
    pub alloc_seq: HashMap<TeamId, u64>,
    /// Next team-split sequence number per parent team.
    pub split_seq: HashMap<TeamId, u64>,
    /// Next asynchronous-collective sequence number per team.
    pub async_seq: HashMap<TeamId, u64>,
    /// Next co-event slot (SPMD-matched across images).
    pub coevent_seq: u64,
    /// Next purely local event slot (disjoint range from co-events).
    pub local_event_seq: u64,
    /// Cofence pending-operation scopes. `[0]` is the main program;
    /// each executing shipped function pushes its own scope (paper
    /// Fig. 10: cofence in a shipped function sees only operations that
    /// function launched).
    pub pending_scopes: Vec<Vec<PendingOp>>,
    /// Asynchronous-collective instances, keyed by `(team, async seq)`.
    /// Created by whichever side arrives first — the local call or a tree
    /// message — and reconciled as the other side shows up.
    pub async_inst: HashMap<(TeamId, u64), crate::async_coll::AsyncInst>,
    /// Reduction waves used by the most recent completed finish block
    /// (Fig. 18's metric).
    pub last_finish_waves: usize,
    /// Per-image deterministic RNG, available to runtime helpers and
    /// workloads that want reproducible choices (seeded from the runtime
    /// seed and the image rank).
    pub rng: SplitMix64,
}

impl ImageState {
    pub(crate) fn new(seed: u64) -> Self {
        ImageState {
            finish_frames: HashMap::new(),
            finish_seq: HashMap::new(),
            ctx_stack: Vec::new(),
            coll_buf: HashMap::new(),
            coll_seq: HashMap::new(),
            alloc_seq: HashMap::new(),
            split_seq: HashMap::new(),
            async_seq: HashMap::new(),
            coevent_seq: 0,
            local_event_seq: 1 << 62,
            pending_scopes: vec![Vec::new()],
            async_inst: HashMap::new(),
            last_finish_waves: 0,
            rng: SplitMix64::new(seed),
        }
    }

    /// Next sequence number from one of the per-team counters.
    pub(crate) fn bump(map: &mut HashMap<TeamId, u64>, team: TeamId) -> u64 {
        let c = map.entry(team).or_insert(0);
        let v = *c;
        *c += 1;
        v
    }
}
