//! Self-contained counterexample replay files.
//!
//! A replay file captures everything needed to re-execute one schedule
//! bit-for-bit: the scenario (images, spawn trees, optional crash), the
//! detector family, the seeded mutation if any, the transition schedule,
//! and the violation kind the run is expected to exhibit. The fixture
//! corpus under `tests/fixtures/counterexamples/` and the
//! `caf-check replay <file>` subcommand both consume this format.
//!
//! ```text
//! caf-check-replay v1
//! family epoch-strict
//! images 3
//! spawn 0 1(2,2)
//! mutation merge-epochs
//! expect safety
//! schedule
//! deliver r0
//! enter 1
//! ...
//! end
//! ```
//!
//! Lines starting with `#` are comments. The schedule is strict: every
//! transition must be enabled when its line is reached, and the expected
//! violation must actually fire — anything else is a replay failure.

use crate::explore::Counterexample;
use crate::mutation::{Family, Mutation};
use crate::scenario::{parse_tree, tree_text, Scenario};
use crate::world::{Outcome, TKey, Violation, ViolationKind, World};

/// Magic first line of the format.
const MAGIC: &str = "caf-check-replay v1";

/// A parsed replay file.
#[derive(Debug, Clone, PartialEq)]
pub struct Replay {
    /// The scenario to rebuild.
    pub scenario: Scenario,
    /// Detector family to drive.
    pub family: Family,
    /// Seeded mutation, if the counterexample came from a mutant.
    pub mutation: Option<Mutation>,
    /// Expected violation; `None` means the schedule must terminate
    /// cleanly (used for regression-pinning good schedules).
    pub expect: Option<ViolationKind>,
    /// The transition schedule.
    pub schedule: Vec<TKey>,
}

impl Replay {
    /// Packages a counterexample for writing to disk.
    pub fn from_counterexample(ce: &Counterexample) -> Replay {
        Replay {
            scenario: ce.scenario.clone(),
            family: ce.family,
            mutation: ce.mutation,
            expect: Some(ce.violation.kind),
            schedule: ce.schedule.clone(),
        }
    }

    /// Serializes to the textual format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        out.push_str(&format!("family {}\n", self.family.name()));
        out.push_str(&format!("images {}\n", self.scenario.images));
        for (from, tree) in &self.scenario.roots {
            out.push_str(&format!("spawn {from} {}\n", tree_text(tree)));
        }
        if let Some(v) = self.scenario.crash {
            out.push_str(&format!("crash-victim {v}\n"));
        }
        if let Some(m) = self.mutation {
            out.push_str(&format!("mutation {}\n", m.name()));
        }
        match self.expect {
            Some(kind) => out.push_str(&format!("expect {}\n", kind.name())),
            None => out.push_str("expect none\n"),
        }
        out.push_str("schedule\n");
        for k in &self.schedule {
            out.push_str(&format!("{k}\n"));
        }
        out.push_str("end\n");
        out
    }

    /// Parses the textual format.
    pub fn parse(text: &str) -> Result<Replay, String> {
        let mut lines =
            text.lines().map(str::trim).filter(|l| !l.is_empty() && !l.starts_with('#'));
        if lines.next() != Some(MAGIC) {
            return Err(format!("missing magic line {MAGIC:?}"));
        }
        let mut family = None;
        let mut images = None;
        let mut roots = Vec::new();
        let mut crash = None;
        let mut mutation = None;
        let mut expect = None;
        let mut in_schedule = false;
        let mut schedule = Vec::new();
        let mut ended = false;
        for line in lines {
            if ended {
                return Err(format!("content after end: {line:?}"));
            }
            if in_schedule {
                if line == "end" {
                    ended = true;
                } else {
                    schedule.push(TKey::parse(line)?);
                }
                continue;
            }
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "family" => family = Some(Family::parse(rest)?),
                "images" => {
                    images = Some(rest.parse::<usize>().map_err(|e| format!("bad images: {e}"))?)
                }
                "spawn" => {
                    let (from, tree) = rest
                        .split_once(' ')
                        .ok_or_else(|| format!("spawn needs `<from> <tree>`: {line:?}"))?;
                    let from = from.parse::<usize>().map_err(|e| format!("bad spawn rank: {e}"))?;
                    roots.push((from, parse_tree(tree)?));
                }
                "crash-victim" => {
                    crash = Some(rest.parse::<usize>().map_err(|e| format!("bad victim: {e}"))?)
                }
                "mutation" => mutation = Some(Mutation::parse(rest)?),
                "expect" => {
                    expect = if rest == "none" { None } else { Some(ViolationKind::parse(rest)?) }
                }
                "schedule" => in_schedule = true,
                _ => return Err(format!("unknown header line {line:?}")),
            }
        }
        if !ended {
            return Err("missing `end` line".into());
        }
        Ok(Replay {
            scenario: Scenario { images: images.ok_or("missing `images` line")?, roots, crash },
            family: family.ok_or("missing `family` line")?,
            mutation,
            expect,
            schedule,
        })
    }

    /// Re-executes the schedule strictly. `Ok` describes what happened
    /// and matched; `Err` explains the mismatch.
    pub fn run(&self) -> Result<String, String> {
        let mut w = World::new(&self.scenario, self.family, self.mutation);
        for (i, k) in self.schedule.iter().enumerate() {
            match w.step_if_enabled(k) {
                Ok(true) => {}
                Ok(false) => {
                    return Err(format!(
                        "step {}: transition `{k}` is not enabled (enabled: {})",
                        i + 1,
                        w.enabled().iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
                    ));
                }
                Err(v) => return self.check_violation(v, i + 1),
            }
        }
        // Schedule exhausted without an in-run violation.
        match self.expect {
            None => match w.done {
                Some(Outcome::Terminated) => Ok("terminated cleanly as expected".into()),
                other => Err(format!(
                    "expected clean termination, got {other:?} after the full schedule"
                )),
            },
            Some(ViolationKind::Deadlock) => {
                if w.done.is_none() && !w.pruned && w.enabled().is_empty() {
                    Ok("deadlock confirmed: no transition enabled, no verdict".into())
                } else {
                    Err(format!(
                        "expected a deadlock; world is done={:?} with {} enabled transition(s)",
                        w.done,
                        w.enabled().len()
                    ))
                }
            }
            Some(kind)
                if matches!(kind, ViolationKind::Differential | ViolationKind::DesMismatch) =>
            {
                match crate::diff::check_terminal(&w) {
                    Some(v) if v.kind == kind => self.check_violation(v, self.schedule.len()),
                    Some(v) => Err(format!(
                        "expected {}, terminal oracles reported {}: {}",
                        kind.name(),
                        v.kind.name(),
                        v.detail
                    )),
                    None => Err(format!(
                        "expected {}, but the terminal oracles found nothing",
                        kind.name()
                    )),
                }
            }
            Some(kind) => Err(format!(
                "expected a {} violation, but the schedule completed without one",
                kind.name()
            )),
        }
    }

    fn check_violation(&self, v: Violation, step: usize) -> Result<String, String> {
        match self.expect {
            Some(kind) if kind == v.kind => {
                Ok(format!("{} violation reproduced at step {step}: {}", kind.name(), v.detail))
            }
            Some(kind) => Err(format!(
                "expected {}, got {} at step {step}: {}",
                kind.name(),
                v.kind.name(),
                v.detail
            )),
            None => Err(format!(
                "expected clean termination, got {} at step {step}: {}",
                v.kind.name(),
                v.detail
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, ExploreConfig};
    use crate::shrink::shrink;

    #[test]
    fn text_round_trips() {
        let scenario =
            Scenario { images: 3, roots: vec![(0, parse_tree("1(2,2)").unwrap())], crash: Some(1) };
        let r = Replay {
            scenario,
            family: Family::EpochStrict,
            mutation: Some(Mutation::MergeEpochs),
            expect: Some(ViolationKind::Safety),
            schedule: vec![TKey::Deliver("r0".into()), TKey::Enter(1), TKey::Close],
        };
        let parsed = Replay::parse(&r.to_text()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn parse_rejects_malformed_files() {
        assert!(Replay::parse("").is_err());
        assert!(Replay::parse("caf-check-replay v1\nimages 2\nschedule\nend\n").is_err());
        assert!(Replay::parse("caf-check-replay v1\nfamily epoch-strict\nimages 2\nschedule\n")
            .is_err());
        assert!(
            Replay::parse("caf-check-replay v1\nfamily bogus\nimages 2\nschedule\nend\n").is_err()
        );
    }

    #[test]
    fn shrunk_counterexample_replays_from_text() {
        let scenario =
            Scenario { images: 3, roots: vec![(0, parse_tree("1(2,2)").unwrap())], crash: None };
        let (_, ce) = explore(
            &scenario,
            Family::EpochStrict,
            Some(Mutation::MergeEpochs),
            &ExploreConfig::default(),
        );
        let small = shrink(&ce.expect("merge-epochs must be caught"));
        let replay = Replay::from_counterexample(&small);
        let reparsed = Replay::parse(&replay.to_text()).unwrap();
        let msg = reparsed.run().expect("fixture must reproduce");
        assert!(msg.contains("safety"), "{msg}");
    }

    #[test]
    fn clean_schedule_pins_as_expect_none() {
        let scenario =
            Scenario { images: 2, roots: vec![(0, parse_tree("1").unwrap())], crash: None };
        let mut w = World::new(&scenario, Family::EpochStrict, None);
        while let Some(k) = w.enabled().first().cloned() {
            w.step(&k).unwrap();
        }
        let r = Replay {
            scenario,
            family: Family::EpochStrict,
            mutation: None,
            expect: None,
            schedule: w.schedule().to_vec(),
        };
        r.run().expect("pinned good schedule must stay good");
    }
}
