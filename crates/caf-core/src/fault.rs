//! Seeded, deterministic fault injection — the chaos half of the fabric.
//!
//! A [`FaultPlan`] describes *what the network does wrong*: per-link
//! message drops, duplication, latency spikes, and per-image stall
//! (straggler) windows. Every decision is a pure function of the plan's
//! seed and the message's global wire sequence number, so a chaos run is
//! exactly reproducible — in the threaded runtime, in the discrete-event
//! simulator, and across both when the send order matches.
//!
//! A [`RetryPolicy`] describes *what the transport does about it*:
//! acknowledgement timeouts with exponential backoff and a capped retry
//! budget. Exceeding the budget is surfaced to the runtime, whose
//! no-progress watchdog converts the silent hang into a structured
//! `RuntimeError::Stalled` diagnostic instead.

use std::time::Duration;

use crate::rng::{splitmix64_hash, SplitMix64};

/// Per-link override of the drop probability (both directions are
/// distinct: `(from, to)` is ordered).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFault {
    /// Sending image index.
    pub from: usize,
    /// Receiving image index.
    pub to: usize,
    /// Drop probability on this link, replacing [`FaultPlan::drop_p`].
    pub drop_p: f64,
}

/// A window during which one image is stalled (descheduled straggler):
/// wire traffic touching it is deferred until the window closes.
#[derive(Debug, Clone, PartialEq)]
pub struct StallWindow {
    /// The stalled image index.
    pub image: usize,
    /// Window start, relative to fabric creation.
    pub start: Duration,
    /// Window length.
    pub duration: Duration,
}

impl StallWindow {
    /// Remaining stall time if `elapsed` falls inside the window.
    #[inline]
    pub fn remaining_at(&self, elapsed: Duration) -> Option<Duration> {
        let end = self.start + self.duration;
        (self.start <= elapsed && elapsed < end).then(|| end - elapsed)
    }
}

/// A deterministic fail-stop crash: `image` dies the instant the fabric's
/// global wire sequence counter reaches `at_seq`. Keying the crash to the
/// wire sequence (rather than wall-clock) makes the failure point exactly
/// reproducible on both substrates: the threaded fabric and the
/// discrete-event simulator count transmissions identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashFault {
    /// The image that fail-stops.
    pub image: usize,
    /// Global wire sequence number at which the image is considered dead:
    /// the crash fires on the first transmission with `wire_seq >= at_seq`.
    pub at_seq: u64,
}

/// What the fault layer decided to do to one wire message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultDecision {
    /// Message vanishes on the wire (never delivered).
    pub drop: bool,
    /// A second copy is delivered as well.
    pub duplicate: bool,
    /// Delivery is delayed by [`FaultPlan::spike_delay`] extra.
    pub delay_spike: bool,
}

impl FaultDecision {
    /// The no-fault decision.
    pub const CLEAN: FaultDecision =
        FaultDecision { drop: false, duplicate: false, delay_spike: false };
}

/// A deterministic, seeded description of network misbehaviour.
///
/// All probabilities are per *wire transmission* (retransmits roll their
/// own dice). Self-sends never traverse the wire and are exempt.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for all fault decisions; two fabrics with the same plan make
    /// identical decisions for identical wire sequence numbers.
    pub seed: u64,
    /// Baseline probability a wire message is dropped.
    pub drop_p: f64,
    /// Probability a wire message is delivered twice.
    pub dup_p: f64,
    /// Probability a wire message suffers an extra delay spike.
    pub spike_p: f64,
    /// Magnitude of a delay spike.
    pub spike_delay: Duration,
    /// Per-link drop-probability overrides (first match wins).
    pub links: Vec<LinkFault>,
    /// Per-image straggler windows.
    pub stalls: Vec<StallWindow>,
    /// Fail-stop crash schedule (one entry per crashing image; the
    /// earliest `at_seq` wins if an image appears twice).
    pub crashes: Vec<CrashFault>,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a base for builders).
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_p: 0.0,
            dup_p: 0.0,
            spike_p: 0.0,
            spike_delay: Duration::ZERO,
            links: Vec::new(),
            stalls: Vec::new(),
            crashes: Vec::new(),
        }
    }

    /// Uniform drop probability on every link.
    pub fn uniform_drop(seed: u64, drop_p: f64) -> Self {
        FaultPlan { drop_p, ..FaultPlan::none(seed) }
    }

    /// Adds uniform duplication.
    pub fn with_dup(mut self, dup_p: f64) -> Self {
        self.dup_p = dup_p;
        self
    }

    /// Adds delay spikes.
    pub fn with_spikes(mut self, spike_p: f64, spike_delay: Duration) -> Self {
        self.spike_p = spike_p;
        self.spike_delay = spike_delay;
        self
    }

    /// Adds a per-link drop override.
    pub fn with_link(mut self, from: usize, to: usize, drop_p: f64) -> Self {
        self.links.push(LinkFault { from, to, drop_p });
        self
    }

    /// Adds a straggler window for one image.
    pub fn with_stall(mut self, image: usize, start: Duration, duration: Duration) -> Self {
        self.stalls.push(StallWindow { image, start, duration });
        self
    }

    /// Adds a fail-stop crash of `image` at global wire sequence `at_seq`.
    pub fn with_crash(mut self, image: usize, at_seq: u64) -> Self {
        self.crashes.push(CrashFault { image, at_seq });
        self
    }

    /// Whether the plan can perturb anything at all.
    pub fn is_active(&self) -> bool {
        self.drop_p > 0.0
            || self.dup_p > 0.0
            || self.spike_p > 0.0
            || self.links.iter().any(|l| l.drop_p > 0.0)
            || !self.stalls.is_empty()
            || !self.crashes.is_empty()
    }

    /// The wire sequence at which `image` fail-stops, if it is scheduled
    /// to crash (earliest point wins when listed more than once).
    pub fn crash_point(&self, image: usize) -> Option<u64> {
        self.crashes.iter().filter(|c| c.image == image).map(|c| c.at_seq).min()
    }

    /// Effective drop probability for one ordered link.
    #[inline]
    pub fn drop_p_for(&self, from: usize, to: usize) -> f64 {
        self.links
            .iter()
            .find(|l| l.from == from && l.to == to)
            .map_or(self.drop_p, |l| l.drop_p)
    }

    /// The (deterministic) fault decision for wire message `wire_seq` on
    /// the ordered link `from → to`. Self-sends are always clean.
    pub fn decide(&self, from: usize, to: usize, wire_seq: u64) -> FaultDecision {
        if from == to {
            return FaultDecision::CLEAN;
        }
        let drop_p = self.drop_p_for(from, to);
        if drop_p <= 0.0 && self.dup_p <= 0.0 && self.spike_p <= 0.0 {
            return FaultDecision::CLEAN;
        }
        // Mix seed, link, and sequence into an independent stream per
        // message; three draws decide the three fault classes.
        let key = splitmix64_hash(
            self.seed ^ splitmix64_hash(wire_seq) ^ (((from as u64) << 32) | to as u64),
        );
        let mut g = SplitMix64::new(key);
        FaultDecision {
            drop: g.next_f64() < drop_p,
            duplicate: g.next_f64() < self.dup_p,
            delay_spike: g.next_f64() < self.spike_p,
        }
    }

    /// Extra delivery delay imposed because `image` is inside a straggler
    /// window at `elapsed` (time since fabric creation). Zero when the
    /// image is live.
    pub fn stall_extra(&self, image: usize, elapsed: Duration) -> Duration {
        self.stalls
            .iter()
            .filter(|w| w.image == image)
            .filter_map(|w| w.remaining_at(elapsed))
            .max()
            .unwrap_or(Duration::ZERO)
    }
}

/// Acknowledgement/retransmission policy of the reliable-delivery layer.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Time to wait for an acknowledgement before the first retransmit.
    pub ack_timeout: Duration,
    /// Multiplier applied to the timeout after each retransmit.
    pub backoff: u32,
    /// Ceiling on the backed-off timeout.
    pub max_timeout: Duration,
    /// Retransmit budget per message; once exceeded the message is
    /// abandoned (counted, and left for the watchdog to report).
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            ack_timeout: Duration::from_millis(1),
            backoff: 2,
            max_timeout: Duration::from_millis(20),
            max_retries: 10,
        }
    }
}

impl RetryPolicy {
    /// The timeout in force after `attempts` transmissions (1 = first).
    pub fn timeout_after(&self, attempts: u32) -> Duration {
        let factor = self.backoff.saturating_pow(attempts.saturating_sub(1)).max(1);
        (self.ack_timeout * factor).min(self.max_timeout)
    }

    /// A tight policy for tests: fast retries, small budget, so both the
    /// recovery path and the exhaustion path complete quickly.
    pub fn aggressive() -> Self {
        RetryPolicy {
            ack_timeout: Duration::from_micros(300),
            backoff: 2,
            max_timeout: Duration::from_millis(5),
            max_retries: 12,
        }
    }

    /// Worst-case time from first transmission to giving up.
    pub fn exhaustion_horizon(&self) -> Duration {
        (1..=self.max_retries + 1).map(|a| self.timeout_after(a)).sum()
    }
}

/// Receiver-side exactly-once filter for one (receiver, sender) link:
/// a contiguous watermark plus the set of out-of-order arrivals ahead of
/// it (delivery need not be FIFO, so gaps are normal, not loss). Shared
/// between the threaded fabric's reliable-delivery layer and the
/// discrete-event simulator's mirror of it.
#[derive(Debug, Default, Clone)]
pub struct SeqTracker {
    next: u64,
    ahead: std::collections::BTreeSet<u64>,
}

impl SeqTracker {
    /// Records sequence `s`; returns whether it was fresh (first sight).
    pub fn note(&mut self, s: u64) -> bool {
        if s < self.next {
            return false;
        }
        if s == self.next {
            self.next += 1;
            while self.ahead.remove(&self.next) {
                self.next += 1;
            }
            true
        } else {
            self.ahead.insert(s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_watermark_compacts_memory() {
        let mut t = SeqTracker::default();
        for s in (0..1000).rev() {
            assert!(t.note(s));
        }
        assert!(t.ahead.is_empty(), "contiguous range must collapse");
        assert_eq!(t.next, 1000);
    }

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan::uniform_drop(42, 0.3)
            .with_dup(0.2)
            .with_spikes(0.1, Duration::from_millis(1));
        for seq in 0..200 {
            assert_eq!(plan.decide(0, 1, seq), plan.decide(0, 1, seq));
        }
        let other = FaultPlan { seed: 43, ..plan.clone() };
        let differs = (0..200).any(|s| plan.decide(0, 1, s) != other.decide(0, 1, s));
        assert!(differs, "different seeds must give different schedules");
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let plan = FaultPlan::uniform_drop(7, 0.25);
        let drops = (0..10_000).filter(|&s| plan.decide(0, 1, s).drop).count();
        let rate = drops as f64 / 10_000.0;
        assert!((0.2..0.3).contains(&rate), "empirical rate {rate} far from 0.25");
    }

    #[test]
    fn self_sends_are_exempt() {
        let plan = FaultPlan::uniform_drop(1, 1.0);
        for seq in 0..50 {
            assert_eq!(plan.decide(3, 3, seq), FaultDecision::CLEAN);
        }
    }

    #[test]
    fn link_override_replaces_baseline() {
        let plan = FaultPlan::uniform_drop(5, 0.0).with_link(1, 2, 1.0);
        assert!(plan.decide(1, 2, 9).drop);
        assert!(!plan.decide(2, 1, 9).drop);
        assert_eq!(plan.drop_p_for(1, 2), 1.0);
        assert_eq!(plan.drop_p_for(0, 1), 0.0);
    }

    #[test]
    fn stall_windows_defer_only_inside() {
        let plan =
            FaultPlan::none(0).with_stall(2, Duration::from_millis(10), Duration::from_millis(5));
        assert_eq!(plan.stall_extra(2, Duration::from_millis(9)), Duration::ZERO);
        assert_eq!(plan.stall_extra(2, Duration::from_millis(10)), Duration::from_millis(5));
        assert_eq!(plan.stall_extra(2, Duration::from_millis(12)), Duration::from_millis(3));
        assert_eq!(plan.stall_extra(2, Duration::from_millis(15)), Duration::ZERO);
        assert_eq!(plan.stall_extra(1, Duration::from_millis(12)), Duration::ZERO);
        assert!(plan.is_active());
    }

    #[test]
    fn retry_policy_backs_off_to_cap() {
        let p = RetryPolicy {
            ack_timeout: Duration::from_millis(1),
            backoff: 2,
            max_timeout: Duration::from_millis(6),
            max_retries: 5,
        };
        assert_eq!(p.timeout_after(1), Duration::from_millis(1));
        assert_eq!(p.timeout_after(2), Duration::from_millis(2));
        assert_eq!(p.timeout_after(3), Duration::from_millis(4));
        assert_eq!(p.timeout_after(4), Duration::from_millis(6), "capped");
        assert_eq!(p.exhaustion_horizon(), Duration::from_millis(1 + 2 + 4 + 6 + 6 + 6));
    }

    #[test]
    fn inactive_plan_reports_inactive() {
        assert!(!FaultPlan::none(3).is_active());
        assert!(FaultPlan::uniform_drop(3, 0.01).is_active());
    }

    #[test]
    fn crash_schedule_activates_the_plan() {
        let plan = FaultPlan::none(9).with_crash(2, 100);
        assert!(plan.is_active(), "a crash-only plan must route through chaos");
        assert_eq!(plan.crash_point(2), Some(100));
        assert_eq!(plan.crash_point(1), None);
    }

    #[test]
    fn earliest_crash_point_wins() {
        let plan = FaultPlan::none(9).with_crash(3, 500).with_crash(3, 120);
        assert_eq!(plan.crash_point(3), Some(120));
    }
}
