//! The third frontend: reconstruct a [`Plan`] from a `caf-core`
//! [`TraceRecorder`] capture, so executions of the *real* threaded
//! runtime can be pushed through the same static analyses as
//! hand-written plans.
//!
//! A protocol trace is a linearization of detector-level events: sends
//! of active messages under a dynamic finish block, their receptions,
//! completions, and the termination waves. That is exactly the
//! observable footprint of the plan fragment
//!
//! ```text
//! image i { finish { spawn am @t … } }
//! ```
//!
//! so reconstruction maps each dynamic finish block to one finish
//! construct per sending image, and each `Send` to a `spawn` of a
//! synthetic (empty-bodied) active-message function. Send events do not
//! record their receiver, but every reception does record its image, so
//! targets are recovered by greedy order-matching: the *k*-th send under
//! a finish block is paired with the *k*-th reception under it. Any
//! valid pairing yields the same analysis results — the synthetic
//! handler body is empty, so only the spawn *structure* (how many, from
//! whom, under which finish) is analyzed.
//!
//! What the reconstruction checks, therefore, is finish coverage of
//! everything the runtime actually shipped: a well-formed capture lints
//! clean, and a capture with sends outside any finish block (impossible
//! through the public API, by construction) would be flagged.

use caf_core::trace::TraceEvent;

use crate::ir::{Block, FnDef, Plan, Stmt, StmtKind, Target};

/// Name of the synthetic active-message function every reconstructed
/// spawn targets.
pub const AM_FN: &str = "am_handler";

/// Reconstructs a plan from a recorded protocol trace. Always succeeds:
/// an empty trace yields an empty (but valid, two-image) plan.
pub fn plan_from_trace(events: &[TraceEvent]) -> Plan {
    let images = events.iter().map(|e| e.image() + 1).max().unwrap_or(0).max(2);
    // Dynamic finish keys in order of first appearance.
    let mut keys: Vec<(u64, u64)> = Vec::new();
    for ev in events {
        if !keys.contains(&ev.finish()) {
            keys.push(ev.finish());
        }
    }
    let mut blocks = Vec::new();
    for key in keys {
        // Receivers under this block, in linearization order, consumed
        // greedily by the sends.
        let mut receivers: std::collections::VecDeque<usize> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Receive { image, finish, .. } if *finish == key => Some(*image),
                _ => None,
            })
            .collect();
        // spawns[i] = targets image i shipped to under this block.
        let mut spawns: Vec<Vec<usize>> = vec![Vec::new(); images];
        for ev in events {
            let TraceEvent::Send { image, finish, .. } = ev else { continue };
            if *finish != key {
                continue;
            }
            // A completed capture has one reception per send; a
            // truncated one falls back to the ring neighbor, which
            // preserves the spawn count (the analyzed quantity).
            let target = receivers.pop_front().unwrap_or((image + 1) % images);
            spawns[*image].push(target);
        }
        for (image, targets) in spawns.into_iter().enumerate() {
            if targets.is_empty() {
                continue;
            }
            let body = targets
                .into_iter()
                .map(|t| Stmt {
                    kind: StmtKind::Spawn {
                        func: AM_FN.to_string(),
                        target: Target::Abs(t),
                        notify: None,
                    },
                    line: 0,
                })
                .collect();
            blocks.push(Block {
                image: Some(image),
                body: vec![Stmt { kind: StmtKind::Finish(body), line: 0 }],
            });
        }
    }
    Plan {
        images,
        coarrays: Vec::new(),
        events: Vec::new(),
        fns: vec![FnDef { name: AM_FN.to_string(), body: Vec::new() }],
        blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caf_core::ids::Parity;

    fn send(image: usize, finish: (u64, u64)) -> TraceEvent {
        TraceEvent::Send { image, finish, parity: Parity::Even }
    }

    fn recv(image: usize, finish: (u64, u64)) -> TraceEvent {
        TraceEvent::Receive { image, finish, parity: Parity::Even }
    }

    #[test]
    fn sends_become_finish_covered_spawns() {
        let trace = vec![
            send(0, (0, 0)),
            recv(1, (0, 0)),
            send(1, (0, 0)),
            recv(2, (0, 0)),
            send(2, (0, 1)), // a second finish block
            recv(0, (0, 1)),
        ];
        let plan = plan_from_trace(&trace);
        assert_eq!(plan.images, 3);
        assert_eq!(plan.blocks.len(), 3); // (f0,img0), (f0,img1), (f1,img2)
        let diags = crate::lint(&plan).unwrap();
        assert!(diags.is_empty(), "{diags:?}");
        // Targets recovered from the receive stream.
        let StmtKind::Finish(body) = &plan.blocks[0].body[0].kind else { panic!() };
        assert_eq!(
            body[0].kind,
            StmtKind::Spawn { func: AM_FN.into(), target: Target::Abs(1), notify: None }
        );
    }

    #[test]
    fn empty_trace_yields_a_valid_plan() {
        let plan = plan_from_trace(&[]);
        assert!(plan.lower().is_ok());
        assert!(crate::lint(&plan).unwrap().is_empty());
    }

    #[test]
    fn truncated_trace_still_counts_every_send() {
        // Two sends, only one reception recorded: the second target
        // falls back but the spawn is not dropped.
        let trace = vec![send(0, (0, 0)), send(0, (0, 0)), recv(1, (0, 0))];
        let plan = plan_from_trace(&trace);
        let StmtKind::Finish(body) = &plan.blocks[0].body[0].kind else { panic!() };
        assert_eq!(body.len(), 2);
    }
}
