//! The textual plan format — the second frontend. Line-oriented, with
//! `#` comments and brace-delimited blocks:
//!
//! ```text
//! # one halo exchange
//! images 4
//! coarray cur nxt
//! event halo_in
//!
//! all {
//!     copy cur -> nxt@+1 notify halo_in@+1
//!     cofence(DOWNWARD=WRITE, UPWARD=ANY)
//!     wait halo_in
//!     barrier
//! }
//! ```
//!
//! Statements: `copy REF -> REF [notify EVREF]`, `cofence(...)`,
//! `finish { … }`, `spawn FN @TARGET [notify EVREF]`, `post EVREF`,
//! `wait EVENT`, `barrier`, `read VAR`, `write VAR`. A `REF` is `name`
//! (the executing image's segment) or `name@TARGET`; a `TARGET` is `+k`
//! or `-k` (relative, modulo the image count) or a bare rank. Top-level
//! sections: `images N`, `coarray NAME…`, `event NAME…`, `fn NAME { … }`,
//! `all { … }`, `image N { … }`.

use caf_core::cofence::{CofenceSpec, Pass};

use crate::ir::{Block, EventRef, FnDef, MemRef, Plan, PlanError, Stmt, StmtKind, Target};

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, PlanError> {
    Err(PlanError { line, msg: msg.into() })
}

/// Parses the textual plan format.
pub fn parse(src: &str) -> Result<Plan, PlanError> {
    let lines: Vec<(usize, String)> = src
        .lines()
        .enumerate()
        .map(|(i, raw)| {
            let no_comment = raw.split('#').next().unwrap_or("");
            (i + 1, no_comment.trim().to_string())
        })
        .filter(|(_, l)| !l.is_empty())
        .collect();
    let mut plan = Plan {
        images: 0,
        coarrays: Vec::new(),
        events: Vec::new(),
        fns: Vec::new(),
        blocks: Vec::new(),
    };
    let mut pos = 0;
    while pos < lines.len() {
        let (line, text) = &lines[pos];
        let line = *line;
        let mut words = text.split_whitespace();
        let head = words.next().unwrap_or("");
        match head {
            "images" => {
                let n = words.next().ok_or(()).or_else(|_| err(line, "images needs a count"))?;
                plan.images = n
                    .parse()
                    .map_err(|_| PlanError { line, msg: format!("bad image count {n:?}") })?;
                pos += 1;
            }
            "coarray" | "event" => {
                let names: Vec<String> = words.map(str::to_string).collect();
                if names.is_empty() {
                    return err(line, format!("{head} needs at least one name"));
                }
                if head == "coarray" {
                    plan.coarrays.extend(names);
                } else {
                    plan.events.extend(names);
                }
                pos += 1;
            }
            "fn" => {
                let name = words.next().ok_or(()).or_else(|_| err(line, "fn needs a name"))?;
                expect_open(text, line)?;
                let (body, next) = parse_body(&lines, pos + 1)?;
                plan.fns.push(FnDef { name: name.to_string(), body });
                pos = next;
            }
            "all" => {
                expect_open(text, line)?;
                let (body, next) = parse_body(&lines, pos + 1)?;
                plan.blocks.push(Block { image: None, body });
                pos = next;
            }
            "image" => {
                let n = words.next().ok_or(()).or_else(|_| err(line, "image needs a rank"))?;
                let rank: usize = n
                    .parse()
                    .map_err(|_| PlanError { line, msg: format!("bad image rank {n:?}") })?;
                expect_open(text, line)?;
                let (body, next) = parse_body(&lines, pos + 1)?;
                plan.blocks.push(Block { image: Some(rank), body });
                pos = next;
            }
            other => return err(line, format!("expected a top-level section, found {other:?}")),
        }
    }
    if plan.images == 0 {
        return err(0, "plan never declares `images N`");
    }
    Ok(plan)
}

fn expect_open(text: &str, line: usize) -> Result<(), PlanError> {
    if text.ends_with('{') {
        Ok(())
    } else {
        err(line, "expected `{` to open the block on the same line")
    }
}

/// Parses statements until the matching `}`. Returns the body and the
/// index just past the close.
fn parse_body(lines: &[(usize, String)], mut pos: usize) -> Result<(Vec<Stmt>, usize), PlanError> {
    let mut body = Vec::new();
    while pos < lines.len() {
        let (line, text) = &lines[pos];
        let line = *line;
        if text == "}" {
            return Ok((body, pos + 1));
        }
        let mut words = text.split_whitespace();
        let head = words.next().unwrap_or("");
        match head {
            "copy" => {
                // copy REF -> REF [notify EVREF]
                let rest: Vec<&str> = words.collect();
                let arrow = rest
                    .iter()
                    .position(|w| *w == "->")
                    .ok_or(())
                    .or_else(|_| err(line, "copy needs `src -> dst`"))?;
                if arrow != 1 || rest.len() < 3 {
                    return err(line, "copy syntax: `copy SRC -> DST [notify EV]`");
                }
                let src = parse_memref(rest[0], line)?;
                let dst = parse_memref(rest[2], line)?;
                let notify = match rest.get(3) {
                    None => None,
                    Some(&"notify") => {
                        let ev = rest
                            .get(4)
                            .ok_or(())
                            .or_else(|_| err(line, "notify needs an event"))?;
                        Some(parse_eventref(ev, line)?)
                    }
                    Some(w) => return err(line, format!("unexpected {w:?} after copy")),
                };
                body.push(Stmt { kind: StmtKind::Copy { src, dst, notify }, line });
                pos += 1;
            }
            h if h.starts_with("cofence") => {
                let spec = parse_cofence(text, line)?;
                body.push(Stmt { kind: StmtKind::Cofence(spec), line });
                pos += 1;
            }
            "finish" => {
                expect_open(text, line)?;
                let (inner, next) = parse_body(lines, pos + 1)?;
                body.push(Stmt { kind: StmtKind::Finish(inner), line });
                pos = next;
            }
            "spawn" => {
                // spawn FN @TARGET [notify EVREF]
                let rest: Vec<&str> = words.collect();
                if rest.len() < 2 || !rest[1].starts_with('@') {
                    return err(line, "spawn syntax: `spawn FN @TARGET [notify EV]`");
                }
                let target = parse_target(&rest[1][1..], line)?;
                let notify = match rest.get(2) {
                    None => None,
                    Some(&"notify") => {
                        let ev = rest
                            .get(3)
                            .ok_or(())
                            .or_else(|_| err(line, "notify needs an event"))?;
                        Some(parse_eventref(ev, line)?)
                    }
                    Some(w) => return err(line, format!("unexpected {w:?} after spawn")),
                };
                body.push(Stmt {
                    kind: StmtKind::Spawn { func: rest[0].to_string(), target, notify },
                    line,
                });
                pos += 1;
            }
            "post" => {
                let ev = words.next().ok_or(()).or_else(|_| err(line, "post needs an event"))?;
                body.push(Stmt { kind: StmtKind::Post(parse_eventref(ev, line)?), line });
                pos += 1;
            }
            "wait" => {
                let ev = words.next().ok_or(()).or_else(|_| err(line, "wait needs an event"))?;
                if ev.contains('@') {
                    return err(line, "wait is always on the executing image's instance");
                }
                body.push(Stmt { kind: StmtKind::Wait(ev.to_string()), line });
                pos += 1;
            }
            "barrier" => {
                body.push(Stmt { kind: StmtKind::Barrier, line });
                pos += 1;
            }
            "read" | "write" => {
                let var = words
                    .next()
                    .ok_or(())
                    .or_else(|_| err(line, format!("{head} needs a coarray")))?;
                body.push(Stmt {
                    kind: StmtKind::Access { var: var.to_string(), write: head == "write" },
                    line,
                });
                pos += 1;
            }
            other => return err(line, format!("unknown statement {other:?}")),
        }
    }
    err(lines.last().map_or(0, |(l, _)| *l), "unclosed block: missing `}`")
}

/// `cofence`, `cofence()`, or `cofence(DOWNWARD=X, UPWARD=Y)` in either
/// argument order; either argument may be omitted (defaults to `NONE`,
/// the paper's full-fence default).
fn parse_cofence(text: &str, line: usize) -> Result<CofenceSpec, PlanError> {
    let rest = text.strip_prefix("cofence").unwrap_or("").trim();
    if rest.is_empty() {
        return Ok(CofenceSpec::FULL);
    }
    let Some(inner) = rest.strip_prefix('(').and_then(|r| r.strip_suffix(')')) else {
        return err(line, "cofence arguments must be parenthesized");
    };
    let mut spec = CofenceSpec::FULL;
    for arg in inner.split(',').map(str::trim).filter(|a| !a.is_empty()) {
        let (key, val) = arg
            .split_once('=')
            .ok_or(())
            .or_else(|_| err(line, format!("bad cofence argument {arg:?} (want KEY=PASS)")))?;
        let pass = Pass::parse(val.trim()).map_err(|e| PlanError { line, msg: e })?;
        match key.trim().to_ascii_uppercase().as_str() {
            "DOWNWARD" | "DOWN" => spec.downward = pass,
            "UPWARD" | "UP" => spec.upward = pass,
            k => return err(line, format!("unknown cofence argument {k:?}")),
        }
    }
    Ok(spec)
}

fn parse_target(s: &str, line: usize) -> Result<Target, PlanError> {
    if let Some(k) = s.strip_prefix('+') {
        let k: i64 = k.parse().map_err(|_| PlanError { line, msg: format!("bad target {s:?}") })?;
        return Ok(Target::Rel(k));
    }
    if s.starts_with('-') {
        let k: i64 = s.parse().map_err(|_| PlanError { line, msg: format!("bad target {s:?}") })?;
        return Ok(Target::Rel(k));
    }
    let n: usize = s.parse().map_err(|_| PlanError { line, msg: format!("bad target {s:?}") })?;
    Ok(Target::Abs(n))
}

fn parse_memref(s: &str, line: usize) -> Result<MemRef, PlanError> {
    match s.split_once('@') {
        None => Ok(MemRef { var: s.to_string(), image: None }),
        Some((var, t)) => Ok(MemRef { var: var.to_string(), image: Some(parse_target(t, line)?) }),
    }
}

fn parse_eventref(s: &str, line: usize) -> Result<EventRef, PlanError> {
    match s.split_once('@') {
        None => Ok(EventRef { event: s.to_string(), image: None }),
        Some((ev, t)) => {
            Ok(EventRef { event: ev.to_string(), image: Some(parse_target(t, line)?) })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# halo exchange, one step
images 4
coarray cur nxt
event halo_in done

fn bump {
    write cur
}

all {
    copy cur -> nxt@+1 notify halo_in@+1
    cofence(DOWNWARD=WRITE, UPWARD=ANY)
    wait halo_in
    finish {
        spawn bump @+1
    }
    barrier
}

image 0 {
    post done@1
}
"#;

    #[test]
    fn parses_and_lowers_the_sample() {
        let plan = parse(SAMPLE).unwrap();
        assert_eq!(plan.images, 4);
        assert_eq!(plan.coarrays, vec!["cur", "nxt"]);
        assert_eq!(plan.events, vec!["halo_in", "done"]);
        assert_eq!(plan.fns.len(), 1);
        assert_eq!(plan.blocks.len(), 2);
        let low = plan.lower().unwrap();
        // image 0 carries the guarded post, others don't.
        assert_eq!(low.programs[0].steps.len(), low.programs[1].steps.len() + 1);
        // Line numbers survive into steps.
        assert_eq!(low.programs[0].steps[0].line, 12);
    }

    #[test]
    fn cofence_forms_and_argument_order() {
        let full = parse_cofence("cofence", 1).unwrap();
        assert_eq!(full, CofenceSpec::FULL);
        let full2 = parse_cofence("cofence()", 1).unwrap();
        assert_eq!(full2, CofenceSpec::FULL);
        let d = parse_cofence("cofence(DOWNWARD=WRITE, UPWARD=ANY)", 1).unwrap();
        assert_eq!(d, CofenceSpec::new(Pass::Writes, Pass::Any));
        let swapped = parse_cofence("cofence(UPWARD=ANY, DOWNWARD=WRITE)", 1).unwrap();
        assert_eq!(d, swapped);
        let partial = parse_cofence("cofence(UPWARD=READ)", 1).unwrap();
        assert_eq!(partial, CofenceSpec::new(Pass::None, Pass::Reads));
        assert!(parse_cofence("cofence(SIDEWAYS=ANY)", 1).is_err());
        assert!(parse_cofence("cofence(DOWNWARD=BLUE)", 1).is_err());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("images 2\nall {\n  copy a b\n}\n").unwrap_err();
        assert_eq!(e.line, 3);
        let e = parse("images 2\nall {\n  copy a -> b\n").unwrap_err();
        assert!(e.msg.contains("unclosed"));
        let e = parse("all {\n}\n").unwrap_err();
        assert!(e.msg.contains("images"), "{e}");
    }

    #[test]
    fn targets_parse_all_three_shapes() {
        assert_eq!(parse_target("+1", 1).unwrap(), Target::Rel(1));
        assert_eq!(parse_target("-2", 1).unwrap(), Target::Rel(-2));
        assert_eq!(parse_target("3", 1).unwrap(), Target::Abs(3));
        assert!(parse_target("x", 1).is_err());
    }
}
