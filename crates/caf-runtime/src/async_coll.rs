//! Asynchronous collectives (paper §II-C3).
//!
//! `team_broadcast_async(A(:), root, myteam, srcE, localE)` and friends:
//! collectives that overlap group coordination with computation. Each
//! member's call *registers* an instance locally and returns immediately;
//! the collective advances through active messages. Because arrivals and
//! registrations race (a fast neighbour's data can land before this image
//! even makes its call), both sides rendezvous in an [`AsyncInst`] keyed
//! by `(team, per-team async sequence)`.
//!
//! Completion points follow the paper's Fig. 4 table for broadcast:
//!
//! | role        | local data completion (`srcE`, cofence) | local operation completion (`localE`) |
//! |-------------|------------------------------------------|----------------------------------------|
//! | root        | source buffer snapshotted (may be modified) | every child acknowledged receipt |
//! | participant | data arrived (may be read)                  | every forward acknowledged |
//!
//! Global completion — data on *every* member — is what an enclosing
//! `finish` provides, since every stage message is an epoch-tagged AM.

use std::ops::Range;
use std::sync::Arc;

use caf_core::cofence::LocalAccess;
use caf_core::ids::{ImageId, TeamId, TeamRank};
use caf_core::topology::{BinomialTree, Team};

use crate::coarray::Coarray;
use crate::completion::{Completion, Stage};
use crate::copy::AsyncOp;
use crate::event::Event;
use crate::image::Image;
use crate::state::{AsyncReg, ImageState};

/// Events accepted by asynchronous collectives.
#[derive(Default, Clone, Copy)]
pub struct AsyncCollEvents {
    /// `srcE`: local data completion.
    pub src: Option<Event>,
    /// `localE`: local operation completion.
    pub local_op: Option<Event>,
}

impl AsyncCollEvents {
    /// No events: implicit completion (cofence / finish).
    pub fn none() -> Self {
        AsyncCollEvents::default()
    }
}

/// Rendezvous state of one asynchronous-collective instance on one image.
#[derive(Default)]
pub struct AsyncInst {
    pub(crate) reg: Option<AsyncReg>,
    /// Local data side done (root: snapshot; participant: data arrived).
    pub(crate) data_done: bool,
    /// Outstanding receipt-acknowledgements from tree children
    /// (`None` = sends not issued yet).
    pub(crate) acks_remaining: Option<usize>,
    fired_data: bool,
    fired_op: bool,
    /// Reduction plumbing (allreduce): buffered child contributions until
    /// the local call supplies the combine context.
    pub(crate) red_buf: Vec<i64>,
    pub(crate) red_result: Option<i64>,
    pub(crate) red_sent_up: bool,
    /// The reduction result has been handed to the caller; the instance
    /// may be garbage-collected once its role completes.
    pub(crate) red_taken: bool,
}

/// Handle to an asynchronous reduction's eventual local result.
pub struct AsyncScalar {
    key: (TeamId, u64),
    /// Completion handle (LocalData = result available here).
    pub op: AsyncOp,
}

impl Image {
    fn bump_async_seq(&self, team: &Team) -> u64 {
        ImageState::bump(&mut self.st.borrow_mut().async_seq, team.id())
    }

    /// Runs `f` on the instance (created on first touch), then fires any
    /// newly enabled completion stages and events *after* releasing the
    /// state borrow (event notification can send messages), and
    /// garbage-collects instances whose work is done.
    fn with_inst<R>(&self, key: (TeamId, u64), f: impl FnOnce(&mut AsyncInst) -> R) -> R {
        let mut actions: Vec<(Stage, Arc<Completion>, Option<Event>)> = Vec::new();
        let r = {
            let mut st = self.st.borrow_mut();
            let inst = st.async_inst.entry(key).or_default();
            let r = f(inst);
            if let Some(reg) = &inst.reg {
                if inst.data_done && !inst.fired_data {
                    inst.fired_data = true;
                    actions.push((Stage::LocalData, Arc::clone(&reg.completion), reg.data_event));
                }
                if inst.fired_data && inst.acks_remaining == Some(0) && !inst.fired_op {
                    inst.fired_op = true;
                    actions.push((Stage::LocalOp, Arc::clone(&reg.completion), reg.local_event));
                }
            }
            let reclaimable =
                inst.fired_data && inst.fired_op && (inst.red_result.is_none() || inst.red_taken);
            if reclaimable {
                st.async_inst.remove(&key);
            }
            r
        };
        for (stage, comp, ev) in actions {
            comp.advance(stage);
            if let Some(e) = ev {
                self.notify_event_id(e.id);
            }
        }
        r
    }

    // ------------------------------------------------------------------
    // Asynchronous broadcast
    // ------------------------------------------------------------------

    /// `team_broadcast_async(coarray(range), root, team, srcE, localE)`:
    /// asynchronously replicates `root`'s segment slice into every
    /// member's segment. Returns the descriptor handle; completion per the
    /// module table. Collective: every member must call it (SPMD-matched).
    pub fn broadcast_async<T: Clone + Send + 'static>(
        &self,
        team: &Team,
        coarray: &Coarray<T>,
        range: Range<usize>,
        root: TeamRank,
        ev: AsyncCollEvents,
    ) -> AsyncOp {
        let seq = self.bump_async_seq(team);
        let key = (team.id(), seq);
        let me = self.id();
        let my_rank = team.rank_of(me).expect("broadcast_async requires team membership");
        let comp = Completion::new();
        let implicit = ev.src.is_none() && ev.local_op.is_none();
        if implicit {
            let access = if my_rank == root { LocalAccess::READ } else { LocalAccess::WRITE };
            self.register_pending(Arc::clone(&comp), access);
        }
        let reg = AsyncReg {
            completion: Arc::clone(&comp),
            data_event: ev.src,
            local_event: ev.local_op,
        };

        if my_rank == root {
            let tree = BinomialTree::new(team.size(), root);
            let children = tree.children(root);
            // Count the sends under the current finish *now* (initiation),
            // then hand the snapshot + injection to the comm engine.
            let tags: Vec<_> = children.iter().map(|_| self.am_tag()).collect();
            self.with_inst(key, |inst| {
                inst.reg = Some(reg);
                inst.acks_remaining = Some(children.len());
            });
            let shared = Arc::clone(&self.shared);
            let co = coarray.clone();
            let team = team.clone();
            self.pump.submit(move || {
                // Snapshot: after this the root may modify its buffer
                // (Fig. 9 line 5's guarantee).
                let data = co.read(me, range.clone());
                let nbytes = data.len() * std::mem::size_of::<T>();
                for (child, tag) in children.into_iter().zip(tags) {
                    let target = team.image_of(child);
                    let (team2, co2, range2, data2) =
                        (team.clone(), co.clone(), range.clone(), data.clone());
                    let func: crate::msg::AmFn = Box::new(move |img: &Image| {
                        bcast_deliver(img, team2, co2, range2, root, seq, data2, me);
                    });
                    Image::send_prepared_am(&shared, me, target, nbytes, tag, None, false, func);
                }
                // Record local-data completion on the image thread (we
                // cannot touch image state from the comm thread): a tiny
                // uncounted self-AM flips data_done, which fires the
                // completion cell and srcE through with_inst.
                let mark: crate::msg::AmFn = Box::new(move |img: &Image| {
                    img.with_inst(key, |inst| inst.data_done = true);
                });
                Image::send_prepared_am(&shared, me, me, 0, None, None, false, mark);
            });
        } else {
            self.with_inst(key, |inst| {
                inst.reg = Some(reg);
            });
        }
        AsyncOp { completion: comp }
    }

    pub(crate) fn async_child_ack(&self, key: (TeamId, u64)) {
        self.with_inst(key, |inst| {
            let n = inst.acks_remaining.expect("ack before sends were issued");
            inst.acks_remaining = Some(n.saturating_sub(1));
        });
    }

    // ------------------------------------------------------------------
    // Asynchronous reduction / barrier
    // ------------------------------------------------------------------

    /// Asynchronous sum-allreduce of one `i64` per member. The result
    /// becomes available on every member (readable via
    /// [`Image::async_result`]); `srcE` fires when the local result is
    /// available, `localE` when this image's role (forwarding the result
    /// down the tree) is complete.
    pub fn allreduce_async_sum(&self, team: &Team, mine: i64, ev: AsyncCollEvents) -> AsyncScalar {
        let seq = self.bump_async_seq(team);
        let key = (team.id(), seq);
        let me = self.id();
        let my_rank = team.rank_of(me).expect("allreduce_async requires team membership");
        let comp = Completion::new();
        if ev.src.is_none() && ev.local_op.is_none() {
            self.register_pending(Arc::clone(&comp), LocalAccess::READ);
        }
        let reg = AsyncReg {
            completion: Arc::clone(&comp),
            data_event: ev.src,
            local_event: ev.local_op,
        };
        self.with_inst(key, |inst| {
            inst.reg = Some(reg);
            inst.red_buf.push(mine);
        });
        self.red_try_advance(key, team.clone(), my_rank);
        AsyncScalar { key, op: AsyncOp { completion: comp } }
    }

    /// Asynchronous barrier: an allreduce of zeros; the event/descriptor
    /// fires once every member has entered.
    pub fn barrier_async(&self, team: &Team, ev: AsyncCollEvents) -> AsyncScalar {
        self.allreduce_async_sum(team, 0, ev)
    }

    /// Blocks (with progress) until the asynchronous reduction's result is
    /// available here, and returns it.
    pub fn async_result(&self, handle: &AsyncScalar) -> i64 {
        self.wait_until("collective", || handle.op.completion.reached(Stage::LocalData));
        self.with_inst(handle.key, |inst| {
            inst.red_taken = true;
            inst.red_result.expect("LocalData implies result")
        })
    }

    /// Reduction up-phase bookkeeping: when every expected contribution
    /// (mine + children's) is present, send up or, at the root, turn
    /// around and distribute the result.
    pub(crate) fn red_try_advance(&self, key: (TeamId, u64), team: Team, my_rank: TeamRank) {
        let tree = BinomialTree::new(team.size(), TeamRank(0));
        let children = tree.children(my_rank);
        let expected = children.len() + 1;
        let ready = self.with_inst(key, |inst| {
            !inst.red_sent_up && inst.reg.is_some() && inst.red_buf.len() == expected
        });
        if !ready {
            return;
        }
        let total: i64 = self.with_inst(key, |inst| {
            inst.red_sent_up = true;
            inst.red_buf.iter().sum()
        });
        match tree.parent(my_rank) {
            Some(parent) => {
                let target = team.image_of(parent);
                let team2 = team.clone();
                self.send_am(
                    target,
                    16,
                    false,
                    None,
                    Box::new(move |img: &Image| {
                        img.with_inst(key, |inst| inst.red_buf.push(total));
                        let rank = team2.rank_of(img.id()).expect("tree member");
                        img.red_try_advance(key, team2, rank);
                    }),
                );
            }
            None => {
                // Root: result known; distribute down the same tree.
                red_distribute(self, key, team, my_rank, total);
            }
        }
    }
}

/// Participant-side delivery of one asynchronous-broadcast hop: write the
/// segment, acknowledge the parent (its pair-wise communication with us is
/// complete), forward to our subtree, and record arrival.
#[allow(clippy::too_many_arguments)]
fn bcast_deliver<T: Clone + Send + 'static>(
    img: &Image,
    team: Team,
    coarray: Coarray<T>,
    range: Range<usize>,
    root: TeamRank,
    seq: u64,
    data: Vec<T>,
    parent: ImageId,
) {
    let key = (team.id(), seq);
    coarray.write(img.id(), range.start, &data);
    img.send_am(parent, 0, false, None, Box::new(move |p: &Image| p.async_child_ack(key)));
    let my_rank = team.rank_of(img.id()).expect("broadcast member");
    let tree = BinomialTree::new(team.size(), root);
    let children = tree.children(my_rank);
    img.with_inst(key, |inst| {
        inst.acks_remaining = Some(children.len());
        inst.data_done = true;
    });
    let me = img.id();
    let nbytes = data.len() * std::mem::size_of::<T>();
    for child in children {
        let target = team.image_of(child);
        let (team2, co2, range2, data2) =
            (team.clone(), coarray.clone(), range.clone(), data.clone());
        img.send_am(
            target,
            nbytes,
            false,
            None,
            Box::new(move |i: &Image| bcast_deliver(i, team2, co2, range2, root, seq, data2, me)),
        );
    }
}

/// Root/parent-side down-phase of the asynchronous reduction: record the
/// result locally, then forward it to tree children.
fn red_distribute(img: &Image, key: (TeamId, u64), team: Team, my_rank: TeamRank, total: i64) {
    let tree = BinomialTree::new(team.size(), TeamRank(0));
    let children = tree.children(my_rank);
    img.with_inst(key, |inst| {
        inst.acks_remaining = Some(children.len());
        inst.red_result = Some(total);
        inst.data_done = true;
    });
    let me = img.id();
    for child in children {
        let target = team.image_of(child);
        let team2 = team.clone();
        img.send_am(
            target,
            16,
            false,
            None,
            Box::new(move |i: &Image| {
                let rank = team2.rank_of(i.id()).expect("tree member");
                red_distribute(i, key, team2.clone(), rank, total);
                // Acknowledge receipt to the parent for its localE.
                i.send_am(me, 0, false, None, Box::new(move |p: &Image| p.async_child_ack(key)));
            }),
        );
    }
}
