//! Mattern's four-counter termination detection (the algorithm AM++ uses,
//! paper §V).
//!
//! Each image keeps cumulative `sent` and `received` counters. A wave
//! reduces `(Σsent, Σreceived)`. Termination is declared when a wave's
//! sums balance *and* equal the previous wave's sums — the "count twice"
//! rule that guarantees no message crossed the two cuts, at the price of
//! always needing at least one extra reduction compared with the paper's
//! epoch algorithm.

use super::{Contribution, WaveDecision, WaveDetector};
use crate::ids::Parity;

/// Per-image four-counter state.
#[derive(Debug, Clone, Default)]
pub struct FourCounterDetector {
    sent: u64,
    received: u64,
    completed: u64,
    prev_sums: Option<Contribution>,
    waves: usize,
    poisoned: Option<usize>,
}

impl FourCounterDetector {
    /// Fresh detector with zeroed counters.
    pub fn new() -> Self {
        FourCounterDetector::default()
    }
}

impl WaveDetector for FourCounterDetector {
    fn on_send(&mut self) -> Parity {
        self.sent += 1;
        // The four-counter algorithm has no epoch notion; tag all traffic
        // Even so it interoperates with parity-tagged transports.
        Parity::Even
    }

    fn on_delivered(&mut self, _tag: Parity) {}

    fn on_receive(&mut self, _tag: Parity) {
        self.received += 1;
    }

    fn on_complete(&mut self, _tag: Parity) {
        self.completed += 1;
    }

    fn ready(&self) -> bool {
        // The classic algorithm still requires receivers to have processed
        // what they received before contributing, otherwise a "received
        // but not yet re-spawned" function would let the counts balance
        // while work is pending. Counting completed receptions achieves
        // the same effect as counting at handler exit. A poisoned finish
        // skips the wait: a function shipped from the dead image may
        // never be completable.
        self.poisoned.is_some() || self.received == self.completed
    }

    fn enter_wave(&mut self) -> Contribution {
        [self.sent as i64, self.received as i64]
    }

    fn exit_wave(&mut self, reduced: Contribution) -> WaveDecision {
        self.waves += 1;
        let balanced = reduced[0] == reduced[1];
        let stable = self.prev_sums == Some(reduced);
        self.prev_sums = Some(reduced);
        if self.poisoned.is_some() {
            WaveDecision::Poisoned
        } else if balanced && stable {
            WaveDecision::Terminated
        } else {
            WaveDecision::Continue
        }
    }

    fn waves(&self) -> usize {
        self.waves
    }

    fn poison(&mut self, image: usize) {
        self.poisoned.get_or_insert(image);
    }

    fn poisoned_by(&self) -> Option<usize> {
        self.poisoned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needs_two_identical_balanced_waves() {
        let mut d = FourCounterDetector::new();
        d.enter_wave();
        // First balanced wave: not enough (no previous wave to confirm).
        assert_eq!(d.exit_wave([0, 0]), WaveDecision::Continue);
        d.enter_wave();
        assert_eq!(d.exit_wave([0, 0]), WaveDecision::Terminated);
    }

    #[test]
    fn unbalanced_waves_never_terminate() {
        let mut d = FourCounterDetector::new();
        d.enter_wave();
        assert_eq!(d.exit_wave([5, 3]), WaveDecision::Continue);
        d.enter_wave();
        assert_eq!(d.exit_wave([5, 3]), WaveDecision::Continue); // stable but unbalanced
    }

    #[test]
    fn changing_sums_reset_confirmation() {
        let mut d = FourCounterDetector::new();
        d.enter_wave();
        assert_eq!(d.exit_wave([2, 2]), WaveDecision::Continue);
        d.enter_wave();
        assert_eq!(d.exit_wave([4, 4]), WaveDecision::Continue); // balanced but moved
        d.enter_wave();
        assert_eq!(d.exit_wave([4, 4]), WaveDecision::Terminated);
    }

    #[test]
    fn poison_aborts_even_a_stable_balanced_wave() {
        let mut d = FourCounterDetector::new();
        d.on_receive(Parity::Even); // never completed: not ready
        assert!(!d.ready());
        d.poison(1);
        assert!(d.ready());
        d.enter_wave();
        assert_eq!(d.exit_wave([0, 0]), WaveDecision::Poisoned);
        d.enter_wave();
        assert_eq!(d.exit_wave([0, 0]), WaveDecision::Poisoned, "stable + balanced stays poisoned");
        assert_eq!(d.poisoned_by(), Some(1));
    }

    #[test]
    fn pending_reception_blocks_readiness() {
        let mut d = FourCounterDetector::new();
        d.on_receive(Parity::Even);
        assert!(!d.ready());
        d.on_complete(Parity::Even);
        assert!(d.ready());
    }
}
