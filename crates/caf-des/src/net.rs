//! Network cost model for simulated time, mirroring
//! [`caf_core::config::NetworkModel`] (which speaks `Duration` for the
//! threaded runtime) in integer nanoseconds.

use caf_core::config::NetworkModel;
use caf_core::rng::SplitMix64;

/// Interconnect costs in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimNet {
    /// One-way latency.
    pub latency_ns: u64,
    /// Sender-side injection overhead.
    pub injection_ns: u64,
    /// Per-payload-byte cost (fixed-point: nanoseconds × 1024 per byte).
    pub byte_cost_mils: u64,
    /// Target-side handler overhead.
    pub handler_ns: u64,
    /// Maximum extra pseudo-random skew per message (0 = FIFO-ish).
    pub jitter_ns: u64,
}

impl SimNet {
    /// Conversion from the shared cost model. `jitter_ns` defaults to
    /// half the latency when `non_fifo` holds, matching `caf-net`.
    pub fn from_model(m: &NetworkModel, non_fifo: bool) -> Self {
        let latency_ns = m.latency.as_nanos() as u64;
        SimNet {
            latency_ns,
            injection_ns: m.injection_overhead.as_nanos() as u64,
            byte_cost_mils: (m.byte_cost.as_nanos() as u64) * 1024,
            handler_ns: m.handler_overhead.as_nanos() as u64,
            jitter_ns: if non_fifo { latency_ns / 2 } else { 0 },
        }
    }

    /// A Gemini-like network (the paper's Cray XK6/XE6 class).
    pub fn gemini_like() -> Self {
        SimNet::from_model(&NetworkModel::gemini_like(), false)
    }

    /// Delivery delay for a `bytes`-byte message to a *remote* image,
    /// using `rng` for jitter (pass a per-model seeded stream for
    /// determinism).
    pub fn delivery_delay(&self, bytes: usize, rng: &mut SplitMix64) -> u64 {
        let wire = self.latency_ns + (bytes as u64 * self.byte_cost_mils) / 1024;
        let jitter = if self.jitter_ns > 0 { rng.next_below(self.jitter_ns) } else { 0 };
        self.injection_ns + wire + jitter + self.handler_ns
    }

    /// Delay for a local (same-image) message: injection only.
    pub fn local_delay(&self) -> u64 {
        self.injection_ns + self.handler_ns
    }

    /// Critical-path cost of a `size`-member synchronous allreduce:
    /// reduce tree + broadcast tree, one small message per level.
    pub fn allreduce_cost(&self, size: usize, rng: &mut SplitMix64) -> u64 {
        let levels = caf_core::topology::log2_rounds(size.max(1)) as u64;
        2 * levels * self.delivery_delay(16, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_scales_with_bytes() {
        let net = SimNet {
            latency_ns: 1000,
            injection_ns: 0,
            byte_cost_mils: 1024, // 1 ns/byte
            handler_ns: 0,
            jitter_ns: 0,
        };
        let mut rng = SplitMix64::new(1);
        assert_eq!(net.delivery_delay(0, &mut rng), 1000);
        assert_eq!(net.delivery_delay(500, &mut rng), 1500);
    }

    #[test]
    fn jitter_bounded() {
        let net = SimNet {
            latency_ns: 100,
            injection_ns: 0,
            byte_cost_mils: 0,
            handler_ns: 0,
            jitter_ns: 50,
        };
        let mut rng = SplitMix64::new(7);
        for _ in 0..100 {
            let d = net.delivery_delay(0, &mut rng);
            assert!((100..150).contains(&d));
        }
    }

    #[test]
    fn allreduce_cost_grows_logarithmically() {
        let net = SimNet {
            latency_ns: 1000,
            injection_ns: 0,
            byte_cost_mils: 0,
            handler_ns: 0,
            jitter_ns: 0,
        };
        let mut rng = SplitMix64::new(1);
        let c2 = net.allreduce_cost(2, &mut rng);
        let c1024 = net.allreduce_cost(1024, &mut rng);
        assert_eq!(c1024, 10 * c2);
    }

    #[test]
    fn conversion_from_shared_model() {
        let net = SimNet::gemini_like();
        assert_eq!(net.latency_ns, 1500);
        assert_eq!(net.jitter_ns, 0);
        let nf = SimNet::from_model(&NetworkModel::gemini_like(), true);
        assert_eq!(nf.jitter_ns, 750);
    }
}
