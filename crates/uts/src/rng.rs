//! The UTS splittable random stream (the benchmark's "BRG SHA-1" RNG).
//!
//! Every tree node carries a 20-byte state (a SHA-1 digest). The root
//! state hashes a fixed 16-byte prefix plus the big-endian seed; child
//! `i`'s state hashes the parent's 20 bytes plus big-endian `i`. A node's
//! random value is its last four state bytes, masked to 31 bits. This
//! matches `rng/brg_sha1.c` of the official UTS distribution — validated
//! end-to-end by reproducing the published T1 node count (4,130,071).

use crate::sha1::Sha1;

/// Mask producing a non-negative 31-bit value.
const POS_MASK: u32 = 0x7FFF_FFFF;

/// A 20-byte splittable RNG state (one per tree node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UtsRng {
    /// The SHA-1 state bytes.
    pub state: [u8; 20],
}

impl UtsRng {
    /// Root state for `seed` (`rng_init`).
    pub fn init(seed: i32) -> Self {
        let mut temp = [0u8; 20];
        for (i, b) in temp.iter_mut().enumerate().take(16) {
            *b = i as u8;
        }
        temp[16..20].copy_from_slice(&seed.to_be_bytes());
        UtsRng { state: temp }.spawn(0)
    }

    /// State of child `spawn_number` (`rng_spawn`).
    pub fn spawn(&self, spawn_number: i32) -> Self {
        let mut ctx = Sha1::new();
        ctx.update(&self.state);
        ctx.update(&spawn_number.to_be_bytes());
        UtsRng { state: ctx.finish() }
    }

    /// The node's 31-bit random value (`rng_rand`): last four state
    /// bytes, big-endian, masked positive.
    pub fn rand(&self) -> i32 {
        let b = u32::from_be_bytes(self.state[16..20].try_into().expect("4 bytes"));
        (b & POS_MASK) as i32
    }

    /// Maps a random value to `[0, 1)` (`rng_toProb`: divide by 2³¹).
    pub fn to_prob(v: i32) -> f64 {
        if v < 0 {
            0.0
        } else {
            v as f64 / 2_147_483_648.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_is_deterministic_and_seed_sensitive() {
        assert_eq!(UtsRng::init(19), UtsRng::init(19));
        assert_ne!(UtsRng::init(19).state, UtsRng::init(20).state);
    }

    #[test]
    fn spawn_depends_on_child_index() {
        let root = UtsRng::init(19);
        assert_ne!(root.spawn(0).state, root.spawn(1).state);
        assert_eq!(root.spawn(3).state, root.spawn(3).state);
    }

    #[test]
    fn rand_is_non_negative_31_bit() {
        let mut s = UtsRng::init(42);
        for i in 0..1000 {
            let v = s.rand();
            assert!(v >= 0);
            s = s.spawn(i % 8);
        }
    }

    #[test]
    fn to_prob_maps_into_unit_interval() {
        assert_eq!(UtsRng::to_prob(0), 0.0);
        assert!(UtsRng::to_prob(i32::MAX) < 1.0);
        assert_eq!(UtsRng::to_prob(-5), 0.0);
        assert!((UtsRng::to_prob(1 << 30) - 0.5).abs() < 1e-12);
    }

    /// The root state for seed 19 must hash the documented 24-byte input:
    /// 0,1,…,15, then big-endian 19, then big-endian spawn number 0.
    #[test]
    fn root_state_matches_manual_construction() {
        let mut input = Vec::new();
        input.extend(0u8..16);
        input.extend(19i32.to_be_bytes());
        input.extend(0i32.to_be_bytes());
        assert_eq!(UtsRng::init(19).state, crate::sha1::sha1(&input));
    }
}
