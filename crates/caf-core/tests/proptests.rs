//! Property-based tests on caf-core invariants.
//!
//! The heart of the suite: the paper's termination-detection algorithm
//! must be *sound* (never declare termination with work outstanding —
//! checked by the harness itself), *live* (always terminate), and respect
//! the Theorem 1 wave bound `waves ≤ L + 1`, across randomized spawn
//! forests, delays, and message reorderings. Plus algebraic properties of
//! the cofence/memory-model layer and the topology schedules.

use std::time::Duration;

use caf_core::cofence::{CofenceSpec, LocalAccess, Pass};
use caf_core::fault::{FaultDecision, FaultPlan, RetryPolicy, SeqTracker};
use caf_core::ids::{Parity, TeamRank};
use caf_core::model::{validate_execution, Execution, Stmt};
use caf_core::rng::SplitMix64;
use caf_core::termination::harness::{node, Harness, SpawnPlan, SpawnTree};
use caf_core::termination::{EpochDetector, FourCounterDetector, WaveDetector};
use caf_core::topology::{dissemination_peers, hypercube_neighbors, BinomialTree, Team};
use proptest::prelude::*;

/// Strategy for a spawn tree over `images` images with bounded size.
fn spawn_tree(images: usize) -> impl Strategy<Value = SpawnTree> {
    let leaf = (0..images).prop_map(|t| node(t, vec![]));
    leaf.prop_recursive(4, 24, 3, move |inner| {
        ((0..images), prop::collection::vec(inner, 0..3))
            .prop_map(|(t, children)| node(t, children))
    })
}

fn spawn_plan(images: usize) -> impl Strategy<Value = SpawnPlan> {
    (
        prop::collection::vec(((0..images), spawn_tree(images)), 0..4),
        1u64..5,      // net_delay
        1u64..5,      // ack_delay
        1u64..8,      // exec_delay
        0u64..20,     // jitter_max
        any::<u64>(), // jitter_seed
        1u64..6,      // wave_delay
    )
        .prop_map(
            |(roots, net_delay, ack_delay, exec_delay, jitter_max, jitter_seed, wave_delay)| {
                SpawnPlan {
                    roots,
                    net_delay,
                    ack_delay,
                    exec_delay,
                    jitter_max,
                    jitter_seed,
                    wave_delay,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The strict epoch detector is sound and live on arbitrary forests
    /// and schedules, and respects Theorem 1: waves ≤ L + 1.
    #[test]
    fn epoch_detector_sound_live_and_bounded(plan in spawn_plan(6)) {
        let l = plan.longest_chain();
        let mut h = Harness::new(6, || Box::new(EpochDetector::new(true)));
        let waves = h.run(plan); // panics internally if unsound/not live
        prop_assert!(waves <= l + 1, "L={l} but used {waves} waves");
        prop_assert!(waves >= 1);
    }

    /// The no-upper-bound variant stays sound and live, and never beats
    /// the strict variant on wave count.
    #[test]
    fn no_wait_variant_sound_and_never_cheaper(plan in spawn_plan(5)) {
        let mut strict = Harness::new(5, || Box::new(EpochDetector::new(true)));
        let waves_strict = strict.run(plan.clone());
        let mut loose = Harness::new(5, || Box::new(EpochDetector::new(false)));
        let waves_loose = loose.run(plan);
        prop_assert!(waves_loose >= waves_strict);
    }

    /// Mattern's four-counter algorithm is sound and live too, and needs
    /// at least two waves (its structural extra reduction).
    #[test]
    fn four_counter_sound_live_needs_two_waves(plan in spawn_plan(5)) {
        let mut h = Harness::new(5, || Box::new(FourCounterDetector::new()));
        let waves = h.run(plan);
        prop_assert!(waves >= 2);
    }

    /// Cofence permissiveness is monotone: anything admitted by a fence is
    /// admitted by any at-least-as-permissive fence, in both directions.
    #[test]
    fn cofence_monotonicity(
        d1 in 0usize..4, u1 in 0usize..4, d2 in 0usize..4, u2 in 0usize..4,
        reads in any::<bool>(), writes in any::<bool>(),
    ) {
        const PASSES: [Pass; 4] = [Pass::None, Pass::Reads, Pass::Writes, Pass::Any];
        let a = CofenceSpec::new(PASSES[d1], PASSES[u1]);
        let b = CofenceSpec::new(PASSES[d2], PASSES[u2]);
        let access = LocalAccess { reads, writes };
        if b.at_least_as_permissive(&a) {
            if !a.blocks_down(access) {
                prop_assert!(!b.blocks_down(access));
            }
            if a.admits_up(access) {
                prop_assert!(b.admits_up(access));
            }
        }
    }

    /// Executing every operation exactly at its program position is
    /// always a legal execution (the relaxed model only *adds* freedom).
    #[test]
    fn program_order_execution_is_always_legal(
        stmts in prop::collection::vec(arb_stmt(), 1..12)
    ) {
        let asyncs: Vec<usize> = stmts.iter().enumerate()
            .filter_map(|(i, s)| matches!(s, Stmt::Async { .. }).then_some(i))
            .collect();
        let exec = Execution {
            completed_by: asyncs.clone(),
            initiated_at: asyncs.clone(),
        };
        prop_assert!(validate_execution(&stmts, &exec).is_empty());
    }

    /// A binomial tree over a random size/root reaches every rank exactly
    /// once, with mutual parent/child links.
    #[test]
    fn binomial_tree_spans(size in 1usize..130, root_frac in 0.0f64..1.0) {
        let root = ((size as f64 * root_frac) as usize).min(size - 1);
        let tree = BinomialTree::new(size, TeamRank(root));
        let mut reached = vec![false; size];
        let mut stack = vec![TeamRank(root)];
        while let Some(r) = stack.pop() {
            prop_assert!(!reached[r.0]);
            reached[r.0] = true;
            for c in tree.children(r) {
                prop_assert_eq!(tree.parent(c), Some(r));
                stack.push(c);
            }
        }
        prop_assert!(reached.iter().all(|&x| x));
    }

    /// `team_split` partitions the team: every member lands in exactly one
    /// part, and parts are ordered by key.
    #[test]
    fn team_split_partitions(
        n in 1usize..40,
        colors in prop::collection::vec(0u64..5, 40),
        keys in prop::collection::vec(0u64..10, 40),
    ) {
        let t = Team::world(n);
        let parts = t.split_by(|r| (colors[r.0], keys[r.0]));
        let total: usize = parts.iter().map(|(_, m)| m.len()).sum();
        prop_assert_eq!(total, n);
        let mut seen = std::collections::HashSet::new();
        for (color, members) in &parts {
            for (i, m) in members.iter().enumerate() {
                prop_assert!(seen.insert(*m));
                let rank = t.rank_of(*m).unwrap();
                prop_assert_eq!(colors[rank.0], *color);
                if i > 0 {
                    let prev = t.rank_of(members[i - 1]).unwrap();
                    prop_assert!(
                        (keys[prev.0], prev.0) <= (keys[rank.0], rank.0),
                        "members must be key-ordered"
                    );
                }
            }
        }
    }

    /// Dissemination schedule correctness for arbitrary sizes: after all
    /// rounds every rank has transitively heard from every other rank.
    #[test]
    fn dissemination_covers(size in 1usize..64) {
        let mut knows: Vec<u128> = (0..size).map(|r| 1u128 << r).collect();
        let rounds = dissemination_peers(size, TeamRank(0)).len();
        for round in 0..rounds {
            let snapshot = knows.clone();
            for (r, snap) in snapshot.iter().enumerate() {
                let (to, _) = dissemination_peers(size, TeamRank(r))[round];
                knows[to.0] |= snap;
            }
        }
        let all = (1u128 << size) - 1;
        for k in &knows {
            prop_assert_eq!(*k, all);
        }
    }

    /// Hypercube lifelines form a connected graph (work can propagate from
    /// anyone to anyone — the liveness Saraswat's lifeline scheme needs).
    #[test]
    fn lifeline_graph_is_connected(size in 1usize..200) {
        let mut visited = vec![false; size];
        let mut stack = vec![0usize];
        visited[0] = true;
        let mut count = 1;
        while let Some(r) = stack.pop() {
            for n in hypercube_neighbors(size, TeamRank(r)) {
                if !visited[n.0] {
                    visited[n.0] = true;
                    count += 1;
                    stack.push(n.0);
                }
            }
        }
        prop_assert_eq!(count, size);
    }
}

/// Strategy for a random fault plan over `images` images: uniform drops,
/// duplication, delay spikes, per-link overrides, and stall windows.
fn fault_plan(images: usize) -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        0u32..40,
        0u32..40,
        0u32..30,
        prop::collection::vec((0..images, 0..images, 0u32..101), 0..3),
        prop::collection::vec((0..images, 0u64..50, 1u64..50), 0..2),
    )
        .prop_map(|(seed, drop, dup, spike, links, stalls)| {
            let mut p = FaultPlan::uniform_drop(seed, drop as f64 / 100.0)
                .with_dup(dup as f64 / 100.0)
                .with_spikes(spike as f64 / 100.0, Duration::from_micros(10));
            for (f, t, d) in links {
                p = p.with_link(f, t, d as f64 / 100.0);
            }
            for (i, s, l) in stalls {
                p = p.with_stall(i, Duration::from_micros(s), Duration::from_micros(l));
            }
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fault decisions are a pure function of (plan, link, sequence), and
    /// self-sends are always exempt — the bedrock of reproducible chaos.
    #[test]
    fn fault_decisions_deterministic_and_self_exempt(
        plan in fault_plan(6),
        probes in prop::collection::vec((0usize..6, 0usize..6, any::<u64>()), 1..50),
    ) {
        for (from, to, seq) in probes {
            let d = plan.decide(from, to, seq);
            prop_assert_eq!(d, plan.decide(from, to, seq), "decision must be pure");
            if from == to {
                prop_assert_eq!(d, FaultDecision::CLEAN);
            }
        }
    }

    /// The abstract reliable link: each message is retransmitted until a
    /// copy survives the plan's drops (or the retry budget runs out), the
    /// surviving copies — including injected duplicates — arrive in an
    /// adversarial shuffle, and [`SeqTracker`] dedup restores exactly-once:
    /// no loss (beyond explicit budget exhaustion) and no double count.
    #[test]
    fn retry_plus_dedup_restores_exactly_once(
        plan in fault_plan(4),
        n in 1usize..120,
        shuffle_seed in any::<u64>(),
    ) {
        let retry = RetryPolicy::default();
        let mut wire_seq = 0u64;
        let mut copies: Vec<u64> = Vec::new();
        let mut lost = 0usize;
        for link_seq in 0..n as u64 {
            let mut delivered = false;
            for _attempt in 0..=retry.max_retries {
                let d = plan.decide(0, 1, wire_seq);
                wire_seq += 1;
                if !d.drop {
                    copies.push(link_seq);
                    if d.duplicate {
                        copies.push(link_seq);
                    }
                    delivered = true;
                    break; // the ack stops further retransmission
                }
            }
            if !delivered {
                lost += 1;
            }
        }
        // Adversarial reorder (Fisher–Yates under a seeded stream).
        let mut rng = SplitMix64::new(shuffle_seed);
        for i in (1..copies.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            copies.swap(i, j);
        }
        let mut tracker = SeqTracker::default();
        let fresh = copies.iter().filter(|&&s| tracker.note(s)).count();
        prop_assert_eq!(fresh, n - lost, "each surviving message surfaces exactly once");
        // A replay of the whole stream surfaces nothing new.
        prop_assert!(copies.iter().all(|&s| !tracker.note(s)), "double count on replay");
    }

    /// No early termination at the detector level: a strict detector with
    /// any unacknowledged send — e.g. one lingering in a retry queue —
    /// must refuse to enter the reduction wave.
    #[test]
    fn detector_never_ready_with_outstanding_sends(k in 1usize..30, acked in 0usize..30) {
        let acked = acked.min(k);
        let mut d = EpochDetector::new(true);
        for _ in 0..k {
            let _ = d.on_send();
        }
        for _ in 0..acked {
            d.on_delivered(Parity::Even);
        }
        if acked < k {
            prop_assert!(!d.ready(), "ready with {} unacked sends", k - acked);
        }
    }
}

// ---------------------------------------------------------------------------
// Differential detector check: a random bounded message trace, fully
// drained, must yield the *same* verdict from every detector family —
// strict epoch and loose epoch terminate in one verdict wave, Mattern's
// four-counter in two, the centralized home after one report round, and
// the barrier detector is locally done everywhere. A divergence is
// delta-debugged down to a minimal message set before reporting (the
// vendored proptest shim does no automatic shrinking).
// ---------------------------------------------------------------------------

/// One spawned message of the differential trace: `(from, to, parent)`.
/// A child's send only becomes enabled once its parent has executed (the
/// transitive function-shipping structure of the paper's finish).
type DiffMsg = (usize, usize, Option<usize>);

/// A differential test case: the message forest plus the schedule seed
/// that fixes the interleaving. `drop_exec` injects a trace corruption
/// (that message's completion never happens) to exercise the shrinker.
#[derive(Debug, Clone)]
struct DiffCase {
    images: usize,
    msgs: Vec<DiffMsg>,
    seed: u64,
    drop_exec: Option<usize>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DiffStep {
    Send(usize),
    Deliver(usize),
    Ack(usize),
    Exec(usize),
}

/// Closes `alive` under the spawn structure: a message stays only if its
/// whole ancestor chain is alive and no ancestor has its exec dropped
/// (a child of an unexeced parent is never sent).
fn diff_close_inner(msgs: &[DiffMsg], alive: &[usize], drop_exec: Option<usize>) -> Vec<usize> {
    let mut ok = vec![false; msgs.len()];
    for &i in alive {
        let sendable = match msgs[i].2 {
            None => true,
            Some(p) => ok[p] && drop_exec != Some(p),
        };
        // Parents precede children by construction, so one forward pass
        // settles the chain.
        if sendable {
            ok[i] = true;
        }
    }
    (0..msgs.len()).filter(|&i| ok[i]).collect()
}

/// Builds one valid interleaving of the alive messages' protocol steps
/// under a seeded random scheduler: send ≺ deliver ≺ {ack, exec}, and a
/// child's send waits for its parent's exec.
fn diff_linearize(case: &DiffCase, alive: &[usize]) -> Vec<DiffStep> {
    let mut rng = SplitMix64::new(case.seed);
    let mut done = vec![[false; 4]; case.msgs.len()]; // send/deliver/ack/exec
    let total: usize = alive.iter().map(|&i| if case.drop_exec == Some(i) { 3 } else { 4 }).sum();
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        let mut enabled = Vec::new();
        for &i in alive {
            if !done[i][0] {
                if case.msgs[i].2.is_none_or(|p| done[p][3]) {
                    enabled.push(DiffStep::Send(i));
                }
            } else if !done[i][1] {
                enabled.push(DiffStep::Deliver(i));
            } else {
                if !done[i][2] {
                    enabled.push(DiffStep::Ack(i));
                }
                if !done[i][3] && case.drop_exec != Some(i) {
                    enabled.push(DiffStep::Exec(i));
                }
            }
        }
        let pick = enabled[rng.next_below(enabled.len() as u64) as usize];
        match pick {
            DiffStep::Send(i) => done[i][0] = true,
            DiffStep::Deliver(i) => done[i][1] = true,
            DiffStep::Ack(i) => done[i][2] = true,
            DiffStep::Exec(i) => done[i][3] = true,
        }
        out.push(pick);
    }
    out
}

/// Replays the trace through a fresh wave-detector bank and runs
/// synchronous verdict waves; returns the wave the bank unanimously
/// terminated in, or an error describing the divergence.
fn diff_wave_verdict<D: WaveDetector>(
    images: usize,
    msgs: &[DiffMsg],
    trace: &[DiffStep],
    fresh: impl Fn() -> D,
) -> Result<usize, String> {
    use caf_core::termination::WaveDecision;
    let mut bank: Vec<D> = (0..images).map(|_| fresh()).collect();
    let mut tags: Vec<Option<Parity>> = vec![None; msgs.len()];
    for step in trace {
        match *step {
            DiffStep::Send(i) => tags[i] = Some(bank[msgs[i].0].on_send()),
            DiffStep::Deliver(i) => bank[msgs[i].1].on_receive(tags[i].unwrap()),
            DiffStep::Ack(i) => bank[msgs[i].0].on_delivered(tags[i].unwrap()),
            DiffStep::Exec(i) => bank[msgs[i].1].on_complete(tags[i].unwrap()),
        }
    }
    for wave in 1..=3usize {
        if let Some(i) = (0..images).find(|&i| !bank[i].ready()) {
            return Err(format!("image {i} not ready for verdict wave {wave}"));
        }
        let mut sum = [0i64; 2];
        for d in bank.iter_mut() {
            let c = d.enter_wave();
            sum[0] += c[0];
            sum[1] += c[1];
        }
        let decisions: Vec<WaveDecision> = bank.iter_mut().map(|d| d.exit_wave(sum)).collect();
        if decisions.contains(&WaveDecision::Terminated) {
            return if decisions.iter().all(|d| *d == WaveDecision::Terminated) {
                Ok(wave)
            } else {
                Err(format!("split verdict in wave {wave}: {decisions:?}"))
            };
        }
    }
    Err("no termination within 3 verdict waves".into())
}

/// Runs every detector family over the alive subset of the case and
/// returns the first divergence from the expected identical verdict.
fn diff_divergence(case: &DiffCase, alive: &[usize]) -> Option<String> {
    use caf_core::ids::ImageId;
    use caf_core::termination::{BarrierDetector, CentralizedDetector, CentralizedHome};
    let trace = diff_linearize(case, alive);
    let msgs = &case.msgs;
    let n = case.images;
    for (name, expect, run) in [("epoch-strict", 1usize, true), ("epoch-loose", 1, false)] {
        match diff_wave_verdict(n, msgs, &trace, || EpochDetector::new(run)) {
            Ok(w) if w == expect => {}
            Ok(w) => return Some(format!("{name}: terminated in wave {w}, expected {expect}")),
            Err(e) => return Some(format!("{name}: {e}")),
        }
    }
    match diff_wave_verdict(n, msgs, &trace, FourCounterDetector::new) {
        Ok(2) => {}
        Ok(w) => return Some(format!("four-counter: terminated in wave {w}, expected 2")),
        Err(e) => return Some(format!("four-counter: {e}")),
    }
    let mut home = CentralizedHome::new(n);
    let mut workers: Vec<CentralizedDetector> =
        (0..n).map(|i| CentralizedDetector::new(ImageId(i), n)).collect();
    for step in &trace {
        match *step {
            DiffStep::Send(i) => workers[msgs[i].0].on_spawn(ImageId(msgs[i].1)),
            DiffStep::Deliver(i) => workers[msgs[i].1].on_activity_start(),
            DiffStep::Exec(i) => workers[msgs[i].1].on_activity_complete(),
            DiffStep::Ack(_) => {}
        }
    }
    let mut done = false;
    for (i, w) in workers.iter_mut().enumerate() {
        if !w.quiescent() {
            return Some(format!("centralized: worker {i} not quiescent on drained trace"));
        }
        if let Some(r) = w.take_report() {
            done = home.ingest(&r);
        }
    }
    if !done {
        return Some("centralized: home withheld termination after a full report round".into());
    }
    let mut barrier: Vec<BarrierDetector> = (0..n).map(|_| BarrierDetector::new()).collect();
    for step in &trace {
        match *step {
            DiffStep::Send(i) => {
                barrier[msgs[i].0].on_send();
            }
            DiffStep::Deliver(i) => barrier[msgs[i].1].on_receive(Parity::Even),
            DiffStep::Ack(i) => barrier[msgs[i].0].on_delivered(Parity::Even),
            DiffStep::Exec(i) => barrier[msgs[i].1].on_complete(Parity::Even),
        }
    }
    if let Some(i) = (0..n).find(|&i| !barrier[i].locally_done()) {
        return Some(format!("barrier: image {i} not locally done on a terminated trace"));
    }
    None
}

/// Manual ddmin over the message set: the smallest alive subset (closed
/// under the spawn structure) that still diverges.
fn diff_minimize(case: &DiffCase) -> Vec<usize> {
    let mut alive = diff_close(case, &(0..case.msgs.len()).collect::<Vec<_>>());
    let mut chunk = alive.len().div_ceil(2).max(1);
    loop {
        let mut progressed = false;
        let mut i = 0;
        while i < alive.len() {
            let candidate: Vec<usize> = alive
                .iter()
                .enumerate()
                .filter(|(k, _)| *k < i || *k >= i + chunk)
                .map(|(_, &m)| m)
                .collect();
            let candidate = diff_close(case, &candidate);
            if (!candidate.is_empty() || case.drop_exec.is_none())
                && diff_divergence(case, &candidate).is_some()
            {
                alive = candidate;
                progressed = true;
                continue;
            }
            i += chunk;
        }
        if chunk == 1 && !progressed {
            return alive;
        }
        chunk = (chunk / 2).max(1);
    }
}

fn diff_close(case: &DiffCase, alive: &[usize]) -> Vec<usize> {
    diff_close_inner(&case.msgs, alive, case.drop_exec)
}

/// Strategy for a bounded random message forest over `images` images:
/// each message names a sender, a target, and optionally a parent among
/// the earlier messages (its sender is then forced to the parent's
/// target, as a real shipped function would).
fn diff_case(images: usize) -> impl Strategy<Value = DiffCase> {
    (prop::collection::vec((0..images, 0..images, any::<u64>()), 0..7), any::<u64>()).prop_map(
        move |(raw, seed)| {
            let mut msgs: Vec<DiffMsg> = Vec::with_capacity(raw.len());
            for (i, (from, to, link)) in raw.into_iter().enumerate() {
                let parent = (i > 0 && link % 3 == 0).then(|| (link / 3) as usize % i);
                let from = parent.map_or(from, |p| msgs[p].1);
                msgs.push((from, to, parent));
            }
            DiffCase { images, msgs, seed, drop_exec: None }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// All five detector families agree on every drained random trace.
    /// On a divergence the failing case is first delta-debugged to a
    /// minimal message set, so the panic message names the smallest
    /// reproducing forest.
    #[test]
    fn all_detector_families_agree_on_random_traces(case in diff_case(4)) {
        let alive = diff_close(&case, &(0..case.msgs.len()).collect::<Vec<_>>());
        if let Some(divergence) = diff_divergence(&case, &alive) {
            let minimal = diff_minimize(&case);
            let forest: Vec<DiffMsg> = minimal.iter().map(|&i| case.msgs[i]).collect();
            let detail = diff_divergence(&case, &minimal).unwrap_or(divergence);
            prop_assert!(
                false,
                "detector families diverged: {detail}\n  minimal forest ({} of {} msgs): \
                 {forest:?}\n  seed {:#x}",
                minimal.len(),
                case.msgs.len(),
                case.seed
            );
        }
    }
}

#[test]
fn diff_shrinker_reduces_a_corrupted_trace_to_one_message() {
    // Corrupt message 2 of a five-message forest (its completion never
    // happens): every family must flag the trace, and ddmin must strip
    // the four healthy messages, leaving exactly the corrupted one.
    let case = DiffCase {
        images: 4,
        msgs: vec![(0, 1, None), (1, 2, Some(0)), (0, 3, None), (3, 0, Some(2)), (2, 2, None)],
        seed: 0xca_fe,
        drop_exec: Some(2),
    };
    let all = diff_close(&case, &(0..case.msgs.len()).collect::<Vec<_>>());
    assert!(diff_divergence(&case, &all).is_some(), "corrupted trace must diverge");
    let minimal = diff_minimize(&case);
    assert_eq!(minimal, vec![2], "ddmin must isolate the corrupted message");
    assert!(diff_divergence(&case, &minimal).is_some());
}

#[test]
fn diff_clean_forest_has_no_divergence_under_many_schedules() {
    // A fixed transitive forest under 64 different interleavings: the
    // deterministic counterpart of the property above.
    for seed in 0..64u64 {
        let case = DiffCase {
            images: 3,
            msgs: vec![(0, 1, None), (1, 2, Some(0)), (2, 0, Some(1)), (0, 2, None)],
            seed,
            drop_exec: None,
        };
        let alive = diff_close(&case, &(0..case.msgs.len()).collect::<Vec<_>>());
        assert_eq!(diff_divergence(&case, &alive), None, "seed {seed}");
    }
}

/// Strategy for a random abstract program statement.
fn arb_stmt() -> impl Strategy<Value = Stmt> {
    use caf_core::ids::{EventId, ImageId};
    let access =
        (any::<bool>(), any::<bool>()).prop_map(|(reads, writes)| LocalAccess { reads, writes });
    let pass = (0usize..4).prop_map(|i| [Pass::None, Pass::Reads, Pass::Writes, Pass::Any][i]);
    prop_oneof![
        (access, any::<bool>()).prop_map(|(access, implicit)| Stmt::Async { access, implicit }),
        (pass.clone(), pass).prop_map(|(d, u)| Stmt::Cofence(CofenceSpec::new(d, u))),
        (0u64..3).prop_map(|s| Stmt::Notify(EventId { owner: ImageId(0), slot: s })),
        (0u64..3).prop_map(|s| Stmt::Wait(EventId { owner: ImageId(0), slot: s })),
        Just(Stmt::FinishEnd),
    ]
}

// ---------------------------------------------------------------------------
// Fail-stop crashes: no finish deadlock under any single-image crash at any
// point in the spawn tree, for all four detector families.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The strict epoch detector either terminates cleanly (crash point
    /// never reached) or every survivor agrees on `Poisoned` — it never
    /// deadlocks, whatever event the victim dies at. Soundness of a clean
    /// termination is asserted inside the harness.
    #[test]
    fn epoch_detector_survives_any_single_crash(
        plan in spawn_plan(5),
        victim in 0usize..5,
        crash_at in 0usize..200,
        detect_delay in 1u64..30,
    ) {
        let mut h = Harness::new(5, || Box::new(EpochDetector::new(true)));
        h.run_with_crash(plan, victim, crash_at, detect_delay);
    }

    /// Same property for the no-upper-bound epoch variant, which keeps
    /// reducing speculatively while poison is in flight.
    #[test]
    fn loose_epoch_detector_survives_any_single_crash(
        plan in spawn_plan(4),
        victim in 0usize..4,
        crash_at in 0usize..150,
        detect_delay in 1u64..30,
    ) {
        let mut h = Harness::new(4, || Box::new(EpochDetector::new(false)));
        h.run_with_crash(plan, victim, crash_at, detect_delay);
    }

    /// Mattern's four-counter detector under the same crash sweep.
    #[test]
    fn four_counter_detector_survives_any_single_crash(
        plan in spawn_plan(5),
        victim in 0usize..5,
        crash_at in 0usize..200,
        detect_delay in 1u64..30,
    ) {
        let mut h = Harness::new(5, || Box::new(FourCounterDetector::new()));
        h.run_with_crash(plan, victim, crash_at, detect_delay);
    }

    /// The barrier strawman: poison must always unblock the survivors'
    /// barrier wait (the crash must never add a *new* way to hang).
    #[test]
    fn barrier_detector_crash_always_unblocks(
        plan in spawn_plan(4),
        victim in 0usize..4,
        crash_at in 0usize..150,
        detect_delay in 1u64..30,
    ) {
        let run = Harness::run_barrier_with_crash(4, plan, victim, crash_at, detect_delay);
        // Either the barrier completed before the crash point was reached,
        // or the survivors aborted with poison; both end the wait.
        prop_assert!(run.declared_at < u64::MAX);
    }

    /// Centralized (X10-style) detection: a dead worker's missing vector
    /// report must keep the home from declaring termination, and poison
    /// must give the waiting images a verdict to abort on.
    #[test]
    fn centralized_home_poison_gives_a_verdict(
        n in 2usize..6,
        spawns in prop::collection::vec((0usize..6, 0usize..6), 0..12),
        victim_seed in any::<u64>(),
    ) {
        use caf_core::ids::ImageId;
        use caf_core::termination::{CentralizedDetector, CentralizedHome};
        let victim = (victim_seed % n as u64) as usize;
        let mut home = CentralizedHome::new(n);
        let mut workers: Vec<CentralizedDetector> =
            (0..n).map(|i| CentralizedDetector::new(ImageId(i), n)).collect();
        for (from, to) in spawns {
            workers[from % n].on_spawn(ImageId(to % n));
        }
        // The victim dies before reporting; survivors all report.
        for (i, w) in workers.iter_mut().enumerate() {
            if i == victim {
                continue;
            }
            if let Some(r) = w.take_report() {
                home.ingest(&r);
            }
        }
        prop_assert!(!home.terminated(), "victim never reported, yet home terminated");
        home.poison(victim);
        prop_assert!(!home.terminated());
        prop_assert_eq!(home.poisoned_by(), Some(victim));
    }
}

proptest! {
    /// The posthumous filter composed with sequence dedup: while the
    /// peer lives, `SeqTracker` restores exactly-once over any
    /// interleaving of fresh copies and duplicates; once the peer is
    /// confirmed dead at incarnation `k`, *no* message stamped `≤ k`
    /// gets past the incarnation check — regardless of sequence number —
    /// while a restarted incarnation `k+1` is admitted again.
    #[test]
    fn posthumous_messages_never_survive_the_incarnation_check(
        pre in prop::collection::vec(0u64..64, 0..40),
        post in prop::collection::vec(0u64..64, 1..40),
        death_inc in 1u64..4,
    ) {
        use caf_core::failure::{FailureDetectorState, FailureParams};
        use std::collections::HashSet;
        let peer = 7usize;
        let mut det = FailureDetectorState::new(FailureParams::default());
        let mut tracker = SeqTracker::default();
        let now = Duration::from_millis(1);
        det.monitor(peer, now);
        let mut fresh = HashSet::new();
        for &seq in &pre {
            prop_assert!(det.accepts(peer, death_inc), "live peer must be accepted");
            det.on_life_sign(peer, death_inc, now);
            if tracker.note(seq) {
                prop_assert!(fresh.insert(seq), "SeqTracker double-delivered {seq}");
            }
        }
        det.mark_dead(peer, death_inc, now);
        for &seq in &post {
            // Every copy stamped at or below the dead incarnation is
            // discarded before the tracker ever sees it — including
            // sequence numbers that were never delivered pre-death.
            for inc in 0..=death_inc {
                prop_assert!(
                    !det.accepts(peer, inc),
                    "posthumous seq {seq} at incarnation {inc} accepted"
                );
            }
        }
        // Unmonitored bystanders are unaffected by the death.
        prop_assert!(det.accepts(peer + 1, 1));
        // A restart under the next incarnation is admitted, and its
        // stream starts over with a fresh tracker: exactly-once again.
        prop_assert!(det.accepts(peer, death_inc + 1), "restarted incarnation rejected");
        let mut restarted = SeqTracker::default();
        let unique: HashSet<u64> = post.iter().copied().collect();
        let delivered = post.iter().filter(|&&s| restarted.note(s)).count();
        prop_assert_eq!(delivered, unique.len(), "restart stream not exactly-once");
    }
}
