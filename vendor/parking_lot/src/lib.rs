//! Offline drop-in replacement for the subset of `parking_lot` this
//! workspace uses, implemented over `std::sync`.
//!
//! The build environment has no registry access, so the real crate cannot
//! be fetched. Semantics match for the API surface we rely on: `lock()`
//! returns a guard directly (poisoning is absorbed — a poisoned lock
//! yields the inner guard, matching parking_lot's no-poisoning model),
//! and `Condvar` takes guards by `&mut` reference.

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::time::Instant;

/// A mutex with the `parking_lot` calling convention (no poison results).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`]. Wraps the std guard so [`Condvar`] can take
/// it by `&mut` (the std condvar consumes guards by value).
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    #[inline]
    pub const fn new(t: T) -> Self {
        Mutex(std::sync::Mutex::new(t))
    }

    /// Consumes the mutex, returning the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Attempts to acquire the mutex without blocking.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard present outside condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard present outside condvar wait")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    #[inline]
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable with the `parking_lot` guard-by-reference API.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    #[inline]
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Wakes one waiter.
    #[inline]
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    #[inline]
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Blocks until notified, releasing the guard's lock while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (inner, res) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }
}

/// Reader-writer lock with the `parking_lot` calling convention.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    #[inline]
    pub const fn new(t: T) -> Self {
        RwLock(std::sync::RwLock::new(t))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    #[inline]
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    #[inline]
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
        drop(g);
    }

    #[test]
    fn condvar_cross_thread_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait_until(&mut g, Instant::now() + Duration::from_secs(5));
        }
        drop(g);
        t.join().unwrap();
    }
}
