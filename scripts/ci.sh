#!/usr/bin/env bash
# The full CI gate: build, tests, clippy (warnings are errors), rustfmt.
#
# Usage:
#   scripts/ci.sh            # the standard gate
#   scripts/ci.sh --stress   # also run the chaos-stress soak (minutes)
#   CI_SOAK=1 scripts/ci.sh  # same soak, opted in via the environment
#                            # (for CI matrices that can't pass flags)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build =="
cargo build --workspace --all-targets

echo "== test =="
cargo test --workspace --quiet

echo "== model-checker smoke (p=3, depth=2) =="
# Time-boxed: the state cap truncates the two families that blow past it
# at this bound (honest truncation, not a pass), keeping the smoke tier
# seconds-fast; scripts/soak.sh runs the uncapped p=5 depth=4 sweep.
cargo build --release -p caf-check --quiet
./target/release/caf-check suite --images 3 --depth 2 --crash-scenarios \
    --max-states 200000 --quiet

echo "== caf-lint corpus (fixtures caught, goldens exact, examples clean) =="
cargo build --release -p caf-lint --quiet
lint_golden_tier() {
    local dir="$1"
    local plan golden got want_exit got_exit
    for plan in "$dir"/*.plan; do
        golden="${plan%.plan}.golden"
        [[ -f "$golden" ]] || { echo "missing golden for $plan"; exit 1; }
        # Fixtures whose goldens carry errors must exit 1; clean/warning
        # plans must exit 0.
        if grep -q '^error\[' "$golden"; then want_exit=1; else want_exit=0; fi
        got_exit=0
        got="$(./target/release/caf-lint check "$plan")" || got_exit=$?
        if [[ "$got_exit" -ne "$want_exit" ]]; then
            echo "$plan: exit $got_exit, expected $want_exit"; exit 1
        fi
        if ! diff <(printf '%s\n' "$got") "$golden" >/dev/null; then
            echo "$plan: output drifted from $golden:"
            diff <(printf '%s\n' "$got") "$golden" || true
            exit 1
        fi
    done
}
lint_golden_tier tests/fixtures/lints
lint_golden_tier examples/plans

echo "== caf-lint ⇄ caf-check differential (every diagnostic realizable) =="
./target/release/caf-check plan-diff tests/fixtures/lints/*.plan examples/plans/*.plan

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== fmt =="
cargo fmt --all --check

if [[ "${1:-}" == "--stress" || "${CI_SOAK:-0}" == "1" ]]; then
    echo "== chaos-stress soak =="
    cargo test --quiet -p caf-runtime --features chaos-stress --test chaos
    echo "== model-checker soak (p=5, depth=4) =="
    ./target/release/caf-check suite --images 5 --depth 4 --crash-scenarios --quiet
fi

echo "CI gate passed."
