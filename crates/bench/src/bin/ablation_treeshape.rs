//! **Ablation**: collective topology inside the `finish` allreduce.
//!
//! The paper's O((L+1) log p) bound assumes a logarithmic reduction tree.
//! This ablation measures the real threaded allreduce latency against
//! image count, and models the alternative shapes (flat star, chain) to
//! show why the binomial tree is the right substrate for termination
//! detection.

use std::time::Instant;

use bench::{fmt_ns, print_table};
use caf_core::rng::SplitMix64;
use caf_des::SimNet;
use caf_runtime::{CommMode, NetworkModel, Runtime, RuntimeConfig};

fn main() {
    // ------------------------------------------------------------------
    // Measured: threaded allreduce latency vs. image count.
    // ------------------------------------------------------------------
    let iters = 300u32;
    let mut rows = Vec::new();
    for p in [2usize, 4, 8, 16] {
        let cfg = RuntimeConfig {
            comm_mode: CommMode::DedicatedThread,
            network: NetworkModel::slow_cluster(),
            ..RuntimeConfig::default()
        };
        let times = Runtime::launch(p, cfg, |img| {
            let w = img.world();
            img.barrier(&w);
            let t0 = Instant::now();
            for _ in 0..iters {
                let _ = img.allreduce(&w, 1i64, |a, b| a + b);
            }
            t0.elapsed().as_secs_f64() / iters as f64
        });
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        rows.push(vec![p.to_string(), format!("{:.1} µs", mean * 1e6)]);
    }
    print_table(
        "Measured threaded allreduce latency (binomial reduce + broadcast)",
        &["images", "per allreduce"],
        &rows,
    );

    // ------------------------------------------------------------------
    // Modelled: critical path of one wave under three tree shapes.
    // ------------------------------------------------------------------
    let net = SimNet::gemini_like();
    let mut rng = SplitMix64::new(1);
    let hop = net.delivery_delay(16, &mut rng);
    let mut rows = Vec::new();
    for p in [128usize, 1024, 8192, 32768] {
        let log = caf_core::topology::log2_rounds(p) as u64;
        let binomial = 2 * log * hop;
        // Flat star: the root serializes p-1 receives at injection rate,
        // then p-1 sends.
        let flat = 2 * ((p as u64 - 1) * net.injection_ns + hop);
        // Chain: 2(p-1) sequential hops.
        let chain = 2 * (p as u64 - 1) * hop;
        rows.push(vec![
            p.to_string(),
            fmt_ns(binomial),
            fmt_ns(flat),
            fmt_ns(chain),
            format!("{:.0}x", chain as f64 / binomial as f64),
        ]);
    }
    print_table(
        "Modelled single-wave critical path by tree shape",
        &["images", "binomial (ours)", "flat star", "chain", "chain/binomial"],
        &rows,
    );
    println!(
        "Termination detection runs up to L+1 waves per finish: only the logarithmic tree \
         keeps the paper's O((L+1) log p) bound."
    );
}
