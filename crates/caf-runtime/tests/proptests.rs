//! Property-based tests driving the whole threaded runtime with
//! randomized workloads. Case counts are modest (each case spins up a
//! real runtime), but every case exercises the full stack: fabric,
//! progress engine, detectors, collectives.

use caf_runtime::{CopyEvents, Runtime, RuntimeConfig, TeamRank};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random spawn forests under finish: every shipped increment is
    /// applied exactly once, whatever the fan-out/chain structure.
    #[test]
    fn finish_accounts_for_random_spawn_forests(
        n in 2usize..6,
        forest in prop::collection::vec((0usize..6, 0usize..6, 1usize..4), 1..20),
    ) {
        let total_expected: u64 = forest
            .iter()
            .filter(|(src, _, _)| *src < n)
            .map(|&(_, _, chain)| chain as u64)
            .sum();
        let counts = Runtime::launch(n, RuntimeConfig::testing(), move |img| {
            let w = img.world();
            let hits = img.coarray(&w, 1, 0u64);
            img.finish(&w, |img| {
                for &(src, dst, chain) in &forest {
                    if src == img.id().index() && src < n {
                        let h = hits.clone();
                        spawn_chain(img, dst % n, chain, h);
                    }
                }
            });
            hits.read(img.id(), 0..1)[0]
        });
        prop_assert_eq!(counts.iter().sum::<u64>(), total_expected);
    }

    /// allreduce with random contributions equals the local fold, for
    /// random team sizes.
    #[test]
    fn allreduce_matches_reference(
        n in 1usize..7,
        vals in prop::collection::vec(-1000i64..1000, 7),
    ) {
        let expect: i64 = vals[..n].iter().sum();
        let sums = Runtime::launch(n, RuntimeConfig::testing(), |img| {
            let w = img.world();
            img.allreduce(&w, vals[img.id().index()], |a, b| a + b)
        });
        prop_assert!(sums.into_iter().all(|s| s == expect));
    }

    /// scan returns strictly the inclusive prefixes.
    #[test]
    fn scan_matches_reference(
        n in 1usize..7,
        vals in prop::collection::vec(0u64..1000, 7),
    ) {
        let vals2 = vals.clone();
        let scans = Runtime::launch(n, RuntimeConfig::testing(), move |img| {
            let w = img.world();
            img.scan(&w, vals2[img.id().index()], |a, b| a + b)
        });
        for (k, s) in scans.into_iter().enumerate() {
            prop_assert_eq!(s, vals[..=k].iter().sum::<u64>());
        }
    }

    /// Random team splits keep collectives isolated: each part's sum is
    /// over its own members only.
    #[test]
    fn split_teams_isolate_reductions(
        n in 2usize..7,
        colors in prop::collection::vec(0u64..3, 7),
    ) {
        let colors2 = colors.clone();
        let outs = Runtime::launch(n, RuntimeConfig::testing(), move |img| {
            let w = img.world();
            let me = img.id().index();
            let sub = img.team_split(&w, colors2[me], me as u64);
            img.allreduce(&sub, me as i64, |a, b| a + b)
        });
        for (me, got) in outs.into_iter().enumerate() {
            let expect: i64 =
                (0..n).filter(|&k| colors[k] == colors[me]).map(|k| k as i64).sum();
            prop_assert_eq!(got, expect, "member {} of color {}", me, colors[me]);
        }
    }

    /// Scattered random copies under one finish all land.
    #[test]
    fn random_copies_all_land(
        n in 2usize..5,
        writes in prop::collection::vec((0usize..5, 0usize..16, 1u64..u64::MAX), 1..24),
    ) {
        // Last-writer-wins is not deterministic across images, so give
        // every (dst, offset) a single writer: image 0 does all copies.
        let mut dedup = std::collections::HashMap::new();
        for &(dst, off, val) in &writes {
            dedup.insert((dst % n, off), val);
        }
        let dedup2 = dedup.clone();
        let tables = Runtime::launch(n, RuntimeConfig::testing(), move |img| {
            let w = img.world();
            let a = img.coarray(&w, 16, 0u64);
            img.finish(&w, |img| {
                if img.id().index() == 0 {
                    for (&(dst, off), &val) in &dedup2 {
                        let buf = caf_runtime::LocalArray::new(vec![val]);
                        img.copy_async_from(
                            a.slice(img.image(dst), off..off + 1),
                            &buf,
                            0..1,
                            CopyEvents::none(),
                        );
                    }
                }
            });
            a.read(img.id(), 0..16)
        });
        for (&(dst, off), &val) in &dedup {
            prop_assert_eq!(tables[dst][off], val, "copy to ({}, {}) lost", dst, off);
        }
    }

    /// Sort produces a globally ordered permutation for random inputs.
    #[test]
    fn sort_is_an_ordered_permutation(
        n in 1usize..6,
        data in prop::collection::vec(prop::collection::vec(0u32..500, 0..30), 6),
    ) {
        let data2 = data.clone();
        let runs = Runtime::launch(n, RuntimeConfig::testing(), move |img| {
            let w = img.world();
            img.sort(&w, data2[img.id().index()].clone())
        });
        let got: Vec<u32> = runs.concat();
        let mut expect: Vec<u32> = data[..n].concat();
        expect.sort_unstable();
        prop_assert!(got.windows(2).all(|p| p[0] <= p[1]));
        let mut sorted_got = got.clone();
        sorted_got.sort_unstable();
        prop_assert_eq!(sorted_got, expect);
    }
}

fn spawn_chain(
    img: &caf_runtime::Image,
    target: usize,
    left: usize,
    hits: caf_runtime::Coarray<u64>,
) {
    if left == 0 {
        return;
    }
    let t = img.image(target);
    img.spawn(t, move |peer| {
        hits.with_local(peer.id(), |seg| seg[0] += 1);
        let next = (peer.id().index() + 1) % peer.num_images();
        spawn_chain(peer, next, left - 1, hits.clone());
    });
}

/// Broadcast roots other than rank 0 work for random roots.
#[test]
fn broadcast_random_roots() {
    for root in 0..5 {
        let vals = Runtime::launch(5, RuntimeConfig::testing(), move |img| {
            let w = img.world();
            img.broadcast(&w, TeamRank(root), (img.id().index() == root).then_some(root * 11))
        });
        assert!(vals.into_iter().all(|v| v == root * 11));
    }
}
