//! Chaos acceptance tests: the runtime's user-visible semantics must be
//! bit-identical under a seeded fault plan (drops + duplicates + non-FIFO
//! reordering), and a fault plan that defeats the retry budget must end in
//! a clean `RuntimeError::Stalled` with diagnostics — never a hang and
//! never an early `finish` termination.

use std::time::{Duration, Instant};

use caf_core::config::{FaultPlan, RetryPolicy, RuntimeConfig};
use caf_runtime::{Runtime, RuntimeError};

/// Retry policy for chaos runs under a loaded test machine: quick first
/// retransmits, but a budget horizon (~460 ms) far beyond scheduling
/// noise, so only the fault plan — never a descheduled receiver — can
/// exhaust it.
fn test_retry() -> RetryPolicy {
    RetryPolicy {
        ack_timeout: Duration::from_millis(2),
        backoff: 2,
        max_timeout: Duration::from_millis(50),
        max_retries: 12,
    }
}

/// The ISSUE's acceptance plan: ~1% drop, ~1% duplication, non-FIFO
/// delivery.
fn chaos_cfg(seed: u64) -> RuntimeConfig {
    RuntimeConfig {
        non_fifo: true,
        faults: Some(FaultPlan::uniform_drop(seed, 0.01).with_dup(0.01)),
        retry: test_retry(),
        watchdog: Some(Duration::from_secs(10)),
        ..RuntimeConfig::testing()
    }
}

/// All-to-all increments under `finish`, then a post-finish read and an
/// allreduce — exercises spawns, delivery acks, epoch waves, and
/// collectives in one workload. Returns per-image `(counter, total)`.
fn all_to_all_workload(n: usize, rounds: usize, cfg: RuntimeConfig) -> Vec<(i64, i64)> {
    Runtime::launch(n, cfg, |img| {
        let w = img.world();
        let counters = img.coarray(&w, 1, 0i64);
        img.finish(&w, |img| {
            for r in 0..img.num_images() {
                if r == img.id().index() {
                    continue;
                }
                for _ in 0..rounds {
                    let c = counters.clone();
                    img.spawn(img.image(r), move |peer| {
                        c.with_local(peer.id(), |seg| seg[0] += 1);
                    });
                }
            }
        });
        // finish guarantees every increment has executed — anywhere.
        let mine = counters.with_local(img.id(), |seg| seg[0]);
        img.barrier(&w); // keep fast images from starting teardown early
        let total = img.allreduce(&w, mine, |a, b| a + b);
        (mine, total)
    })
}

#[test]
fn finish_semantics_survive_one_percent_chaos() {
    let n = 4;
    let rounds = 25;
    let expect_mine = (rounds * (n - 1)) as i64;
    let expect_total = expect_mine * n as i64;
    for seed in [0xA11CE, 0xB0B, 0xCAFE] {
        let out = all_to_all_workload(n, rounds, chaos_cfg(seed));
        for (mine, total) in out {
            // An early finish termination would surface here as a short
            // count; a lost message as a short count; a double-delivered
            // spawn as an overshoot.
            assert_eq!(mine, expect_mine, "seed {seed:#x}: exactly-once violated");
            assert_eq!(total, expect_total, "seed {seed:#x}");
        }
    }
}

#[test]
fn chaos_results_match_the_clean_run_exactly() {
    let n = 4;
    let rounds = 10;
    let clean = all_to_all_workload(n, rounds, RuntimeConfig::testing());
    let chaotic = all_to_all_workload(n, rounds, chaos_cfg(0xD1CE));
    assert_eq!(clean, chaotic, "fault plan must be semantically invisible");
}

#[test]
fn watchdog_stays_quiet_while_the_retry_budget_holds() {
    // Much harsher than 1%: a fifth of the wire traffic vanishes. The
    // retry budget absorbs it, so try_launch must return Ok — the
    // watchdog firing here would violate the ISSUE's liveness property.
    let cfg = RuntimeConfig {
        non_fifo: true,
        faults: Some(FaultPlan::uniform_drop(77, 0.2).with_dup(0.1)),
        retry: test_retry(),
        watchdog: Some(Duration::from_secs(10)),
        ..RuntimeConfig::testing()
    };
    let out = Runtime::try_launch(3, cfg, |img| {
        let w = img.world();
        let counters = img.coarray(&w, 1, 0i64);
        img.finish(&w, |img| {
            let target = img.image((img.id().index() + 1) % img.num_images());
            for _ in 0..30 {
                let c = counters.clone();
                img.spawn(target, move |peer| {
                    c.with_local(peer.id(), |seg| seg[0] += 1);
                });
            }
        });
        let mine = counters.with_local(img.id(), |seg| seg[0]);
        img.barrier(&w);
        mine
    });
    assert_eq!(out.expect("watchdog fired within the retry budget"), vec![30, 30, 30]);
}

#[test]
fn exhausted_retry_budget_stalls_cleanly_within_the_window() {
    // Link 0→1 is a black hole: the spawned increment can never arrive,
    // so finish can never terminate. The retry budget exhausts after
    // ~exhaustion_horizon, the progress fingerprint goes flat, and the
    // watchdog must convert the would-be hang into RuntimeError::Stalled.
    let retry = RetryPolicy {
        ack_timeout: Duration::from_micros(500),
        backoff: 2,
        max_timeout: Duration::from_millis(5),
        max_retries: 5,
    };
    let window = Duration::from_millis(100);
    let budget = retry.exhaustion_horizon();
    let cfg = RuntimeConfig {
        faults: Some(FaultPlan::none(3).with_link(0, 1, 1.0)),
        retry,
        watchdog: Some(window),
        ..RuntimeConfig::testing()
    };
    let t0 = Instant::now();
    let out: Result<Vec<()>, RuntimeError> = Runtime::try_launch(2, cfg, |img| {
        let w = img.world();
        let counters = img.coarray(&w, 1, 0i64);
        img.finish(&w, |img| {
            if img.id().index() == 0 {
                let c = counters.clone();
                img.spawn(img.image(1), move |peer| {
                    c.with_local(peer.id(), |seg| seg[0] += 1);
                });
            }
        });
        unreachable!("finish over a black-hole link must never complete");
    });
    let elapsed = t0.elapsed();
    let report = match out {
        Err(RuntimeError::Stalled(report)) => report,
        other => panic!("black-hole link must stall the launch, got {other:?}"),
    };
    // "Within the configured window": one retry horizon to give up, one
    // window to notice, plus scheduling slack — not an unbounded hang.
    assert!(
        elapsed < budget + window * 20 + Duration::from_secs(2),
        "stall detection took {elapsed:?} (budget {budget:?}, window {window:?})"
    );
    assert!(elapsed >= window, "cannot declare a stall before the window elapses");

    // The diagnostic dump names the failure at every layer.
    assert_eq!(report.window, window);
    assert_eq!(report.images.len(), 2, "both images must contribute diagnostics");
    assert!(report.retries_exhausted >= 1, "the abandoned spawn must be counted");
    assert!(report.wire_drops > 0);
    let sender = &report.images[0];
    assert_eq!(sender.image, 0);
    let diag = sender
        .finishes
        .iter()
        .find(|d| d.sent > 0)
        .expect("image 0's finish frame must show the un-delivered send");
    assert!(
        diag.delivered < diag.sent,
        "stalled finish must show sent {} > delivered {}",
        diag.sent,
        diag.delivered
    );
    let text = RuntimeError::Stalled(report).to_string();
    for needle in ["no progress", "image 0", "image 1", "finish("] {
        assert!(text.contains(needle), "missing {needle:?} in stall dump:\n{text}");
    }
}

#[test]
fn launch_panics_with_the_stall_dump() {
    let result = std::panic::catch_unwind(|| {
        let cfg = RuntimeConfig {
            faults: Some(FaultPlan::none(8).with_link(1, 0, 1.0)),
            retry: RetryPolicy {
                ack_timeout: Duration::from_micros(500),
                backoff: 2,
                max_timeout: Duration::from_millis(5),
                max_retries: 3,
            },
            watchdog: Some(Duration::from_millis(80)),
            ..RuntimeConfig::testing()
        };
        Runtime::launch(2, cfg, |img| {
            let w = img.world();
            let counters = img.coarray(&w, 1, 0i64);
            img.finish(&w, |img| {
                if img.id().index() == 1 {
                    let c = counters.clone();
                    img.spawn(img.image(0), move |peer| {
                        c.with_local(peer.id(), |seg| seg[0] += 1);
                    });
                }
            });
        })
    });
    let payload = result.expect_err("launch must panic on a stall");
    let msg = payload
        .downcast_ref::<String>()
        .expect("panic payload should be the formatted error");
    assert!(msg.contains("runtime stalled"), "unexpected panic message: {msg}");
}

/// Soak: the acceptance workload across many seeds, plus repeated
/// stall/recovery cycles. Minutes, not seconds — gated behind the
/// `chaos-stress` feature (see EXPERIMENTS.md).
#[test]
#[cfg_attr(not(feature = "chaos-stress"), ignore = "enable with --features chaos-stress")]
fn chaos_soak_across_seeds() {
    let n = 4;
    let rounds = 25;
    let expect_mine = (rounds * (n - 1)) as i64;
    let expect_total = expect_mine * n as i64;
    for seed in 0..16u64 {
        let out = all_to_all_workload(n, rounds, chaos_cfg(0x50AC << 16 | seed));
        for (mine, total) in out {
            assert_eq!(mine, expect_mine, "seed {seed}: exactly-once violated");
            assert_eq!(total, expect_total, "seed {seed}");
        }
    }
    // Stall path, repeatedly: every cycle must end in a clean report.
    for seed in 0..4u64 {
        let retry = RetryPolicy {
            ack_timeout: Duration::from_micros(500),
            backoff: 2,
            max_timeout: Duration::from_millis(5),
            max_retries: 5,
        };
        let cfg = RuntimeConfig {
            faults: Some(FaultPlan::uniform_drop(seed, 0.05).with_link(0, 1, 1.0)),
            retry,
            watchdog: Some(Duration::from_millis(100)),
            ..RuntimeConfig::testing()
        };
        let out: Result<Vec<()>, _> = Runtime::try_launch(2, cfg, |img| {
            let w = img.world();
            let counters = img.coarray(&w, 1, 0i64);
            img.finish(&w, |img| {
                if img.id().index() == 0 {
                    let c = counters.clone();
                    img.spawn(img.image(1), move |peer| {
                        c.with_local(peer.id(), |seg| seg[0] += 1);
                    });
                }
            });
            unreachable!("finish over a black-hole link must never complete");
        });
        let report = match out {
            Err(RuntimeError::Stalled(r)) => r,
            other => panic!("seed {seed}: black-hole link must stall, got {other:?}"),
        };
        assert!(report.retries_exhausted >= 1, "seed {seed}: {report}");
    }
}
