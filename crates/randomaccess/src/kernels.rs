//! The two RandomAccess kernels of paper §IV-B.
//!
//! * **Get-Update-Put** (the reference): each update `get`s the table
//!   word, xors locally, and `put`s it back — two network transactions
//!   per update, *with data races* (a put can land between another
//!   image's get/put pair), exactly as the paper describes.
//! * **Function shipping**: each update ships a read-modify-write
//!   function to the word's owner; gets and puts become local loads and
//!   stores, and the update is atomic. Updates are grouped into *bunches*
//!   of `bunch` updates per `finish` block — the knob Figs. 13–14 sweep.
//!
//! The global table has `images × 2^log_local` 64-bit words, each
//! initialized to its global index; each image applies
//! `updates_per_image` updates from its slice of the HPCC stream.

use std::time::{Duration, Instant};

use caf_runtime::{CopyEvents, Image, Runtime, RuntimeConfig};

use crate::stream::{next, starts};

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct RaConfig {
    /// log₂ of the per-image table size.
    pub log_local: usize,
    /// Updates applied by each image.
    pub updates_per_image: usize,
    /// Updates grouped under one `finish` block (FS kernel) or between
    /// cofences (GUP kernel).
    pub bunch: usize,
    /// Run the HPCC verification pass (applies the same stream again and
    /// counts words that fail to return to their initial value).
    pub verify: bool,
}

impl RaConfig {
    /// A small smoke-test configuration.
    pub fn small() -> Self {
        RaConfig { log_local: 8, updates_per_image: 1024, bunch: 128, verify: true }
    }
}

/// Result of one kernel run.
#[derive(Debug, Clone)]
pub struct RaOutcome {
    /// Wall-clock of the timed update phase (max across images).
    pub elapsed: Duration,
    /// Total updates applied.
    pub updates: u64,
    /// Giga-updates per second.
    pub gups: f64,
    /// Words failing verification (None when `verify` is off). The HPCC
    /// rules tolerate up to 1 % for racy implementations.
    pub errors: Option<u64>,
    /// `finish` blocks executed per image (FS kernel).
    pub finishes_per_image: u64,
}

#[derive(Clone, Copy)]
enum Kernel {
    FunctionShipping,
    GetUpdatePut,
}

/// Runs the function-shipping kernel.
pub fn run_fs(images: usize, rt: RuntimeConfig, cfg: RaConfig) -> RaOutcome {
    run(images, rt, cfg, Kernel::FunctionShipping)
}

/// Runs the Get-Update-Put reference kernel.
pub fn run_gup(images: usize, rt: RuntimeConfig, cfg: RaConfig) -> RaOutcome {
    run(images, rt, cfg, Kernel::GetUpdatePut)
}

fn run(images: usize, rt: RuntimeConfig, cfg: RaConfig, kernel: Kernel) -> RaOutcome {
    let results = Runtime::launch(images, rt, |img| {
        let w = img.world();
        let local = 1usize << cfg.log_local;
        let table = img.coarray(&w, local, 0u64);
        let me = img.id().index();
        // Initialize to global indices.
        table.with_local(img.id(), |seg| {
            for (j, v) in seg.iter_mut().enumerate() {
                *v = (me * local + j) as u64;
            }
        });
        img.barrier(&w);

        let t0 = Instant::now();
        apply_stream(img, &table, local, cfg, kernel, 0);
        img.barrier(&w);
        let elapsed = t0.elapsed();

        let errors = if cfg.verify {
            // Apply the identical stream again: xor is self-inverse, so a
            // race-free run restores every word to its global index.
            apply_stream(img, &table, local, cfg, kernel, 0);
            img.barrier(&w);
            let mine: i64 = table.with_local(img.id(), |seg| {
                seg.iter().enumerate().filter(|(j, v)| **v != (me * local + j) as u64).count()
                    as i64
            });
            Some(img.allreduce(&w, mine, |a, b| a + b) as u64)
        } else {
            None
        };
        let finishes = cfg.updates_per_image.div_ceil(cfg.bunch) as u64;
        (elapsed, errors, finishes)
    });
    let elapsed = results.iter().map(|r| r.0).max().expect("≥1 image");
    let updates = (images * cfg.updates_per_image) as u64;
    RaOutcome {
        elapsed,
        updates,
        gups: updates as f64 / elapsed.as_secs_f64() / 1e9,
        errors: results[0].1,
        finishes_per_image: results[0].2,
    }
}

/// Applies this image's slice of the update stream once.
fn apply_stream(
    img: &Image,
    table: &caf_runtime::Coarray<u64>,
    local: usize,
    cfg: RaConfig,
    kernel: Kernel,
    pass_offset: i64,
) {
    let w = img.world();
    let images = img.num_images();
    let global_mask = (images * local - 1) as u64;
    assert!(
        (images * local).is_power_of_two(),
        "RandomAccess needs a power-of-two global table (power-of-two image counts)"
    );
    let me = img.id().index();
    let mut ran = starts(pass_offset + (me * cfg.updates_per_image) as i64);
    match kernel {
        Kernel::FunctionShipping => {
            // A finish block per bunch: global completion of each bunch
            // of shipped read-modify-writes (the Figs. 13–14 structure).
            let mut remaining = cfg.updates_per_image;
            while remaining > 0 {
                let burst = cfg.bunch.min(remaining);
                remaining -= burst;
                img.finish(&w, |img| {
                    for _ in 0..burst {
                        ran = next(ran);
                        let idx = (ran & global_mask) as usize;
                        let owner = img.image(idx / local);
                        let offset = idx % local;
                        let t = table.clone();
                        let val = ran;
                        img.spawn_sized(owner, 32, move |o: &Image| {
                            t.with_local(o.id(), |seg| seg[offset] ^= val);
                        });
                    }
                });
            }
        }
        Kernel::GetUpdatePut => {
            // One finish over the whole pass guarantees the implicit puts
            // are globally complete at exit; a cofence per bunch releases
            // the local staging buffers along the way.
            img.finish(&w, |img| {
                let mut remaining = cfg.updates_per_image;
                while remaining > 0 {
                    let burst = cfg.bunch.min(remaining);
                    remaining -= burst;
                    for _ in 0..burst {
                        ran = next(ran);
                        let idx = (ran & global_mask) as usize;
                        let owner = img.image(idx / local);
                        let offset = idx % local;
                        // get → local xor → put (racy, like the reference).
                        let cur = img.get_blocking(table.slice(owner, offset..offset + 1))[0];
                        img.copy_async_from(
                            table.slice(owner, offset..offset + 1),
                            &caf_runtime::LocalArray::new(vec![cur ^ ran]),
                            0..1,
                            CopyEvents::none(),
                        );
                    }
                    img.cofence();
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fs_kernel_verifies_exactly() {
        let out = run_fs(4, RuntimeConfig::testing(), RaConfig::small());
        assert_eq!(out.errors, Some(0), "function shipping is atomic: zero errors");
        assert_eq!(out.updates, 4 * 1024);
        assert!(out.finishes_per_image >= 8);
    }

    #[test]
    fn gup_kernel_races_are_bounded() {
        // The GUP kernel is racy by design (paper §IV-B). HPCC tolerates
        // 1 % on hardware-RDMA puts; in this runtime a put lingers in the
        // owner's inbox until it polls, widening race windows, and the
        // observed error rate sits around 1.5–3 %. Assert it stays well
        // below 8 % — an unbounded race bug (e.g. lost locks) would blow
        // far past that.
        let cfg = RaConfig { log_local: 12, updates_per_image: 512, bunch: 64, verify: true };
        let out = run_gup(4, RuntimeConfig::testing(), cfg);
        let tolerance = out.updates * 8 / 100;
        let errors = out.errors.expect("verification ran");
        assert!(errors <= tolerance, "GUP errors {errors} exceed 8 % ({tolerance})");
    }

    #[test]
    fn single_image_fs_run_is_exact() {
        let out = run_fs(
            1,
            RuntimeConfig::testing(),
            RaConfig { log_local: 10, updates_per_image: 2048, bunch: 256, verify: true },
        );
        assert_eq!(out.errors, Some(0));
    }

    #[test]
    fn bunch_size_counts_finishes() {
        let out = run_fs(
            2,
            RuntimeConfig::testing(),
            RaConfig { log_local: 6, updates_per_image: 512, bunch: 64, verify: false },
        );
        assert_eq!(out.finishes_per_image, 8);
        assert!(out.errors.is_none());
    }
}
