//! The simulated interconnect: a set of timed inboxes plus the cost model.
//!
//! The fabric is a dumb, reliable, *not necessarily FIFO* transport — the
//! same contract GASNet gives the CAF 2.0 runtime. Latency and bandwidth
//! come from [`NetworkModel`]: a message of `b` payload bytes sent at `t`
//! becomes visible to the target at
//! `t + injection_overhead + latency + b·byte_cost` (plus deterministic
//! pseudo-jitter when `non_fifo` reordering is enabled). Delivery
//! acknowledgements, event notifications, collective stages — everything
//! above this layer is just a message.
//!
//! Backpressure: when a target inbox holds more than
//! `inbox_capacity` undelivered messages, the sender stalls for
//! `backpressure_stall` per attempt — modelling GASNet flow control, which
//! the paper suspects behind the Fig. 14 large-bunch anomaly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use caf_core::config::NetworkModel;
use caf_core::ids::ImageId;
use caf_core::rng::splitmix64_hash;

use crate::inbox::Inbox;
use crate::stats::FabricStats;

/// The interconnect between `n` images, carrying messages of type `M`.
pub struct Fabric<M> {
    inboxes: Vec<Inbox<M>>,
    model: NetworkModel,
    non_fifo: bool,
    seq: AtomicU64,
    stats: FabricStats,
}

impl<M: Send> Fabric<M> {
    /// A fabric over `n` images with the given cost model. `non_fifo`
    /// enables deterministic pseudo-random reordering of same-pair
    /// messages (delivery deadlines get up to `latency/2` extra skew).
    pub fn new(n: usize, model: NetworkModel, non_fifo: bool) -> Arc<Self> {
        Arc::new(Fabric {
            inboxes: (0..n).map(|_| Inbox::new()).collect(),
            model,
            non_fifo,
            seq: AtomicU64::new(0),
            stats: FabricStats::default(),
        })
    }

    /// Number of images attached to the fabric.
    pub fn size(&self) -> usize {
        self.inboxes.len()
    }

    /// The cost model in force.
    pub fn model(&self) -> &NetworkModel {
        &self.model
    }

    /// Aggregate traffic statistics.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// Sends `msg` with a simulated payload of `payload_bytes` from `from`
    /// to `to`. Blocks the caller under backpressure. Local (self) sends
    /// still traverse the model's loopback (zero latency, injection cost
    /// only) so semantics don't change between local and remote targets.
    pub fn send(&self, from: ImageId, to: ImageId, payload_bytes: usize, msg: M) {
        // Backpressure: stall while the target inbox is over capacity.
        // Self-sends are exempt: the sender is the only drainer of its
        // own inbox, so throttling it can never make progress.
        if let Some(cap) = self.model.inbox_capacity.filter(|_| from != to) {
            let inbox = &self.inboxes[to.index()];
            while inbox.len() >= cap {
                self.stats.note_backpressure_stall();
                if self.model.backpressure_stall > Duration::ZERO {
                    std::thread::sleep(self.model.backpressure_stall);
                } else {
                    std::thread::yield_now();
                }
            }
        }
        self.inject(from, to, payload_bytes, msg);
    }

    /// Attempts to send under flow control without blocking: returns the
    /// message back if the target inbox is over capacity. Callers that
    /// can make progress while refused (an image thread draining its own
    /// inbox — GASNet's poll-while-blocked rule for requests) should loop
    /// on this instead of [`Fabric::send`], whose sleeping stall can
    /// deadlock if every potential drainer blocks simultaneously.
    pub fn try_send(&self, from: ImageId, to: ImageId, payload_bytes: usize, msg: M) -> Result<(), M> {
        if let Some(cap) = self.model.inbox_capacity.filter(|_| from != to) {
            if self.inboxes[to.index()].len() >= cap {
                self.stats.note_backpressure_stall();
                return Err(msg);
            }
        }
        self.inject(from, to, payload_bytes, msg);
        Ok(())
    }

    /// Sends without flow control. For *reply-class* traffic only —
    /// delivery acknowledgements, event notifications, completion
    /// advances, collective control hops. GASNet gives AM replies the
    /// same exemption: a handler must be able to reply without blocking,
    /// otherwise two images whose inboxes are both full of requests
    /// deadlock exchanging acknowledgements.
    pub fn send_unthrottled(&self, from: ImageId, to: ImageId, payload_bytes: usize, msg: M) {
        self.inject(from, to, payload_bytes, msg);
    }

    fn inject(&self, from: ImageId, to: ImageId, payload_bytes: usize, msg: M) {
        let inbox = &self.inboxes[to.index()];
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut delay = self.model.injection_overhead;
        if from != to {
            delay += self.model.wire_time(payload_bytes);
            if self.non_fifo && !self.model.latency.is_zero() {
                let span = (self.model.latency / 2).as_nanos() as u64;
                if span > 0 {
                    delay += Duration::from_nanos(splitmix64_hash(seq) % span);
                }
            }
        }
        self.stats.note_send(payload_bytes);
        inbox.push(Instant::now() + delay, msg);
    }

    /// Non-blocking receive for `image`: the earliest due message, if any.
    pub fn try_recv(&self, image: ImageId) -> Option<M> {
        self.inboxes[image.index()].try_pop_due()
    }

    /// Blocking receive for `image` with a deadline.
    pub fn recv_until(&self, image: ImageId, deadline: Instant) -> Option<M> {
        self.inboxes[image.index()].pop_due_until(deadline)
    }

    /// Queue depth at `image`'s inbox (due and undue messages).
    pub fn inbox_depth(&self, image: ImageId) -> usize {
        self.inboxes[image.index()].len()
    }

    /// Wakes `image` if it is parked waiting for activity (no message is
    /// enqueued). See [`Inbox::poke`].
    pub fn poke(&self, image: ImageId) {
        self.inboxes[image.index()].poke();
    }

    /// Parks `image` until a message arrives / becomes due, a poke lands,
    /// or `deadline` passes. See [`Inbox::wait_activity`].
    pub fn wait_activity(&self, image: ImageId, deadline: Instant) {
        self.inboxes[image.index()].wait_activity(deadline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(i: usize) -> ImageId {
        ImageId(i)
    }

    #[test]
    fn instant_network_delivers_immediately() {
        let f: Arc<Fabric<u32>> = Fabric::new(2, NetworkModel::instant(), false);
        f.send(img(0), img(1), 8, 99);
        assert_eq!(f.try_recv(img(1)), Some(99));
        assert_eq!(f.try_recv(img(0)), None);
    }

    #[test]
    fn latency_withholds_delivery() {
        let model = NetworkModel {
            latency: Duration::from_millis(30),
            ..NetworkModel::instant()
        };
        let f: Arc<Fabric<&str>> = Fabric::new(2, model, false);
        f.send(img(0), img(1), 0, "hi");
        assert_eq!(f.try_recv(img(1)), None, "message must not be visible early");
        let got = f.recv_until(img(1), Instant::now() + Duration::from_secs(2));
        assert_eq!(got, Some("hi"));
    }

    #[test]
    fn self_sends_skip_wire_latency() {
        let model = NetworkModel {
            latency: Duration::from_secs(3600),
            ..NetworkModel::instant()
        };
        let f: Arc<Fabric<u8>> = Fabric::new(2, model, false);
        f.send(img(1), img(1), 0, 5);
        assert_eq!(f.try_recv(img(1)), Some(5));
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let f: Arc<Fabric<u8>> = Fabric::new(2, NetworkModel::instant(), false);
        f.send(img(0), img(1), 100, 1);
        f.send(img(0), img(1), 20, 2);
        assert_eq!(f.stats().messages(), 2);
        assert_eq!(f.stats().bytes(), 120);
    }

    #[test]
    fn backpressure_blocks_sender_until_receiver_drains() {
        let model = NetworkModel {
            inbox_capacity: Some(2),
            backpressure_stall: Duration::from_micros(100),
            ..NetworkModel::instant()
        };
        let f = Fabric::new(2, model, false);
        f.send(img(0), img(1), 0, 0u8);
        f.send(img(0), img(1), 0, 1u8);
        assert_eq!(f.inbox_depth(img(1)), 2);
        // A third send stalls until the receiver pops one message.
        let f2 = Arc::clone(&f);
        let sender = std::thread::spawn(move || {
            f2.send(img(0), img(1), 0, 2u8);
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(!sender.is_finished(), "sender should be stalled");
        assert_eq!(f.try_recv(img(1)), Some(0));
        sender.join().unwrap();
        assert!(f.stats().backpressure_stalls() > 0);
        assert_eq!(f.try_recv(img(1)), Some(1));
        assert_eq!(f.try_recv(img(1)), Some(2));
    }

    #[test]
    fn non_fifo_can_reorder_same_pair_messages() {
        // With reordering enabled and a measurable latency, *some* pair of
        // consecutive sends ends up with inverted deadlines. We test
        // deterministically: jitter is a pure function of the global
        // sequence number, so two specific messages reorder reproducibly.
        let model = NetworkModel {
            latency: Duration::from_millis(4),
            ..NetworkModel::instant()
        };
        let f: Arc<Fabric<u32>> = Fabric::new(2, model, true);
        for i in 0..32 {
            f.send(img(0), img(1), 0, i);
        }
        let deadline = Instant::now() + Duration::from_secs(2);
        let mut order = Vec::new();
        while order.len() < 32 {
            if let Some(m) = f.recv_until(img(1), deadline) {
                order.push(m);
            } else {
                panic!("timed out draining");
            }
        }
        let sorted: Vec<u32> = (0..32).collect();
        assert_ne!(order, sorted, "expected at least one reordering");
        let mut check = order.clone();
        check.sort_unstable();
        assert_eq!(check, sorted, "no loss, no duplication");
    }
}
