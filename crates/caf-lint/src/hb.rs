//! The per-image static happens-before relation, implementing the
//! paper's directional pass/block semantics over a lowered context.
//!
//! The model: a context executes its steps in program order, but each
//! asynchronous operation's *local data completion* floats forward from
//! its initiation until something forces it:
//!
//! * a `cofence` whose downward argument does **not** admit the op's
//!   local-access class ([`CofenceSpec::blocks_down`] — `caf-core` is the
//!   single source of truth for the READ/WRITE/ANY matrix, this module
//!   never re-derives it);
//! * the end of a `finish` block the op was initiated inside (global
//!   completion subsumes local);
//! * a team `barrier` (lowered as an implied full fence);
//! * a `wait` on the op's own completion event.
//!
//! Symmetrically, a later asynchronous operation's *initiation* may
//! float backward across a `cofence` whose upward argument admits its
//! class — and only across fences: every other statement pins program
//! order. An op hoists to just above a run of consecutive
//! upward-admitting fences immediately preceding it; its **initiation
//! floor** is the last step before that run.
//!
//! Two steps conflict when one's local writes intersect the other's
//! local reads or writes. A conflict is a **race** unless some forcing
//! point for the earlier op lies at or before the later step's
//! initiation floor — then the fence algebra guarantees completion
//! before the access can happen.

use caf_core::cofence::CofenceSpec;

use crate::ir::{Ctx, OpStep, Step, StepKind};

/// Is step `j` a conflicting successor of op `op`? (Any write/any or
/// any/write intersection of local coarray footprints.)
pub fn conflicts(op: &OpStep, later: &Step) -> bool {
    let (later_reads, later_writes): (Vec<&String>, Vec<&String>) = match &later.kind {
        StepKind::Access { var, write } => {
            if *write {
                (Vec::new(), vec![var])
            } else {
                (vec![var], Vec::new())
            }
        }
        StepKind::Op(o) => (o.reads.iter().collect(), o.writes.iter().collect()),
        _ => return false,
    };
    let w_vs_rw = op.writes.iter().any(|v| later_reads.contains(&v) || later_writes.contains(&v));
    let r_vs_w = op.reads.iter().any(|v| later_writes.contains(&v));
    w_vs_rw || r_vs_w
}

/// Does executing step `k` force local data completion of the op at
/// index `i` (with payload `op`)?
pub fn forces_completion(steps: &[Step], i: usize, op: &OpStep, k: usize) -> bool {
    match &steps[k].kind {
        StepKind::Fence { spec, .. } => spec.blocks_down(op.access),
        StepKind::FinishEnd(id) => steps[i].finishes.contains(id),
        StepKind::Wait(ev) => {
            op.notify.as_ref().is_some_and(|n| n.image.is_none() && n.event == *ev)
        }
        _ => false,
    }
}

/// The first index `> i` whose step forces completion of the op at `i`,
/// if any.
pub fn completion_point(steps: &[Step], i: usize) -> Option<usize> {
    let op = steps[i].op()?;
    (i + 1..steps.len()).find(|&k| forces_completion(steps, i, op, k))
}

/// The initiation floor of step `j`: the index of the last step that
/// must have executed before `j` can begin. Synchronous steps never
/// hoist (`j - 1`); an async op hoists across the maximal run of
/// immediately preceding explicit fences that all admit its class
/// upward.
pub fn initiation_floor(steps: &[Step], j: usize) -> usize {
    let op = match steps[j].op() {
        Some(op) => op,
        None => return j.wrapping_sub(1),
    };
    let mut f = j;
    while f > 0 {
        match &steps[f - 1].kind {
            StepKind::Fence { spec, .. } if spec.admits_up(op.access) => f -= 1,
            _ => break,
        }
    }
    f.wrapping_sub(1)
}

/// Is the op at `i` guaranteed locally complete before step `j` can
/// execute (or, for an async `j`, initiate)?
pub fn ordered_before(steps: &[Step], i: usize, j: usize) -> bool {
    debug_assert!(i < j);
    let floor = initiation_floor(steps, j);
    match completion_point(steps, i) {
        // `floor` is an index that has *executed* before `j` begins, so
        // a forcing point at or before it has fired.
        Some(c) => floor != usize::MAX && c <= floor,
        None => false,
    }
}

/// One statically detected race: the async op at `op_idx` may still be
/// pending local data completion when the conflicting step at `acc_idx`
/// runs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Race {
    /// Index of the pending op in the context's steps.
    pub op_idx: usize,
    /// Index of the conflicting access (or op initiation).
    pub acc_idx: usize,
}

/// All races in one context, in deterministic (op, access) order.
pub fn races(ctx: &Ctx) -> Vec<Race> {
    races_of_steps(&ctx.steps)
}

/// [`races`] over a raw step slice (the weakening analysis probes
/// modified copies).
pub fn races_of_steps(steps: &[Step]) -> Vec<Race> {
    let mut out = Vec::new();
    for i in 0..steps.len() {
        let Some(op) = steps[i].op() else { continue };
        if op.reads.is_empty() && op.writes.is_empty() {
            continue;
        }
        for j in i + 1..steps.len() {
            if conflicts(op, &steps[j]) && !ordered_before(steps, i, j) {
                out.push(Race { op_idx: i, acc_idx: j });
            }
        }
    }
    out
}

/// The ops still pending (not yet forced complete) when step `k` runs.
pub fn pending_at(steps: &[Step], k: usize) -> Vec<usize> {
    (0..k)
        .filter(|&i| steps[i].op().is_some() && completion_point(steps, i).is_none_or(|c| c >= k))
        .collect()
}

/// Probes for the drift test: the downward fence decision caf-lint
/// applies, verbatim from `caf-core`. Exposed so the exhaustive matrix
/// test can compare the analyzer's decisions against the hand-written
/// paper table without building a plan per cell.
pub fn fence_blocks_down(spec: CofenceSpec, access: caf_core::cofence::LocalAccess) -> bool {
    spec.blocks_down(access)
}

/// Upward twin of [`fence_blocks_down`].
pub fn fence_admits_up(spec: CofenceSpec, access: caf_core::cofence::LocalAccess) -> bool {
    spec.admits_up(access)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlanBuilder;
    use caf_core::cofence::Pass;

    fn steps_of(b: PlanBuilder) -> Vec<Step> {
        let plan = b.build();
        plan.lower().unwrap().programs[0].steps.clone()
    }

    #[test]
    fn unfenced_put_races_with_source_overwrite() {
        let steps = steps_of(PlanBuilder::new(2).coarray("a").all(|b| {
            b.put("a", 1);
            b.write("a");
        }));
        assert_eq!(races_of_steps(&steps), vec![Race { op_idx: 0, acc_idx: 1 }]);
    }

    #[test]
    fn blocking_fence_orders_the_pair() {
        let steps = steps_of(PlanBuilder::new(2).coarray("a").all(|b| {
            b.put("a", 1);
            b.cofence(CofenceSpec::new(Pass::Writes, Pass::Any));
            b.write("a");
        }));
        assert!(races_of_steps(&steps).is_empty());
    }

    #[test]
    fn admitting_fence_does_not_order() {
        // DOWNWARD=READ admits the put (a local read) downward: it may
        // still be pending at the write.
        let steps = steps_of(PlanBuilder::new(2).coarray("a").all(|b| {
            b.put("a", 1);
            b.cofence(CofenceSpec::new(Pass::Reads, Pass::None));
            b.write("a");
        }));
        assert_eq!(races_of_steps(&steps).len(), 1);
    }

    #[test]
    fn upward_hoist_defeats_the_fence() {
        // The get (local write of `a`) is forced complete by the fence,
        // but the later put (local read of `a`) is admitted upward: it
        // may initiate before the fence completes, while the get is
        // still landing.
        let steps = steps_of(PlanBuilder::new(2).coarray("a").all(|b| {
            b.get("a", 1);
            b.cofence(CofenceSpec::new(Pass::None, Pass::Reads));
            b.put("a", 1);
        }));
        assert_eq!(races_of_steps(&steps), vec![Race { op_idx: 0, acc_idx: 2 }]);
        // With UPWARD=NONE the same program is race-free.
        let steps = steps_of(PlanBuilder::new(2).coarray("a").all(|b| {
            b.get("a", 1);
            b.cofence(CofenceSpec::FULL);
            b.put("a", 1);
        }));
        assert!(races_of_steps(&steps).is_empty());
    }

    #[test]
    fn hoisting_stops_at_non_fence_steps() {
        // A post between the fence and the put pins program order: the
        // put cannot reach back across it, so the fence's completion
        // (which forces the get) is ordered first.
        let steps = steps_of(PlanBuilder::new(2).coarray("a").event("e").all(|b| {
            b.get("a", 1);
            b.cofence(CofenceSpec::new(Pass::None, Pass::Any));
            b.post("e", None);
            b.put("a", 1);
        }));
        assert!(races_of_steps(&steps).is_empty());
    }

    #[test]
    fn finish_end_completes_inner_ops_only() {
        let steps = steps_of(PlanBuilder::new(2).coarray("a").all(|b| {
            b.put("a", 1); // outside the finish: NOT completed by its end
            b.finish(|b| {
                b.get("a", 1);
            });
            b.write("a");
        }));
        // The put races with the write; the get (inside the finish) does
        // not — and also conflicts with the put itself.
        let r = races_of_steps(&steps);
        assert!(r.contains(&Race { op_idx: 0, acc_idx: 4 }), "{r:?}");
        assert!(!r.iter().any(|x| x.op_idx == 2 && x.acc_idx == 4), "{r:?}");
    }

    #[test]
    fn barrier_is_a_full_fence() {
        let steps = steps_of(PlanBuilder::new(2).coarray("a").all(|b| {
            b.put("a", 1);
            b.barrier();
            b.write("a");
        }));
        assert!(races_of_steps(&steps).is_empty());
    }

    #[test]
    fn waiting_on_the_notify_event_orders_completion() {
        let steps = steps_of(PlanBuilder::new(2).coarray("a").event("sent").all(|b| {
            b.put_notify("a", 1, "sent");
            b.wait("sent");
            b.write("a");
        }));
        assert!(races_of_steps(&steps).is_empty());
        // Waiting on an unrelated event does not.
        let steps = steps_of(PlanBuilder::new(2).coarray("a").event("sent").event("x").all(|b| {
            b.put_notify("a", 1, "sent");
            b.wait("x");
            b.write("a");
        }));
        assert_eq!(races_of_steps(&steps).len(), 1);
    }

    #[test]
    fn pending_at_tracks_forcing_points() {
        let steps = steps_of(PlanBuilder::new(2).coarray("a").coarray("b").all(|b| {
            b.put("a", 1);
            b.get("b", 1);
            b.cofence(CofenceSpec::new(Pass::Writes, Pass::None)); // forces the put only
            b.write("a");
        }));
        // At the fence (index 2): both pending. At the write (index 3):
        // the put was forced by the fence, the get crossed it.
        assert_eq!(pending_at(&steps, 2), vec![0, 1]);
        assert_eq!(pending_at(&steps, 3), vec![1]);
    }
}
