#!/usr/bin/env bash
# The chaos soak, standalone: the feature-gated long-running stress
# tests (many acceptance seeds, stall/recovery cycles, fail-stop crash
# sweeps) without the rest of the CI gate. Equivalent to
# `CI_SOAK=1 scripts/ci.sh` minus build/clippy/fmt — use this for quick
# soak iterations, and the env guard for CI matrices.
#
# Usage:
#   scripts/soak.sh            # the soak suite once
#   scripts/soak.sh 5          # repeat it N times (flakiness hunting)
set -euo pipefail
cd "$(dirname "$0")/.."

reps="${1:-1}"
for ((i = 1; i <= reps; i++)); do
    echo "== chaos-stress soak ($i/$reps) =="
    cargo test --quiet -p caf-runtime --features chaos-stress --test chaos
done

echo "== model-checker soak (p=5, depth=4) =="
# The full exploration bound: every curated scenario × detector family at
# p=5 depth=4 with crash variants, plus the mutation adequacy check.
# Tens of minutes of CPU — this is the CI_SOAK=1 tier, not the smoke tier.
cargo build --release -p caf-check --quiet
./target/release/caf-check suite --images 5 --depth 4 --crash-scenarios --quiet
./target/release/caf-check mutate >/dev/null

echo "== static/dynamic plan differential (full corpus, uncapped) =="
# Every caf-lint race/deadlock diagnostic on the shipped corpus must be
# realizable in some explored interleaving, and the clean example plans
# must be counterexample-free. Numbers feed EXPERIMENTS.md §9.
./target/release/caf-check plan-diff --max-states 1000000 \
    tests/fixtures/lints/*.plan examples/plans/*.plan

echo "Soak passed ($reps run(s))."
