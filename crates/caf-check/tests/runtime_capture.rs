//! Closing the model/implementation loop: run the real threaded runtime
//! with a [`TraceRecorder`] installed, then validate the captured protocol
//! trace with the same replica-replay oracle the model checker uses.
//!
//! The runtime records what its per-image detectors were actually told
//! (sends with parities, delivery acks, receptions, completions, wave
//! entries/exits with contributions and sums); `caf_check::capture`
//! re-derives every one of those values from a fresh detector bank and
//! rejects any divergence. A passing run is evidence the runtime's finish
//! wiring and the checked model are the same protocol.

use std::sync::Arc;
use std::time::Duration;

use caf_check::capture;
use caf_core::config::{NetworkModel, RuntimeConfig};
use caf_core::trace::TraceRecorder;
use caf_runtime::Runtime;

fn traced_config() -> (RuntimeConfig, Arc<TraceRecorder>) {
    let rec = Arc::new(TraceRecorder::new());
    let cfg = RuntimeConfig { trace: Some(rec.clone()), ..RuntimeConfig::testing() };
    (cfg, rec)
}

#[test]
fn single_spawn_capture_validates() {
    let (cfg, rec) = traced_config();
    let wq = cfg.finish_wait_quiescence;
    Runtime::launch(3, cfg, |img| {
        let w = img.world();
        let cells = img.coarray(&w, 1, 0u64);
        img.finish(&w, |img| {
            if img.id().index() == 0 {
                let c = cells.clone();
                img.spawn(img.image(1), move |p| {
                    c.with_local(p.id(), |seg| seg[0] = 7);
                });
            }
        });
    });
    let events = rec.snapshot();
    assert!(!events.is_empty(), "the traced finish recorded nothing");
    let report = capture::validate(&events, wq)
        .unwrap_or_else(|v| panic!("capture rejected: {} — {}", v.kind.name(), v.detail));
    assert_eq!(report.finishes, 1);
    assert!(report.waves >= 1, "a non-empty finish closes at least one wave");
}

#[test]
fn transitive_spawn_chain_capture_validates() {
    // The Fig. 5 shape (p → q → r) under real latency and non-FIFO
    // delivery: the linearization the recorder happens to serialize must
    // still replay cleanly through the replica detectors.
    let (base, rec) = traced_config();
    let cfg = RuntimeConfig {
        network: NetworkModel { latency: Duration::from_micros(200), ..NetworkModel::instant() },
        comm_mode: caf_core::config::CommMode::DedicatedThread,
        non_fifo: true,
        ..base
    };
    let wq = cfg.finish_wait_quiescence;
    Runtime::launch(3, cfg, |img| {
        let w = img.world();
        img.finish(&w, |img| {
            if img.id().index() == 0 {
                img.spawn(img.image(1), move |q| {
                    q.spawn(q.image(2), move |_r| {
                        std::thread::sleep(Duration::from_millis(1));
                    });
                });
            }
        });
    });
    let report = capture::validate(&rec.snapshot(), wq)
        .unwrap_or_else(|v| panic!("capture rejected: {} — {}", v.kind.name(), v.detail));
    assert_eq!(report.finishes, 1);
}

#[test]
fn back_to_back_finishes_validate_per_block() {
    let (cfg, rec) = traced_config();
    let wq = cfg.finish_wait_quiescence;
    Runtime::launch(2, cfg, |img| {
        let w = img.world();
        for _ in 0..3 {
            img.finish(&w, |img| {
                if img.id().index() == 0 {
                    img.spawn(img.image(1), |_p| {});
                }
            });
        }
    });
    let report = capture::validate(&rec.snapshot(), wq)
        .unwrap_or_else(|v| panic!("capture rejected: {} — {}", v.kind.name(), v.detail));
    assert_eq!(report.finishes, 3, "each dynamic finish block validates separately");
    assert!(report.waves >= 3);
}

#[test]
fn loose_detector_capture_validates_against_loose_replica() {
    let rec = Arc::new(TraceRecorder::new());
    let cfg = RuntimeConfig {
        trace: Some(rec.clone()),
        finish_wait_quiescence: false,
        ..RuntimeConfig::testing()
    };
    Runtime::launch(3, cfg, |img| {
        let w = img.world();
        img.finish(&w, |img| {
            if img.id().index() == 0 {
                img.spawn(img.image(1), move |q| {
                    q.spawn(q.image(2), |_r| {});
                });
            }
        });
    });
    // The replica must be configured to match: the loose variant enters
    // waves without local quiescence, which the strict replica rejects.
    capture::validate(&rec.snapshot(), false)
        .unwrap_or_else(|v| panic!("capture rejected: {} — {}", v.kind.name(), v.detail));
}
