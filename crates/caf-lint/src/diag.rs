//! The diagnostic engine: four analyses over a lowered plan.
//!
//! 1. **Missing-fence races** — a local access (or a later op's local
//!    footprint) conflicts with an implicitly-completed async operation
//!    that no fence, finish end, or awaited completion event orders
//!    before it ([`crate::hb`]).
//! 2. **Redundant / over-strong fences** — for every explicit `cofence`
//!    the engine searches the 16-point pass lattice for the most
//!    permissive pair that introduces no new race, by re-running the
//!    race analysis with the candidate substituted. If that pair is
//!    strictly weaker than what the plan wrote, the fence is reported
//!    with the minimal sufficient direction pair — a performance win,
//!    since every class a fence needlessly blocks is overlap thrown
//!    away. Each suggestion is individually safe: it holds with every
//!    *other* fence as written.
//! 3. **Finish-coverage leaks** — async operations (and transitively
//!    spawned functions) neither enclosed by a `finish` nor covered by a
//!    completion event somebody waits on: nothing guarantees their
//!    global completion.
//! 4. **Event misuse** — waits that can never be satisfied (no or too
//!    few posts), leftover posts, and waits inside a `finish` whose
//!    every post is positioned after that finish completes — the
//!    wait-inside-finish cycle that deadlocks the termination-detection
//!    waves.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use caf_core::cofence::{CofenceSpec, LocalAccess, Pass};

use crate::hb;
use crate::ir::{Ctx, CtxId, Lowered, Plan, PlanError, Step, StepKind};

/// Diagnostic severity: errors are correctness hazards, warnings are
/// performance or hygiene findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A correctness hazard.
    Error,
    /// A performance or hygiene finding.
    Warning,
}

/// Which analysis produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Analysis {
    /// Missing-fence race.
    Race,
    /// Redundant or over-strong fence.
    Fence,
    /// Finish-coverage leak.
    Finish,
    /// Event misuse.
    Event,
}

impl Analysis {
    /// Stable lowercase tag used in rendered output.
    pub fn tag(self) -> &'static str {
        match self {
            Analysis::Race => "race",
            Analysis::Fence => "fence",
            Analysis::Finish => "finish",
            Analysis::Event => "event",
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Producing analysis.
    pub analysis: Analysis,
    /// Where it applies: `all images`, `image 2`, `images 0,2`, `fn f`.
    pub scope: String,
    /// 1-based source line (0 for builder plans).
    pub line: usize,
    /// Human-readable finding.
    pub message: String,
    /// True when the finding is a guaranteed-stuck schedule (used by the
    /// `caf-check` differential oracle, which must reproduce it).
    pub deadlock: bool,
}

impl Diagnostic {
    /// Is this an error-severity finding?
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(
            f,
            "{sev}[{}] line {} ({}): {}",
            self.analysis.tag(),
            self.line,
            self.scope,
            self.message
        )
    }
}

fn access_label(a: LocalAccess) -> &'static str {
    match (a.reads, a.writes) {
        (true, false) => "local-READ",
        (false, true) => "local-WRITE",
        (true, true) => "local-READ-WRITE",
        (false, false) => "no-local-access",
    }
}

/// Lints a plan: lowers it, runs all four analyses, and returns the
/// findings sorted deterministically (line, analysis, message) with
/// per-image duplicates merged.
pub fn lint(plan: &Plan) -> Result<Vec<Diagnostic>, PlanError> {
    let low = plan.lower()?;
    Ok(lint_lowered(&low))
}

/// [`lint`] over an already-lowered plan.
pub fn lint_lowered(low: &Lowered) -> Vec<Diagnostic> {
    let mut raw: Vec<(CtxId, Diagnostic)> = Vec::new();
    for ctx in low.programs.iter().chain(low.fns.values()) {
        race_analysis(ctx, &mut raw);
        fence_analysis(ctx, &mut raw);
    }
    finish_analysis(low, &mut raw);
    event_analysis(low, &mut raw);
    merge(low, raw)
}

// ---------------------------------------------------------------------
// Analysis 1: missing-fence races
// ---------------------------------------------------------------------

fn race_analysis(ctx: &Ctx, out: &mut Vec<(CtxId, Diagnostic)>) {
    for race in hb::races(ctx) {
        let op_step = &ctx.steps[race.op_idx];
        let op = op_step.op().expect("race op index");
        let acc = &ctx.steps[race.acc_idx];
        out.push((
            ctx.id.clone(),
            Diagnostic {
                severity: Severity::Error,
                analysis: Analysis::Race,
                scope: String::new(),
                line: acc.line,
                message: format!(
                    "`{}` may race with `{}` (line {}), still pending {} completion: no fence, \
                     finish end, or awaited completion event orders them",
                    acc.describe(),
                    op.desc,
                    op_step.line,
                    access_label(op.access),
                ),
                deadlock: false,
            },
        ));
    }
}

// ---------------------------------------------------------------------
// Analysis 2: redundant / over-strong fences
// ---------------------------------------------------------------------

/// All 16 pass pairs, most permissive first (strictness sum ascending,
/// ties in [`Pass::ALL`] order — deterministic).
fn candidates() -> Vec<CofenceSpec> {
    let mut all: Vec<CofenceSpec> = Pass::ALL
        .into_iter()
        .flat_map(|d| Pass::ALL.into_iter().map(move |u| CofenceSpec::new(d, u)))
        .collect();
    all.sort_by_key(|c| c.downward.strictness() as u32 + c.upward.strictness() as u32);
    all
}

fn fence_analysis(ctx: &Ctx, out: &mut Vec<(CtxId, Diagnostic)>) {
    let baseline: BTreeSet<hb::Race> = hb::races(ctx).into_iter().collect();
    for (k, step) in ctx.steps.iter().enumerate() {
        let StepKind::Fence { spec, explicit: true } = step.kind else { continue };
        let mut best = spec;
        for cand in candidates() {
            if !cand.at_least_as_permissive(&spec) {
                continue; // only suggest strictly comparable weakenings
            }
            let mut probe: Vec<Step> = ctx.steps.to_vec();
            probe[k].kind = StepKind::Fence { spec: cand, explicit: true };
            let races: BTreeSet<hb::Race> = hb::races_of_steps(&probe).into_iter().collect();
            if races.is_subset(&baseline) {
                best = cand;
                break; // candidates are ranked: the first hit is minimal
            }
        }
        if best == spec {
            continue;
        }
        let message = if best == CofenceSpec::new(Pass::Any, Pass::Any) {
            format!(
                "`{}` orders nothing that any later access relies on — it can be deleted \
                 (every class it blocks is overlap thrown away)",
                spec.render()
            )
        } else {
            format!(
                "`{}` is stronger than needed: {} is the minimal sufficient direction pair here",
                spec.render(),
                best.render()
            )
        };
        out.push((
            ctx.id.clone(),
            Diagnostic {
                severity: Severity::Warning,
                analysis: Analysis::Fence,
                scope: String::new(),
                line: step.line,
                message,
                deadlock: false,
            },
        ));
    }
}

// ---------------------------------------------------------------------
// Analysis 3: finish-coverage leaks
// ---------------------------------------------------------------------

/// Is some `wait` on `event` present anywhere in the plan?
fn event_is_awaited(low: &Lowered, event: &str) -> bool {
    low.programs
        .iter()
        .chain(low.fns.values())
        .flat_map(|c| &c.steps)
        .any(|s| matches!(&s.kind, StepKind::Wait(e) if e == event))
}

/// Which functions are *covered*: every spawn site that can reach them
/// is syntactically covered (inside a finish or notify-awaited) and
/// lives in a covered context. Never-spawned functions are vacuously
/// covered (their bodies never run).
fn covered_fns(low: &Lowered) -> BTreeMap<String, bool> {
    // sites[f] = list of (context is a covered fn? None = program, Some(g) = inside g, site covered syntactically)
    let mut sites: BTreeMap<String, Vec<(Option<String>, bool)>> = BTreeMap::new();
    for ctx in low.programs.iter().chain(low.fns.values()) {
        let host = match &ctx.id {
            CtxId::Program(_) => None,
            CtxId::Func(name) => Some(name.clone()),
        };
        for step in &ctx.steps {
            let Some(op) = step.op() else { continue };
            let Some((f, _)) = &op.spawn else { continue };
            let syntactic = !step.finishes.is_empty()
                || op.notify.as_ref().is_some_and(|n| event_is_awaited(low, &n.event));
            sites.entry(f.clone()).or_default().push((host.clone(), syntactic));
        }
    }
    let mut covered: BTreeMap<String, bool> = low.fns.keys().map(|f| (f.clone(), true)).collect();
    // Greatest fixpoint: flip to uncovered while any reaching site leaks.
    loop {
        let mut changed = false;
        for (f, fsites) in &sites {
            if !covered.get(f).copied().unwrap_or(true) {
                continue;
            }
            let ok = fsites.iter().all(|(host, syntactic)| match host {
                // A program site must be syntactically covered; a site
                // inside a covered fn is tracked transitively by the
                // finish that (eventually) spawned the host, so its own
                // syntax is moot.
                None => *syntactic,
                Some(g) => *syntactic || covered.get(g).copied().unwrap_or(false),
            });
            if !ok {
                covered.insert(f.clone(), false);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    covered
}

fn finish_analysis(low: &Lowered, out: &mut Vec<(CtxId, Diagnostic)>) {
    let covered = covered_fns(low);
    let spawned: BTreeSet<&String> = low
        .programs
        .iter()
        .chain(low.fns.values())
        .flat_map(|c| &c.steps)
        .filter_map(|s| s.op().and_then(|o| o.spawn.as_ref()).map(|(f, _)| f))
        .collect();
    for ctx in low.programs.iter().chain(low.fns.values()) {
        // An op inside a covered fn body is tracked by the finish that
        // (transitively) spawned it; inside an uncovered-but-spawned fn
        // every op leaks. Never-spawned fn bodies are dead code: skip.
        let (host_covered, host_live) = match &ctx.id {
            CtxId::Program(_) => (false, true),
            CtxId::Func(name) => {
                (covered.get(name).copied().unwrap_or(false), spawned.contains(name))
            }
        };
        if !host_live {
            continue;
        }
        for step in &ctx.steps {
            let Some(op) = step.op() else { continue };
            let enclosed = host_covered || !step.finishes.is_empty();
            let awaited = op.notify.as_ref().is_some_and(|n| event_is_awaited(low, &n.event));
            if enclosed || awaited {
                continue;
            }
            let detail = if matches!(ctx.id, CtxId::Func(_)) {
                "reached through a spawn chain that escapes every finish"
            } else {
                "not enclosed by any finish and its completion event is never awaited"
            };
            out.push((
                ctx.id.clone(),
                Diagnostic {
                    severity: Severity::Error,
                    analysis: Analysis::Finish,
                    scope: String::new(),
                    line: step.line,
                    message: format!(
                        "finish-coverage leak: `{}` is {detail} — nothing guarantees its \
                         global completion",
                        op.desc
                    ),
                    deadlock: false,
                },
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Analysis 4: event misuse
// ---------------------------------------------------------------------

/// Posts of `event` (explicit `post` steps and op `notify` attachments)
/// that can execute before finish `fid` completes, given which functions
/// can start before it completes.
fn post_rescues(low: &Lowered, event: &str, fid: usize) -> bool {
    // Fixpoint over functions: a fn can run before the finish completes
    // iff some spawn site of it is positioned before the finish's end
    // (inside it counts) in a context that itself can run.
    let mut early_fns: BTreeSet<String> = BTreeSet::new();
    loop {
        let mut changed = false;
        for ctx in low.programs.iter().chain(low.fns.values()) {
            let ctx_early = match &ctx.id {
                CtxId::Program(_) => true,
                CtxId::Func(name) => early_fns.contains(name),
            };
            if !ctx_early {
                continue;
            }
            for step in steps_before_finish_end(ctx, fid) {
                if let Some((f, _)) = step.op().and_then(|o| o.spawn.as_ref()) {
                    if early_fns.insert(f.clone()) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    for ctx in low.programs.iter().chain(low.fns.values()) {
        let ctx_early = match &ctx.id {
            CtxId::Program(_) => true,
            CtxId::Func(name) => early_fns.contains(name),
        };
        if !ctx_early {
            continue;
        }
        for step in steps_before_finish_end(ctx, fid) {
            let posts_here = match &step.kind {
                StepKind::Post(ev) => ev.event == event,
                StepKind::Op(op) => op.notify.as_ref().is_some_and(|n| n.event == event),
                _ => false,
            };
            if posts_here {
                return true;
            }
        }
    }
    false
}

/// The steps of `ctx` positioned before finish `fid` completes: for a
/// program context, everything before its `FinishEnd(fid)` (the whole
/// context when it never rendezvouses on `fid`); function bodies run
/// entirely before it (their *spawn sites* already gated whether they
/// start).
fn steps_before_finish_end(ctx: &Ctx, fid: usize) -> impl Iterator<Item = &Step> {
    let cut = ctx
        .steps
        .iter()
        .position(|s| matches!(s.kind, StepKind::FinishEnd(id) if id == fid))
        .unwrap_or(ctx.steps.len());
    ctx.steps[..cut].iter()
}

/// Per-event post/wait accounting. Events are per-image semaphores, so
/// the balance check runs per *instance*: posts in program contexts have
/// resolvable targets (the executing rank is known); posts inside
/// function bodies do not (the executor is symbolic), so any fn-body
/// post makes the event's balance unknowable and suppresses the
/// imbalance checks — the positional deadlock analysis still applies.
#[derive(Default)]
struct EventBook {
    /// `posts[i]` = posts resolved to image `i`'s instance.
    posts: Vec<usize>,
    /// Wait steps per waiting image.
    waits: Vec<Vec<Step>>,
    /// Posts inside fn bodies (target unknowable statically).
    fn_posts: usize,
    /// Waits inside fn bodies.
    fn_waits: Vec<(CtxId, Step)>,
}

fn event_books(low: &Lowered) -> BTreeMap<String, EventBook> {
    let mut books: BTreeMap<String, EventBook> = BTreeMap::new();
    let book = |books: &mut BTreeMap<String, EventBook>, ev: &str| {
        let b = books.entry(ev.to_string()).or_default();
        if b.posts.is_empty() {
            b.posts = vec![0; low.images];
            b.waits = vec![Vec::new(); low.images];
        }
    };
    for (rank, ctx) in low.programs.iter().enumerate() {
        for step in &ctx.steps {
            let posted = match &step.kind {
                StepKind::Post(ev) => Some(ev),
                StepKind::Op(op) => op.notify.as_ref(),
                _ => None,
            };
            if let Some(ev) = posted {
                book(&mut books, &ev.event);
                let target = ev.image.map_or(rank, |t| t.resolve(rank, low.images));
                books.get_mut(&ev.event).unwrap().posts[target] += 1;
            }
            if let StepKind::Wait(ev) = &step.kind {
                book(&mut books, ev);
                books.get_mut(ev).unwrap().waits[rank].push(step.clone());
            }
        }
    }
    for ctx in low.fns.values() {
        for step in &ctx.steps {
            let posted = match &step.kind {
                StepKind::Post(ev) => Some(&ev.event),
                StepKind::Op(op) => op.notify.as_ref().map(|n| &n.event),
                _ => None,
            };
            if let Some(ev) = posted {
                book(&mut books, ev);
                books.get_mut(ev).unwrap().fn_posts += 1;
            }
            if let StepKind::Wait(ev) = &step.kind {
                book(&mut books, ev);
                books.get_mut(ev).unwrap().fn_waits.push((ctx.id.clone(), step.clone()));
            }
        }
    }
    books
}

fn event_analysis(low: &Lowered, out: &mut Vec<(CtxId, Diagnostic)>) {
    for (ev, b) in event_books(low) {
        let total_posts: usize = b.posts.iter().sum::<usize>() + b.fn_posts;
        let any_waits = b.waits.iter().any(|w| !w.is_empty()) || !b.fn_waits.is_empty();
        if any_waits && total_posts == 0 {
            let starved = b
                .waits
                .iter()
                .enumerate()
                .filter_map(|(i, w)| w.first().map(|s| (CtxId::Program(i), s.clone())))
                .chain(b.fn_waits.iter().cloned());
            for (ctx, step) in starved {
                out.push((
                    ctx,
                    Diagnostic {
                        severity: Severity::Error,
                        analysis: Analysis::Event,
                        scope: String::new(),
                        line: step.line,
                        message: format!(
                            "`wait {ev}` can never be satisfied: the plan posts {ev} nowhere"
                        ),
                        deadlock: true,
                    },
                ));
            }
        } else if b.fn_posts == 0 {
            // Per-instance balance, decidable because every post's
            // target resolved.
            for (rank, waits) in b.waits.iter().enumerate() {
                let (w, p) = (waits.len(), b.posts[rank]);
                if w > p {
                    out.push((
                        CtxId::Program(rank),
                        Diagnostic {
                            severity: Severity::Error,
                            analysis: Analysis::Event,
                            scope: String::new(),
                            line: waits[w - 1].line,
                            message: format!(
                                "unbalanced event {ev}: {w} wait(s) against {p} post(s) on \
                                 this image's instance — the last wait can never be satisfied"
                            ),
                            deadlock: true,
                        },
                    ));
                } else if p > w {
                    out.push((
                        CtxId::Program(rank),
                        Diagnostic {
                            severity: Severity::Warning,
                            analysis: Analysis::Event,
                            scope: String::new(),
                            line: waits.last().map_or(0, |s| s.line),
                            message: format!(
                                "unbalanced event {ev}: {p} post(s) against {w} wait(s) on \
                                 this image's instance — leftover signals accumulate"
                            ),
                            deadlock: false,
                        },
                    ));
                }
            }
        }
        // Wait-inside-finish cycle: every post positioned after the
        // enclosing finish completes.
        let finish_waits = b
            .waits
            .iter()
            .enumerate()
            .flat_map(|(i, w)| w.iter().map(move |s| (CtxId::Program(i), s.clone())))
            .chain(b.fn_waits.iter().cloned());
        for (ctx, step) in finish_waits {
            let Some(&fid) = step.finishes.last() else { continue };
            if total_posts > 0 && !post_rescues(low, &ev, fid) {
                out.push((
                    ctx,
                    Diagnostic {
                        severity: Severity::Error,
                        analysis: Analysis::Event,
                        scope: String::new(),
                        line: step.line,
                        message: format!(
                            "`wait {ev}` inside finish can deadlock termination detection: \
                             every post of {ev} is positioned after that finish completes, \
                             and the finish cannot complete while this image waits"
                        ),
                        deadlock: true,
                    },
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Merging and rendering
// ---------------------------------------------------------------------

/// Merges identical per-image findings (`all` blocks produce one copy
/// per rank) and fills scopes.
fn merge(low: &Lowered, raw: Vec<(CtxId, Diagnostic)>) -> Vec<Diagnostic> {
    let mut grouped: BTreeMap<(usize, Analysis, String), (Diagnostic, BTreeSet<CtxId>)> =
        BTreeMap::new();
    for (ctx, d) in raw {
        let key = (d.line, d.analysis, d.message.clone());
        grouped.entry(key).or_insert_with(|| (d, BTreeSet::new())).1.insert(ctx);
    }
    let mut out: Vec<Diagnostic> = Vec::new();
    for ((_, _, _), (mut d, ctxs)) in grouped {
        if d.scope.is_empty() {
            d.scope = scope_label(low, &ctxs);
        }
        out.push(d);
    }
    out.sort_by(|a, b| {
        (a.line, a.analysis, &a.scope, &a.message).cmp(&(b.line, b.analysis, &b.scope, &b.message))
    });
    out
}

fn scope_label(low: &Lowered, ctxs: &BTreeSet<CtxId>) -> String {
    let images: Vec<usize> = ctxs
        .iter()
        .filter_map(|c| match c {
            CtxId::Program(i) => Some(*i),
            CtxId::Func(_) => None,
        })
        .collect();
    let fns: Vec<&str> = ctxs
        .iter()
        .filter_map(|c| match c {
            CtxId::Func(f) => Some(f.as_str()),
            CtxId::Program(_) => None,
        })
        .collect();
    let mut parts = Vec::new();
    if images.len() == low.images {
        parts.push("all images".to_string());
    } else if !images.is_empty() {
        let list: Vec<String> = images.iter().map(|i| i.to_string()).collect();
        let word = if images.len() == 1 { "image" } else { "images" };
        parts.push(format!("{word} {}", list.join(",")));
    }
    for f in fns {
        parts.push(format!("fn {f}"));
    }
    parts.join(", ")
}

/// Renders diagnostics plus a summary line, the exact format the golden
/// files pin.
pub fn render(name: &str, diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let errors = diags.iter().filter(|d| d.is_error()).count();
    let warnings = diags.len() - errors;
    out.push_str(&format!("{name}: {errors} error(s), {warnings} warning(s)\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlanBuilder;
    use crate::ir::Target;

    #[test]
    fn over_strong_full_fence_gets_the_minimal_pair() {
        // Only the put (local READ) needs ordering before `write a`;
        // DOWNWARD=WRITE admits everything else and UPWARD=ANY is free.
        let plan = PlanBuilder::new(2).coarray("a").all(|b| {
            b.finish(|b| {
                b.put("a", 1);
                b.cofence(CofenceSpec::FULL);
                b.write("a");
            });
        });
        let diags = lint(&plan.build()).unwrap();
        assert_eq!(diags.len(), 1, "{diags:?}");
        let d = &diags[0];
        assert_eq!(d.analysis, Analysis::Fence);
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("cofence(DOWNWARD=WRITE, UPWARD=ANY)"), "{}", d.message);
    }

    #[test]
    fn fence_guarding_nothing_is_deletable() {
        let plan = PlanBuilder::new(2).coarray("a").all(|b| {
            b.read("a");
            b.cofence(CofenceSpec::FULL);
            b.read("a");
        });
        let diags = lint(&plan.build()).unwrap();
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("can be deleted"), "{}", diags[0].message);
    }

    #[test]
    fn needed_full_fence_in_both_directions_is_quiet() {
        // get then put on the same var, RW memcpy after: downward must
        // block the get, upward must pin the put and memcpy.
        let plan = PlanBuilder::new(2).coarray("a").all(|b| {
            b.finish(|b| {
                b.get("a", 1);
                b.cofence(CofenceSpec::FULL);
                b.put("a", 1);
            });
        });
        let diags = lint(&plan.build()).unwrap();
        // DOWNWARD can admit WRITE? No: the get is local-WRITE class, it
        // must be blocked, so DOWNWARD ∈ {NONE, READ}; UPWARD must not
        // admit the put (local READ), so UPWARD ∈ {NONE, WRITE}. The
        // minimal pair is (READ, WRITE), weaker than FULL.
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0].message.contains("cofence(DOWNWARD=READ, UPWARD=WRITE)"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn finish_leak_flagged_and_transitive_chains_tracked() {
        let plan = PlanBuilder::new(3)
            .coarray("a")
            .func("inner", |b| b.get("a", 1))
            .func("outer", |b| b.spawn("inner", Target::Rel(1)))
            .all(|b| {
                b.spawn("outer", Target::Rel(1)); // uncovered root
            });
        let diags = lint(&plan.build()).unwrap();
        let finish: Vec<&Diagnostic> =
            diags.iter().filter(|d| d.analysis == Analysis::Finish).collect();
        // The root spawn leaks; inner's get and outer's spawn leak
        // through the chain.
        assert_eq!(finish.len(), 3, "{finish:?}");
        assert!(finish.iter().all(|d| d.is_error()));
        // Enclosing the root in a finish silences all three.
        let plan = PlanBuilder::new(3)
            .coarray("a")
            .func("inner", |b| b.get("a", 1))
            .func("outer", |b| b.spawn("inner", Target::Rel(1)))
            .all(|b| {
                b.finish(|b| b.spawn("outer", Target::Rel(1)));
            });
        let diags = lint(&plan.build()).unwrap();
        assert!(diags.iter().all(|d| d.analysis != Analysis::Finish), "{diags:?}");
    }

    #[test]
    fn notify_awaited_covers_an_op() {
        let plan = PlanBuilder::new(2).coarray("a").event("done").all(|b| {
            b.put_notify("a", 1, "done");
            b.wait("done");
        });
        let diags = lint(&plan.build()).unwrap();
        assert!(diags.iter().all(|d| d.analysis != Analysis::Finish), "{diags:?}");
    }

    #[test]
    fn event_imbalance_and_starved_wait() {
        let plan = PlanBuilder::new(2).event("e").all(|b| {
            b.wait("e");
        });
        let diags = lint(&plan.build()).unwrap();
        assert_eq!(diags.len(), 1);
        assert!(diags[0].deadlock);
        assert!(diags[0].message.contains("posts e nowhere"));

        let plan = PlanBuilder::new(2).event("e").all(|b| {
            b.post("e", Some(1));
            b.wait("e");
            b.wait("e");
        });
        let diags = lint(&plan.build()).unwrap();
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("2 wait(s) against 1 post(s)"), "{}", diags[0].message);
    }

    #[test]
    fn wait_inside_finish_with_late_posts_deadlocks() {
        let plan = PlanBuilder::new(2).event("go").all(|b| {
            b.finish(|b| b.wait("go"));
            b.post("go", Some(1));
        });
        let diags = lint(&plan.build()).unwrap();
        let dead: Vec<&Diagnostic> = diags.iter().filter(|d| d.deadlock).collect();
        assert_eq!(dead.len(), 1, "{diags:?}");
        assert!(dead[0].message.contains("deadlock termination detection"));
        // A post from a function spawned inside the finish rescues it.
        let plan =
            PlanBuilder::new(2)
                .event("go")
                .func("poster", |b| b.post("go", Some(-1)))
                .all(|b| {
                    b.finish(|b| {
                        b.spawn("poster", Target::Rel(1));
                        b.wait("go");
                    });
                });
        let diags = lint(&plan.build()).unwrap();
        assert!(diags.iter().all(|d| !d.deadlock), "{diags:?}");
    }

    #[test]
    fn merged_scopes_render_deterministically() {
        let plan = PlanBuilder::new(3).coarray("a").all(|b| {
            b.put("a", 1);
            b.write("a");
        });
        let diags = lint(&plan.build()).unwrap();
        let race: Vec<&Diagnostic> =
            diags.iter().filter(|d| d.analysis == Analysis::Race).collect();
        assert_eq!(race.len(), 1, "per-image duplicates must merge: {race:?}");
        assert_eq!(race[0].scope, "all images");
        let text = render("t", &diags);
        assert!(text.ends_with("error(s), 0 warning(s)\n"), "{text}");
    }
}
