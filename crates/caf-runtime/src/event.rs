//! Event variables (paper §II-B).
//!
//! Events manage *local operation completion* of asynchronous operations
//! and pair-wise coordination. An event cell lives in exactly one image's
//! event table but can be notified from anywhere: a local notify
//! increments the counter directly; a remote notify travels as a fabric
//! message handled by the owner's progress engine. `event_wait` blocks the
//! owning image until the count is positive, then consumes one
//! notification (counting semantics, so producers can run ahead).
//!
//! `event_notify` has release semantics and `event_wait` acquire semantics
//! (§III-B4); in this runtime that ordering is inherited from the
//! lock/condvar pair guarding each cell plus the in-order handling of
//! fabric messages.

use std::collections::HashMap;
use std::sync::Arc;

use caf_core::ids::{EventId, ImageId};
use parking_lot::Mutex;

/// One event cell: a notification counter with a condvar so threads that
/// are allowed to block outright (communication threads waiting on a
/// predicate event `preE`) can park on it. The owning image itself never
/// blocks here — it uses its progress-polling wait loop.
#[derive(Debug, Default)]
pub struct EventCell {
    count: Mutex<u64>,
    posted: parking_lot::Condvar,
}

impl EventCell {
    /// Adds one notification.
    pub fn notify(&self) {
        *self.count.lock() += 1;
        self.posted.notify_all();
    }

    /// Consumes one notification if available.
    pub fn try_consume(&self) -> bool {
        let mut c = self.count.lock();
        if *c > 0 {
            *c -= 1;
            true
        } else {
            false
        }
    }

    /// Blocks the calling thread until a notification can be consumed.
    /// For communication threads only — the owning image must keep making
    /// progress and therefore polls with `try_consume` instead.
    pub fn block_consume(&self) {
        let mut c = self.count.lock();
        while *c == 0 {
            self.posted.wait(&mut c);
        }
        *c -= 1;
    }

    /// Current notification count (for tests/metrics).
    pub fn count(&self) -> u64 {
        *self.count.lock()
    }
}

/// One image's table of event cells, indexed by slot. Shared (`Sync`)
/// because the owner's comm thread and the progress engine both touch it.
#[derive(Debug, Default)]
pub struct EventTable {
    slots: Mutex<HashMap<u64, Arc<EventCell>>>,
}

impl EventTable {
    /// The cell for `slot`, created on first touch. Lazy creation matters:
    /// a remote notify can arrive before the owner's allocating code runs
    /// (the same out-of-order-arrival issue `finish` frames have).
    pub fn cell(&self, slot: u64) -> Arc<EventCell> {
        Arc::clone(self.slots.lock().entry(slot).or_default())
    }
}

/// A handle to an event cell usable in runtime APIs. Obtained from
/// `Image::event` (a local event) or `Image::coevent` (the same slot on
/// every image — the coarray-of-events pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Event {
    /// Address of the cell.
    pub id: EventId,
}

impl Event {
    /// The owning image.
    pub fn owner(&self) -> ImageId {
        self.id.owner
    }
}

/// A *co-event*: one event slot allocated collectively, addressable on
/// every image of the allocating team. `on(p)` names the cell owned by
/// image `p` — CAF 2.0's "events to be accessed remotely are declared as
/// coarrays".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoEvent {
    pub(crate) slot: u64,
}

impl CoEvent {
    /// The event cell owned by `image`.
    pub fn on(&self, image: ImageId) -> Event {
        Event { id: EventId { owner: image, slot: self.slot } }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notify_then_consume() {
        let c = EventCell::default();
        assert!(!c.try_consume());
        c.notify();
        c.notify();
        assert_eq!(c.count(), 2);
        assert!(c.try_consume());
        assert!(c.try_consume());
        assert!(!c.try_consume());
    }

    #[test]
    fn table_creates_cells_lazily_and_stably() {
        let t = EventTable::default();
        let a = t.cell(7);
        a.notify();
        let b = t.cell(7);
        assert_eq!(b.count(), 1, "same underlying cell");
        assert_eq!(t.cell(8).count(), 0);
    }

    #[test]
    fn coevent_addresses_per_image_cells() {
        let ce = CoEvent { slot: 3 };
        assert_eq!(ce.on(ImageId(0)).id, EventId { owner: ImageId(0), slot: 3 });
        assert_eq!(ce.on(ImageId(5)).id, EventId { owner: ImageId(5), slot: 3 });
        assert_eq!(ce.on(ImageId(5)).owner(), ImageId(5));
    }
}
