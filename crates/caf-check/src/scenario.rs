//! Bounded scenarios: the inputs the explorer enumerates schedules of.
//!
//! A scenario fixes *what* the program does — `p` images, a set of root
//! spawns whose shipped functions transitively spawn a bounded tree of
//! further functions, and optionally one fail-stop crash — while the
//! explorer enumerates every *order* in which the induced protocol events
//! can happen. Spawn structure reuses [`SpawnTree`] from the `caf-core`
//! harness so the checker, the proptests, and the deterministic harness
//! all speak the same scenario language.
//!
//! The generator below produces a curated, deterministic family of
//! scenarios per `(images, depth)` bound: every rooted tree shape up to
//! the depth and node budget, each under two target assignments
//! (round-robin, which maximizes cross-image chains, and common-target,
//! which creates the sibling races termination bugs hide in), plus
//! two-root combinations and per-victim crash variants.

use caf_core::termination::harness::{node, SpawnTree};

/// One bounded scenario: the static input the explorer closes over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Number of images (`p`).
    pub images: usize,
    /// Root spawns: `(initiating image, spawn tree)`. The tree's root
    /// node is the message the initiator sends.
    pub roots: Vec<(usize, SpawnTree)>,
    /// Fail-stop victim, if the scenario includes a crash. The crash is a
    /// schedulable transition: the explorer tries it at every point.
    pub crash: Option<usize>,
}

impl Scenario {
    /// Scenario with no spawns and no crash (the empty finish).
    pub fn empty(images: usize) -> Self {
        Scenario { images, roots: Vec::new(), crash: None }
    }

    /// Longest spawn chain `L` counted in messages (Theorem 1's `L`):
    /// the deepest root-to-leaf path over all root trees.
    pub fn longest_chain(&self) -> usize {
        self.roots.iter().map(|(_, t)| t.chain_len()).max().unwrap_or(0)
    }

    /// Total number of messages the scenario creates.
    pub fn total_spawns(&self) -> usize {
        self.roots.iter().map(|(_, t)| t.total_spawns()).sum()
    }

    /// A short human-readable name, stable across runs.
    pub fn name(&self) -> String {
        let mut s = format!("p{}", self.images);
        if self.roots.is_empty() {
            s.push_str("-empty");
        }
        for (from, tree) in &self.roots {
            s.push_str(&format!("-{}>{}", from, tree_text(tree)));
        }
        if let Some(v) = self.crash {
            s.push_str(&format!("-crash{v}"));
        }
        s
    }
}

/// Serializes a spawn tree as `target` or `target(child,child,...)`.
pub fn tree_text(t: &SpawnTree) -> String {
    if t.children.is_empty() {
        t.target.to_string()
    } else {
        let kids: Vec<String> = t.children.iter().map(tree_text).collect();
        format!("{}({})", t.target, kids.join(","))
    }
}

/// Parses the [`tree_text`] format back into a tree.
pub fn parse_tree(s: &str) -> Result<SpawnTree, String> {
    let mut chars = s.char_indices().peekable();
    let tree = parse_node(s, &mut chars)?;
    match chars.next() {
        None => Ok(tree),
        Some((i, c)) => Err(format!("trailing '{c}' at byte {i} in spawn tree {s:?}")),
    }
}

fn parse_node(
    s: &str,
    chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
) -> Result<SpawnTree, String> {
    let mut digits = String::new();
    while let Some(&(_, c)) = chars.peek() {
        if c.is_ascii_digit() {
            digits.push(c);
            chars.next();
        } else {
            break;
        }
    }
    if digits.is_empty() {
        return Err(format!("expected image rank in spawn tree {s:?}"));
    }
    let target: usize = digits.parse().map_err(|e| format!("bad rank {digits:?}: {e}"))?;
    let mut children = Vec::new();
    if let Some(&(_, '(')) = chars.peek() {
        chars.next();
        loop {
            children.push(parse_node(s, chars)?);
            match chars.next() {
                Some((_, ',')) => continue,
                Some((_, ')')) => break,
                other => return Err(format!("unclosed child list in {s:?} (got {other:?})")),
            }
        }
    }
    Ok(node(target, children))
}

/// Every rooted tree *shape* with at most `max_nodes` nodes and depth at
/// most `depth`, as child-count lists in canonical (sorted) order. A
/// shape is rendered target-free; assignments come later.
fn tree_shapes(depth: usize, max_nodes: usize) -> Vec<TreeShape> {
    fn gen(depth: usize, budget: usize) -> Vec<TreeShape> {
        let mut out = vec![TreeShape { children: Vec::new() }];
        if depth == 0 || budget < 2 {
            return out;
        }
        // Child lists: up to 2 subtrees (wider fans add states without new
        // orderings beyond what two siblings already race).
        let subs = gen(depth - 1, budget - 1);
        for s in &subs {
            if s.nodes() < budget {
                out.push(TreeShape { children: vec![s.clone()] });
            }
        }
        for (i, a) in subs.iter().enumerate() {
            for b in subs.iter().skip(i) {
                if 1 + a.nodes() + b.nodes() <= budget {
                    out.push(TreeShape { children: vec![a.clone(), b.clone()] });
                }
            }
        }
        out
    }
    gen(depth, max_nodes)
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct TreeShape {
    children: Vec<TreeShape>,
}

impl TreeShape {
    fn nodes(&self) -> usize {
        1 + self.children.iter().map(TreeShape::nodes).sum::<usize>()
    }

    /// Assigns targets round-robin along a depth-first walk, starting
    /// after `from`: maximizes distinct images along every chain.
    fn assign_round_robin(&self, images: usize, next: &mut usize) -> SpawnTree {
        let target = *next % images;
        *next += 1;
        let children = self.children.iter().map(|c| c.assign_round_robin(images, next)).collect();
        node(target, children)
    }

    /// Assigns every node at depth `d` the image `(from + d) mod p`:
    /// siblings share a target, creating same-inbox races.
    fn assign_common(&self, images: usize, from: usize, d: usize) -> SpawnTree {
        let target = (from + d) % images;
        let children = self.children.iter().map(|c| c.assign_common(images, from, d + 1)).collect();
        node(target, children)
    }
}

/// The curated scenario family for a `(images, depth)` bound.
///
/// Includes the empty finish, every tree shape within the depth and a
/// node budget of `depth + 2` under both target assignments, a two-root
/// scenario (concurrent initiators), and — when `with_crash` — one crash
/// variant per distinct victim role (initiator, worker, bystander).
pub fn scenarios(images: usize, depth: usize, with_crash: bool) -> Vec<Scenario> {
    assert!(images >= 2, "scenarios need at least 2 images");
    let mut out = vec![Scenario::empty(images)];
    let max_nodes = depth + 2;
    let mut seen: Vec<(usize, SpawnTree)> = Vec::new();
    // The root message is chain position 1, so its shape gets depth − 1
    // further levels.
    for shape in tree_shapes(depth.saturating_sub(1), max_nodes) {
        if shape.nodes() == 1 && shape.children.is_empty() && depth > 0 {
            // keep: single spawn
        }
        let mut next = 1usize;
        let rr = shape.assign_round_robin(images, &mut next);
        let common = shape.assign_common(images, 0, 1);
        for tree in [rr, common] {
            if seen.iter().any(|(_, t)| *t == tree) {
                continue;
            }
            seen.push((0, tree.clone()));
            out.push(Scenario { images, roots: vec![(0, tree)], crash: None });
        }
    }
    // Concurrent initiators: two single-spawn roots racing from different
    // images (the minimal multi-initiator finish).
    if depth >= 1 {
        out.push(Scenario {
            images,
            roots: vec![(0, node(1 % images, vec![])), (1 % images, node(0, vec![]))],
            crash: None,
        });
    }
    if with_crash {
        // Crash variants of a representative chain: victim is the
        // initiator, the mid-chain worker, or an idle bystander.
        let chain_scenario = out
            .iter()
            .find(|s| !s.roots.is_empty() && s.longest_chain() >= depth.clamp(1, 2))
            .cloned()
            .unwrap_or_else(|| out[0].clone());
        let mut victims: Vec<usize> = vec![0, 1 % images];
        if images > 2 {
            victims.push(images - 1);
        }
        victims.dedup();
        for v in victims {
            let mut s = chain_scenario.clone();
            s.crash = Some(v);
            out.push(s);
        }
        // And a crash on the empty finish (pure detection, no work).
        let mut s = Scenario::empty(images);
        s.crash = Some(1 % images);
        out.push(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_text_round_trips() {
        for txt in ["1", "1(2)", "1(2(0),1)", "2(3(4(0)),1)"] {
            let t = parse_tree(txt).unwrap();
            assert_eq!(tree_text(&t), txt);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_tree("").is_err());
        assert!(parse_tree("1(2").is_err());
        assert!(parse_tree("1)x").is_err());
        assert!(parse_tree("(1)").is_err());
    }

    #[test]
    fn generator_is_deterministic_and_bounded() {
        let a = scenarios(3, 2, true);
        let b = scenarios(3, 2, true);
        assert_eq!(a, b);
        assert!(a.len() > 4);
        for s in &a {
            assert!(s.longest_chain() <= 2);
            assert!(s.total_spawns() <= 4);
        }
    }

    #[test]
    fn generator_includes_the_adversarial_fanout() {
        // The same-target sibling fan-out is the shape the merged-epoch
        // bug needs; make sure the curated family contains one.
        let all = scenarios(3, 2, false);
        assert!(
            all.iter().any(|s| s.roots.iter().any(|(_, t)| {
                t.children.len() == 2 && t.children[0].target == t.children[1].target
            })),
            "no same-target fan-out in {:?}",
            all.iter().map(Scenario::name).collect::<Vec<_>>()
        );
    }

    #[test]
    fn names_distinguish_scenarios() {
        let all = scenarios(4, 3, true);
        let mut names: Vec<String> = all.iter().map(Scenario::name).collect();
        let total = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate scenario names");
    }
}
