//! The `cofence` directional-fence algebra (paper §III-B).
//!
//! `cofence(DOWNWARD=…, UPWARD=…)` demands *local data completion* of
//! implicitly synchronized asynchronous operations, except for the classes
//! its arguments permit to cross:
//!
//! * the **downward** argument names which class of operations initiated
//!   *before* the fence may defer their local data completion until
//!   *after* it;
//! * the **upward** argument names which class of operations occurring
//!   *after* the fence may be initiated *before* it completes.
//!
//! Operations are classified by what they do to **local** memory on the
//! initiating image: a `copy_async` whose source is local *reads* local
//! data (local data completion = the source may be overwritten); one whose
//! destination is local *writes* local data (completion = the destination
//! may be consumed). An operation that does both may only cross a fence
//! that permits both classes — the paper's "may not have any practical
//! effect" caveat made precise.

/// Which class of implicitly synchronized operations a fence argument
/// allows to cross in its direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pass {
    /// Nothing crosses (the default when the argument is omitted).
    #[default]
    None,
    /// Operations that only *read* local data may cross (`READ`).
    Reads,
    /// Operations that only *write* local data may cross (`WRITE`).
    Writes,
    /// Any operation may cross (`ANY`).
    Any,
}

impl Pass {
    /// Every pass value, in strictness order (most permissive first).
    /// Shared by the model checker's matrix enumeration and the static
    /// analyzer's fence-weakening search so both walk the same lattice.
    pub const ALL: [Pass; 4] = [Pass::Any, Pass::Reads, Pass::Writes, Pass::None];

    /// The surface spelling of this pass argument (`NONE`/`READ`/
    /// `WRITE`/`ANY`), as the paper writes it and as plan files spell it
    /// (case-insensitively).
    pub fn label(self) -> &'static str {
        match self {
            Pass::None => "NONE",
            Pass::Reads => "READ",
            Pass::Writes => "WRITE",
            Pass::Any => "ANY",
        }
    }

    /// Parses [`Pass::label`] (case-insensitive). The inverse lives here
    /// rather than in each frontend so the lint parser, the plan
    /// renderer, and the CLI all agree on the spelling.
    pub fn parse(s: &str) -> Result<Pass, String> {
        match s.to_ascii_uppercase().as_str() {
            "NONE" => Ok(Pass::None),
            "READ" | "READS" => Ok(Pass::Reads),
            "WRITE" | "WRITES" => Ok(Pass::Writes),
            "ANY" => Ok(Pass::Any),
            other => Err(format!("unknown cofence pass {other:?} (want NONE|READ|WRITE|ANY)")),
        }
    }

    /// How much this argument blocks: 0 (`ANY`, nothing) to 2 (`NONE`,
    /// everything). `READ` and `WRITE` are incomparable and share rank 1.
    pub fn strictness(self) -> u8 {
        match self {
            Pass::Any => 0,
            Pass::Reads | Pass::Writes => 1,
            Pass::None => 2,
        }
    }

    /// Does this permission admit an operation with the given local
    /// access pattern?
    #[inline]
    pub fn admits(self, access: LocalAccess) -> bool {
        match self {
            Pass::None => false,
            Pass::Any => true,
            Pass::Reads => access.reads && !access.writes,
            Pass::Writes => access.writes && !access.reads,
        }
    }
}

/// How an asynchronous operation touches the initiating image's local
/// memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalAccess {
    /// The operation reads a local buffer (e.g. `copy_async` with a local
    /// source; argument marshalling of a `spawn`).
    pub reads: bool,
    /// The operation writes a local buffer (e.g. `copy_async` with a local
    /// destination; arrival of broadcast data on a participant).
    pub writes: bool,
}

impl LocalAccess {
    /// Local-read-only operation.
    pub const READ: LocalAccess = LocalAccess { reads: true, writes: false };
    /// Local-write-only operation.
    pub const WRITE: LocalAccess = LocalAccess { reads: false, writes: true };
    /// Operation that both reads and writes local memory.
    pub const READ_WRITE: LocalAccess = LocalAccess { reads: true, writes: true };
    /// Operation touching no local memory (e.g. a purely remote-to-remote
    /// third-party copy).
    pub const NONE: LocalAccess = LocalAccess { reads: false, writes: false };
}

/// A fully specified `cofence` statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CofenceSpec {
    /// Class of earlier operations allowed to complete after the fence.
    pub downward: Pass,
    /// Class of later operations allowed to initiate before the fence.
    pub upward: Pass,
}

impl CofenceSpec {
    /// `cofence()` — the full fence: nothing crosses in either direction.
    pub const FULL: CofenceSpec = CofenceSpec { downward: Pass::None, upward: Pass::None };

    /// `cofence(DOWNWARD=d, UPWARD=u)`.
    pub fn new(downward: Pass, upward: Pass) -> Self {
        CofenceSpec { downward, upward }
    }

    /// Builder: set the downward permission.
    pub fn allow_down(mut self, p: Pass) -> Self {
        self.downward = p;
        self
    }

    /// Builder: set the upward permission.
    pub fn allow_up(mut self, p: Pass) -> Self {
        self.upward = p;
        self
    }

    /// Must a pending *earlier* implicit operation with the given local
    /// access reach local data completion before this fence completes?
    /// (`true` = the fence waits for it.)
    #[inline]
    pub fn blocks_down(&self, access: LocalAccess) -> bool {
        !self.downward.admits(access)
    }

    /// May a *later* implicit operation with the given local access be
    /// initiated before this fence completes?
    #[inline]
    pub fn admits_up(&self, access: LocalAccess) -> bool {
        self.upward.admits(access)
    }

    /// Renders the statement as the paper spells it: `cofence()` for the
    /// full fence, `cofence(DOWNWARD=…, UPWARD=…)` otherwise.
    pub fn render(&self) -> String {
        if *self == CofenceSpec::FULL {
            "cofence()".to_string()
        } else {
            format!("cofence(DOWNWARD={}, UPWARD={})", self.downward.label(), self.upward.label())
        }
    }

    /// Is `self` at least as permissive as `other` in both directions?
    /// (Used by monotonicity property tests: anything that crosses a
    /// stricter fence crosses a looser one.)
    pub fn at_least_as_permissive(&self, other: &CofenceSpec) -> bool {
        fn leq(a: Pass, b: Pass) -> bool {
            // Permissiveness is a partial order: None < {Reads, Writes} < Any.
            match (a, b) {
                (x, y) if x == y => true,
                (Pass::None, _) => true,
                (_, Pass::Any) => true,
                _ => false,
            }
        }
        leq(other.downward, self.downward) && leq(other.upward, self.upward)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_fence_blocks_everything() {
        for access in [LocalAccess::READ, LocalAccess::WRITE, LocalAccess::READ_WRITE] {
            assert!(CofenceSpec::FULL.blocks_down(access));
            assert!(!CofenceSpec::FULL.admits_up(access));
        }
    }

    /// Paper Fig. 8: `cofence(DOWNWARD=WRITE)` lets the local-write copy
    /// (line 5, remote→local) complete below, while forcing local data
    /// completion of the local-read copy (line 6, local→remote).
    #[test]
    fn fig8_downward_write() {
        let f = CofenceSpec::new(Pass::Writes, Pass::None);
        assert!(!f.blocks_down(LocalAccess::WRITE)); // line 5 passes
        assert!(f.blocks_down(LocalAccess::READ)); // line 6 held
    }

    /// Paper Fig. 9: on the broadcast root, `cofence(WRITE, WRITE)` lets
    /// unrelated local-write operations move across while guaranteeing the
    /// broadcast's local read of `buf` is data-complete.
    #[test]
    fn fig9_root_write_write() {
        let f = CofenceSpec::new(Pass::Writes, Pass::Writes);
        assert!(f.blocks_down(LocalAccess::READ)); // broadcast source read
        assert!(!f.blocks_down(LocalAccess::WRITE));
        assert!(f.admits_up(LocalAccess::WRITE));
        assert!(!f.admits_up(LocalAccess::READ));
    }

    /// An operation that both reads and writes local data crosses only a
    /// fence permitting both (`ANY`).
    #[test]
    fn read_write_ops_need_any() {
        assert!(CofenceSpec::new(Pass::Reads, Pass::None).blocks_down(LocalAccess::READ_WRITE));
        assert!(CofenceSpec::new(Pass::Writes, Pass::None).blocks_down(LocalAccess::READ_WRITE));
        assert!(!CofenceSpec::new(Pass::Any, Pass::None).blocks_down(LocalAccess::READ_WRITE));
    }

    #[test]
    fn no_local_access_never_held() {
        // A remote-to-remote third-party copy has no local-data-completion
        // obligation, but the conservative default still holds it back
        // only under Pass::None? No: nothing to wait for locally, yet the
        // algebra is about classes — NONE matches neither Reads nor
        // Writes, so only Any admits it. Runtimes special-case it by
        // never registering such ops as pending.
        assert!(CofenceSpec::FULL.blocks_down(LocalAccess::NONE));
        assert!(!CofenceSpec::new(Pass::Any, Pass::None).blocks_down(LocalAccess::NONE));
    }

    #[test]
    fn labels_round_trip_and_render_matches_the_paper() {
        for p in Pass::ALL {
            assert_eq!(Pass::parse(p.label()).unwrap(), p);
            assert_eq!(Pass::parse(&p.label().to_lowercase()).unwrap(), p);
        }
        assert!(Pass::parse("sideways").is_err());
        assert_eq!(CofenceSpec::FULL.render(), "cofence()");
        assert_eq!(
            CofenceSpec::new(Pass::Writes, Pass::Any).render(),
            "cofence(DOWNWARD=WRITE, UPWARD=ANY)"
        );
        assert_eq!(Pass::Any.strictness(), 0);
        assert_eq!(Pass::None.strictness(), 2);
    }

    #[test]
    fn permissiveness_order() {
        let full = CofenceSpec::FULL;
        let w = CofenceSpec::new(Pass::Writes, Pass::None);
        let any = CofenceSpec::new(Pass::Any, Pass::Any);
        assert!(w.at_least_as_permissive(&full));
        assert!(any.at_least_as_permissive(&w));
        assert!(any.at_least_as_permissive(&full));
        assert!(!full.at_least_as_permissive(&w));
        let r = CofenceSpec::new(Pass::Reads, Pass::None);
        assert!(!r.at_least_as_permissive(&w));
        assert!(!w.at_least_as_permissive(&r));
    }
}
