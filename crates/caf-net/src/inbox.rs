//! Timed per-image inboxes.
//!
//! Each image owns one inbox. Messages are stamped with a delivery
//! deadline when sent; [`Inbox::try_pop_due`] only surfaces a message once
//! its deadline has passed, which is how the fabric models wire latency
//! without dedicating a thread to the network. Blocked receivers park on a
//! condvar with a timeout at the earliest pending deadline.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

struct Timed<M> {
    deliver_at: Instant,
    seq: u64,
    msg: M,
}

impl<M> PartialEq for Timed<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<M> Eq for Timed<M> {}
impl<M> PartialOrd for Timed<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Timed<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap → invert for earliest-deadline-first.
        (other.deliver_at, other.seq).cmp(&(self.deliver_at, self.seq))
    }
}

struct Inner<M> {
    heap: BinaryHeap<Timed<M>>,
    seq: u64,
}

/// A single image's timed message queue.
pub struct Inbox<M> {
    inner: Mutex<Inner<M>>,
    arrived: Condvar,
    /// Notified on every pop, so senders parked on flow control wake the
    /// moment space frees instead of sleep-polling.
    space: Condvar,
    /// Queue depth mirror, maintained under `inner`'s lock but readable
    /// without it — `len()` is on senders' flow-control fast path.
    len: AtomicUsize,
}

impl<M> Default for Inbox<M> {
    fn default() -> Self {
        Inbox::new()
    }
}

impl<M> Inbox<M> {
    /// Creates an empty inbox.
    pub fn new() -> Self {
        Inbox {
            inner: Mutex::new(Inner { heap: BinaryHeap::new(), seq: 0 }),
            arrived: Condvar::new(),
            space: Condvar::new(),
            len: AtomicUsize::new(0),
        }
    }

    /// Enqueues a message to surface at `deliver_at`, waking any parked
    /// receiver so it can re-evaluate its next deadline.
    pub fn push(&self, deliver_at: Instant, msg: M) {
        let mut inner = self.inner.lock();
        inner.seq += 1;
        let seq = inner.seq;
        inner.heap.push(Timed { deliver_at, seq, msg });
        self.len.store(inner.heap.len(), Ordering::Release);
        drop(inner);
        self.arrived.notify_all();
    }

    /// Pops the earliest message whose deadline has passed, if any.
    pub fn try_pop_due(&self) -> Option<M> {
        let now = Instant::now();
        let mut inner = self.inner.lock();
        if inner.heap.peek().is_some_and(|t| t.deliver_at <= now) {
            let msg = inner.heap.pop().expect("peeked").msg;
            self.len.store(inner.heap.len(), Ordering::Release);
            drop(inner);
            self.space.notify_all();
            Some(msg)
        } else {
            None
        }
    }

    /// Blocks until a message is due or `deadline` passes; returns the
    /// message or `None` on timeout.
    pub fn pop_due_until(&self, deadline: Instant) -> Option<M> {
        let mut inner = self.inner.lock();
        loop {
            let now = Instant::now();
            if inner.heap.peek().is_some_and(|t| t.deliver_at <= now) {
                let msg = inner.heap.pop().expect("peeked").msg;
                self.len.store(inner.heap.len(), Ordering::Release);
                drop(inner);
                self.space.notify_all();
                return Some(msg);
            }
            if now >= deadline {
                return None;
            }
            // Park until the earliest pending deadline, an arrival, or
            // the caller's deadline — whichever comes first.
            let until = inner.heap.peek().map(|t| t.deliver_at.min(deadline)).unwrap_or(deadline);
            self.arrived.wait_until(&mut inner, until);
        }
    }

    /// Parks the caller until the queue depth drops below `cap`, a drain
    /// notification arrives, or `deadline` passes. Returns whether space
    /// is available. Senders loop on this under flow control; the timeout
    /// guards against missed wakeups and lets callers re-check abort
    /// conditions periodically.
    pub fn wait_space_until(&self, cap: usize, deadline: Instant) -> bool {
        if self.len() < cap {
            return true;
        }
        let mut inner = self.inner.lock();
        while inner.heap.len() >= cap {
            if self.space.wait_until(&mut inner, deadline).timed_out() {
                return inner.heap.len() < cap;
            }
        }
        true
    }

    /// Wakes any receiver parked in [`Inbox::wait_activity`] or
    /// [`Inbox::pop_due_until`] without enqueueing a message. Used by
    /// communication threads after advancing an operation's completion
    /// state, so the image re-evaluates its wait predicate promptly.
    pub fn poke(&self) {
        self.arrived.notify_all();
        // Senders parked on flow control also re-check (a poke may mean
        // the runtime is aborting and they must stop waiting for space).
        self.space.notify_all();
    }

    /// Parks until *something happens*: a message arrives, [`Inbox::poke`]
    /// is called, the earliest pending delivery deadline passes, or
    /// `deadline` is reached. Callers re-check their predicate and drain
    /// due messages after this returns; spurious wakeups are harmless.
    pub fn wait_activity(&self, deadline: Instant) {
        let mut inner = self.inner.lock();
        let now = Instant::now();
        if inner.heap.peek().is_some_and(|t| t.deliver_at <= now) {
            return; // something is already due
        }
        let until = inner.heap.peek().map(|t| t.deliver_at.min(deadline)).unwrap_or(deadline);
        if until > now {
            self.arrived.wait_until(&mut inner, until);
        }
    }

    /// Discards every queued message, due or not, returning how many were
    /// dropped. Wakes senders parked on flow control so a teardown after
    /// a detected failure never leaves a thread blocked on space that the
    /// (now absent) receiver would have had to free.
    pub fn drain(&self) -> usize {
        let mut inner = self.inner.lock();
        let n = inner.heap.len();
        inner.heap.clear();
        self.len.store(0, Ordering::Release);
        drop(inner);
        self.space.notify_all();
        self.arrived.notify_all();
        n
    }

    /// Number of queued messages (due or not) — the backpressure metric.
    /// Lock-free: reads the atomic depth mirror.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether the inbox is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn due_messages_pop_in_deadline_order() {
        let inbox = Inbox::new();
        let now = Instant::now();
        inbox.push(now, "b");
        inbox.push(now - Duration::from_millis(1), "a");
        assert_eq!(inbox.try_pop_due(), Some("a"));
        assert_eq!(inbox.try_pop_due(), Some("b"));
        assert_eq!(inbox.try_pop_due(), None);
    }

    #[test]
    fn future_messages_are_withheld() {
        let inbox = Inbox::new();
        inbox.push(Instant::now() + Duration::from_millis(50), 42u32);
        assert_eq!(inbox.try_pop_due(), None);
        assert_eq!(inbox.len(), 1);
        let got = inbox.pop_due_until(Instant::now() + Duration::from_millis(500));
        assert_eq!(got, Some(42));
    }

    #[test]
    fn pop_due_until_times_out() {
        let inbox: Inbox<u8> = Inbox::new();
        let start = Instant::now();
        let got = inbox.pop_due_until(start + Duration::from_millis(20));
        assert_eq!(got, None);
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn equal_deadlines_pop_in_push_order() {
        let inbox = Inbox::new();
        let t = Instant::now();
        for i in 0..10 {
            inbox.push(t, i);
        }
        for i in 0..10 {
            assert_eq!(inbox.try_pop_due(), Some(i));
        }
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let inbox = Inbox::new();
        let t = Instant::now();
        assert!(inbox.is_empty());
        inbox.push(t, 1u8);
        inbox.push(t + Duration::from_secs(60), 2u8);
        assert_eq!(inbox.len(), 2);
        assert_eq!(inbox.try_pop_due(), Some(1));
        assert_eq!(inbox.len(), 1, "undue message still counted");
    }

    #[test]
    fn wait_space_wakes_promptly_on_drain() {
        let inbox = std::sync::Arc::new(Inbox::new());
        let t = Instant::now();
        inbox.push(t, 0u8);
        inbox.push(t, 1u8);
        let waiter = {
            let inbox = inbox.clone();
            std::thread::spawn(move || {
                // Far deadline: only a drain notification can end this early.
                let ok = inbox.wait_space_until(2, Instant::now() + Duration::from_secs(10));
                (ok, Instant::now())
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(inbox.try_pop_due(), Some(0));
        let drained_at = Instant::now();
        let (ok, woke_at) = waiter.join().unwrap();
        assert!(ok, "space must be observed");
        assert!(
            woke_at.saturating_duration_since(drained_at) < Duration::from_secs(5),
            "waiter should wake on the drain notification, not the deadline"
        );
    }

    #[test]
    fn cross_thread_wakeup() {
        let inbox = std::sync::Arc::new(Inbox::new());
        let producer = {
            let inbox = inbox.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                inbox.push(Instant::now(), 7u8);
            })
        };
        let got = inbox.pop_due_until(Instant::now() + Duration::from_secs(5));
        assert_eq!(got, Some(7));
        producer.join().unwrap();
    }
}
