//! Fail-stop failure handling above the fabric.
//!
//! The fabric's failure detector ([`caf_net::Fabric::poll_failures`])
//! confirms that an image has died; this module turns that confirmation
//! into a *team-wide verdict*: the first survivor to confirm posts the
//! death to the shared [`FailureHub`] and broadcasts `Msg::ImageDown`
//! over the wire (riding the ack/retry reliable sublayer), every
//! survivor poisons its open `finish` epochs and aborts its blocking
//! construct, and the launch returns
//! [`RuntimeError::ImageFailed`](crate::RuntimeError::ImageFailed)
//! carrying a [`FailureReport`] — which image died, how fast detection
//! was, and what every survivor was doing when it found out — instead of
//! hanging on a reduction wave the dead image can never join.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use crate::watchdog::FinishDiag;

/// The incarnation every image starts (and, with no restart support,
/// dies) at — mirrors the fabric's numbering.
pub(crate) const FIRST_INCARNATION: u64 = 1;

/// Panic payload used by survivors unwinding after a confirmed failure.
/// Delivered via `resume_unwind` so the global panic hook stays silent —
/// the failure is reported once, as a `RuntimeError`, not once per thread.
pub(crate) struct FailUnwind;

/// Panic payload used by the *dead* image's own thread: either its
/// closure panicked (fail-stop at the image boundary) or a scheduled
/// crash fault silenced it on the wire and the runtime noticed.
pub(crate) struct CrashUnwind;

/// What one survivor was doing when it observed the failure.
#[derive(Debug, Clone)]
pub struct ImageFailureObservation {
    /// The surviving image's rank.
    pub image: usize,
    /// The blocking construct that observed the failure ("finish",
    /// "barrier", "collective", "event_wait", "copy", "cofence",
    /// "send", or "shutdown").
    pub construct: &'static str,
    /// Last-known epoch counters of the finish blocks this survivor had
    /// open when it aborted (all poisoned by then).
    pub finishes: Vec<FinishDiag>,
}

/// The structured diagnostic a failed launch returns.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// The image that fail-stopped.
    pub image: usize,
    /// Its incarnation at death; traffic stamped `<=` this is posthumous.
    pub incarnation: u64,
    /// Crash-to-confirmation latency at the first confirming observer.
    /// `None` when the fabric never saw the crash fire (it learned of
    /// the death another way).
    pub detection_latency: Option<Duration>,
    /// The panic message, when the image died of an uncaught panic.
    pub panic: Option<String>,
    /// Survivors' observations, sorted by rank.
    pub observers: Vec<ImageFailureObservation>,
    /// Fabric totals: wire transmissions destroyed because an endpoint
    /// was dead.
    pub crash_drops: u64,
    /// Fabric totals: frames discarded by the incarnation filter.
    pub posthumous_drops: u64,
    /// Fabric totals: heartbeat frames emitted.
    pub heartbeats: u64,
    /// Messages discarded by the team-wide inbox drain at teardown.
    pub drained: usize,
}

impl fmt::Display for FailureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "image {} failed (incarnation {})", self.image, self.incarnation)?;
        if let Some(lat) = self.detection_latency {
            write!(f, ", detected in {lat:?}")?;
        }
        if let Some(msg) = &self.panic {
            write!(f, ", panic: {msg:?}")?;
        }
        writeln!(
            f,
            "; fabric crash-dropped {}, posthumous {}, heartbeats {}, drained {}",
            self.crash_drops, self.posthumous_drops, self.heartbeats, self.drained
        )?;
        for obs in &self.observers {
            writeln!(f, "  image {} observed it in {}", obs.image, obs.construct)?;
            for d in &obs.finishes {
                writeln!(
                    f,
                    "    {}: sent {} delivered {} received {} completed {} ({} waves)",
                    d.finish, d.sent, d.delivered, d.received, d.completed, d.waves
                )?;
            }
        }
        Ok(())
    }
}

/// The first confirmed death of the launch.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Down {
    pub peer: usize,
    pub incarnation: u64,
    pub latency: Option<Duration>,
}

/// Process-shared failure state: which image died first, and every
/// survivor's parting observation. Later confirmations of the *same*
/// death (other survivors' detectors firing, `ImageDown` arrivals) are
/// absorbed; a hypothetical second dead image keeps the first verdict
/// (one report per launch).
pub(crate) struct FailureHub {
    poisoned: AtomicBool,
    down: Mutex<Option<Down>>,
    panic: Mutex<Option<String>>,
    observations: Mutex<Vec<ImageFailureObservation>>,
}

impl FailureHub {
    pub(crate) fn new() -> Self {
        FailureHub {
            poisoned: AtomicBool::new(false),
            down: Mutex::new(None),
            panic: Mutex::new(None),
            observations: Mutex::new(Vec::new()),
        }
    }

    /// Registers a confirmed death; returns whether this was the first
    /// (the caller then owns the team-wide broadcast). A later report of
    /// the same peer can still refine a missing detection latency.
    pub(crate) fn post(&self, peer: usize, incarnation: u64, latency: Option<Duration>) -> bool {
        let mut down = self.down.lock();
        match down.as_mut() {
            None => {
                *down = Some(Down { peer, incarnation, latency });
                self.poisoned.store(true, Ordering::Release);
                true
            }
            Some(d) => {
                if d.peer == peer && d.latency.is_none() {
                    d.latency = latency;
                }
                false
            }
        }
    }

    /// Whether any death has been posted (cheap fast-path check).
    pub(crate) fn poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// The registered death, if any.
    pub(crate) fn down(&self) -> Option<Down> {
        *self.down.lock()
    }

    /// Records the dead image's panic message (first wins).
    pub(crate) fn set_panic(&self, msg: String) {
        self.panic.lock().get_or_insert(msg);
    }

    pub(crate) fn take_panic(&self) -> Option<String> {
        self.panic.lock().take()
    }

    /// Adds one survivor's parting observation.
    pub(crate) fn contribute(&self, obs: ImageFailureObservation) {
        self.observations.lock().push(obs);
    }

    /// Collects the contributed observations, sorted by rank.
    pub(crate) fn take_observations(&self) -> Vec<ImageFailureObservation> {
        let mut obs = std::mem::take(&mut *self.observations.lock());
        obs.sort_by_key(|o| o.image);
        obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_post_wins_and_poisons() {
        let hub = FailureHub::new();
        assert!(!hub.poisoned());
        assert!(hub.post(2, 1, None));
        assert!(hub.poisoned());
        assert!(!hub.post(3, 1, Some(Duration::from_millis(1))), "second death absorbed");
        let d = hub.down().unwrap();
        assert_eq!(d.peer, 2);
    }

    #[test]
    fn late_latency_refines_the_first_post() {
        let hub = FailureHub::new();
        hub.post(1, 1, None);
        hub.post(1, 1, Some(Duration::from_millis(7)));
        assert_eq!(hub.down().unwrap().latency, Some(Duration::from_millis(7)));
    }

    #[test]
    fn report_renders_observers_and_counters() {
        let report = FailureReport {
            image: 3,
            incarnation: 1,
            detection_latency: Some(Duration::from_millis(6)),
            panic: Some("boom".into()),
            observers: vec![ImageFailureObservation {
                image: 0,
                construct: "finish",
                finishes: Vec::new(),
            }],
            crash_drops: 12,
            posthumous_drops: 2,
            heartbeats: 40,
            drained: 5,
        };
        let text = report.to_string();
        for needle in ["image 3 failed", "detected in", "boom", "observed it in finish"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
