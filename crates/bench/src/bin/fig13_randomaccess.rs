//! **Figure 13**: RandomAccess — Get-Update-Put vs. function shipping
//! with varying numbers of `finish` invocations.
//!
//! Paper: on 32–8192 cores of Jaguar, the function-shipping kernel
//! (grouped as 2048/4096/8192 finish blocks) performs comparably to the
//! RDMA get/put kernel, and the finish count barely matters once bunches
//! are large. Claims to reproduce: **FS ≈ GUP** (same order), and
//! **insensitivity to the finish count** at large bunch sizes.
//!
//! Reproduced at paper scale on the DES, plus a live threaded-runtime
//! comparison at laptop scale.

use bench::{fmt_ns, print_table};
use caf_runtime::{CommMode, RuntimeConfig};
use caf_sim::{run_ra_fs_sim, run_ra_gup_sim, RaSimConfig};
use randomaccess::{run_fs, run_gup, RaConfig};

fn main() {
    // ------------------------------------------------------------------
    // Paper scale (DES): time vs. cores, constant updates per image.
    // ------------------------------------------------------------------
    let updates = 4096usize;
    let mut rows = Vec::new();
    for p in [32usize, 64, 128, 256, 512, 1024, 2048, 4096, 8192] {
        let mk =
            |bunch: usize| RaSimConfig { updates_per_image: updates, bunch, ..RaSimConfig::new(p) };
        let gup = run_ra_gup_sim(&mk(updates));
        // The paper's three series group the same updates into
        // 2048/4096/8192 finish blocks on a 2^22 table; with `updates`
        // per image that corresponds to these bunch sizes:
        let fs_2k = run_ra_fs_sim(&mk(updates / 2));
        let fs_4k = run_ra_fs_sim(&mk(updates / 4));
        let fs_8k = run_ra_fs_sim(&mk(updates / 8));
        rows.push(vec![
            p.to_string(),
            fmt_ns(gup.sim_time_ns),
            fmt_ns(fs_2k.sim_time_ns),
            fmt_ns(fs_4k.sim_time_ns),
            fmt_ns(fs_8k.sim_time_ns),
        ]);
    }
    print_table(
        &format!("Fig. 13 (simulated, {updates} updates/image)"),
        &["cores", "get-update-put", "FS (few finishes)", "FS (more)", "FS (most)"],
        &rows,
    );
    println!(
        "paper: both kernels flat at ~15-25 s from 32→8K cores; FS within ~2× of GUP \
         and finish count immaterial."
    );

    // ------------------------------------------------------------------
    // Threaded runtime (real time): FS vs GUP, varying finish counts.
    // ------------------------------------------------------------------
    let mut rows = Vec::new();
    for p in [2usize, 4, 8] {
        let rt =
            || RuntimeConfig { comm_mode: CommMode::DedicatedThread, ..RuntimeConfig::default() };
        let base = RaConfig { log_local: 14, updates_per_image: 8192, bunch: 512, verify: false };
        let gup = run_gup(p, rt(), base);
        let fs_a = run_fs(p, rt(), RaConfig { bunch: 512, ..base });
        let fs_b = run_fs(p, rt(), RaConfig { bunch: 1024, ..base });
        let fs_c = run_fs(p, rt(), RaConfig { bunch: 2048, ..base });
        rows.push(vec![
            p.to_string(),
            format!("{:.1} ms", gup.elapsed.as_secs_f64() * 1e3),
            format!("{:.1} ms", fs_a.elapsed.as_secs_f64() * 1e3),
            format!("{:.1} ms", fs_b.elapsed.as_secs_f64() * 1e3),
            format!("{:.1} ms", fs_c.elapsed.as_secs_f64() * 1e3),
        ]);
    }
    print_table(
        "Fig. 13 (threaded runtime, 8192 updates/image, table 2^14/image)",
        &["images", "get-update-put", "FS bunch 512", "FS bunch 1024", "FS bunch 2048"],
        &rows,
    );
}
