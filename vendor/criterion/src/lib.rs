//! Offline mini benchmark harness.
//!
//! The build environment has no registry access, so the real `criterion`
//! crate cannot be fetched. This shim implements the API subset the
//! workspace's benches use — `Criterion`, benchmark groups, `iter` /
//! `iter_batched`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros — with simple wall-clock measurement: a short
//! warm-up, then timed batches, reporting mean ns/iteration (and
//! elements/sec when a throughput is set).

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup (accepted for API compatibility;
/// the shim times the routine per batch regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small input: many routine calls per setup batch.
    SmallInput,
    /// Large input: few routine calls per setup batch.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Declared workload per iteration, for derived-rate reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by `iter`/`iter_batched`.
    mean_ns: f64,
    target: Duration,
}

impl Bencher {
    /// Times `f`, storing the mean cost per call.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up.
        for _ in 0..3 {
            std::hint::black_box(f());
        }
        let mut iters: u64 = 0;
        let mut elapsed = Duration::ZERO;
        let mut batch: u64 = 1;
        while elapsed < self.target {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            elapsed += t0.elapsed();
            iters += batch;
            batch = (batch * 2).min(1 << 20);
        }
        self.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        std::hint::black_box(routine(setup()));
        let mut iters: u64 = 0;
        let mut elapsed = Duration::ZERO;
        while elapsed < self.target {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            elapsed += t0.elapsed();
            iters += 1;
        }
        self.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
    }
}

fn report(name: &str, mean_ns: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
            format!("  ({:.3e} elem/s)", n as f64 * 1e9 / mean_ns)
        }
        Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
            format!("  ({:.3e} B/s)", n as f64 * 1e9 / mean_ns)
        }
        _ => String::new(),
    };
    println!("bench: {name:<48} {mean_ns:>14.1} ns/iter{rate}");
}

/// Benchmark registry and runner.
pub struct Criterion {
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { target: Duration::from_millis(300) }
    }
}

impl Criterion {
    /// Accepted for API compatibility with the real crate's main macro.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, None, self.target, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            target: self.target,
            _parent: std::marker::PhantomData,
        }
    }
}

fn run_one(
    name: &str,
    throughput: Option<Throughput>,
    target: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher { mean_ns: 0.0, target };
    f(&mut b);
    report(name, b.mean_ns, throughput);
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    target: Duration,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration workload for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility (the shim sizes runs by time).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), self.throughput, self.target, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Prevents the optimizer from eliding a value (re-export convenience).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group function running the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($f:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($f(&mut c);)+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_smoke() {
        let mut c = Criterion { target: Duration::from_millis(5) };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(1));
        g.sample_size(10);
        g.bench_function("batched", |b| b.iter_batched(|| 21, |x| x * 2, BatchSize::SmallInput));
        g.finish();
    }
}
