#!/usr/bin/env bash
# Mutation adequacy of the model checker: seed each hand-written protocol
# bug (seven detector mutations + two cofence mutations) and confirm the
# checker's oracles catch every one — then run the unmutated protocol
# through the same suite and confirm it comes back clean. A mutation that
# escapes, or a clean-protocol counterexample, fails the script.
#
# Usage:
#   scripts/mutate_check.sh              # all mutations + clean smoke suite
#   scripts/mutate_check.sh --full       # clean suite at the soak bound
#                                        # (p=5, depth=4; minutes of CPU)
#   scripts/mutate_check.sh NAME...      # only the named mutations
set -euo pipefail
cd "$(dirname "$0")/.."

full=0
names=()
for a in "$@"; do
    case "$a" in
        --full) full=1 ;;
        *) names+=("$a") ;;
    esac
done

echo "== build (release) =="
cargo build --release -p caf-check --quiet

echo "== seeded mutations must be caught =="
./target/release/caf-check mutate "${names[@]+"${names[@]}"}"

if ((${#names[@]} == 0)); then
    if ((full)); then
        echo "== unmutated protocol, full bound (p=5, depth=4) =="
        ./target/release/caf-check suite --images 5 --depth 4 --crash-scenarios --quiet
    else
        echo "== unmutated protocol, smoke bound (p=3, depth=2) =="
        ./target/release/caf-check suite --images 3 --depth 2 --crash-scenarios --quiet
    fi
fi

echo "Mutation check passed."
