//! # caf-net
//!
//! The simulated interconnect the CAF 2.0 runtime runs over — the stand-in
//! for GASNet on a Cray Gemini network (see DESIGN.md substitution table):
//!
//! * [`inbox`] — timed per-image message queues (latency is modelled by
//!   delivery deadlines, not sleeping senders);
//! * [`fabric`] — the transport: reliable, unordered unless configured
//!   FIFO, with injection/latency/bandwidth costs and bounded-inbox
//!   backpressure (the GASNet flow-control stand-in);
//! * [`pump`] — the per-image communication engine, inline or offloaded to
//!   a dedicated communication thread (paper §III-B);
//! * [`reliable`] — the ack/retry delivery sublayer engaged under fault
//!   injection: per-link sequence numbers, receiver dedup, backoff timers;
//! * [`stats`] — traffic counters for benches and ablations.
//!
//! Fail-stop support: with failure detection engaged
//! ([`Fabric::with_chaos`]), the fabric pumps heartbeats on idle links,
//! drives a per-image failure detector (heartbeat deadlines + retry
//! exhaustion), destroys traffic touching crashed images, and filters
//! posthumous frames by incarnation. See [`fabric::ConfirmedDown`].

#![warn(missing_docs)]

pub mod fabric;
pub mod inbox;
pub mod pump;
pub mod reliable;
pub mod stats;

pub use fabric::{ConfirmedDown, Fabric};
pub use inbox::Inbox;
pub use pump::{CommMode, CommPump};
pub use stats::FabricStats;
