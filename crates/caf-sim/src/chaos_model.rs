//! Paper-scale chaos runs: the fault model executed in virtual time.
//!
//! The threaded runtime can only chaos-test a handful of images; this
//! model replays the *same* protocol stack — [`FaultPlan`] fault rolls,
//! ack/retry reliable delivery with [`SeqTracker`] dedup, and the strict
//! epoch termination detector via [`FinishSim`] — as discrete events, so
//! the exactly-once and never-terminate-early properties can be checked
//! at the paper's 4K+ image counts in milliseconds.
//!
//! One `finish` block is simulated: every image issues its spawns, the
//! wire drops/duplicates/delays them per the plan, the reliable layer
//! acks and retransmits within its budget, and waves run until the
//! detector's consistent cut is clean. A plan that defeats the retry
//! budget leaves the detector permanently unready, the event queue
//! drains, and the run reports [`ChaosOutcome::Stalled`] — the virtual
//! twin of the runtime watchdog's `RuntimeError::Stalled`.

use std::collections::HashMap;

use caf_core::fault::{FaultPlan, RetryPolicy, SeqTracker};
use caf_core::ids::Parity;
use caf_core::rng::SplitMix64;
use caf_core::termination::WaveDecision;
use caf_des::{ChaosWire, Engine, SimNet};

use crate::finish_sim::FinishSim;

/// Simulated size of a protocol acknowledgement (mirrors `caf-net`).
const ACK_BYTES: usize = 16;

/// Parameters of one simulated chaos run.
#[derive(Debug, Clone)]
pub struct ChaosSimConfig {
    /// Team size (the interesting regime is 4K+).
    pub images: usize,
    /// Spawns issued per image inside the `finish` block.
    pub msgs_per_image: usize,
    /// Payload bytes per spawn.
    pub bytes: usize,
    /// Execution cost of a spawn's handler at the target.
    pub work_ns: u64,
    /// Interconnect model (jitter makes delivery non-FIFO).
    pub net: SimNet,
    /// The fault schedule; its seed also drives network jitter.
    pub plan: FaultPlan,
    /// Ack/retransmit policy answering the plan.
    pub retry: RetryPolicy,
}

impl ChaosSimConfig {
    /// Defaults: 2 spawns per image, 64-byte payloads, a jittery
    /// (non-FIFO) Gemini-class network, no faults.
    pub fn new(images: usize) -> Self {
        ChaosSimConfig {
            images,
            msgs_per_image: 2,
            bytes: 64,
            work_ns: 500,
            net: SimNet::from_model(&caf_core::config::NetworkModel::gemini_like(), true),
            plan: FaultPlan::none(0x5EED),
            retry: RetryPolicy::default(),
        }
    }
}

/// How the run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosOutcome {
    /// The detector terminated the `finish` — every spawn was delivered
    /// exactly once and acknowledged.
    Terminated {
        /// Virtual time of termination.
        sim_ns: u64,
        /// Reduction waves needed.
        waves: usize,
    },
    /// The retry budget was exhausted somewhere; the detector can never
    /// become ready and the event queue drained without termination.
    Stalled {
        /// Spawns never acknowledged back to their senders.
        undelivered: u64,
    },
}

/// Counters from one simulated chaos run. Pure function of the config —
/// two runs with equal configs produce equal reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSimReport {
    /// Outcome of the run.
    pub outcome: ChaosOutcome,
    /// Spawns issued.
    pub sent: u64,
    /// Fresh (first-copy) deliveries at receivers.
    pub delivered: u64,
    /// Redundant copies suppressed by sequence dedup (injected
    /// duplicates plus retransmits that raced their ack).
    pub dups_suppressed: u64,
    /// Wire transmissions the plan dropped (data and acks).
    pub wire_drops: u64,
    /// Retransmissions performed.
    pub retries: u64,
    /// Messages abandoned after the retry budget.
    pub retries_exhausted: u64,
}

enum Ev {
    /// Sender puts (another) copy of `link_seq` on the wire.
    Xmit { from: usize, to: usize, link_seq: u64 },
    /// A copy arrives at `to`.
    Data { from: usize, to: usize, link_seq: u64, tag: Parity },
    /// An acknowledgement arrives back at `to` (the original sender).
    Ack { from: usize, to: usize, link_seq: u64 },
    /// A delivered spawn's handler finishes at `img`.
    HandlerDone { img: usize, tag: Parity },
    /// The sender's ack timer for `link_seq` expires.
    RetryTimeout { from: usize, to: usize, link_seq: u64 },
    /// The open reduction wave closes.
    WaveComplete,
}

struct Pending {
    tag: Parity,
    attempts: u32,
}

struct ChaosSim {
    cfg: ChaosSimConfig,
    wire: ChaosWire,
    rng: SplitMix64,
    engine: Engine<Ev>,
    fsim: FinishSim,
    /// `trackers[receiver][sender]` — exactly-once filter per link.
    trackers: Vec<Vec<SeqTracker>>,
    outstanding: HashMap<(usize, usize, u64), Pending>,
    wire_seq: u64,
    acked: u64,
    report: ChaosSimReport,
}

impl ChaosSim {
    fn new(cfg: ChaosSimConfig) -> Self {
        let p = cfg.images;
        let wire = ChaosWire::new(cfg.plan.clone(), cfg.retry.clone());
        let rng = SplitMix64::new(cfg.plan.seed ^ 0xC4A0_5EED);
        ChaosSim {
            cfg,
            wire,
            rng,
            engine: Engine::new(),
            fsim: FinishSim::new(p, true),
            trackers: (0..p).map(|_| vec![SeqTracker::default(); p]).collect(),
            outstanding: HashMap::new(),
            wire_seq: 0,
            acked: 0,
            report: ChaosSimReport {
                outcome: ChaosOutcome::Stalled { undelivered: 0 },
                sent: 0,
                delivered: 0,
                dups_suppressed: 0,
                wire_drops: 0,
                retries: 0,
                retries_exhausted: 0,
            },
        }
    }

    /// Puts one copy of an outstanding message on the wire: rolls its
    /// fault decision, schedules the arrival(s), and arms the ack timer.
    fn transmit(&mut self, from: usize, to: usize, link_seq: u64) {
        let Some(p) = self.outstanding.get(&(from, to, link_seq)) else { return };
        let (tag, attempts) = (p.tag, p.attempts);
        let d = self.wire.decide(from, to, self.wire_seq);
        self.wire_seq += 1;
        let now = self.engine.now();
        let extra = self.wire.spike_ns(d) + self.wire.stall_extra_ns(from, to, now);
        let copies = match (d.drop, d.duplicate) {
            (true, false) => 0,
            (false, false) | (true, true) => 1, // dup of a drop: one survives
            (false, true) => 2,
        };
        if d.drop {
            self.report.wire_drops += 1;
        }
        for _ in 0..copies {
            let delay = self.cfg.net.delivery_delay(self.cfg.bytes, &mut self.rng) + extra;
            self.engine.schedule(delay, Ev::Data { from, to, link_seq, tag });
        }
        self.engine
            .schedule(self.wire.timeout_ns(attempts), Ev::RetryTimeout { from, to, link_seq });
    }

    /// Sends an acknowledgement, itself subject to the fault plan.
    fn send_ack(&mut self, receiver: usize, sender: usize, link_seq: u64) {
        let d = self.wire.decide(receiver, sender, self.wire_seq);
        self.wire_seq += 1;
        if d.drop {
            self.report.wire_drops += 1;
            return;
        }
        let extra =
            self.wire.spike_ns(d) + self.wire.stall_extra_ns(receiver, sender, self.engine.now());
        let delay = self.cfg.net.delivery_delay(ACK_BYTES, &mut self.rng) + extra;
        self.engine.schedule(delay, Ev::Ack { from: receiver, to: sender, link_seq });
    }

    /// Attempts wave entry for `img`; the last entrant prices the
    /// allreduce and schedules the wave's completion.
    fn try_wave(&mut self, img: usize) {
        if self.fsim.try_enter(img, self.engine.now()) {
            let cost = self.cfg.net.allreduce_cost(self.cfg.images, &mut self.rng);
            self.engine.schedule(cost, Ev::WaveComplete);
        }
    }

    fn run(mut self) -> ChaosSimReport {
        let p = self.cfg.images;
        // The finish body: every image issues its spawns round-robin over
        // the other images, staggered by the injection overhead.
        let mut next_seq = vec![vec![0u64; p]; p];
        for (img, seqs) in next_seq.iter_mut().enumerate() {
            for k in 0..self.cfg.msgs_per_image {
                if p == 1 {
                    break;
                }
                let to = (img + 1 + k % (p - 1)) % p;
                let link_seq = seqs[to];
                seqs[to] += 1;
                let tag = self.fsim.on_send(img);
                self.outstanding.insert((img, to, link_seq), Pending { tag, attempts: 1 });
                self.report.sent += 1;
                self.engine.schedule_at(
                    k as u64 * self.cfg.net.injection_ns,
                    Ev::Xmit { from: img, to, link_seq },
                );
            }
        }
        // Spawns issued: every image is now idle and bids for the wave
        // (senders are held back by their own unacked messages).
        for img in 0..p {
            self.try_wave(img);
        }

        let mut terminated_at = None;
        while let Some((now, ev)) = self.engine.pop() {
            match ev {
                Ev::Xmit { from, to, link_seq } => self.transmit(from, to, link_seq),
                Ev::Data { from, to, link_seq, tag } => {
                    // Always re-ack: the previous ack may have been lost,
                    // and only an ack stops the sender's timer.
                    self.send_ack(to, from, link_seq);
                    if self.trackers[to][from].note(link_seq) {
                        self.report.delivered += 1;
                        self.fsim.on_receive(to, tag);
                        self.engine.schedule(self.cfg.work_ns, Ev::HandlerDone { img: to, tag });
                    } else {
                        self.report.dups_suppressed += 1;
                    }
                }
                Ev::Ack { from, to, link_seq } => {
                    // First ack wins; re-acks of a suppressed duplicate
                    // find the slot already empty.
                    if self.outstanding.remove(&(to, from, link_seq)).is_some() {
                        self.acked += 1;
                        self.fsim.on_delivered(to);
                        self.try_wave(to);
                    }
                }
                Ev::HandlerDone { img, tag } => {
                    self.fsim.on_complete(img, tag);
                    self.try_wave(img);
                }
                Ev::RetryTimeout { from, to, link_seq } => {
                    let Some(pend) = self.outstanding.get_mut(&(from, to, link_seq)) else {
                        continue; // already acknowledged
                    };
                    if pend.attempts > self.wire.max_retries() {
                        self.outstanding.remove(&(from, to, link_seq));
                        self.report.retries_exhausted += 1;
                    } else {
                        pend.attempts += 1;
                        self.report.retries += 1;
                        self.transmit(from, to, link_seq);
                    }
                }
                Ev::WaveComplete => {
                    if self.fsim.complete_wave() == WaveDecision::Terminated {
                        terminated_at = Some(now);
                        break;
                    }
                    for img in 0..p {
                        self.try_wave(img);
                    }
                }
            }
        }

        self.report.outcome = match terminated_at {
            Some(sim_ns) => ChaosOutcome::Terminated { sim_ns, waves: self.fsim.waves() },
            None => ChaosOutcome::Stalled { undelivered: self.report.sent - self.acked },
        };
        self.report
    }
}

/// Runs one simulated chaos `finish` and reports what the wire did and
/// whether the detector terminated.
pub fn run_chaos_sim(cfg: &ChaosSimConfig) -> ChaosSimReport {
    ChaosSim::new(cfg.clone()).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn chaos_cfg(images: usize, seed: u64, drop_p: f64, dup_p: f64) -> ChaosSimConfig {
        let mut cfg = ChaosSimConfig::new(images);
        cfg.plan = FaultPlan::uniform_drop(seed, drop_p).with_dup(dup_p);
        cfg
    }

    #[test]
    fn identical_configs_produce_identical_reports() {
        let cfg = chaos_cfg(256, 0xD15EA5E, 0.05, 0.02);
        assert_eq!(run_chaos_sim(&cfg), run_chaos_sim(&cfg));
    }

    #[test]
    fn different_seeds_produce_different_schedules() {
        let a = run_chaos_sim(&chaos_cfg(256, 1, 0.05, 0.02));
        let b = run_chaos_sim(&chaos_cfg(256, 2, 0.05, 0.02));
        assert_ne!(
            (a.wire_drops, a.retries, a.dups_suppressed),
            (b.wire_drops, b.retries, b.dups_suppressed)
        );
    }

    #[test]
    fn clean_run_at_4096_images_terminates_exactly_once() {
        let cfg = ChaosSimConfig::new(4096);
        let r = run_chaos_sim(&cfg);
        assert_eq!(r.sent, 2 * 4096);
        assert_eq!(r.delivered, r.sent, "every spawn delivered");
        assert_eq!(r.dups_suppressed, 0);
        assert_eq!(r.wire_drops, 0);
        assert_eq!(r.retries, 0, "ack timeout must dominate the RTT");
        assert_eq!(r.retries_exhausted, 0);
        match r.outcome {
            ChaosOutcome::Terminated { sim_ns, waves } => {
                assert!(sim_ns > 0);
                assert!(waves >= 1, "at least one wave to detect quiescence");
            }
            ChaosOutcome::Stalled { .. } => panic!("clean run stalled: {r:?}"),
        }
    }

    #[test]
    fn one_percent_chaos_at_4096_images_is_semantically_invisible() {
        // The ISSUE's acceptance plan at paper scale: 1% drop + 1% dup on
        // a jittery (non-FIFO) wire. The retry layer must restore
        // exactly-once and the detector must still terminate — late, but
        // never early and never double-counting.
        let r = run_chaos_sim(&chaos_cfg(4096, 0xCAFE, 0.01, 0.01));
        assert_eq!(r.sent, 2 * 4096);
        assert_eq!(r.delivered, r.sent, "no spawn lost: {r:?}");
        assert_eq!(r.retries_exhausted, 0, "budget must absorb 1% loss");
        assert!(r.wire_drops > 0, "the plan must actually have fired");
        assert!(r.dups_suppressed > 0, "dedup must have filtered copies");
        assert!(r.retries > 0, "drops must have been repaired by retransmit");
        assert!(
            matches!(r.outcome, ChaosOutcome::Terminated { .. }),
            "chaos within budget must still terminate: {r:?}"
        );
    }

    #[test]
    fn spikes_and_stragglers_slow_the_run_but_not_the_semantics() {
        let mut cfg = ChaosSimConfig::new(512);
        let clean = run_chaos_sim(&cfg);
        cfg.plan = FaultPlan::none(9).with_spikes(0.05, Duration::from_micros(50)).with_stall(
            3,
            Duration::from_micros(1),
            Duration::from_micros(200),
        );
        let slow = run_chaos_sim(&cfg);
        assert_eq!(slow.delivered, slow.sent);
        assert_eq!(slow.retries_exhausted, 0);
        let (
            ChaosOutcome::Terminated { sim_ns: t_clean, .. },
            ChaosOutcome::Terminated { sim_ns: t_slow, .. },
        ) = (clean.outcome, slow.outcome)
        else {
            panic!("both runs must terminate: {clean:?} / {slow:?}");
        };
        assert!(t_slow > t_clean, "spikes+stall must cost time: {t_slow} !> {t_clean}");
    }

    #[test]
    fn black_hole_link_exhausts_the_budget_and_stalls() {
        let mut cfg = ChaosSimConfig::new(8);
        cfg.msgs_per_image = 1;
        cfg.plan = FaultPlan::none(3).with_link(0, 1, 1.0);
        let r = run_chaos_sim(&cfg);
        assert_eq!(r.sent, 8);
        assert_eq!(r.delivered, 7, "only the 0→1 spawn is lost");
        assert_eq!(r.retries, cfg.retry.max_retries as u64);
        assert_eq!(r.retries_exhausted, 1);
        assert_eq!(r.wire_drops, cfg.retry.max_retries as u64 + 1, "every copy eaten");
        assert_eq!(
            r.outcome,
            ChaosOutcome::Stalled { undelivered: 1 },
            "the detector must never terminate over a lost spawn"
        );
    }
}
