//! **Ablation**: what does reliability cost as the wire degrades?
//!
//! Sweeps the fault plan's drop rate over {0, 0.1 %, 1 %, 5 %} (each with
//! matching duplication) and measures the chaos machinery on both
//! substrates:
//!
//! * the discrete-event simulator at 4096 images — virtual completion
//!   time of one all-spawn `finish`, reduction waves, and wire traffic,
//!   deterministic per seed;
//! * the threaded runtime at 4 images — wall-clock time of the chaos
//!   acceptance workload (all-to-all spawns under `finish`, then barrier
//!   and allreduce), which must produce bit-identical results at every
//!   drop rate.
//!
//! The interesting read-out: retries scale with the drop rate while
//! *semantics never change* — the ISSUE's acceptance property as a cost
//! curve.

use std::time::{Duration, Instant};

use bench::{fmt_ns, print_table};
use caf_core::config::{FaultPlan, RetryPolicy};
use caf_runtime::{Runtime, RuntimeConfig};
use caf_sim::{run_chaos_sim, ChaosOutcome, ChaosSimConfig};

const SEED: u64 = 0xFA_B71C;

fn sim_row(drop_p: f64) -> (String, String, String, String) {
    let mut cfg = ChaosSimConfig::new(4096);
    cfg.plan = FaultPlan::uniform_drop(SEED, drop_p).with_dup(drop_p);
    let r = run_chaos_sim(&cfg);
    assert_eq!(r.delivered, r.sent, "drop rate {drop_p}: exactly-once violated");
    assert_eq!(r.retries_exhausted, 0, "drop rate {drop_p}: budget exhausted");
    let ChaosOutcome::Terminated { sim_ns, waves } = r.outcome else {
        panic!("drop rate {drop_p}: simulated finish stalled: {r:?}");
    };
    (fmt_ns(sim_ns), waves.to_string(), r.retries.to_string(), r.wire_drops.to_string())
}

fn runtime_wall_ms(drop_p: f64) -> f64 {
    let n = 4;
    let rounds = 25;
    let cfg = RuntimeConfig {
        non_fifo: true,
        faults: (drop_p > 0.0).then(|| FaultPlan::uniform_drop(SEED, drop_p).with_dup(drop_p)),
        retry: RetryPolicy {
            ack_timeout: Duration::from_millis(2),
            backoff: 2,
            max_timeout: Duration::from_millis(50),
            max_retries: 12,
        },
        watchdog: Some(Duration::from_secs(30)),
        ..RuntimeConfig::testing()
    };
    let expect = (rounds * (n - 1)) as i64;
    let t0 = Instant::now();
    let out = Runtime::launch(n, cfg, |img| {
        let w = img.world();
        let counters = img.coarray(&w, 1, 0i64);
        img.finish(&w, |img| {
            for r in 0..img.num_images() {
                if r == img.id().index() {
                    continue;
                }
                for _ in 0..rounds {
                    let c = counters.clone();
                    img.spawn(img.image(r), move |peer| {
                        c.with_local(peer.id(), |seg| seg[0] += 1);
                    });
                }
            }
        });
        let mine = counters.with_local(img.id(), |seg| seg[0]);
        img.barrier(&w);
        mine
    });
    let dt = t0.elapsed().as_secs_f64() * 1e3;
    assert!(out.iter().all(|&m| m == expect), "drop rate {drop_p}: semantics changed: {out:?}");
    dt
}

fn main() {
    let rates = [0.0, 0.001, 0.01, 0.05];
    let mut rows = Vec::new();
    for &p in &rates {
        let (sim_t, waves, retries, drops) = sim_row(p);
        let wall = runtime_wall_ms(p);
        rows.push(vec![
            format!("{:.1}%", p * 100.0),
            sim_t,
            waves,
            retries,
            drops,
            format!("{wall:.1} ms"),
        ]);
    }
    print_table(
        "Fault-rate ablation: one finish, 4096 sim images / 4 threaded images",
        &["drop=dup", "sim finish", "waves", "sim retries", "sim drops", "runtime wall"],
        &rows,
    );
    println!("\nSemantics were asserted identical at every rate (exactly-once, no stall).");
}
