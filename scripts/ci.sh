#!/usr/bin/env bash
# The full CI gate: build, tests, clippy (warnings are errors), rustfmt.
#
# Usage:
#   scripts/ci.sh            # the standard gate
#   scripts/ci.sh --stress   # also run the chaos-stress soak (minutes)
#   CI_SOAK=1 scripts/ci.sh  # same soak, opted in via the environment
#                            # (for CI matrices that can't pass flags)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build =="
cargo build --workspace --all-targets

echo "== test =="
cargo test --workspace --quiet

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== fmt =="
cargo fmt --all --check

if [[ "${1:-}" == "--stress" || "${CI_SOAK:-0}" == "1" ]]; then
    echo "== chaos-stress soak =="
    cargo test --quiet -p caf-runtime --features chaos-stress --test chaos
fi

echo "CI gate passed."
