#!/usr/bin/env bash
# Sequential full verification: build, test (tee), figures (tee), bench (tee).
set -uo pipefail
cd "$(dirname "$0")/.."
cargo build --workspace --release 2>&1 | tail -2
cargo test --workspace 2>&1 | tee /root/repo/test_output.txt | grep -E "result:|FAILED" | tail -30
