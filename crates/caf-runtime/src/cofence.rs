//! The `cofence` statement (paper §III-B).
//!
//! `cofence(DOWNWARD=…, UPWARD=…)` demands local data completion of the
//! *implicitly synchronized* asynchronous operations this image has
//! initiated, except for the classes the arguments let pass. The runtime
//! keeps a pending-operation list per dynamic scope (the main program, and
//! one per executing shipped function — Fig. 10's dynamic scoping);
//! `cofence` waits on the operations in the innermost scope whose class
//! the `DOWNWARD` argument constrains.
//!
//! The `UPWARD` argument is a compiler-reordering permission: in this
//! library-level runtime, later operations are initiated in program order
//! anyway, so it needs no action at run time — but it is recorded by the
//! memory-model checker (`caf_core::model`) and validated there.

use caf_core::cofence::{CofenceSpec, Pass};
use caf_core::ids::Parity;
use caf_core::termination::WaveDetector;

use crate::completion::Stage;
use crate::image::Image;

impl Image {
    /// `cofence()` — full fence: local data completion of every pending
    /// implicit operation in the current scope.
    pub fn cofence(&self) {
        self.cofence_spec(CofenceSpec::FULL);
    }

    /// `cofence(DOWNWARD=down, UPWARD=up)` with explicit permissions.
    pub fn cofence_dir(&self, down: Pass, up: Pass) {
        self.cofence_spec(CofenceSpec::new(down, up));
    }

    /// `cofence` with a pre-built specification.
    pub fn cofence_spec(&self, spec: CofenceSpec) {
        // Partition the current scope: operations the fence constrains
        // must reach local data completion; the rest stay pending (they
        // might be constrained by a later, stricter fence).
        let must: Vec<_> = {
            let mut st = self.st.borrow_mut();
            let scope = st.pending_scopes.last_mut().expect("scope stack never empty");
            scope
                .iter()
                .filter(|op| spec.blocks_down(op.access))
                .map(|op| std::sync::Arc::clone(&op.completion))
                .collect()
        };
        for c in must {
            self.wait_until("cofence", || c.reached(Stage::LocalData));
        }
        // Garbage-collect everything that has reached local data
        // completion, whether we waited on it or it finished on its own.
        let mut st = self.st.borrow_mut();
        let scope = st.pending_scopes.last_mut().expect("scope stack never empty");
        scope.retain(|op| !op.completion.reached(Stage::LocalData));
    }

    /// Number of implicit operations currently pending in this scope
    /// (before local data completion) — used by tests.
    pub fn pending_implicit_ops(&self) -> usize {
        let st = self.st.borrow();
        st.pending_scopes.last().expect("scope stack never empty").len()
    }

    /// Sum of `sent − completed` over both epochs of the innermost active
    /// finish block, if any — test/metric hook into the detector.
    pub fn finish_local_imbalance(&self) -> Option<i64> {
        let fid = self.st.borrow().ctx_stack.last().copied().flatten()?;
        Some(self.with_frame(fid, |d| {
            let even = d.epochs().counters(Parity::Even);
            let odd = d.epochs().counters(Parity::Odd);
            (even.sent + odd.sent) as i64 - (even.completed + odd.completed) as i64
        }))
    }

    /// Waves used so far by the innermost active finish (test hook).
    pub fn finish_waves_so_far(&self) -> Option<usize> {
        let fid = self.st.borrow().ctx_stack.last().copied().flatten()?;
        Some(self.with_frame(fid, |d| d.waves()))
    }
}
