//! Cofence model checking: ordered programs of async operations and
//! directional fences, explored against an independently hand-coded
//! pass/block truth table.
//!
//! The safety oracle here is the paper's §III-B semantics restated from
//! the text rather than reusing `Pass::admits` (which is exactly what is
//! under test): an operation may defer local data completion past a
//! downward fence, or initiate early past an upward fence, iff the fence
//! names its class — `READ` admits local-read-only operations, `WRITE`
//! local-write-only, `ANY` everything, and an operation that both reads
//! and writes local memory crosses only `ANY`.
//!
//! Programs are tiny — `op ; cofence(d, u) ; op` over every pass pair and
//! operation class — but the checker explores every *interleaving* of
//! operation completion against fence crossing, the same way the finish
//! explorer enumerates message schedules: an implementation that is
//! coincidentally right when operations complete eagerly still gets
//! caught on the schedule where the operation is in flight at the fence.
//!
//! Two seeded mutations mirror `crate::mutation` for the mutation-check
//! harness: swapping the read/write classes and ignoring the upward
//! argument entirely.

use caf_core::cofence::{CofenceSpec, LocalAccess, Pass};

use crate::world::{Violation, ViolationKind};

/// The async-operation classes of paper Table/§III-B, by what they do to
/// the initiating image's local memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// `copy_async` with a local source: reads local memory.
    CopyRead,
    /// `copy_async` with a local destination: writes local memory.
    CopyWrite,
    /// Asynchronous collective (e.g. broadcast root buffer reuse):
    /// reads and writes local memory.
    AsyncCollective,
    /// Shipped function (`spawn`): marshals arguments from local memory.
    ShippedFn,
}

impl OpClass {
    /// All classes.
    pub const ALL: [OpClass; 4] =
        [OpClass::CopyRead, OpClass::CopyWrite, OpClass::AsyncCollective, OpClass::ShippedFn];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::CopyRead => "copy-read",
            OpClass::CopyWrite => "copy-write",
            OpClass::AsyncCollective => "async-collective",
            OpClass::ShippedFn => "shipped-fn",
        }
    }

    /// The local access pattern of this class.
    pub fn access(self) -> LocalAccess {
        match self {
            OpClass::CopyRead => LocalAccess::READ,
            OpClass::CopyWrite => LocalAccess::WRITE,
            OpClass::AsyncCollective => LocalAccess::READ_WRITE,
            OpClass::ShippedFn => LocalAccess::READ,
        }
    }
}

/// Every `Pass` value, for matrix enumeration.
pub const PASSES: [Pass; 4] = [Pass::None, Pass::Reads, Pass::Writes, Pass::Any];

/// The paper's crossing rule, restated independently of the
/// implementation: may an operation of class `access` cross a fence
/// argument `pass`?
pub fn truth_admits(pass: Pass, access: LocalAccess) -> bool {
    match pass {
        Pass::None => false,
        Pass::Reads => access.reads && !access.writes,
        Pass::Writes => !access.reads && access.writes,
        Pass::Any => true,
    }
}

/// Seeded cofence implementation bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CofenceMutation {
    /// `READ` admits writers and `WRITE` admits readers.
    SwapReadWrite,
    /// The upward argument is ignored: nothing may initiate early, and —
    /// the dangerous half — `cofence(UPWARD=x)` is treated as if the
    /// *downward* argument were `x` too.
    IgnoreUpward,
}

impl CofenceMutation {
    /// All cofence mutations.
    pub const ALL: [CofenceMutation; 2] =
        [CofenceMutation::SwapReadWrite, CofenceMutation::IgnoreUpward];

    /// Stable name for the CLI and `mutate_check.sh`.
    pub fn name(self) -> &'static str {
        match self {
            CofenceMutation::SwapReadWrite => "cofence-swap-read-write",
            CofenceMutation::IgnoreUpward => "cofence-ignore-upward",
        }
    }

    /// Parses [`CofenceMutation::name`].
    pub fn parse(s: &str) -> Result<CofenceMutation, String> {
        CofenceMutation::ALL
            .into_iter()
            .find(|m| m.name() == s)
            .ok_or_else(|| format!("unknown cofence mutation {s:?}"))
    }
}

fn swap_pass(p: Pass) -> Pass {
    match p {
        Pass::Reads => Pass::Writes,
        Pass::Writes => Pass::Reads,
        other => other,
    }
}

/// The implementation under check: the real `CofenceSpec` algebra with an
/// optional mutation layered on top.
#[derive(Debug, Clone, Copy)]
struct Impl {
    spec: CofenceSpec,
    mutation: Option<CofenceMutation>,
}

impl Impl {
    fn blocks_down(&self, access: LocalAccess) -> bool {
        match self.mutation {
            Some(CofenceMutation::SwapReadWrite) => {
                !CofenceSpec::new(swap_pass(self.spec.downward), self.spec.upward)
                    .downward
                    .admits(access)
            }
            Some(CofenceMutation::IgnoreUpward) => {
                // The buggy build wired the upward argument into the
                // downward check.
                !CofenceSpec::new(self.spec.upward, Pass::None).downward.admits(access)
            }
            None => self.spec.blocks_down(access),
        }
    }

    fn admits_up(&self, access: LocalAccess) -> bool {
        match self.mutation {
            Some(CofenceMutation::SwapReadWrite) => swap_pass(self.spec.upward).admits(access),
            Some(CofenceMutation::IgnoreUpward) => false,
            None => self.spec.admits_up(access),
        }
    }
}

/// Explores every interleaving of `op1 ; cofence(spec) ; op2` for one
/// `(spec, op1, op2)` triple: the pre-fence operation may complete at any
/// point (or never, until forced), and the post-fence operation may be
/// initiated early iff the implementation admits it. Returns the first
/// state the implementation reaches that the truth table forbids.
fn check_program(
    spec: CofenceSpec,
    mutation: Option<CofenceMutation>,
    op1: OpClass,
    op2: OpClass,
) -> Option<Violation> {
    let imp = Impl { spec, mutation };
    // Schedule A: op1 still in flight when control reaches the fence.
    // The implementation decides whether the fence may complete now.
    let impl_passes_early = !imp.blocks_down(op1.access());
    let truth_passes_early = truth_admits(spec.downward, op1.access());
    if impl_passes_early && !truth_passes_early {
        return Some(Violation {
            kind: ViolationKind::CofenceDown,
            detail: format!(
                "cofence(DOWNWARD={:?}, UPWARD={:?}) completed while a {} was pending \
                 local data completion",
                spec.downward,
                spec.upward,
                op1.name()
            ),
        });
    }
    // Completeness half: the fence must not stall a crossing the paper
    // guarantees (a conservative implementation breaks Fig. 8's overlap).
    if !impl_passes_early && truth_passes_early {
        return Some(Violation {
            kind: ViolationKind::CofenceDown,
            detail: format!(
                "cofence(DOWNWARD={:?}) stalled a {} the paper admits downward",
                spec.downward,
                op1.name()
            ),
        });
    }
    // Schedule B: op1 completes before the fence; op2 asks to initiate
    // early (before the fence's own completion).
    let impl_early_up = imp.admits_up(op2.access());
    let truth_early_up = truth_admits(spec.upward, op2.access());
    if impl_early_up && !truth_early_up {
        return Some(Violation {
            kind: ViolationKind::CofenceUp,
            detail: format!(
                "cofence(DOWNWARD={:?}, UPWARD={:?}) let a {} initiate above the fence",
                spec.downward,
                spec.upward,
                op2.name()
            ),
        });
    }
    if !impl_early_up && truth_early_up {
        return Some(Violation {
            kind: ViolationKind::CofenceUp,
            detail: format!(
                "cofence(UPWARD={:?}) refused a {} the paper admits upward",
                spec.upward,
                op2.name()
            ),
        });
    }
    None
}

/// Checks the full matrix: all 16 `(downward, upward)` pass pairs × all
/// pre/post operation-class pairs, each under every schedule. Returns the
/// first violation and the number of programs checked.
pub fn check_matrix(mutation: Option<CofenceMutation>) -> (usize, Option<Violation>) {
    let mut programs = 0;
    for d in PASSES {
        for u in PASSES {
            for op1 in OpClass::ALL {
                for op2 in OpClass::ALL {
                    programs += 1;
                    if let Some(v) = check_program(CofenceSpec::new(d, u), mutation, op1, op2) {
                        return (programs, Some(v));
                    }
                }
            }
        }
    }
    (programs, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_implementation_passes_the_whole_matrix() {
        let (programs, v) = check_matrix(None);
        assert_eq!(programs, 16 * 16);
        assert!(v.is_none(), "{v:?}");
    }

    #[test]
    fn swap_read_write_is_caught() {
        let (_, v) = check_matrix(Some(CofenceMutation::SwapReadWrite));
        let v = v.expect("swapped classes must violate the table");
        assert!(matches!(v.kind, ViolationKind::CofenceDown | ViolationKind::CofenceUp), "{v:?}");
    }

    #[test]
    fn ignore_upward_is_caught() {
        let (_, v) = check_matrix(Some(CofenceMutation::IgnoreUpward));
        let v = v.expect("ignored upward argument must violate the table");
        assert!(matches!(v.kind, ViolationKind::CofenceDown | ViolationKind::CofenceUp), "{v:?}");
    }

    #[test]
    fn shipped_fn_classifies_as_local_read() {
        // A spawn marshals its arguments out of local memory: it crosses
        // READ fences, not WRITE fences.
        assert!(truth_admits(Pass::Reads, OpClass::ShippedFn.access()));
        assert!(!truth_admits(Pass::Writes, OpClass::ShippedFn.access()));
    }
}
