//! Synchronous team collectives.
//!
//! CAF 2.0 teams are isolated collective domains (§II-A purpose *c*).
//! Every collective here is SPMD-matched: each member must call the same
//! collectives on a team in the same order. Hops travel as
//! [`crate::msg::Msg::Coll`] messages keyed by a per-team call sequence
//! number, so a hop arriving before its receiver has entered the
//! collective is buffered, and an image blocked inside a collective keeps
//! executing incoming active messages — the property `finish` relies on
//! (shipped functions must keep landing while teammates sit in the
//! termination allreduce).
//!
//! Algorithms: dissemination barrier (`O(log p)` rounds), binomial-tree
//! broadcast/reduce/gather, reduce+broadcast allreduce, direct scatter and
//! all-to-all, Hillis–Steele inclusive scan, and a sample sort.

use std::any::Any;

use caf_core::ids::{TeamId, TeamRank};
use caf_core::topology::{dissemination_peers, BinomialTree, Team};

use crate::image::Image;
use crate::msg::{CollKey, CollMsg, Msg};
use crate::state::ImageState;

/// Tag bases distinguishing stages within one collective call.
mod tag {
    pub const BARRIER: u32 = 0x0100; // + round
    pub const REDUCE: u32 = 0x0200;
    pub const BCAST: u32 = 0x0300;
    pub const GATHER: u32 = 0x0400;
    pub const SCATTER: u32 = 0x0500;
    pub const ALLTOALL: u32 = 0x0600;
    pub const SCAN: u32 = 0x0700; // + round
    pub const SORT_EXCHANGE: u32 = 0x0800;
}

impl Image {
    fn my_rank(&self, team: &Team) -> TeamRank {
        team.rank_of(self.id())
            .unwrap_or_else(|| panic!("{} is not a member of {}", self.id(), team.id()))
    }

    fn next_coll_seq(&self, team: &Team) -> u64 {
        ImageState::bump(&mut self.st.borrow_mut().coll_seq, team.id())
    }

    fn coll_send<T: Any + Send>(&self, team: &Team, seq: u64, tg: u32, to: TeamRank, payload: T) {
        let key = CollKey { team: team.id(), seq, tag: tg, from: self.my_rank(team).0 };
        let bytes = std::mem::size_of::<T>() + 16;
        // Collective hops are bounded control traffic; exempting them
        // from flow control (like acks) avoids deadlocking a barrier
        // against a data-plane burst that filled the inbox.
        self.shared.fabric.send_unthrottled(
            self.id(),
            team.image_of(to),
            bytes,
            Msg::Coll(CollMsg { key, payload: Box::new(payload) }),
        );
    }

    fn coll_take<T: Any + Send>(
        &self,
        construct: &'static str,
        team: &Team,
        seq: u64,
        tg: u32,
        from: TeamRank,
    ) -> T {
        let key = CollKey { team: team.id(), seq, tag: tg, from: from.0 };
        let mut out = None;
        self.wait_until(construct, || {
            if let Some(payload) = self.st.borrow_mut().coll_buf.remove(&key) {
                out = Some(*payload.downcast::<T>().expect("collective payload type mismatch"));
                true
            } else {
                false
            }
        });
        out.expect("wait_until returned with payload")
    }

    // ------------------------------------------------------------------
    // Barrier
    // ------------------------------------------------------------------

    /// Dissemination barrier over `team` (`team_barrier`). `O(log p)`
    /// rounds; all-to-all knowledge transfer guarantees no member exits
    /// before every member has entered.
    pub fn barrier(&self, team: &Team) {
        if team.size() == 1 {
            self.progress();
            return;
        }
        let seq = self.next_coll_seq(team);
        let rank = self.my_rank(team);
        for (round, (to, from)) in dissemination_peers(team.size(), rank).into_iter().enumerate() {
            self.coll_send(team, seq, tag::BARRIER + round as u32, to, ());
            self.coll_take::<()>("barrier", team, seq, tag::BARRIER + round as u32, from);
        }
    }

    // ------------------------------------------------------------------
    // Broadcast / reduce / allreduce
    // ------------------------------------------------------------------

    fn bcast_stage<T: Clone + Any + Send>(
        &self,
        team: &Team,
        seq: u64,
        root: TeamRank,
        value: Option<T>,
    ) -> T {
        let rank = self.my_rank(team);
        let tree = BinomialTree::new(team.size(), root);
        let val = if rank == root {
            value.expect("broadcast root must supply a value")
        } else {
            self.coll_take::<T>(
                "collective",
                team,
                seq,
                tag::BCAST,
                tree.parent(rank).expect("non-root"),
            )
        };
        for child in tree.children(rank) {
            self.coll_send(team, seq, tag::BCAST, child, val.clone());
        }
        val
    }

    fn reduce_stage<T: Any + Send>(
        &self,
        team: &Team,
        seq: u64,
        root: TeamRank,
        mine: T,
        op: impl Fn(T, T) -> T,
    ) -> Option<T> {
        let rank = self.my_rank(team);
        let tree = BinomialTree::new(team.size(), root);
        let mut acc = mine;
        for child in tree.children(rank) {
            let v = self.coll_take::<T>("collective", team, seq, tag::REDUCE, child);
            acc = op(acc, v);
        }
        match tree.parent(rank) {
            Some(parent) => {
                self.coll_send(team, seq, tag::REDUCE, parent, acc);
                None
            }
            None => Some(acc),
        }
    }

    /// Broadcast from `root`'s `value` to every member; returns the value
    /// everywhere (`team_broadcast`). Non-roots pass `None`.
    pub fn broadcast<T: Clone + Any + Send>(
        &self,
        team: &Team,
        root: TeamRank,
        value: Option<T>,
    ) -> T {
        let seq = self.next_coll_seq(team);
        self.bcast_stage(team, seq, root, value)
    }

    /// Binomial-tree reduction to `root` (`team_reduce`): returns
    /// `Some(result)` at the root, `None` elsewhere. `op` must be
    /// associative (and commutative, since child order is not rank order).
    pub fn reduce<T: Any + Send>(
        &self,
        team: &Team,
        root: TeamRank,
        mine: T,
        op: impl Fn(T, T) -> T,
    ) -> Option<T> {
        let seq = self.next_coll_seq(team);
        self.reduce_stage(team, seq, root, mine, op)
    }

    /// Reduction whose result every member receives (`team_allreduce`) —
    /// a binomial reduce to rank 0 followed by a binomial broadcast:
    /// `O(log p)` critical path, the cost model behind the paper's
    /// `O((L+1) log p)` finish bound.
    pub fn allreduce<T: Clone + Any + Send>(
        &self,
        team: &Team,
        mine: T,
        op: impl Fn(T, T) -> T,
    ) -> T {
        let seq = self.next_coll_seq(team);
        let root = TeamRank(0);
        let reduced = self.reduce_stage(team, seq, root, mine, op);
        self.bcast_stage(team, seq, root, reduced)
    }

    // ------------------------------------------------------------------
    // Gather / allgather / scatter / alltoall
    // ------------------------------------------------------------------

    fn gather_stage<T: Any + Send>(
        &self,
        team: &Team,
        seq: u64,
        root: TeamRank,
        mine: T,
    ) -> Option<Vec<T>> {
        // Binomial gather: each node forwards (rank, value) pairs of its
        // subtree; the root sorts by rank.
        let rank = self.my_rank(team);
        let tree = BinomialTree::new(team.size(), root);
        let mut acc: Vec<(usize, T)> = vec![(rank.0, mine)];
        for child in tree.children(rank) {
            let sub =
                self.coll_take::<Vec<(usize, T)>>("collective", team, seq, tag::GATHER, child);
            acc.extend(sub);
        }
        match tree.parent(rank) {
            Some(parent) => {
                self.coll_send(team, seq, tag::GATHER, parent, acc);
                None
            }
            None => {
                acc.sort_by_key(|&(r, _)| r);
                debug_assert_eq!(acc.len(), team.size());
                Some(acc.into_iter().map(|(_, v)| v).collect())
            }
        }
    }

    /// Gathers one value per member to `root`, in team-rank order
    /// (`team_gather`).
    pub fn gather<T: Any + Send>(&self, team: &Team, root: TeamRank, mine: T) -> Option<Vec<T>> {
        let seq = self.next_coll_seq(team);
        self.gather_stage(team, seq, root, mine)
    }

    /// Gather + broadcast: every member receives all values in rank order
    /// (`team_allgather`).
    pub fn allgather<T: Clone + Any + Send>(&self, team: &Team, mine: T) -> Vec<T> {
        let seq = self.next_coll_seq(team);
        let root = TeamRank(0);
        let gathered = self.gather_stage(team, seq, root, mine);
        self.bcast_stage(team, seq, root, gathered)
    }

    /// Scatters `values[k]` (supplied at `root`) to team rank `k`
    /// (`team_scatter`).
    pub fn scatter<T: Any + Send>(&self, team: &Team, root: TeamRank, values: Option<Vec<T>>) -> T {
        let seq = self.next_coll_seq(team);
        let rank = self.my_rank(team);
        if rank == root {
            let values = values.expect("scatter root must supply values");
            assert_eq!(values.len(), team.size(), "scatter needs one value per member");
            let mut mine = None;
            for (k, v) in values.into_iter().enumerate() {
                if k == rank.0 {
                    mine = Some(v);
                } else {
                    self.coll_send(team, seq, tag::SCATTER, TeamRank(k), v);
                }
            }
            mine.expect("own slot present")
        } else {
            self.coll_take::<T>("collective", team, seq, tag::SCATTER, root)
        }
    }

    /// Personalized all-to-all: sends `mine[k]` to rank `k`, returns what
    /// each rank sent here, in rank order (`team_alltoall`).
    pub fn alltoall<T: Any + Send>(&self, team: &Team, mine: Vec<T>) -> Vec<T> {
        assert_eq!(mine.len(), team.size(), "alltoall needs one value per member");
        let seq = self.next_coll_seq(team);
        let rank = self.my_rank(team);
        let mut own = None;
        for (k, v) in mine.into_iter().enumerate() {
            if k == rank.0 {
                own = Some(v);
            } else {
                self.coll_send(team, seq, tag::ALLTOALL, TeamRank(k), v);
            }
        }
        (0..team.size())
            .map(|k| {
                if k == rank.0 {
                    own.take().expect("own slot present")
                } else {
                    self.coll_take::<T>("collective", team, seq, tag::ALLTOALL, TeamRank(k))
                }
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Scan
    // ------------------------------------------------------------------

    /// Inclusive prefix scan in team-rank order (`team_scan`):
    /// rank `k` receives `op(v₀, v₁, …, v_k)`. Hillis–Steele, `O(log p)`
    /// rounds. `op` must be associative.
    pub fn scan<T: Clone + Any + Send>(&self, team: &Team, mine: T, op: impl Fn(T, T) -> T) -> T {
        let seq = self.next_coll_seq(team);
        let rank = self.my_rank(team);
        let n = team.size();
        let mut acc = mine;
        let mut round = 0u32;
        let mut d = 1usize;
        while d < n {
            // Send my running prefix to rank + d; fold in the prefix from
            // rank − d (which covers the d elements ending there).
            if rank.0 + d < n {
                self.coll_send(team, seq, tag::SCAN + round, TeamRank(rank.0 + d), acc.clone());
            }
            if rank.0 >= d {
                let left = self.coll_take::<T>(
                    "collective",
                    team,
                    seq,
                    tag::SCAN + round,
                    TeamRank(rank.0 - d),
                );
                acc = op(left, acc);
            }
            d <<= 1;
            round += 1;
        }
        acc
    }

    // ------------------------------------------------------------------
    // Sort
    // ------------------------------------------------------------------

    /// Parallel sample sort (`team_sort`): each member contributes
    /// `mine`; afterwards member `k` holds a sorted run such that runs are
    /// globally ordered by team rank (rank 0 holds the smallest keys).
    /// Bucket sizes are approximately balanced by regular sampling.
    pub fn sort<T: Clone + Ord + Any + Send>(&self, team: &Team, mut mine: Vec<T>) -> Vec<T> {
        let n = team.size();
        mine.sort();
        if n == 1 {
            return mine;
        }
        // Regular samples: n−1 per member (fewer if short on data).
        let samples: Vec<T> = (1..n)
            .filter_map(|k| {
                if mine.is_empty() {
                    None
                } else {
                    Some(mine[(k * mine.len()) / n].clone())
                }
            })
            .collect();
        let mut all_samples: Vec<T> = self.allgather(team, samples).into_iter().flatten().collect();
        all_samples.sort();
        // n−1 splitters by regular selection from the gathered samples.
        let splitters: Vec<T> = (1..n)
            .filter_map(|k| {
                if all_samples.is_empty() {
                    None
                } else {
                    Some(all_samples[(k * all_samples.len()) / n].clone())
                }
            })
            .collect();
        // Partition into n buckets.
        let mut buckets: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
        for v in mine {
            let b = splitters.partition_point(|s| *s <= v);
            buckets[b].push(v);
        }
        // Exchange buckets (uses its own tag space so the allgather above
        // and this exchange can't collide).
        let seq = self.next_coll_seq(team);
        let rank = self.my_rank(team);
        let mut own = None;
        for (k, b) in buckets.into_iter().enumerate() {
            if k == rank.0 {
                own = Some(b);
            } else {
                self.coll_send(team, seq, tag::SORT_EXCHANGE, TeamRank(k), b);
            }
        }
        let mut result = own.take().expect("own bucket");
        for k in 0..n {
            if k != rank.0 {
                result.extend(self.coll_take::<Vec<T>>(
                    "collective",
                    team,
                    seq,
                    tag::SORT_EXCHANGE,
                    TeamRank(k),
                ));
            }
        }
        result.sort();
        result
    }

    // ------------------------------------------------------------------
    // Team split
    // ------------------------------------------------------------------

    /// `team_split(parent, color, key)`: members calling with equal
    /// `color` form a new team, ranked by `key` (ties by parent rank).
    /// Collective over `parent`; every member receives its new team.
    pub fn team_split(&self, parent: &Team, color: u64, key: u64) -> Team {
        let split_seq = ImageState::bump(&mut self.st.borrow_mut().split_seq, parent.id());
        let pairs: Vec<(u64, u64)> = self.allgather(parent, (color, key));
        let groups = parent.split_by(|r| pairs[r.0]);
        let (_, members) = groups
            .into_iter()
            .find(|(c, _)| *c == color)
            .expect("caller's color group must exist");
        let id = self.team_id_for(parent.id(), split_seq, color);
        Team::new(id, members)
    }

    fn team_id_for(&self, parent: TeamId, split_seq: u64, color: u64) -> TeamId {
        let mut ids = self.shared.team_ids.lock();
        *ids.entry((parent, split_seq, color)).or_insert_with(|| {
            TeamId(self.shared.next_team.fetch_add(1, std::sync::atomic::Ordering::Relaxed))
        })
    }
}
