//! X10-style centralized vector-counting termination detection (paper §V).
//!
//! Each worker maintains a vector with one lane per place: how many
//! activities it spawned *to* that place, minus how many activities it
//! completed locally (recorded in its own lane). When a worker quiesces it
//! sends its accumulated vector delta to the place that owns the finish;
//! the home sums the vectors and declares termination when the sum is the
//! zero vector.
//!
//! The scaling defect the paper calls out is structural: the home receives
//! `p` vectors of size `p`. We expose message and byte counters so the
//! ablation bench can show the `O(p²)` hot spot against the epoch
//! algorithm's `O(p log p)` total / `O(log p)` critical path.

use crate::ids::ImageId;

/// A vector report sent from a worker to the finish home.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorReport {
    /// Reporting worker.
    pub from: ImageId,
    /// Per-place deltas since the worker's previous report:
    /// `delta[j] = spawned_to_j − (j == self ? completed_locally : 0)`.
    pub delta: Vec<i64>,
}

/// Worker-side state.
#[derive(Debug, Clone)]
pub struct CentralizedDetector {
    me: ImageId,
    places: usize,
    /// Un-reported per-place deltas.
    pending: Vec<i64>,
    /// Activities currently executing locally (must be zero to quiesce).
    active: usize,
    reports_sent: usize,
    poisoned: Option<usize>,
}

impl CentralizedDetector {
    /// Worker state for `me` among `places` images.
    pub fn new(me: ImageId, places: usize) -> Self {
        assert!(me.0 < places);
        CentralizedDetector {
            me,
            places,
            pending: vec![0; places],
            active: 0,
            reports_sent: 0,
            poisoned: None,
        }
    }

    /// Records spawning one activity to `target`.
    pub fn on_spawn(&mut self, target: ImageId) {
        assert!(target.0 < self.places);
        self.pending[target.0] += 1;
    }

    /// Records the start of a locally executing activity.
    pub fn on_activity_start(&mut self) {
        self.active += 1;
    }

    /// Records completion of a locally executing activity.
    pub fn on_activity_complete(&mut self) {
        assert!(self.active > 0, "completion without a running activity");
        self.active -= 1;
        self.pending[self.me.0] -= 1;
    }

    /// Whether the worker is quiescent (no running activities).
    pub fn quiescent(&self) -> bool {
        self.active == 0
    }

    /// Takes the pending delta vector to ship to the home, if the worker
    /// is quiescent and has anything new to report (or has never
    /// reported). Returns `None` when there is nothing to send.
    pub fn take_report(&mut self) -> Option<VectorReport> {
        if !self.quiescent() {
            return None;
        }
        if self.reports_sent > 0 && self.pending.iter().all(|&d| d == 0) {
            return None;
        }
        let delta = std::mem::replace(&mut self.pending, vec![0; self.places]);
        self.reports_sent += 1;
        Some(VectorReport { from: self.me, delta })
    }

    /// Number of vector reports this worker has sent.
    pub fn reports_sent(&self) -> usize {
        self.reports_sent
    }

    /// Marks `image` as fail-stopped: the worker stops waiting for the
    /// home's termination verdict (which can never arrive normally — the
    /// dead place will never report its deltas).
    pub fn poison(&mut self, image: usize) {
        self.poisoned.get_or_insert(image);
    }

    /// The first fail-stopped image this worker was told about, if any.
    pub fn poisoned_by(&self) -> Option<usize> {
        self.poisoned
    }
}

/// Home-side state at the place owning the finish.
#[derive(Debug, Clone)]
pub struct CentralizedHome {
    places: usize,
    sum: Vec<i64>,
    heard_from: Vec<bool>,
    reports_received: usize,
    bytes_received: usize,
    poisoned: Option<usize>,
}

impl CentralizedHome {
    /// Home state for a finish over `places` images.
    pub fn new(places: usize) -> Self {
        CentralizedHome {
            places,
            sum: vec![0; places],
            heard_from: vec![false; places],
            reports_received: 0,
            bytes_received: 0,
            poisoned: None,
        }
    }

    /// Ingests one report; returns `true` if global termination is now
    /// detected (every place has reported at least once and the summed
    /// vector is zero).
    pub fn ingest(&mut self, report: &VectorReport) -> bool {
        assert_eq!(report.delta.len(), self.places);
        for (s, d) in self.sum.iter_mut().zip(&report.delta) {
            *s += d;
        }
        self.heard_from[report.from.0] = true;
        self.reports_received += 1;
        self.bytes_received += report.delta.len() * std::mem::size_of::<i64>();
        self.terminated()
    }

    /// Current detection state. A poisoned finish never terminates
    /// normally: the home instead reports the failure via
    /// [`poisoned_by`](Self::poisoned_by) and the runtime aborts the wait.
    pub fn terminated(&self) -> bool {
        self.poisoned.is_none()
            && self.heard_from.iter().all(|&h| h)
            && self.sum.iter().all(|&s| s == 0)
    }

    /// Marks `image` as fail-stopped. Its lane can never balance (the
    /// dead place will not complete or report the activities spawned to
    /// it), so the home abandons normal termination.
    pub fn poison(&mut self, image: usize) {
        self.poisoned.get_or_insert(image);
    }

    /// The first fail-stopped image reported to the home, if any.
    pub fn poisoned_by(&self) -> Option<usize> {
        self.poisoned
    }

    /// Total vector reports the home has absorbed (the hot-spot metric).
    pub fn reports_received(&self) -> usize {
        self.reports_received
    }

    /// Total bytes of vector payload the home has absorbed: `O(p²)` for
    /// one finish in the worst case.
    pub fn bytes_received(&self) -> usize {
        self.bytes_received
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_work_terminates_after_everyone_reports_once() {
        let n = 4;
        let mut home = CentralizedHome::new(n);
        for i in 0..n {
            let mut w = CentralizedDetector::new(ImageId(i), n);
            let r = w.take_report().expect("first report always sent");
            let done = home.ingest(&r);
            assert_eq!(done, i == n - 1, "terminate only on the last report");
        }
    }

    #[test]
    fn outstanding_spawn_blocks_termination_until_completed() {
        let n = 2;
        let mut home = CentralizedHome::new(n);
        let mut w0 = CentralizedDetector::new(ImageId(0), n);
        let mut w1 = CentralizedDetector::new(ImageId(1), n);

        w0.on_spawn(ImageId(1));
        assert!(!home.ingest(&w0.take_report().unwrap()));
        assert!(!home.ingest(&w1.take_report().unwrap()));
        assert!(!home.terminated()); // lane 1 is +1

        // The activity lands and completes at image 1.
        w1.on_activity_start();
        assert!(w1.take_report().is_none(), "busy worker must not report");
        w1.on_activity_complete();
        assert!(home.ingest(&w1.take_report().unwrap()));
    }

    #[test]
    fn bytes_scale_with_places() {
        let n = 8;
        let mut home = CentralizedHome::new(n);
        for i in 0..n {
            let mut w = CentralizedDetector::new(ImageId(i), n);
            home.ingest(&w.take_report().unwrap());
        }
        assert_eq!(home.reports_received(), n);
        assert_eq!(home.bytes_received(), n * n * 8);
    }

    #[test]
    fn poisoned_home_never_declares_termination() {
        let n = 3;
        let mut home = CentralizedHome::new(n);
        home.poison(2); // image 2 died before reporting
        for i in 0..n - 1 {
            let mut w = CentralizedDetector::new(ImageId(i), n);
            assert!(!home.ingest(&w.take_report().unwrap()));
        }
        assert!(!home.terminated());
        assert_eq!(home.poisoned_by(), Some(2));
        let mut w = CentralizedDetector::new(ImageId(0), n);
        w.poison(2);
        assert_eq!(w.poisoned_by(), Some(2));
    }

    #[test]
    fn quiet_worker_reports_only_once() {
        let mut w = CentralizedDetector::new(ImageId(0), 3);
        assert!(w.take_report().is_some());
        assert!(w.take_report().is_none());
        w.on_spawn(ImageId(2));
        assert!(w.take_report().is_some());
        assert!(w.take_report().is_none());
    }
}
