//! Offline mini property-testing harness.
//!
//! The build environment has no registry access, so the real `proptest`
//! crate cannot be fetched. This shim implements the API subset the
//! workspace's tests use — [`Strategy`] with `prop_map`/`prop_recursive`,
//! range/tuple/`Just`/`any`/`prop::collection::vec` strategies, the
//! [`proptest!`]/[`prop_oneof!`]/[`prop_assert!`] macros and
//! [`ProptestConfig`] — over a seeded SplitMix64 generator.
//!
//! Differences from the real crate, by design:
//! * **No shrinking.** A failing case reports its case index and the
//!   deterministic per-test seed; re-running reproduces it exactly.
//! * Generation is deterministic per test function (seed = hash of the
//!   test name), overridable with `PROPTEST_SEED`.

#![warn(missing_docs)]

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// Deterministic SplitMix64 stream driving all generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Recursive strategy: `recurse` receives a boxed strategy for the
    /// recursion sites and returns the composite level. `depth` bounds
    /// the nesting (the extra size parameters of the real crate are
    /// accepted and ignored).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let base: BoxedStrategy<Self::Value> = self.boxed();
        let rec = Arc::new(move |inner: BoxedStrategy<Self::Value>| recurse(inner).boxed());
        Recursive { base, recurse: rec, depth }
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<V> {
    base: BoxedStrategy<V>,
    recurse: Arc<dyn Fn(BoxedStrategy<V>) -> BoxedStrategy<V>>,
    depth: u32,
}

impl<V: 'static> Strategy for Recursive<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        // Random nesting depth per sample, built bottom-up from the base.
        let levels = rng.below(self.depth as u64 + 1) as u32;
        let mut strat = self.base.clone();
        for _ in 0..levels {
            strat = (self.recurse)(strat);
        }
        strat.generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Chooses uniformly among type-erased alternatives (see [`prop_oneof!`]).
#[derive(Clone)]
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union from its arms (at least one required).
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// ---------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Strategy generating arbitrary values of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for any value of `T` (the real crate's `any::<T>()`).
#[derive(Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Creates an [`Any`] strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Namespace module mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// Length specification for [`vec`]: a fixed size or a range.
        #[derive(Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                SizeRange { lo: r.start, hi: r.end }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                SizeRange { lo: *r.start(), hi: r.end() + 1 }
            }
        }

        /// Strategy for a `Vec` whose length is drawn from `len` and whose
        /// elements come from `element`.
        pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, len: len.into() }
        }

        /// See [`vec`].
        #[derive(Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.hi - self.len.lo).max(1) as u64;
                let n = self.len.lo + rng.below(span) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

// ---------------------------------------------------------------------
// Runner & config
// ---------------------------------------------------------------------

/// Runner configuration: how many cases each property executes.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test seed: FNV-1a of the test name, overridable via
/// the `PROPTEST_SEED` environment variable.
pub fn seed_for(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.parse::<u64>() {
            return v;
        }
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Everything the macros need, star-importable.
pub mod prelude {
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let seed = $crate::seed_for(stringify!($name));
            let mut rng = $crate::TestRng::new(seed);
            for case in 0..cfg.cases {
                let case_info =
                    format!("[{} case {case}/{} seed {seed}]", stringify!($name), cfg.cases);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let run = || -> () { $body };
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                if let Err(e) = outcome {
                    eprintln!("proptest failure {case_info}");
                    ::std::panic::resume_unwind(e);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::generate(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
            let i = Strategy::generate(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn vec_and_tuple_compose() {
        let mut rng = TestRng::new(2);
        let s = prop::collection::vec((0usize..4, 0usize..512), 1..120);
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!(!v.is_empty() && v.len() < 120);
            assert!(v.iter().all(|&(a, b)| a < 4 && b < 512));
        }
    }

    #[test]
    fn recursion_is_bounded() {
        #[derive(Debug)]
        struct Tree(Vec<Tree>);
        fn depth(t: &Tree) -> usize {
            1 + t.0.iter().map(depth).max().unwrap_or(0)
        }
        let leaf = Just(()).prop_map(|()| Tree(vec![]));
        let s = leaf
            .prop_recursive(4, 24, 3, |inner| prop::collection::vec(inner, 0..3).prop_map(Tree));
        let mut rng = TestRng::new(3);
        let mut max = 0;
        for _ in 0..200 {
            max = max.max(depth(&Strategy::generate(&s, &mut rng)));
        }
        assert!(max > 1, "recursion never recursed");
        assert!(max <= 5, "depth bound exceeded: {max}");
    }

    #[test]
    fn deterministic_per_seed() {
        let s = prop::collection::vec(0u64..1000, 0..50);
        let mut a = TestRng::new(9);
        let mut b = TestRng::new(9);
        for _ in 0..50 {
            assert_eq!(Strategy::generate(&s, &mut a), Strategy::generate(&s, &mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_smoke(a in 0u64..10, v in prop::collection::vec(any::<bool>(), 0..8)) {
            prop_assert!(a < 10);
            prop_assert!(v.len() < 8);
        }
    }

    proptest! {
        #[test]
        fn oneof_covers_arms(x in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(x == 1 || x == 2 || x == 5 || x == 6);
        }
    }
}
