//! **Figure 17**: UTS parallel efficiency.
//!
//! Paper: the CAF 2.0 UTS (T1WL) holds 0.80→0.74 efficiency from 256 to
//! 32 768 Jaguar cores, relative to single-core performance. Claims to
//! reproduce: **a gentle, monotone-ish decline over two orders of
//! magnitude of image count**, with the `finish` overhead *not* blowing
//! up at scale (that is the construct's scalability claim).
//!
//! Substitution: T1WL is O(10¹¹) nodes; we run the same generator at
//! depth 13 (≈7×10⁷ nodes) and scale per-node work to 20 µs so per-image
//! work at 32 K images stays meaningful (see EXPERIMENTS.md). Takes a
//! few minutes; set UTS_DEPTH=11 for a quick pass.

use bench::{fmt_ns, print_table, scaled_tree};
use caf_sim::{run_uts_sim, UtsSimConfig};

fn main() {
    // Depth 13 ≈ 70M nodes (~8.6K nodes/image at 8192): enough work
    // granularity for meaningful balance. Set UTS_DEPTH=11 for a quick
    // pass.
    let depth: usize = std::env::var("UTS_DEPTH").ok().and_then(|v| v.parse().ok()).unwrap_or(13);
    let spec = scaled_tree(depth);
    let node_cost = 20_000u64;
    let mut rows = Vec::new();
    let mut effs = Vec::new();
    for p in [256usize, 512, 1024, 4096, 8192, 16384, 32768] {
        let mut cfg = UtsSimConfig::new(spec, p);
        cfg.node_cost_ns = node_cost;
        let r = run_uts_sim(cfg);
        let eff = r.efficiency(p, node_cost);
        effs.push(eff);
        rows.push(vec![
            p.to_string(),
            fmt_ns(r.sim_time_ns),
            format!("{eff:.2}"),
            r.waves.to_string(),
            r.steals.to_string(),
            r.lifeline_pushes.to_string(),
        ]);
    }
    print_table(
        "Fig. 17 (simulated UTS parallel efficiency, node cost 20 µs)",
        &["images", "T_p (virtual)", "efficiency", "finish waves", "steals", "lifeline pushes"],
        &rows,
    );
    println!("paper: 0.80, 0.79, 0.79, 0.78, 0.78, 0.77, 0.74 over the same sweep.");
    let first = effs[0];
    let last = *effs.last().expect("nonempty");
    assert!(last <= first, "efficiency should decline with scale: {effs:?}");
    assert!(
        last > 0.25,
        "efficiency at 32K collapsed ({last:.2}) — finish overhead must stay modest"
    );
}
