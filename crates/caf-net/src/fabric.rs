//! The simulated interconnect: a set of timed inboxes plus the cost model.
//!
//! The fabric is a dumb, *not necessarily FIFO* transport — the same
//! contract GASNet gives the CAF 2.0 runtime. Latency and bandwidth come
//! from [`NetworkModel`]: a message of `b` payload bytes sent at `t`
//! becomes visible to the target at
//! `t + injection_overhead + latency + b·byte_cost` (plus deterministic
//! pseudo-jitter when `non_fifo` reordering is enabled). Delivery
//! acknowledgements, event notifications, collective stages — everything
//! above this layer is just a message.
//!
//! Backpressure: when a target inbox holds more than
//! `inbox_capacity` undelivered messages, the sender parks on the inbox's
//! space condvar (woken by drains) — modelling GASNet flow control, which
//! the paper suspects behind the Fig. 14 large-bunch anomaly.
//!
//! Reliability: by default the wire is lossless and the fabric adds zero
//! protocol overhead. With an active [`FaultPlan`] the wire drops,
//! duplicates, delays, and stalls traffic per the plan's seeded schedule,
//! and every remote message is routed through the ack/retry sublayer
//! ([`crate::reliable`]): per-link sequence numbers, receiver-side dedup,
//! ack timers with exponential backoff, and a capped retry budget whose
//! exhaustion is surfaced to the runtime's no-progress watchdog.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use caf_core::config::NetworkModel;
use caf_core::fault::{FaultPlan, RetryPolicy};
use caf_core::ids::ImageId;
use caf_core::rng::splitmix64_hash;
use parking_lot::Mutex;

use crate::inbox::Inbox;
use crate::reliable::{Outstanding, RecvState, SenderState, Wire, ACK_BYTES};
use crate::stats::FabricStats;

/// Fault-injection schedule plus the reliable-delivery state answering it.
struct Chaos<M> {
    plan: FaultPlan,
    retry: RetryPolicy,
    /// Fabric creation time — stall windows are relative to this.
    epoch: Instant,
    /// Per-sending-image retry state (indexed by sender).
    senders: Vec<Mutex<SenderState<M>>>,
    /// Per-receiving-image dedup state (indexed by receiver).
    receivers: Vec<Mutex<RecvState>>,
}

/// Retransmission batch drained under the sender lock: destination,
/// sequence, shared payload slot, payload bytes.
type Resend<M> = Vec<(ImageId, u64, Arc<Mutex<Option<M>>>, usize)>;

/// The interconnect between `n` images, carrying messages of type `M`.
pub struct Fabric<M> {
    inboxes: Vec<Inbox<Wire<M>>>,
    model: NetworkModel,
    non_fifo: bool,
    seq: AtomicU64,
    stats: FabricStats,
    chaos: Option<Chaos<M>>,
    /// Set when the runtime aborts (e.g. the no-progress watchdog fired):
    /// releases senders parked under backpressure so their threads can be
    /// joined instead of sleeping on a drain that will never come.
    halted: AtomicBool,
}

impl<M: Send> Fabric<M> {
    /// A fabric over `n` images with the given cost model. `non_fifo`
    /// enables deterministic pseudo-random reordering of same-pair
    /// messages (delivery deadlines get up to `latency/2` extra skew).
    pub fn new(n: usize, model: NetworkModel, non_fifo: bool) -> Arc<Self> {
        Fabric::build(n, model, non_fifo, None)
    }

    /// A fabric whose wire misbehaves per `plan` and whose delivery layer
    /// answers with `retry`. All remote traffic is routed through the
    /// ack/retry sublayer — even when the plan is currently inactive, so
    /// protocol overhead can be measured in isolation.
    pub fn with_faults(
        n: usize,
        model: NetworkModel,
        non_fifo: bool,
        plan: FaultPlan,
        retry: RetryPolicy,
    ) -> Arc<Self> {
        Fabric::build(n, model, non_fifo, Some((plan, retry)))
    }

    fn build(
        n: usize,
        model: NetworkModel,
        non_fifo: bool,
        faults: Option<(FaultPlan, RetryPolicy)>,
    ) -> Arc<Self> {
        Arc::new(Fabric {
            inboxes: (0..n).map(|_| Inbox::new()).collect(),
            model,
            non_fifo,
            seq: AtomicU64::new(0),
            stats: FabricStats::default(),
            chaos: faults.map(|(plan, retry)| Chaos {
                plan,
                retry,
                epoch: Instant::now(),
                senders: (0..n).map(|_| Mutex::new(SenderState::new(n))).collect(),
                receivers: (0..n).map(|_| Mutex::new(RecvState::new(n))).collect(),
            }),
            halted: AtomicBool::new(false),
        })
    }

    /// Number of images attached to the fabric.
    pub fn size(&self) -> usize {
        self.inboxes.len()
    }

    /// The cost model in force.
    pub fn model(&self) -> &NetworkModel {
        &self.model
    }

    /// Aggregate traffic statistics.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// Whether the reliable-delivery (chaos) layer is engaged.
    pub fn faults_active(&self) -> bool {
        self.chaos.is_some()
    }

    /// Unacknowledged reliable messages currently owned by `image` as a
    /// sender (its retry queue depth). Zero without a fault layer.
    pub fn retry_backlog(&self, image: ImageId) -> usize {
        self.chaos.as_ref().map_or(0, |c| c.senders[image.index()].lock().backlog())
    }

    /// Aborts the fabric: flow control stops parking senders (over-capacity
    /// sends are admitted immediately) and every image is poked awake.
    /// Used by the runtime when tearing down after a detected stall —
    /// communication threads blocked in [`Fabric::send`] must be joinable.
    /// Irreversible.
    pub fn halt(&self) {
        self.halted.store(true, Ordering::Release);
        for inbox in &self.inboxes {
            inbox.poke();
        }
    }

    /// Whether [`Fabric::halt`] has been called.
    pub fn halted(&self) -> bool {
        self.halted.load(Ordering::Acquire)
    }

    /// Sends `msg` with a simulated payload of `payload_bytes` from `from`
    /// to `to`. Blocks the caller under backpressure. Local (self) sends
    /// still traverse the model's loopback (zero latency, injection cost
    /// only) so semantics don't change between local and remote targets.
    pub fn send(&self, from: ImageId, to: ImageId, payload_bytes: usize, msg: M) {
        // Backpressure: park while the target inbox is over capacity.
        // Self-sends are exempt: the sender is the only drainer of its
        // own inbox, so throttling it can never make progress.
        if let Some(cap) = self.model.inbox_capacity.filter(|_| from != to) {
            let inbox = &self.inboxes[to.index()];
            // Re-probe interval: a drain notification wakes us instantly;
            // the timeout only bounds missed-wakeup / abort latency and
            // lets a parked sender keep pumping its retransmit timers.
            let quantum = if self.model.backpressure_stall > Duration::ZERO {
                self.model.backpressure_stall
            } else {
                Duration::from_micros(100)
            };
            while inbox.len() >= cap && !self.halted() {
                self.stats.note_backpressure_stall();
                self.pump_retries(from);
                inbox.wait_space_until(cap, Instant::now() + quantum);
            }
        }
        self.inject(from, to, payload_bytes, msg);
    }

    /// Attempts to send under flow control without blocking: returns the
    /// message back if the target inbox is over capacity. Callers that
    /// can make progress while refused (an image thread draining its own
    /// inbox — GASNet's poll-while-blocked rule for requests) should loop
    /// on this instead of [`Fabric::send`], whose parked stall can
    /// deadlock if every potential drainer blocks simultaneously.
    pub fn try_send(
        &self,
        from: ImageId,
        to: ImageId,
        payload_bytes: usize,
        msg: M,
    ) -> Result<(), M> {
        if let Some(cap) = self.model.inbox_capacity.filter(|_| from != to) {
            if self.inboxes[to.index()].len() >= cap {
                self.stats.note_backpressure_stall();
                return Err(msg);
            }
        }
        self.inject(from, to, payload_bytes, msg);
        Ok(())
    }

    /// Sends without flow control. For *reply-class* traffic only —
    /// delivery acknowledgements, event notifications, completion
    /// advances, collective control hops. GASNet gives AM replies the
    /// same exemption: a handler must be able to reply without blocking,
    /// otherwise two images whose inboxes are both full of requests
    /// deadlock exchanging acknowledgements.
    pub fn send_unthrottled(&self, from: ImageId, to: ImageId, payload_bytes: usize, msg: M) {
        self.inject(from, to, payload_bytes, msg);
    }

    /// Logical send: counts the message once and routes it either raw
    /// (lossless wire, or loopback) or through the reliable envelope.
    fn inject(&self, from: ImageId, to: ImageId, payload_bytes: usize, msg: M) {
        self.stats.note_send(payload_bytes);
        match &self.chaos {
            // Self-sends bypass the wire — and therefore the fault layer —
            // in both modes.
            Some(chaos) if from != to => {
                let payload = Arc::new(Mutex::new(Some(msg)));
                let link_seq = {
                    let mut st = chaos.senders[from.index()].lock();
                    let seq = st.next_seq[to.index()];
                    st.next_seq[to.index()] = seq + 1;
                    st.outstanding[to.index()].push_back(Outstanding {
                        link_seq: seq,
                        payload: Arc::clone(&payload),
                        bytes: payload_bytes,
                        attempts: 1,
                        next_retry: Instant::now() + chaos.retry.timeout_after(1),
                    });
                    seq
                };
                self.transmit(from, to, payload_bytes, Wire::Data { from, link_seq, payload });
            }
            _ => self.transmit(from, to, payload_bytes, Wire::Raw(msg)),
        }
    }

    /// Wire-level transmission: applies the cost model, non-FIFO jitter,
    /// and — under a fault plan — drops, duplicates, delay spikes, and
    /// straggler deferral. Every call is one die roll; retransmissions of
    /// the same logical message roll independently.
    fn transmit(&self, from: ImageId, to: ImageId, payload_bytes: usize, wire: Wire<M>) {
        let inbox = &self.inboxes[to.index()];
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut delay = self.model.injection_overhead;
        if from != to {
            delay += self.model.wire_time(payload_bytes);
            if self.non_fifo && !self.model.latency.is_zero() {
                let span = (self.model.latency / 2).as_nanos() as u64;
                if span > 0 {
                    delay += Duration::from_nanos(splitmix64_hash(seq) % span);
                }
            }
        }
        if let Some(chaos) = self.chaos.as_ref().filter(|_| from != to) {
            let elapsed = chaos.epoch.elapsed();
            // A stalled endpoint defers traffic until its window closes:
            // a descheduled sender cannot inject, a descheduled receiver
            // cannot run handlers.
            delay += chaos.plan.stall_extra(from.index(), elapsed);
            delay += chaos.plan.stall_extra(to.index(), elapsed);
            let decision = chaos.plan.decide(from.index(), to.index(), seq);
            if decision.delay_spike {
                delay += chaos.plan.spike_delay;
            }
            if decision.drop {
                self.stats.note_wire_drop();
                return; // vanishes; the retry timer will answer
            }
            if decision.duplicate {
                if let Some(copy) = wire.clone_protocol() {
                    self.stats.note_wire_dup();
                    let extra = self.model.latency / 2 + Duration::from_micros(5);
                    inbox.push(Instant::now() + delay + extra, copy);
                }
            }
        }
        inbox.push(Instant::now() + delay, wire);
    }

    /// Retransmits every overdue outstanding message owned by `image`,
    /// advancing ack timers with exponential backoff and abandoning
    /// messages whose retry budget is exhausted. Called from the sending
    /// image's own fabric entry points (lazy pumping — the fabric has no
    /// thread of its own).
    fn pump_retries(&self, image: ImageId) {
        let Some(chaos) = &self.chaos else { return };
        let now = Instant::now();
        let mut resend: Resend<M> = Vec::new();
        {
            let mut st = chaos.senders[image.index()].lock();
            for (dest, queue) in st.outstanding.iter_mut().enumerate() {
                queue.retain_mut(|o| {
                    if o.next_retry > now {
                        return true;
                    }
                    if o.attempts > chaos.retry.max_retries {
                        // Budget spent (original + max_retries resends):
                        // abandon. The message may still be in flight —
                        // if it truly never arrives, the runtime's
                        // watchdog turns the quiet into a diagnostic.
                        self.stats.note_retry_exhausted();
                        return false;
                    }
                    o.attempts += 1;
                    o.next_retry = now + chaos.retry.timeout_after(o.attempts);
                    resend.push((ImageId(dest), o.link_seq, Arc::clone(&o.payload), o.bytes));
                    true
                });
            }
        }
        for (dest, link_seq, payload, bytes) in resend {
            self.stats.note_retry();
            self.transmit(image, dest, bytes, Wire::Data { from: image, link_seq, payload });
        }
    }

    /// Earliest retransmission deadline owed by `image`, for park
    /// clamping (a blocked sender must wake in time to retransmit).
    fn next_retry_at(&self, image: ImageId) -> Option<Instant> {
        self.chaos
            .as_ref()
            .and_then(|c| c.senders[image.index()].lock().next_retry_at())
    }

    /// Protocol processing of one popped wire envelope at `image`.
    /// Returns the payload if this envelope surfaces a fresh message.
    fn open(&self, image: ImageId, wire: Wire<M>) -> Option<M> {
        match wire {
            Wire::Raw(msg) => {
                self.stats.note_delivered();
                Some(msg)
            }
            Wire::Data { from, link_seq, payload } => {
                let chaos = self.chaos.as_ref().expect("Data frames only exist under chaos");
                // Always (re-)acknowledge — the previous ack may itself
                // have been dropped. Acks ride the faulty wire too.
                self.stats.note_ack();
                self.transmit(image, from, ACK_BYTES, Wire::Ack { from: image, link_seq });
                let fresh =
                    chaos.receivers[image.index()].lock().trackers[from.index()].note(link_seq);
                if fresh {
                    let msg = payload.lock().take();
                    debug_assert!(msg.is_some(), "fresh sequence with an empty payload slot");
                    if msg.is_some() {
                        self.stats.note_delivered();
                    }
                    msg
                } else {
                    self.stats.note_dup_discarded();
                    None
                }
            }
            Wire::Ack { from, link_seq } => {
                if let Some(chaos) = &self.chaos {
                    let mut st = chaos.senders[image.index()].lock();
                    let queue = &mut st.outstanding[from.index()];
                    if let Some(pos) = queue.iter().position(|o| o.link_seq == link_seq) {
                        queue.remove(pos);
                    }
                }
                None
            }
        }
    }

    /// Non-blocking receive for `image`: the earliest due message, if any.
    /// Also pumps `image`'s retransmission timers.
    pub fn try_recv(&self, image: ImageId) -> Option<M> {
        self.pump_retries(image);
        while let Some(wire) = self.inboxes[image.index()].try_pop_due() {
            if let Some(msg) = self.open(image, wire) {
                return Some(msg);
            }
        }
        None
    }

    /// Blocking receive for `image` with a deadline. Protocol frames
    /// (acks, filtered duplicates) are consumed without surfacing; parks
    /// are clamped to the next retransmission deadline.
    pub fn recv_until(&self, image: ImageId, deadline: Instant) -> Option<M> {
        loop {
            self.pump_retries(image);
            let park = self.next_retry_at(image).map_or(deadline, |r| r.min(deadline));
            match self.inboxes[image.index()].pop_due_until(park) {
                Some(wire) => {
                    if let Some(msg) = self.open(image, wire) {
                        return Some(msg);
                    }
                }
                None => {
                    if Instant::now() >= deadline {
                        return None;
                    }
                    // Woke early to pump retries; loop.
                }
            }
        }
    }

    /// Queue depth at `image`'s inbox (due and undue messages).
    pub fn inbox_depth(&self, image: ImageId) -> usize {
        self.inboxes[image.index()].len()
    }

    /// Wakes `image` if it is parked waiting for activity (no message is
    /// enqueued). See [`Inbox::poke`].
    pub fn poke(&self, image: ImageId) {
        self.inboxes[image.index()].poke();
    }

    /// Parks `image` until a message arrives / becomes due, a poke lands,
    /// a retransmission falls due, or `deadline` passes. See
    /// [`Inbox::wait_activity`].
    pub fn wait_activity(&self, image: ImageId, deadline: Instant) {
        self.pump_retries(image);
        let park = self.next_retry_at(image).map_or(deadline, |r| r.min(deadline));
        self.inboxes[image.index()].wait_activity(park);
        self.pump_retries(image);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(i: usize) -> ImageId {
        ImageId(i)
    }

    #[test]
    fn instant_network_delivers_immediately() {
        let f: Arc<Fabric<u32>> = Fabric::new(2, NetworkModel::instant(), false);
        f.send(img(0), img(1), 8, 99);
        assert_eq!(f.try_recv(img(1)), Some(99));
        assert_eq!(f.try_recv(img(0)), None);
    }

    #[test]
    fn latency_withholds_delivery() {
        let model = NetworkModel { latency: Duration::from_millis(30), ..NetworkModel::instant() };
        let f: Arc<Fabric<&str>> = Fabric::new(2, model, false);
        f.send(img(0), img(1), 0, "hi");
        assert_eq!(f.try_recv(img(1)), None, "message must not be visible early");
        let got = f.recv_until(img(1), Instant::now() + Duration::from_secs(2));
        assert_eq!(got, Some("hi"));
    }

    #[test]
    fn self_sends_skip_wire_latency() {
        let model = NetworkModel { latency: Duration::from_secs(3600), ..NetworkModel::instant() };
        let f: Arc<Fabric<u8>> = Fabric::new(2, model, false);
        f.send(img(1), img(1), 0, 5);
        assert_eq!(f.try_recv(img(1)), Some(5));
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let f: Arc<Fabric<u8>> = Fabric::new(2, NetworkModel::instant(), false);
        f.send(img(0), img(1), 100, 1);
        f.send(img(0), img(1), 20, 2);
        assert_eq!(f.stats().messages(), 2);
        assert_eq!(f.stats().bytes(), 120);
    }

    #[test]
    fn backpressure_blocks_sender_until_receiver_drains() {
        let model = NetworkModel {
            inbox_capacity: Some(2),
            backpressure_stall: Duration::from_micros(100),
            ..NetworkModel::instant()
        };
        let f = Fabric::new(2, model, false);
        f.send(img(0), img(1), 0, 0u8);
        f.send(img(0), img(1), 0, 1u8);
        assert_eq!(f.inbox_depth(img(1)), 2);
        // A third send stalls until the receiver pops one message.
        let f2 = Arc::clone(&f);
        let sender = std::thread::spawn(move || {
            f2.send(img(0), img(1), 0, 2u8);
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(!sender.is_finished(), "sender should be stalled");
        assert_eq!(f.try_recv(img(1)), Some(0));
        sender.join().unwrap();
        assert!(f.stats().backpressure_stalls() > 0);
        assert_eq!(f.try_recv(img(1)), Some(1));
        assert_eq!(f.try_recv(img(1)), Some(2));
    }

    #[test]
    fn non_fifo_can_reorder_same_pair_messages() {
        // With reordering enabled and a measurable latency, *some* pair of
        // consecutive sends ends up with inverted deadlines. We test
        // deterministically: jitter is a pure function of the global
        // sequence number, so two specific messages reorder reproducibly.
        let model = NetworkModel { latency: Duration::from_millis(4), ..NetworkModel::instant() };
        let f: Arc<Fabric<u32>> = Fabric::new(2, model, true);
        for i in 0..32 {
            f.send(img(0), img(1), 0, i);
        }
        let deadline = Instant::now() + Duration::from_secs(2);
        let mut order = Vec::new();
        while order.len() < 32 {
            if let Some(m) = f.recv_until(img(1), deadline) {
                order.push(m);
            } else {
                panic!("timed out draining");
            }
        }
        let sorted: Vec<u32> = (0..32).collect();
        assert_ne!(order, sorted, "expected at least one reordering");
        let mut check = order.clone();
        check.sort_unstable();
        assert_eq!(check, sorted, "no loss, no duplication");
    }

    // ------------------------------------------------------------------
    // Chaos layer
    // ------------------------------------------------------------------

    fn drain_reliable(
        f: &Arc<Fabric<u32>>,
        at: ImageId,
        expect: usize,
        patience: Duration,
    ) -> Vec<u32> {
        let deadline = Instant::now() + patience;
        let mut got = Vec::new();
        while got.len() < expect && Instant::now() < deadline {
            if let Some(m) = f.recv_until(at, Instant::now() + Duration::from_millis(5)) {
                got.push(m);
            }
        }
        got
    }

    /// The sender must keep polling (acks land in *its* inbox) for the
    /// protocol to converge; this helper pumps both sides.
    fn pump_sender(f: &Arc<Fabric<u32>>, sender: ImageId) {
        while f.try_recv(sender).is_some() {}
    }

    #[test]
    fn heavy_drop_rate_still_delivers_every_message_once() {
        let plan = FaultPlan::uniform_drop(0xC0FFEE, 0.4).with_dup(0.2);
        let f: Arc<Fabric<u32>> =
            Fabric::with_faults(2, NetworkModel::instant(), false, plan, RetryPolicy::aggressive());
        let total = 200u32;
        for i in 0..total {
            f.send(img(0), img(1), 4, i);
        }
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut got = Vec::new();
        while got.len() < total as usize {
            assert!(Instant::now() < deadline, "lost messages: got {}", got.len());
            if let Some(m) = f.recv_until(img(1), Instant::now() + Duration::from_millis(2)) {
                got.push(m);
            }
            pump_sender(&f, img(0)); // sender consumes acks, pumps retries
        }
        got.sort_unstable();
        assert_eq!(got, (0..total).collect::<Vec<_>>(), "exactly-once violated");
        assert!(f.stats().wire_drops() > 0, "plan should have dropped something");
        assert!(f.stats().retries() > 0, "drops must have forced retries");
        assert_eq!(f.stats().delivered(), total as u64);
        // The last acks may still be in flight; pump both sides until the
        // sender's outstanding queue converges to empty.
        while f.retry_backlog(img(0)) > 0 {
            assert!(Instant::now() < deadline, "acks never converged");
            pump_sender(&f, img(0));
            while f.try_recv(img(1)).is_some() {}
            std::thread::yield_now();
        }
    }

    #[test]
    fn duplicates_are_filtered_not_double_counted() {
        let plan = FaultPlan::none(9).with_dup(1.0); // duplicate everything
        let f: Arc<Fabric<u32>> =
            Fabric::with_faults(2, NetworkModel::instant(), false, plan, RetryPolicy::aggressive());
        for i in 0..50 {
            f.send(img(0), img(1), 0, i);
        }
        let got = drain_reliable(&f, img(1), 50, Duration::from_secs(10));
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // Nothing further surfaces even though the wire carried ~2x.
        assert_eq!(f.try_recv(img(1)), None);
        assert!(f.stats().dups_discarded() > 0);
        assert_eq!(f.stats().delivered(), 50);
    }

    #[test]
    fn total_drop_link_exhausts_retry_budget() {
        let plan = FaultPlan::none(1).with_link(0, 1, 1.0); // black hole
        let retry = RetryPolicy {
            ack_timeout: Duration::from_micros(200),
            backoff: 2,
            max_timeout: Duration::from_millis(1),
            max_retries: 3,
        };
        let horizon = retry.exhaustion_horizon();
        let f: Arc<Fabric<u32>> =
            Fabric::with_faults(2, NetworkModel::instant(), false, plan, retry);
        f.send(img(0), img(1), 0, 7);
        assert_eq!(f.retry_backlog(img(0)), 1);
        let deadline = Instant::now() + horizon * 4 + Duration::from_millis(50);
        while f.stats().retries_exhausted() == 0 {
            assert!(Instant::now() < deadline, "budget never exhausted");
            f.wait_activity(img(0), Instant::now() + Duration::from_micros(100));
        }
        assert_eq!(f.retry_backlog(img(0)), 0, "abandoned message must leave the queue");
        assert_eq!(f.stats().retries(), 3, "exactly max_retries retransmissions");
        assert_eq!(f.try_recv(img(1)), None, "nothing ever crossed the link");
    }

    #[test]
    fn ack_loss_causes_retries_but_no_duplicate_delivery() {
        // Reverse link (acks) is a black hole; data link is clean.
        let plan = FaultPlan::none(4).with_link(1, 0, 1.0);
        let retry = RetryPolicy {
            ack_timeout: Duration::from_micros(200),
            backoff: 2,
            max_timeout: Duration::from_millis(1),
            max_retries: 4,
        };
        let f: Arc<Fabric<u32>> =
            Fabric::with_faults(2, NetworkModel::instant(), false, plan, retry);
        f.send(img(0), img(1), 0, 11);
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut surfaced = Vec::new();
        while f.stats().retries_exhausted() == 0 {
            assert!(Instant::now() < deadline, "sender never gave up");
            if let Some(m) = f.try_recv(img(1)) {
                surfaced.push(m);
            }
            f.wait_activity(img(0), Instant::now() + Duration::from_micros(100));
        }
        // Give any in-flight retransmits time to land, then re-drain.
        std::thread::sleep(Duration::from_millis(5));
        while let Some(m) = f.try_recv(img(1)) {
            surfaced.push(m);
        }
        assert_eq!(surfaced, vec![11], "dedup must absorb every retransmission");
        assert!(f.stats().dups_discarded() > 0, "retransmits should have arrived");
        assert_eq!(f.stats().delivered(), 1);
    }

    #[test]
    fn stall_window_defers_delivery_until_it_closes() {
        let stall = Duration::from_millis(40);
        let plan = FaultPlan::none(2).with_stall(1, Duration::ZERO, stall);
        let f: Arc<Fabric<u32>> = Fabric::with_faults(
            2,
            NetworkModel::instant(),
            false,
            plan,
            RetryPolicy { ack_timeout: Duration::from_secs(1), ..RetryPolicy::default() },
        );
        let t0 = Instant::now();
        f.send(img(0), img(1), 0, 3);
        assert_eq!(f.try_recv(img(1)), None, "stalled image must not see the message yet");
        let got = f.recv_until(img(1), t0 + Duration::from_secs(5));
        assert_eq!(got, Some(3));
        assert!(
            t0.elapsed() >= stall - Duration::from_millis(1),
            "delivery {}µs after send, before the {}ms window closed",
            t0.elapsed().as_micros(),
            stall.as_millis()
        );
    }

    #[test]
    fn chaos_decisions_are_reproducible_across_fabrics() {
        // Same plan + same send order → identical drop/dup counters.
        let run = |seed: u64| {
            let plan = FaultPlan::uniform_drop(seed, 0.3).with_dup(0.3);
            let f: Arc<Fabric<u32>> = Fabric::with_faults(
                2,
                NetworkModel::instant(),
                false,
                plan,
                // Ack timeout far beyond the test body: no retransmission
                // ever fires, so wire traffic is exactly the sends.
                RetryPolicy { ack_timeout: Duration::from_secs(60), ..RetryPolicy::default() },
            );
            for i in 0..100 {
                f.send(img(0), img(1), 0, i);
            }
            (f.stats().wire_drops(), f.stats().wire_dups())
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "different seeds should differ somewhere");
    }
}
