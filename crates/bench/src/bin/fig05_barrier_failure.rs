//! **Figure 5** (semantics): why a barrier cannot detect termination.
//!
//! Paper: image p ships f1 to q; f1 ships f2 to r; p enters the barrier
//! once f1 completes, and r may exit the barrier before f2 arrives — so
//! a barrier-based scheme declares termination with work in flight. This
//! harness runs the exact schedule against the barrier strawman (which
//! fails) and against the epoch `finish` detector (which is sound), over
//! a sweep of network delays and transitive-chain depths.

use bench::print_table;
use caf_core::termination::harness::{chain, Harness, SpawnPlan};
use caf_core::termination::EpochDetector;

fn main() {
    let mut rows = Vec::new();
    for depth in [2usize, 3, 5] {
        for exec_delay in [2u64, 5, 20] {
            let mut plan =
                SpawnPlan { net_delay: 1, ack_delay: 1, exec_delay, ..SpawnPlan::default() };
            let targets: Vec<usize> = (1..=depth).collect();
            plan.spawn(0, chain(&targets));
            let images = depth + 1;

            let barrier = Harness::run_barrier(images, plan.clone());
            let mut h = Harness::new(images, || Box::new(EpochDetector::new(true)));
            let waves = h.run(plan); // panics if finish were unsound

            rows.push(vec![
                depth.to_string(),
                exec_delay.to_string(),
                barrier.outstanding_at_declaration.to_string(),
                if barrier.outstanding_at_declaration > 0 { "WRONG" } else { "ok" }.to_string(),
                waves.to_string(),
                format!("≤ {}", depth + 1),
            ]);
        }
    }
    print_table(
        "Fig. 5: barrier-based detection vs finish on transitive spawn chains",
        &[
            "chain L",
            "exec delay",
            "outstanding at barrier exit",
            "barrier verdict",
            "finish waves",
            "Theorem 1 bound",
        ],
        &rows,
    );
    println!(
        "The barrier declares termination with shipped functions still outstanding on every \
         schedule above; finish never does (the harness asserts soundness) and stays within \
         the L+1 wave bound."
    );
}
