//! Paper-scale chaos runs: the fault model executed in virtual time.
//!
//! The threaded runtime can only chaos-test a handful of images; this
//! model replays the *same* protocol stack — [`FaultPlan`] fault rolls,
//! ack/retry reliable delivery with [`SeqTracker`] dedup, the strict
//! epoch termination detector via [`FinishSim`], and (when engaged) the
//! fail-stop [`FailureDetectorState`] — as discrete events, so the
//! exactly-once, never-terminate-early, and every-survivor-observes
//! properties can be checked at the paper's 4K+ image counts in
//! milliseconds.
//!
//! One `finish` block is simulated: every image issues its spawns, the
//! wire drops/duplicates/delays them per the plan, the reliable layer
//! acks and retransmits within its budget, and waves run until the
//! detector's consistent cut is clean. A plan that defeats the retry
//! budget leaves the detector permanently unready, the event queue
//! drains, and the run reports [`ChaosOutcome::Stalled`] — the virtual
//! twin of the runtime watchdog's `RuntimeError::Stalled`.
//!
//! With [`ChaosSimConfig::failure`] engaged the model mirrors the
//! threaded fabric's fail-stop layer: every image heartbeats its ring
//! monitor (image `i` watches `i+1`, `O(p)` links total), a scheduled
//! `Crash { image, at_seq }` fires on the same global wire-sequence
//! keying as `caf-net`, silence (or retry exhaustion) drives the
//! suspect → confirm two-phase detector, and the first confirmation
//! broadcasts a team-wide `Down` message over the reliable sublayer.
//! Every survivor that learns the death poisons its epoch detector; the
//! poisoned wave closes without the victim and the run reports
//! [`ChaosOutcome::Failed`] — the virtual twin of
//! `RuntimeError::ImageFailed` — naming the victim, the detection
//! latency, and exactly which images observed the failure.

use std::collections::HashMap;
use std::time::Duration;

use caf_core::failure::{FailureDetectorState, FailureEvent, FailureParams};
use caf_core::fault::{FaultPlan, RetryPolicy, SeqTracker};
use caf_core::ids::Parity;
use caf_core::rng::SplitMix64;
use caf_core::termination::WaveDecision;
use caf_des::{ChaosWire, Engine, SimNet};

use crate::finish_sim::FinishSim;

/// Simulated size of a protocol acknowledgement (mirrors `caf-net`).
const ACK_BYTES: usize = 16;
/// Simulated size of a heartbeat or `Down` control message.
const CTRL_BYTES: usize = 16;
/// Every simulated image runs at its first incarnation (restart is not
/// modelled here; the number exists so posthumous filtering exercises
/// the same `accepts` check as the threaded fabric).
const FIRST_INCARNATION: u64 = 1;

/// Parameters of one simulated chaos run.
#[derive(Debug, Clone)]
pub struct ChaosSimConfig {
    /// Team size (the interesting regime is 4K+).
    pub images: usize,
    /// Spawns issued per image inside the `finish` block.
    pub msgs_per_image: usize,
    /// Payload bytes per spawn.
    pub bytes: usize,
    /// Execution cost of a spawn's handler at the target.
    pub work_ns: u64,
    /// Interconnect model (jitter makes delivery non-FIFO).
    pub net: SimNet,
    /// The fault schedule; its seed also drives network jitter.
    pub plan: FaultPlan,
    /// Ack/retransmit policy answering the plan.
    pub retry: RetryPolicy,
    /// Fail-stop failure detection (ring heartbeats + suspect/confirm),
    /// when engaged. `None` keeps the legacy behaviour: a dead image
    /// manifests only as a stall.
    pub failure: Option<FailureParams>,
}

impl ChaosSimConfig {
    /// Defaults: 2 spawns per image, 64-byte payloads, a jittery
    /// (non-FIFO) Gemini-class network, no faults, no failure detection.
    pub fn new(images: usize) -> Self {
        ChaosSimConfig {
            images,
            msgs_per_image: 2,
            bytes: 64,
            work_ns: 500,
            net: SimNet::from_model(&caf_core::config::NetworkModel::gemini_like(), true),
            plan: FaultPlan::none(0x5EED),
            retry: RetryPolicy::default(),
            failure: None,
        }
    }
}

/// How the run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosOutcome {
    /// The detector terminated the `finish` — every spawn was delivered
    /// exactly once and acknowledged.
    Terminated {
        /// Virtual time of termination.
        sim_ns: u64,
        /// Reduction waves needed.
        waves: usize,
    },
    /// The retry budget was exhausted somewhere; the detector can never
    /// become ready and the event queue drained without termination.
    Stalled {
        /// Spawns never acknowledged back to their senders.
        undelivered: u64,
    },
    /// An image was confirmed dead: the survivors poisoned their epoch
    /// detectors and collectively aborted the `finish` — the virtual
    /// twin of `RuntimeError::ImageFailed`.
    Failed {
        /// Virtual time when the survivors' poisoned wave closed (the
        /// collective abort), or of the last event if the wave could
        /// not close.
        sim_ns: u64,
        /// Virtual time from the crash firing on the wire to the first
        /// confirmation. `None` when no crash fault fired (a peer
        /// declared dead on timeout evidence alone has no known
        /// crash origin).
        detect_ns: Option<u64>,
        /// The image confirmed dead.
        victim: usize,
        /// Its incarnation at death.
        incarnation: u64,
    },
}

/// Counters from one simulated chaos run. Pure function of the config —
/// two runs with equal configs produce equal reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSimReport {
    /// Outcome of the run.
    pub outcome: ChaosOutcome,
    /// Spawns issued.
    pub sent: u64,
    /// Fresh (first-copy) spawn deliveries at receivers.
    pub delivered: u64,
    /// Redundant copies suppressed by sequence dedup (injected
    /// duplicates plus retransmits that raced their ack).
    pub dups_suppressed: u64,
    /// Wire transmissions the plan dropped (data and acks).
    pub wire_drops: u64,
    /// Retransmissions performed.
    pub retries: u64,
    /// Messages abandoned after the retry budget.
    pub retries_exhausted: u64,
    /// Heartbeats put on the wire.
    pub heartbeats: u64,
    /// Transmissions destroyed because an endpoint was crashed.
    pub crash_drops: u64,
    /// Arrivals discarded by the posthumous incarnation filter.
    pub posthumous_drops: u64,
    /// Suspicions raised across every image's detector.
    pub suspects: u64,
    /// Suspicions later refuted by a life sign (false positives).
    pub false_suspects: u64,
    /// Images that observed the death (poisoned their finish), ascending.
    pub observers: Vec<usize>,
}

/// What a reliably-delivered message carries.
#[derive(Debug, Clone, Copy)]
enum Payload {
    /// An asynchronous spawn, counted by the termination detector.
    Spawn { tag: Parity },
    /// A death notice — control traffic outside the finish epochs.
    Down { victim: usize, incarnation: u64 },
}

enum Ev {
    /// Sender puts (another) copy of `link_seq` on the wire.
    Xmit { from: usize, to: usize, link_seq: u64 },
    /// A copy arrives at `to`.
    Data { from: usize, to: usize, link_seq: u64, payload: Payload },
    /// An acknowledgement arrives back at `to` (the original sender).
    Ack { from: usize, to: usize, link_seq: u64 },
    /// A delivered spawn's handler finishes at `img`.
    HandlerDone { img: usize, tag: Parity },
    /// The sender's ack timer for `link_seq` expires.
    RetryTimeout { from: usize, to: usize, link_seq: u64 },
    /// The open reduction wave closes.
    WaveComplete,
    /// `img` puts a heartbeat to its ring monitor on the wire (recurring).
    HeartbeatSend { img: usize },
    /// A heartbeat from `from` lands at its monitor `to`.
    HeartbeatArrive { to: usize, from: usize },
    /// `img` advances its failure detector's deadlines (recurring).
    DetectorTick { img: usize },
}

impl Ev {
    /// Protocol progress (as opposed to recurring maintenance): while any
    /// of these are pending the heartbeat/tick chains keep running.
    fn is_live(&self) -> bool {
        !matches!(
            self,
            Ev::HeartbeatSend { .. } | Ev::HeartbeatArrive { .. } | Ev::DetectorTick { .. }
        )
    }
}

struct Pending {
    payload: Payload,
    attempts: u32,
}

struct ChaosSim {
    cfg: ChaosSimConfig,
    wire: ChaosWire,
    rng: SplitMix64,
    engine: Engine<Ev>,
    fsim: FinishSim,
    /// `trackers[receiver][sender]` — exactly-once filter per link.
    trackers: Vec<Vec<SeqTracker>>,
    outstanding: HashMap<(usize, usize, u64), Pending>,
    /// Next per-link sequence number (spawns and Down notices share the
    /// space, exactly like the fabric's per-sender counters).
    next_link_seq: Vec<Vec<u64>>,
    wire_seq: u64,
    acked: u64,
    /// The crash schedule, copied out of the plan.
    crash_sched: Vec<(usize, u64)>,
    crashed: Vec<bool>,
    /// Virtual time the (first) crash fired — detection-latency base.
    crashed_at_ns: Option<u64>,
    /// One failure detector per image when `cfg.failure` is engaged.
    detectors: Vec<FailureDetectorState>,
    hb_period_ns: u64,
    /// How long maintenance (heartbeats/ticks) outlives the last live
    /// event: one detection horizon, so a pending suspicion can still
    /// confirm, then the queue is allowed to drain.
    horizon_ns: u64,
    /// First confirmed death `(victim, incarnation)`.
    down: Option<(usize, u64)>,
    first_confirm_ns: Option<u64>,
    down_broadcast: bool,
    observed: Vec<bool>,
    poisoned_close_ns: Option<u64>,
    live_pending: usize,
    idle_deadline_ns: u64,
    report: ChaosSimReport,
}

impl ChaosSim {
    fn new(cfg: ChaosSimConfig) -> Self {
        let p = cfg.images;
        let wire = ChaosWire::new(cfg.plan.clone(), cfg.retry.clone());
        let rng = SplitMix64::new(cfg.plan.seed ^ 0xC4A0_5EED);
        let crash_sched: Vec<(usize, u64)> =
            cfg.plan.crashes.iter().map(|c| (c.image, c.at_seq)).collect();
        let detectors: Vec<FailureDetectorState> = match &cfg.failure {
            Some(params) => (0..p)
                .map(|i| {
                    let mut d = FailureDetectorState::new(params.clone());
                    if p > 1 {
                        // Ring monitoring: O(p) watched links in total.
                        d.monitor((i + 1) % p, Duration::ZERO);
                    }
                    d
                })
                .collect(),
            None => Vec::new(),
        };
        let (hb_period_ns, horizon_ns) = match &cfg.failure {
            Some(f) => (
                (f.heartbeat_period.as_nanos() as u64).max(1),
                (f.detection_horizon() + f.heartbeat_period * 2).as_nanos() as u64,
            ),
            None => (0, 0),
        };
        ChaosSim {
            wire,
            rng,
            engine: Engine::new(),
            fsim: FinishSim::new(p, true),
            trackers: (0..p).map(|_| vec![SeqTracker::default(); p]).collect(),
            outstanding: HashMap::new(),
            next_link_seq: vec![vec![0u64; p]; p],
            wire_seq: 0,
            acked: 0,
            crash_sched,
            crashed: vec![false; p],
            crashed_at_ns: None,
            detectors,
            hb_period_ns,
            horizon_ns,
            down: None,
            first_confirm_ns: None,
            down_broadcast: false,
            observed: vec![false; p],
            poisoned_close_ns: None,
            live_pending: 0,
            idle_deadline_ns: 0,
            report: ChaosSimReport {
                outcome: ChaosOutcome::Stalled { undelivered: 0 },
                sent: 0,
                delivered: 0,
                dups_suppressed: 0,
                wire_drops: 0,
                retries: 0,
                retries_exhausted: 0,
                heartbeats: 0,
                crash_drops: 0,
                posthumous_drops: 0,
                suspects: 0,
                false_suspects: 0,
                observers: Vec::new(),
            },
            cfg,
        }
    }

    fn failure_on(&self) -> bool {
        !self.detectors.is_empty()
    }

    fn now_d(&self) -> Duration {
        Duration::from_nanos(self.engine.now())
    }

    fn schedule_live(&mut self, delay: u64, ev: Ev) {
        self.live_pending += 1;
        self.engine.schedule(delay, ev);
    }

    fn schedule_live_at(&mut self, at: u64, ev: Ev) {
        self.live_pending += 1;
        self.engine.schedule_at(at, ev);
    }

    /// Whether recurring maintenance (heartbeats, detector ticks) should
    /// keep itself alive: protocol work is pending, or the post-idle
    /// grace window (one detection horizon) is still open.
    fn maintenance_live(&self) -> bool {
        self.live_pending > 0 || self.engine.now() < self.idle_deadline_ns
    }

    /// Scheduled crashes fire on the first transmission at or past their
    /// trigger sequence — the same wire-seq keying the threaded fabric
    /// uses, so a crash point reproduces across substrates.
    fn arm_crashes(&mut self, seq: u64) {
        for k in 0..self.crash_sched.len() {
            let (image, at_seq) = self.crash_sched[k];
            if seq >= at_seq && !self.crashed[image] {
                self.crashed[image] = true;
                if self.crashed_at_ns.is_none() {
                    self.crashed_at_ns = Some(self.engine.now());
                }
            }
        }
    }

    /// Puts one copy of an outstanding message on the wire: rolls its
    /// fault decision, schedules the arrival(s), and arms the ack timer.
    fn transmit(&mut self, from: usize, to: usize, link_seq: u64) {
        let Some(p) = self.outstanding.get(&(from, to, link_seq)) else { return };
        let (payload, attempts) = (p.payload, p.attempts);
        let seq = self.wire_seq;
        self.wire_seq += 1;
        self.arm_crashes(seq);
        // Fail-stop: a dead image neither injects nor receives; the
        // arming transmission itself is destroyed. A live sender still
        // re-arms its ack timer — exhausting the budget against a dead
        // target is the retry layer's detection signal.
        if self.crashed[from] || self.crashed[to] {
            self.report.crash_drops += 1;
            if !self.crashed[from] {
                self.schedule_live(
                    self.wire.timeout_ns(attempts),
                    Ev::RetryTimeout { from, to, link_seq },
                );
            }
            return;
        }
        let d = self.wire.decide(from, to, seq);
        let now = self.engine.now();
        let extra = self.wire.spike_ns(d) + self.wire.stall_extra_ns(from, to, now);
        let copies = match (d.drop, d.duplicate) {
            (true, false) => 0,
            (false, false) | (true, true) => 1, // dup of a drop: one survives
            (false, true) => 2,
        };
        if d.drop {
            self.report.wire_drops += 1;
        }
        for _ in 0..copies {
            let delay = self.cfg.net.delivery_delay(self.cfg.bytes, &mut self.rng) + extra;
            self.schedule_live(delay, Ev::Data { from, to, link_seq, payload });
        }
        self.schedule_live(self.wire.timeout_ns(attempts), Ev::RetryTimeout { from, to, link_seq });
    }

    /// Sends an acknowledgement, itself subject to the fault plan.
    fn send_ack(&mut self, receiver: usize, sender: usize, link_seq: u64) {
        let seq = self.wire_seq;
        self.wire_seq += 1;
        self.arm_crashes(seq);
        if self.crashed[receiver] || self.crashed[sender] {
            self.report.crash_drops += 1;
            return;
        }
        let d = self.wire.decide(receiver, sender, seq);
        if d.drop {
            self.report.wire_drops += 1;
            return;
        }
        let extra =
            self.wire.spike_ns(d) + self.wire.stall_extra_ns(receiver, sender, self.engine.now());
        let delay = self.cfg.net.delivery_delay(ACK_BYTES, &mut self.rng) + extra;
        self.schedule_live(delay, Ev::Ack { from: receiver, to: sender, link_seq });
    }

    /// One heartbeat from `img` to its ring monitor; reschedules itself
    /// while maintenance is live. A crashed image falls silent — that
    /// silence *is* the detection signal.
    fn heartbeat(&mut self, img: usize) {
        if self.crashed[img] {
            return;
        }
        let p = self.cfg.images;
        let to = (img + p - 1) % p; // my monitor is my ring predecessor
        let seq = self.wire_seq;
        self.wire_seq += 1;
        self.arm_crashes(seq);
        if self.crashed[img] {
            // The heartbeat armed its own sender's crash point.
            self.report.crash_drops += 1;
            return;
        }
        self.report.heartbeats += 1;
        if self.crashed[to] {
            self.report.crash_drops += 1;
        } else {
            let d = self.wire.decide(img, to, seq);
            if d.drop {
                self.report.wire_drops += 1;
            } else {
                let extra =
                    self.wire.spike_ns(d) + self.wire.stall_extra_ns(img, to, self.engine.now());
                let delay = self.cfg.net.delivery_delay(CTRL_BYTES, &mut self.rng) + extra;
                self.engine.schedule(delay, Ev::HeartbeatArrive { to, from: img });
            }
        }
        if self.maintenance_live() {
            self.engine.schedule(self.hb_period_ns, Ev::HeartbeatSend { img });
        }
    }

    /// `observer`'s detector confirmed `peer` dead: record the death,
    /// broadcast it (first confirmation only), and poison locally.
    fn on_confirmed(&mut self, observer: usize, peer: usize, incarnation: u64) {
        if self.down.is_none() {
            self.down = Some((peer, incarnation));
            self.first_confirm_ns = Some(self.engine.now());
        }
        if !self.down_broadcast {
            self.down_broadcast = true;
            // Team-wide death notice over the same ack/retry reliable
            // sublayer as spawns (control traffic: no epoch accounting).
            for other in 0..self.cfg.images {
                if other == observer || other == peer {
                    continue;
                }
                let link_seq = self.next_link_seq[observer][other];
                self.next_link_seq[observer][other] += 1;
                self.outstanding.insert(
                    (observer, other, link_seq),
                    Pending { payload: Payload::Down { victim: peer, incarnation }, attempts: 1 },
                );
                self.schedule_live(
                    self.cfg.net.injection_ns,
                    Ev::Xmit { from: observer, to: other, link_seq },
                );
            }
        }
        self.observe_death(observer, peer, incarnation);
    }

    /// `img` learns (first-hand or by broadcast) that `victim` is dead:
    /// poison its epoch detector, install the posthumous filter, and —
    /// on the team's first observation — drop the victim from wave
    /// membership.
    fn observe_death(&mut self, img: usize, victim: usize, incarnation: u64) {
        if self.crashed[img] || self.observed[img] {
            return;
        }
        self.observed[img] = true;
        let now = self.now_d();
        self.detectors[img].mark_dead(victim, incarnation, now);
        self.fsim.poison(img, victim);
        if self.fsim.mark_dead(victim) {
            let cost = self.cfg.net.allreduce_cost(self.cfg.images, &mut self.rng);
            self.schedule_live(cost, Ev::WaveComplete);
        }
        self.try_wave(img);
    }

    /// Attempts wave entry for `img`; the last entrant prices the
    /// allreduce and schedules the wave's completion.
    fn try_wave(&mut self, img: usize) {
        if self.crashed[img] {
            return;
        }
        if self.fsim.try_enter(img, self.engine.now()) {
            let cost = self.cfg.net.allreduce_cost(self.cfg.images, &mut self.rng);
            self.schedule_live(cost, Ev::WaveComplete);
        }
    }

    fn run(mut self) -> ChaosSimReport {
        let p = self.cfg.images;
        // The finish body: every image issues its spawns round-robin over
        // the other images, staggered by the injection overhead.
        for img in 0..p {
            for k in 0..self.cfg.msgs_per_image {
                if p == 1 {
                    break;
                }
                let to = (img + 1 + k % (p - 1)) % p;
                let link_seq = self.next_link_seq[img][to];
                self.next_link_seq[img][to] += 1;
                let tag = self.fsim.on_send(img);
                self.outstanding.insert(
                    (img, to, link_seq),
                    Pending { payload: Payload::Spawn { tag }, attempts: 1 },
                );
                self.report.sent += 1;
                self.schedule_live_at(
                    k as u64 * self.cfg.net.injection_ns,
                    Ev::Xmit { from: img, to, link_seq },
                );
            }
        }
        if self.failure_on() && p > 1 {
            for img in 0..p {
                self.engine.schedule(self.hb_period_ns, Ev::HeartbeatSend { img });
                self.engine.schedule(self.hb_period_ns, Ev::DetectorTick { img });
            }
        }
        // Spawns issued: every image is now idle and bids for the wave
        // (senders are held back by their own unacked messages).
        for img in 0..p {
            self.try_wave(img);
        }

        let mut terminated_at = None;
        let mut last_now = 0;
        while let Some((now, ev)) = self.engine.pop() {
            last_now = now;
            if ev.is_live() {
                self.live_pending -= 1;
                if self.live_pending == 0 {
                    // Maintenance outlives the last protocol event by one
                    // detection horizon, then the queue drains.
                    self.idle_deadline_ns = now + self.horizon_ns;
                }
            }
            match ev {
                Ev::Xmit { from, to, link_seq } => self.transmit(from, to, link_seq),
                Ev::Data { from, to, link_seq, payload } => {
                    if self.crashed[to] {
                        self.report.crash_drops += 1;
                        continue;
                    }
                    if self.failure_on() {
                        let now_d = self.now_d();
                        // Posthumous filter: once `to` knows `from` is
                        // dead, late copies are discarded un-acked.
                        if !self.detectors[to].accepts(from, FIRST_INCARNATION) {
                            self.report.posthumous_drops += 1;
                            continue;
                        }
                        // Any application message is a life sign.
                        self.detectors[to].on_life_sign(from, FIRST_INCARNATION, now_d);
                    }
                    // Always re-ack: the previous ack may have been lost,
                    // and only an ack stops the sender's timer.
                    self.send_ack(to, from, link_seq);
                    if self.trackers[to][from].note(link_seq) {
                        match payload {
                            Payload::Spawn { tag } => {
                                self.report.delivered += 1;
                                self.fsim.on_receive(to, tag);
                                self.schedule_live(
                                    self.cfg.work_ns,
                                    Ev::HandlerDone { img: to, tag },
                                );
                            }
                            Payload::Down { victim, incarnation } => {
                                self.observe_death(to, victim, incarnation);
                            }
                        }
                    } else {
                        self.report.dups_suppressed += 1;
                    }
                }
                Ev::Ack { from, to, link_seq } => {
                    if self.crashed[to] {
                        self.report.crash_drops += 1;
                        continue;
                    }
                    if self.failure_on() {
                        let now_d = self.now_d();
                        if !self.detectors[to].accepts(from, FIRST_INCARNATION) {
                            self.report.posthumous_drops += 1;
                            continue;
                        }
                        self.detectors[to].on_life_sign(from, FIRST_INCARNATION, now_d);
                    }
                    // First ack wins; re-acks of a suppressed duplicate
                    // find the slot already empty.
                    if let Some(pend) = self.outstanding.remove(&(to, from, link_seq)) {
                        if matches!(pend.payload, Payload::Spawn { .. }) {
                            self.acked += 1;
                            self.fsim.on_delivered(to);
                        }
                        self.try_wave(to);
                    }
                }
                Ev::HandlerDone { img, tag } => {
                    if self.crashed[img] {
                        // The handler died with its image: the spawn
                        // never completes anywhere.
                        continue;
                    }
                    self.fsim.on_complete(img, tag);
                    self.try_wave(img);
                }
                Ev::RetryTimeout { from, to, link_seq } => {
                    let Some(pend) = self.outstanding.get_mut(&(from, to, link_seq)) else {
                        continue; // already acknowledged
                    };
                    if self.crashed[from] {
                        continue; // the dead retransmit nothing
                    }
                    if pend.attempts > self.wire.max_retries() {
                        self.outstanding.remove(&(from, to, link_seq));
                        self.report.retries_exhausted += 1;
                        if self.failure_on() && from != to {
                            // Budget exhaustion is a strong death hint:
                            // suspect immediately instead of waiting out
                            // the silence deadline.
                            let now_d = self.now_d();
                            self.detectors[from].monitor(to, now_d);
                            self.detectors[from].on_retry_exhausted(to, now_d);
                        }
                    } else {
                        pend.attempts += 1;
                        self.report.retries += 1;
                        self.transmit(from, to, link_seq);
                    }
                }
                Ev::WaveComplete => match self.fsim.complete_wave() {
                    WaveDecision::Terminated => {
                        terminated_at = Some(now);
                        break;
                    }
                    WaveDecision::Poisoned => {
                        // The survivors collectively aborted; keep
                        // draining so in-flight Down copies settle and
                        // every survivor records its observation.
                        self.poisoned_close_ns = Some(now);
                    }
                    WaveDecision::Continue => {
                        for img in 0..p {
                            self.try_wave(img);
                        }
                    }
                },
                Ev::HeartbeatSend { img } => self.heartbeat(img),
                Ev::HeartbeatArrive { to, from } => {
                    if !self.crashed[to] {
                        let now_d = self.now_d();
                        if !self.detectors[to].on_life_sign(from, FIRST_INCARNATION, now_d) {
                            self.report.posthumous_drops += 1;
                        }
                    }
                }
                Ev::DetectorTick { img } => {
                    if !self.crashed[img] {
                        let now_d = self.now_d();
                        for fe in self.detectors[img].tick(now_d) {
                            if let FailureEvent::Confirmed { peer, incarnation, .. } = fe {
                                self.on_confirmed(img, peer, incarnation);
                            }
                        }
                    }
                    if self.maintenance_live() {
                        self.engine.schedule(self.hb_period_ns, Ev::DetectorTick { img });
                    }
                }
            }
        }

        self.report.observers = (0..p).filter(|&i| self.observed[i]).collect();
        self.report.suspects = self.detectors.iter().map(|d| d.suspects_raised()).sum();
        self.report.false_suspects = self.detectors.iter().map(|d| d.false_suspects()).sum();
        self.report.outcome = if let Some((victim, incarnation)) = self.down {
            let detect_ns = match (self.first_confirm_ns, self.crashed_at_ns) {
                (Some(confirmed), Some(fired)) => Some(confirmed.saturating_sub(fired)),
                _ => None,
            };
            ChaosOutcome::Failed {
                sim_ns: self.poisoned_close_ns.unwrap_or(last_now),
                detect_ns,
                victim,
                incarnation,
            }
        } else if let Some(sim_ns) = terminated_at {
            ChaosOutcome::Terminated { sim_ns, waves: self.fsim.waves() }
        } else {
            ChaosOutcome::Stalled { undelivered: self.report.sent - self.acked }
        };
        self.report
    }
}

/// Runs one simulated chaos `finish` and reports what the wire did and
/// whether the detector terminated, stalled, or observed a death.
pub fn run_chaos_sim(cfg: &ChaosSimConfig) -> ChaosSimReport {
    ChaosSim::new(cfg.clone()).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn chaos_cfg(images: usize, seed: u64, drop_p: f64, dup_p: f64) -> ChaosSimConfig {
        let mut cfg = ChaosSimConfig::new(images);
        cfg.plan = FaultPlan::uniform_drop(seed, drop_p).with_dup(dup_p);
        cfg
    }

    #[test]
    fn identical_configs_produce_identical_reports() {
        let cfg = chaos_cfg(256, 0xD15EA5E, 0.05, 0.02);
        assert_eq!(run_chaos_sim(&cfg), run_chaos_sim(&cfg));
    }

    #[test]
    fn different_seeds_produce_different_schedules() {
        let a = run_chaos_sim(&chaos_cfg(256, 1, 0.05, 0.02));
        let b = run_chaos_sim(&chaos_cfg(256, 2, 0.05, 0.02));
        assert_ne!(
            (a.wire_drops, a.retries, a.dups_suppressed),
            (b.wire_drops, b.retries, b.dups_suppressed)
        );
    }

    #[test]
    fn clean_run_at_4096_images_terminates_exactly_once() {
        let cfg = ChaosSimConfig::new(4096);
        let r = run_chaos_sim(&cfg);
        assert_eq!(r.sent, 2 * 4096);
        assert_eq!(r.delivered, r.sent, "every spawn delivered");
        assert_eq!(r.dups_suppressed, 0);
        assert_eq!(r.wire_drops, 0);
        assert_eq!(r.retries, 0, "ack timeout must dominate the RTT");
        assert_eq!(r.retries_exhausted, 0);
        match r.outcome {
            ChaosOutcome::Terminated { sim_ns, waves } => {
                assert!(sim_ns > 0);
                assert!(waves >= 1, "at least one wave to detect quiescence");
            }
            other => panic!("clean run must terminate, got {other:?}: {r:?}"),
        }
    }

    #[test]
    fn one_percent_chaos_at_4096_images_is_semantically_invisible() {
        // The ISSUE's acceptance plan at paper scale: 1% drop + 1% dup on
        // a jittery (non-FIFO) wire. The retry layer must restore
        // exactly-once and the detector must still terminate — late, but
        // never early and never double-counting.
        let r = run_chaos_sim(&chaos_cfg(4096, 0xCAFE, 0.01, 0.01));
        assert_eq!(r.sent, 2 * 4096);
        assert_eq!(r.delivered, r.sent, "no spawn lost: {r:?}");
        assert_eq!(r.retries_exhausted, 0, "budget must absorb 1% loss");
        assert!(r.wire_drops > 0, "the plan must actually have fired");
        assert!(r.dups_suppressed > 0, "dedup must have filtered copies");
        assert!(r.retries > 0, "drops must have been repaired by retransmit");
        assert!(
            matches!(r.outcome, ChaosOutcome::Terminated { .. }),
            "chaos within budget must still terminate: {r:?}"
        );
    }

    #[test]
    fn spikes_and_stragglers_slow_the_run_but_not_the_semantics() {
        let mut cfg = ChaosSimConfig::new(512);
        let clean = run_chaos_sim(&cfg);
        cfg.plan = FaultPlan::none(9).with_spikes(0.05, Duration::from_micros(50)).with_stall(
            3,
            Duration::from_micros(1),
            Duration::from_micros(200),
        );
        let slow = run_chaos_sim(&cfg);
        assert_eq!(slow.delivered, slow.sent);
        assert_eq!(slow.retries_exhausted, 0);
        let (
            ChaosOutcome::Terminated { sim_ns: t_clean, .. },
            ChaosOutcome::Terminated { sim_ns: t_slow, .. },
        ) = (clean.outcome, slow.outcome)
        else {
            panic!("both runs must terminate: {clean:?} / {slow:?}");
        };
        assert!(t_slow > t_clean, "spikes+stall must cost time: {t_slow} !> {t_clean}");
    }

    #[test]
    fn black_hole_link_exhausts_the_budget_and_stalls() {
        let mut cfg = ChaosSimConfig::new(8);
        cfg.msgs_per_image = 1;
        cfg.plan = FaultPlan::none(3).with_link(0, 1, 1.0);
        let r = run_chaos_sim(&cfg);
        assert_eq!(r.sent, 8);
        assert_eq!(r.delivered, 7, "only the 0→1 spawn is lost");
        assert_eq!(r.retries, cfg.retry.max_retries as u64);
        assert_eq!(r.retries_exhausted, 1);
        assert_eq!(r.wire_drops, cfg.retry.max_retries as u64 + 1, "every copy eaten");
        assert_eq!(
            r.outcome,
            ChaosOutcome::Stalled { undelivered: 1 },
            "the detector must never terminate over a lost spawn"
        );
    }

    #[test]
    fn crash_at_4096_images_fails_exactly_the_survivors() {
        let mut cfg = ChaosSimConfig::new(4096);
        cfg.plan = FaultPlan::none(0xFA11).with_crash(17, 3000);
        cfg.failure = Some(FailureParams::default());
        let r = run_chaos_sim(&cfg);
        let ChaosOutcome::Failed { sim_ns, detect_ns, victim, incarnation } = r.outcome else {
            panic!("a crashed member must fail the run, never terminate or stall: {r:?}");
        };
        assert_eq!(victim, 17, "the scheduled victim is named");
        assert_eq!(incarnation, FIRST_INCARNATION);
        let lat = detect_ns.expect("the crash fault fired on the wire");
        let params = FailureParams::default();
        let bound = (params.detection_horizon() + params.heartbeat_period * 3).as_nanos() as u64;
        assert!(lat > 0 && lat <= bound, "detection latency {lat} ns beyond {bound} ns");
        assert!(sim_ns >= lat, "the collective abort cannot precede the confirmation");
        let survivors: Vec<usize> = (0..4096).filter(|&i| i != 17).collect();
        assert_eq!(r.observers, survivors, "exactly the survivors observe the failure");
        assert!(r.crash_drops > 0, "the dead image's traffic must be destroyed");
        assert!(r.heartbeats > 0, "idle links must have heartbeated");
        // Deterministic: the same config replays the same death, latency,
        // and observer set.
        assert_eq!(r, run_chaos_sim(&cfg));
    }

    #[test]
    fn crash_verdict_is_stable_across_seeds_under_chaos() {
        // The wire seed changes everything about the schedule — drops,
        // jitter, retries — but never the verdict: same victim, every
        // survivor observes, never Terminated, never Stalled.
        for seed in [1u64, 2, 3, 0xDEAD, 0xBEEF] {
            let mut cfg = ChaosSimConfig::new(256);
            cfg.plan = FaultPlan::uniform_drop(seed, 0.01).with_dup(0.01).with_crash(9, 400);
            cfg.failure = Some(FailureParams::default());
            let r = run_chaos_sim(&cfg);
            match r.outcome {
                ChaosOutcome::Failed { victim, detect_ns, .. } => {
                    assert_eq!(victim, 9, "seed {seed}: wrong victim");
                    assert!(detect_ns.is_some(), "seed {seed}: latency must be measured");
                    assert_eq!(
                        r.observers,
                        (0..256).filter(|&i| i != 9).collect::<Vec<_>>(),
                        "seed {seed}: every survivor must observe the death"
                    );
                }
                other => panic!("seed {seed}: expected Failed, got {other:?}"),
            }
        }
    }

    #[test]
    fn failure_detection_is_invisible_on_a_clean_run() {
        let mut cfg = ChaosSimConfig::new(256);
        cfg.failure = Some(FailureParams::default());
        let r = run_chaos_sim(&cfg);
        assert!(matches!(r.outcome, ChaosOutcome::Terminated { .. }), "{r:?}");
        assert_eq!(r.delivered, r.sent);
        assert_eq!(r.suspects, 0, "a lossless wire must raise no suspicion");
        assert_eq!(r.false_suspects, 0);
        assert_eq!(r.crash_drops, 0);
        assert!(r.observers.is_empty());
    }

    #[test]
    fn one_way_black_hole_is_refuted_not_killed() {
        // Image 0's retries toward 1 exhaust (a strong death hint), but
        // image 1's heartbeats keep flowing on the healthy reverse path:
        // the suspicion must be refuted, not confirmed — the run stalls
        // (like the undetected case) instead of falsely killing a live
        // image.
        let mut cfg = ChaosSimConfig::new(8);
        cfg.msgs_per_image = 1;
        cfg.plan = FaultPlan::none(3).with_link(0, 1, 1.0);
        cfg.failure = Some(FailureParams::default());
        let r = run_chaos_sim(&cfg);
        assert!(matches!(r.outcome, ChaosOutcome::Stalled { .. }), "{r:?}");
        assert!(r.suspects >= 1, "retry exhaustion must raise a suspicion: {r:?}");
        assert!(r.false_suspects >= 1, "the live peer's heartbeats must refute it: {r:?}");
    }
}
