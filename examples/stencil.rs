//! 1-D heat-diffusion stencil with halo exchange — the canonical PGAS
//! communication pattern, written with `copy_async` + events and tuned
//! with `cofence`.
//!
//! Run with: `cargo run --release --example stencil [cells_per_image] [steps]`
//!
//! Each image owns a block of cells plus two ghost cells. Per time step
//! it pushes its boundary cells into its neighbours' ghosts with
//! `copy_async`, overlaps the *interior* update with the halo transfer
//! (the whole point of asynchronous copies), then waits on arrival events
//! and updates its boundary cells. The result is verified against a
//! serial reference to machine precision.

use caf2::{CommMode, CopyEvents, NetworkModel, Runtime, RuntimeConfig};

const ALPHA: f64 = 0.1;

fn serial_reference(n: usize, steps: usize) -> Vec<f64> {
    let mut cur: Vec<f64> = (0..n).map(initial).collect();
    let mut next = cur.clone();
    for _ in 0..steps {
        for i in 0..n {
            let left = if i == 0 { cur[0] } else { cur[i - 1] };
            let right = if i == n - 1 { cur[n - 1] } else { cur[i + 1] };
            next[i] = cur[i] + ALPHA * (left - 2.0 * cur[i] + right);
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

fn initial(i: usize) -> f64 {
    (i as f64 * 0.05).sin() + if i.is_multiple_of(97) { 1.0 } else { 0.0 }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let cells: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(256);
    let steps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(400);
    let p = 4;
    let n = p * cells;

    let cfg = RuntimeConfig {
        comm_mode: CommMode::DedicatedThread,
        network: NetworkModel::slow_cluster(),
        ..RuntimeConfig::default()
    };
    let blocks = Runtime::launch(p, cfg, |img| {
        let w = img.world();
        let rank = img.id().index();
        let me = img.id();
        // Layout: [ghost_left, cell_0 … cell_{cells-1}, ghost_right],
        // double-buffered in one coarray: halves [0, cells+2) and
        // [cells+2, 2(cells+2)).
        let span = cells + 2;
        let field = img.coarray(&w, 2 * span, 0f64);
        field.with_local(me, |seg| {
            for j in 0..cells {
                seg[1 + j] = initial(rank * cells + j);
            }
        });
        img.barrier(&w);

        let halo_in = img.coevent();
        let left = (rank + p - 1) % p;
        let right = (rank + 1) % p;
        for step in 0..steps {
            let cur = (step % 2) * span;
            let nxt = ((step + 1) % 2) * span;
            // Push my boundary cells into the neighbours' ghosts for this
            // step's buffer (they read them to update their boundaries).
            let mut expected = 0;
            if rank > 0 {
                img.copy_async(
                    field.slice(img.image(left), cur + span - 1..cur + span),
                    field.slice(me, cur + 1..cur + 2),
                    CopyEvents::on_dest(halo_in.on(img.image(left))),
                );
            }
            if rank < p - 1 {
                img.copy_async(
                    field.slice(img.image(right), cur..cur + 1),
                    field.slice(me, cur + cells..cur + cells + 1),
                    CopyEvents::on_dest(halo_in.on(img.image(right))),
                );
            }
            if rank > 0 {
                expected += 1;
            }
            if rank < p - 1 {
                expected += 1;
            }
            // Overlap: update the interior while halos are in flight.
            field.with_local(me, |seg| {
                for j in 2..cells {
                    // cells 1..cells-2 interior (indices cur+2..cur+cells)
                    let c = seg[cur + j];
                    seg[nxt + j] = c + ALPHA * (seg[cur + j - 1] - 2.0 * c + seg[cur + j + 1]);
                }
            });
            // Wait for this step's incoming halos, then do the boundary.
            for _ in 0..expected {
                img.event_wait(halo_in.on(me));
            }
            field.with_local(me, |seg| {
                // Global domain boundaries clamp to themselves.
                let gl = if rank == 0 { seg[cur + 1] } else { seg[cur] };
                let gr = if rank == p - 1 { seg[cur + cells] } else { seg[cur + span - 1] };
                let c1 = seg[cur + 1];
                seg[nxt + 1] = c1 + ALPHA * (gl - 2.0 * c1 + seg[cur + 2]);
                let cn = seg[cur + cells];
                seg[nxt + cells] = cn + ALPHA * (seg[cur + cells - 1] - 2.0 * cn + gr);
            });
            // Everyone must have consumed this step's halos before the
            // next step overwrites the source cells.
            img.barrier(&w);
        }
        let finalbuf = (steps % 2) * span;
        field.read(me, finalbuf + 1..finalbuf + 1 + cells)
    });

    let parallel: Vec<f64> = blocks.concat();
    let reference = serial_reference(n, steps);
    let max_err = parallel
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("stencil: {n} cells × {steps} steps on {p} images — max |err| = {max_err:.2e}");
    assert!(max_err < 1e-9, "parallel result diverged from the serial reference");
    println!("verified against serial reference ✓");
}
