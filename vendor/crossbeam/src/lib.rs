//! Offline drop-in replacement for the subset of `crossbeam` this
//! workspace uses (`channel::unbounded`), implemented over
//! `std::sync::mpsc`. The build environment has no registry access.

#![warn(missing_docs)]

/// Multi-producer channels (the `crossbeam::channel` subset we use).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, SendError, Sender, TryRecvError};

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = super::channel::unbounded();
        tx.send(41).unwrap();
        tx.send(1).unwrap();
        assert_eq!(rx.iter().take(2).sum::<i32>(), 42);
    }

    #[test]
    fn hangup_ends_iteration() {
        let (tx, rx) = super::channel::unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.iter().count(), 1);
    }
}
