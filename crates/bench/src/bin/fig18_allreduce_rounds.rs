//! **Figure 18**: allreduce rounds used by `finish` termination
//! detection in UTS.
//!
//! Paper: on 128–2048 cores, the paper's algorithm needs 3–6 allreduce
//! rounds while a variant *without the upper-bound condition* (an image
//! joins the next reduction without waiting for its sent messages to be
//! delivered and its received functions to complete) needs 7–14 — about
//! double. Claims to reproduce: **strict ≤ loose at every scale**, with
//! the loose variant paying roughly 2× more rounds, and absolute counts
//! in the single digits for the strict algorithm.

use bench::{print_table, scaled_tree};
use caf_sim::{run_uts_sim, UtsSimConfig};

fn main() {
    let spec = scaled_tree(11);
    let mut rows = Vec::new();
    for p in [128usize, 256, 512, 1024, 2048] {
        let mut strict_cfg = UtsSimConfig::new(spec, p);
        strict_cfg.node_cost_ns = 20_000;
        let mut loose_cfg = strict_cfg.clone();
        loose_cfg.strict_finish = false;
        let strict = run_uts_sim(strict_cfg);
        let loose = run_uts_sim(loose_cfg);
        assert!(strict.waves <= loose.waves, "p={p}: {} > {}", strict.waves, loose.waves);
        assert_eq!(strict.total_nodes, loose.total_nodes, "both variants count the tree");
        rows.push(vec![
            p.to_string(),
            strict.waves.to_string(),
            loose.waves.to_string(),
            format!("{:.2}", loose.waves as f64 / strict.waves as f64),
        ]);
    }
    print_table(
        "Fig. 18 (simulated UTS, allreduce rounds to detect termination)",
        &["cores", "our algorithm", "w/o upper bound", "ratio"],
        &rows,
    );
    println!(
        "paper: ours 3, 4, 3, 6(1024), 7(2048)-ish vs 7, 10, 8, 13, 14 without the upper \
         bound — the wait-for-quiescence condition halves the rounds."
    );
}
