//! Coarrays: symmetric distributed arrays (paper §II-A purpose *a*).
//!
//! A coarray allocated over a team gives every member one equally sized
//! *segment*. The segment owned by the executing image is accessed
//! directly ([`Coarray::with_local`]); other images' segments are reached
//! through the runtime's communication calls (`copy_async`, shipped
//! functions). The segments live behind per-segment locks in shared
//! memory — the runtime routes *data-plane traffic* through the fabric so
//! latency semantics hold, but a shipped function executing at the owner
//! touches the segment with plain loads and stores, which is precisely the
//! function-shipping payoff the RandomAccess benchmark measures.

use std::ops::Range;
use std::sync::Arc;

use caf_core::ids::ImageId;
use parking_lot::Mutex;

struct Inner<T> {
    /// `segments[k]` is owned by `members[k]`.
    segments: Vec<Mutex<Vec<T>>>,
    members: Vec<ImageId>,
    len_per_image: usize,
}

/// A handle to a coarray. Cheap to clone; all clones address the same
/// storage (coarray handles are freely captured by shipped functions,
/// which is how CAF 2.0 passes coarray sections by reference).
pub struct Coarray<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Coarray<T> {
    fn clone(&self) -> Self {
        Coarray { inner: Arc::clone(&self.inner) }
    }
}

impl<T: Clone + Send + 'static> Coarray<T> {
    /// Allocates storage: one `len_per_image`-element segment per member,
    /// each filled with `init`. Called by the runtime's collective
    /// allocation; not directly by user code.
    pub(crate) fn allocate(members: Vec<ImageId>, len_per_image: usize, init: T) -> Self {
        let segments =
            members.iter().map(|_| Mutex::new(vec![init.clone(); len_per_image])).collect();
        Coarray { inner: Arc::new(Inner { segments, members, len_per_image }) }
    }

    /// Segment length (identical on every image).
    pub fn len_per_image(&self) -> usize {
        self.inner.len_per_image
    }

    /// Images that own a segment, in segment order.
    pub fn members(&self) -> &[ImageId] {
        &self.inner.members
    }

    /// Segment index owned by `image`, if it is a member.
    pub fn segment_index(&self, image: ImageId) -> Option<usize> {
        self.inner.members.iter().position(|&m| m == image)
    }

    /// Runs `f` over the segment owned by `image` with the lock held.
    ///
    /// # Panics
    /// Panics if `image` owns no segment.
    pub fn with_segment<R>(&self, image: ImageId, f: impl FnOnce(&mut [T]) -> R) -> R {
        let idx = self
            .segment_index(image)
            .unwrap_or_else(|| panic!("{image} owns no segment of this coarray"));
        let mut seg = self.inner.segments[idx].lock();
        f(&mut seg)
    }

    /// Alias of [`Coarray::with_segment`] that reads as "my segment" at
    /// call sites: `a.with_local(img.id(), |seg| …)`.
    pub fn with_local<R>(&self, me: ImageId, f: impl FnOnce(&mut [T]) -> R) -> R {
        self.with_segment(me, f)
    }

    /// Copies `range` of `image`'s segment out (lock held briefly).
    pub fn read(&self, image: ImageId, range: Range<usize>) -> Vec<T> {
        self.with_segment(image, |seg| seg[range].to_vec())
    }

    /// Overwrites `image`'s segment starting at `offset` with `data`.
    pub fn write(&self, image: ImageId, offset: usize, data: &[T]) {
        self.with_segment(image, |seg| {
            seg[offset..offset + data.len()].clone_from_slice(data);
        });
    }

    /// A slice designator usable as a `copy_async` endpoint: `range` of
    /// the segment owned by `image`.
    pub fn slice(&self, image: ImageId, range: Range<usize>) -> CoSlice<T> {
        assert!(
            range.end <= self.inner.len_per_image,
            "slice {range:?} exceeds segment length {}",
            self.inner.len_per_image
        );
        CoSlice { coarray: self.clone(), image, range }
    }
}

/// A designated slice of one image's segment — the endpoints of
/// `copy_async(destA[p1], srcA[p2], …)`.
pub struct CoSlice<T> {
    /// The coarray addressed.
    pub coarray: Coarray<T>,
    /// Which image's segment.
    pub image: ImageId,
    /// Element range within that segment.
    pub range: Range<usize>,
}

impl<T> CoSlice<T> {
    /// Number of elements designated.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }
}

impl<T> Clone for CoSlice<T> {
    fn clone(&self) -> Self {
        CoSlice { coarray: self.coarray.clone(), image: self.image, range: self.range.clone() }
    }
}

/// A process-local array usable as a `copy_async` source or destination.
/// CAF distinguishes coarrays from ordinary local arrays; local arrays
/// passed to asynchronous operations must outlive the operation, so they
/// are reference-counted and lock-protected here.
pub struct LocalArray<T> {
    buf: Arc<Mutex<Vec<T>>>,
}

impl<T> Clone for LocalArray<T> {
    fn clone(&self) -> Self {
        LocalArray { buf: Arc::clone(&self.buf) }
    }
}

impl<T: Clone + Send + 'static> LocalArray<T> {
    /// Wraps a vector.
    pub fn new(data: Vec<T>) -> Self {
        LocalArray { buf: Arc::new(Mutex::new(data)) }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs `f` with the contents borrowed mutably.
    pub fn with<R>(&self, f: impl FnOnce(&mut Vec<T>) -> R) -> R {
        f(&mut self.buf.lock())
    }

    /// Snapshot of `range`.
    pub fn read(&self, range: Range<usize>) -> Vec<T> {
        self.buf.lock()[range].to_vec()
    }

    /// Overwrites starting at `offset`.
    pub fn write(&self, offset: usize, data: &[T]) {
        let mut b = self.buf.lock();
        b[offset..offset + data.len()].clone_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(n: usize) -> Vec<ImageId> {
        (0..n).map(ImageId).collect()
    }

    #[test]
    fn allocate_gives_equal_initialized_segments() {
        let c: Coarray<u32> = Coarray::allocate(world(3), 4, 7);
        for i in 0..3 {
            assert_eq!(c.read(ImageId(i), 0..4), vec![7; 4]);
        }
        assert_eq!(c.len_per_image(), 4);
    }

    #[test]
    fn write_is_per_segment() {
        let c: Coarray<u32> = Coarray::allocate(world(2), 3, 0);
        c.write(ImageId(1), 1, &[8, 9]);
        assert_eq!(c.read(ImageId(0), 0..3), vec![0, 0, 0]);
        assert_eq!(c.read(ImageId(1), 0..3), vec![0, 8, 9]);
    }

    #[test]
    fn clones_share_storage() {
        let c: Coarray<u8> = Coarray::allocate(world(2), 2, 0);
        let d = c.clone();
        d.write(ImageId(0), 0, &[5]);
        assert_eq!(c.read(ImageId(0), 0..1), vec![5]);
    }

    #[test]
    #[should_panic(expected = "exceeds segment length")]
    fn oversized_slice_rejected() {
        let c: Coarray<u8> = Coarray::allocate(world(1), 2, 0);
        let _ = c.slice(ImageId(0), 0..3);
    }

    #[test]
    #[should_panic(expected = "owns no segment")]
    fn non_member_access_rejected() {
        let c: Coarray<u8> = Coarray::allocate(world(2), 2, 0);
        c.read(ImageId(5), 0..1);
    }

    #[test]
    fn local_array_roundtrip() {
        let a = LocalArray::new(vec![1u32, 2, 3]);
        a.write(1, &[9]);
        assert_eq!(a.read(0..3), vec![1, 9, 3]);
        assert_eq!(a.len(), 3);
        let b = a.clone();
        b.with(|v| v.push(4));
        assert_eq!(a.len(), 4);
    }
}
