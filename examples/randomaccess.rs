//! HPC Challenge RandomAccess end-to-end (paper §IV-B).
//!
//! Run with: `cargo run --release --example randomaccess [images] [log_local]`
//!
//! Runs both kernels on the threaded runtime — the racy Get-Update-Put
//! reference and the atomic function-shipping version with bunched
//! `finish` — verifies them HPCC-style (the update stream is self-inverse
//! under xor), and prints update rates.

use caf2::randomaccess::{run_fs, run_gup, RaConfig};
use caf2::{CommMode, RuntimeConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let images: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let log_local: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(12);
    assert!(images.is_power_of_two(), "RandomAccess needs a power-of-two image count");

    let cfg = RaConfig {
        log_local,
        updates_per_image: 4 << log_local.min(14), // 4×table, HPCC-style, capped
        bunch: 512,
        verify: true,
    };
    let rt = || RuntimeConfig { comm_mode: CommMode::DedicatedThread, ..RuntimeConfig::default() };

    println!(
        "RandomAccess: {} images × 2^{} words, {} updates/image, bunch {}",
        images, log_local, cfg.updates_per_image, cfg.bunch
    );

    let fs = run_fs(images, rt(), cfg);
    println!(
        "  function shipping: {:>8.1} ms, {:.4} GUPS, errors {:?} (atomic ⇒ 0), {} finishes/image",
        fs.elapsed.as_secs_f64() * 1e3,
        fs.gups,
        fs.errors,
        fs.finishes_per_image
    );
    assert_eq!(fs.errors, Some(0));

    let gup = run_gup(images, rt(), cfg);
    let pct = 100.0 * gup.errors.unwrap_or(0) as f64 / gup.updates as f64;
    println!(
        "  get-update-put:    {:>8.1} ms, {:.4} GUPS, errors {:?} ({pct:.2}% — racy by design)",
        gup.elapsed.as_secs_f64() * 1e3,
        gup.gups,
        gup.errors,
    );
}
