//! Distributed termination detection for `finish` (paper §III-A) plus the
//! baseline algorithms the paper compares against (§V).
//!
//! * [`EpochDetector`] — the paper's algorithm (Fig. 7): cumulative
//!   even/odd epoch counters, a local quiescence precondition, and
//!   repeated synchronous team allreduces of `sent − completed`. Its
//!   `wait_for_quiescence` switch turns the precondition off, yielding the
//!   "algorithm w/o upper bound" that Fig. 18 shows needs ~2× the rounds.
//! * [`FourCounterDetector`] — Mattern's four-counter wave algorithm as
//!   used by AM++: reduces `(Σsent, Σreceived)` and terminates when two
//!   consecutive waves agree and balance; always pays one extra wave.
//! * [`CentralizedDetector`] — X10-style vector counting: every image
//!   sends a per-place spawn/completion vector to the finish home on
//!   quiesce; the home detects a zero sum. Scales as `O(p²)` state at one
//!   place — the bottleneck §V describes.
//! * [`BarrierDetector`] — the *incorrect* strawman of Fig. 5: wait for
//!   locally initiated work, then barrier. The harness demonstrates it
//!   declaring termination while a transitively shipped function is still
//!   in flight.
//!
//! All detectors are pure state machines; the threaded runtime and the
//! discrete-event simulator drive the same code.

mod barrier;
mod centralized;
mod epoch_detector;
mod four_counter;
pub mod harness;

pub use barrier::BarrierDetector;
pub use centralized::{CentralizedDetector, CentralizedHome, VectorReport};
pub use epoch_detector::EpochDetector;
pub use four_counter::FourCounterDetector;

use crate::ids::Parity;

/// Outcome of one reduction wave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaveDecision {
    /// Global termination detected: every message sent under the finish
    /// has been delivered and completed.
    Terminated,
    /// Work may remain; run another wave.
    Continue,
    /// A contributor fail-stopped: the finish can never terminate
    /// normally, so the wave aborts and the runtime surfaces
    /// `ImageFailed` instead of waiting on the dead image forever.
    Poisoned,
}

/// Contribution of one image to one reduction wave. Wave-based detectors
/// reduce element-wise sums of these vectors; unused lanes stay zero.
pub type Contribution = [i64; 2];

/// A wave-based termination detector: a per-image state machine driven by
/// message lifecycle callbacks and synchronous element-wise-sum reduction
/// waves. The same instance is reused across all waves of one `finish`
/// block.
pub trait WaveDetector {
    /// Records an outgoing message; returns the parity tag it must carry.
    fn on_send(&mut self) -> Parity;
    /// Delivery acknowledgement for a message this image sent with `tag`.
    fn on_delivered(&mut self, tag: Parity);
    /// A message tagged `tag` arrived at this image.
    fn on_receive(&mut self, tag: Parity);
    /// A received message tagged `tag` finished executing locally.
    fn on_complete(&mut self, tag: Parity);
    /// Whether this image may enter the next reduction wave now.
    fn ready(&self) -> bool;
    /// Enters a wave, returning this image's contribution to the sum.
    fn enter_wave(&mut self) -> Contribution;
    /// Exits a wave given the element-wise global sum; returns a decision.
    /// Every image of the team receives the same sum, so every image
    /// reaches the same decision — the property that makes the final wave
    /// double as the `end finish` barrier.
    fn exit_wave(&mut self, reduced: Contribution) -> WaveDecision;
    /// Number of waves this image has completed.
    fn waves(&self) -> usize;
    /// Marks `image` as fail-stopped. The detector must become
    /// [`ready`](Self::ready) immediately (the dead image will never
    /// deliver the acks/completions quiescence waits for) and every
    /// subsequent [`exit_wave`](Self::exit_wave) must decide
    /// [`WaveDecision::Poisoned`].
    fn poison(&mut self, image: usize);
    /// The first fail-stopped image this detector was told about, if any.
    fn poisoned_by(&self) -> Option<usize>;
}

#[cfg(test)]
mod tests {
    use super::harness::{chain, node, Harness, SpawnPlan};
    use super::*;

    fn run_epoch(plan: SpawnPlan, images: usize) -> usize {
        let mut h = Harness::new(images, || Box::new(EpochDetector::new(true)));
        h.run(plan)
    }

    #[test]
    fn empty_finish_takes_one_wave() {
        // Base case of Theorem 1: L = 0 → 1 wave.
        assert_eq!(run_epoch(SpawnPlan::default(), 4), 1);
    }

    #[test]
    fn single_spawn_takes_at_most_two_waves() {
        let mut plan = SpawnPlan::default();
        plan.spawn(0, node(1, vec![])); // image 0 ships one fn to image 1
        let waves = run_epoch(plan, 4);
        assert!(waves <= 2, "L=1 must need ≤ 2 waves, got {waves}");
    }

    #[test]
    fn chain_of_three_respects_theorem_bound() {
        // f1 on q spawns f2 on r spawns f3 on s: L = 3 → ≤ 4 waves.
        let mut plan = SpawnPlan::default();
        plan.spawn(0, chain(&[1, 2, 3]));
        let waves = run_epoch(plan, 4);
        assert!(waves <= 4, "L=3 must need ≤ 4 waves, got {waves}");
        assert!(waves >= 2, "a chain cannot finish in a single wave");
    }

    #[test]
    fn four_counter_uses_extra_wave_on_empty_finish() {
        // Four-counter must confirm with a second identical wave even when
        // nothing was sent.
        let mut h = Harness::new(4, || Box::new(FourCounterDetector::new()));
        let waves = h.run(SpawnPlan::default());
        assert_eq!(waves, 2);
    }

    #[test]
    fn four_counter_terminates_on_fan_out() {
        let mut plan = SpawnPlan::default();
        plan.spawn(0, node(1, vec![node(2, vec![]), node(3, vec![])]));
        let mut h = Harness::new(4, || Box::new(FourCounterDetector::new()));
        let waves = h.run(plan);
        assert!(waves >= 2);
    }

    #[test]
    fn no_upper_bound_variant_never_uses_fewer_waves() {
        for (len, imgs) in [(1usize, 4usize), (2, 4), (3, 8), (5, 8)] {
            let targets: Vec<usize> = (1..=len).map(|i| i % imgs).collect();
            let mut plan = SpawnPlan { exec_delay: 4, ..SpawnPlan::default() };
            plan.spawn(0, chain(&targets));
            let mut with = Harness::new(imgs, || Box::new(EpochDetector::new(true)));
            let waves_with = with.run(plan.clone());
            assert!(waves_with <= len + 1, "Theorem 1 violated: L={len} took {waves_with} waves");
            let mut without = Harness::new(imgs, || Box::new(EpochDetector::new(false)));
            let waves_without = without.run(plan);
            assert!(waves_without >= waves_with, "chain={len}: {waves_without} < {waves_with}");
        }
    }
}
