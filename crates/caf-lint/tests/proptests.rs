//! Soundness smoke for the race analysis, over randomized plans:
//!
//! * a *fully fenced* plan — every async operation immediately followed
//!   by a full `cofence()` — can never draw a race diagnostic;
//! * deleting one *needed* fence (each segment's access conflicts with
//!   its op, so every fence is needed) always draws at least one.

use caf_core::cofence::CofenceSpec;
use caf_lint::builder::PlanBuilder;
use caf_lint::ir::{MemRef, Plan};
use caf_lint::{lint, Analysis};
use proptest::prelude::*;

const VARS: [&str; 3] = ["a", "b", "c"];

/// One segment: async op on `VARS[var]`, optionally its full fence,
/// then a sync access that conflicts with the op.
fn make_plan(segs: &[(usize, usize)], skip_fence: Option<usize>) -> Plan {
    PlanBuilder::new(2)
        .coarray("a")
        .coarray("b")
        .coarray("c")
        .coarray("z")
        .all(|bb| {
            bb.finish(|bb| {
                for (i, &(kind, var)) in segs.iter().enumerate() {
                    let v = VARS[var % VARS.len()];
                    match kind % 3 {
                        0 => bb.put(v, 1),                                  // reads v
                        1 => bb.get(v, 1),                                  // writes v
                        _ => bb.copy(MemRef::local(v), MemRef::local("z")), // reads v, writes z
                    }
                    if skip_fence != Some(i) {
                        bb.cofence(CofenceSpec::FULL);
                    }
                    match kind % 3 {
                        1 => bb.read(v),
                        _ => bb.write(v),
                    }
                }
            });
        })
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Full fencing after every initiation is always race-free — the
    /// analysis must never report a false positive on such a plan.
    #[test]
    fn fully_fenced_plans_draw_no_race_diagnostics(
        segs in prop::collection::vec((0usize..3, 0usize..3), 1..8),
    ) {
        let diags = lint(&make_plan(&segs, None)).unwrap();
        prop_assert!(
            diags.iter().all(|d| d.analysis != Analysis::Race),
            "false positive on a fully fenced plan: {diags:?}"
        );
        prop_assert!(diags.iter().all(|d| !d.deadlock));
    }

    /// Every segment's trailing access conflicts with its own op, so
    /// every fence is load-bearing: deleting any one must surface at
    /// least one race error.
    #[test]
    fn deleting_one_needed_fence_draws_a_race(
        segs in prop::collection::vec((0usize..3, 0usize..3), 1..8),
        pick in any::<u64>(),
    ) {
        let k = (pick as usize) % segs.len();
        let diags = lint(&make_plan(&segs, Some(k))).unwrap();
        prop_assert!(
            diags.iter().any(|d| d.is_error() && d.analysis == Analysis::Race),
            "missed the race after deleting fence {k} of {segs:?}: {diags:?}"
        );
    }
}
