//! Property tests on the fabric: reliability (no loss, no duplication),
//! FIFO behaviour when reordering is off, bounded reordering when on, and
//! exactly-once delivery under randomized fault schedules.

use std::sync::Arc;
use std::time::{Duration, Instant};

use caf_core::config::{FaultPlan, NetworkModel, RetryPolicy};
use caf_core::ids::ImageId;
use caf_net::Fabric;
use proptest::prelude::*;

fn drain(f: &Fabric<u64>, to: ImageId, n: usize) -> Vec<u64> {
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        match f.recv_until(to, deadline) {
            Some(v) => out.push(v),
            None => panic!("timed out after {} of {n} messages", out.len()),
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every message sent is delivered exactly once, whatever the mix of
    /// senders, sizes, and latencies.
    #[test]
    fn no_loss_no_duplication(
        sends in prop::collection::vec((0usize..4, 0usize..512), 1..120),
        latency_us in 0u64..3,
        non_fifo in any::<bool>(),
    ) {
        let model = NetworkModel {
            latency: Duration::from_micros(latency_us),
            inbox_capacity: None,
            ..NetworkModel::instant()
        };
        let f: Arc<Fabric<u64>> = Fabric::new(5, model, non_fifo);
        for (i, &(from, bytes)) in sends.iter().enumerate() {
            f.send(ImageId(from), ImageId(4), bytes, i as u64);
        }
        let mut got = drain(&f, ImageId(4), sends.len());
        got.sort_unstable();
        prop_assert_eq!(got, (0..sends.len() as u64).collect::<Vec<_>>());
        prop_assert_eq!(f.stats().messages(), sends.len() as u64);
    }

    /// With reordering disabled and equal sizes, same-pair messages are
    /// FIFO.
    #[test]
    fn fifo_when_ordered(count in 1usize..100, latency_us in 0u64..2) {
        let model = NetworkModel {
            latency: Duration::from_micros(latency_us),
            inbox_capacity: None,
            ..NetworkModel::instant()
        };
        let f: Arc<Fabric<u64>> = Fabric::new(2, model, false);
        for i in 0..count as u64 {
            f.send(ImageId(0), ImageId(1), 8, i);
        }
        let got = drain(&f, ImageId(1), count);
        prop_assert_eq!(got, (0..count as u64).collect::<Vec<_>>());
    }

    /// Concurrent senders: reliability holds under real thread
    /// interleavings.
    #[test]
    fn concurrent_senders_reliable(per_sender in 1usize..60) {
        let f: Arc<Fabric<u64>> = Fabric::new(4, NetworkModel::instant(), false);
        let handles: Vec<_> = (0..3)
            .map(|s| {
                let f = Arc::clone(&f);
                std::thread::spawn(move || {
                    for i in 0..per_sender as u64 {
                        f.send(ImageId(s), ImageId(3), 8, (s as u64) << 32 | i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut got = drain(&f, ImageId(3), 3 * per_sender);
        got.sort_unstable();
        got.dedup();
        prop_assert_eq!(got.len(), 3 * per_sender, "duplicate or lost message");
    }
}

proptest! {
    // Each case runs a full ack/retry convergence loop; keep the count
    // modest so the suite stays fast under load.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// A randomized fault schedule — drops, duplicates, delay spikes,
    /// non-FIFO reordering, and a receiver stall window — must be
    /// invisible to the payload stream: every message surfaces at the
    /// receiver exactly once, however the wire misbehaves.
    #[test]
    fn chaos_schedule_is_exactly_once(
        seed in any::<u64>(),
        drop_pct in 0u32..25,
        dup_pct in 0u32..25,
        spike_pct in 0u32..15,
        non_fifo in any::<bool>(),
        stall in any::<bool>(),
        sends in prop::collection::vec((0usize..3, 0usize..256), 1..60),
    ) {
        let mut plan = FaultPlan::uniform_drop(seed, drop_pct as f64 / 100.0)
            .with_dup(dup_pct as f64 / 100.0)
            .with_spikes(spike_pct as f64 / 100.0, Duration::from_micros(200));
        if stall {
            plan = plan.with_stall(3, Duration::ZERO, Duration::from_millis(5));
        }
        // A generous budget horizon: only a (vanishingly unlikely) run of
        // 13 consecutive drops of one message can lose it.
        let retry = RetryPolicy {
            ack_timeout: Duration::from_millis(1),
            backoff: 2,
            max_timeout: Duration::from_millis(20),
            max_retries: 12,
        };
        let model = NetworkModel {
            latency: Duration::from_micros(50),
            inbox_capacity: None,
            ..NetworkModel::instant()
        };
        let f: Arc<Fabric<u64>> = Fabric::with_faults(4, model, non_fifo, plan, retry);
        for (i, &(from, bytes)) in sends.iter().enumerate() {
            f.send(ImageId(from), ImageId(3), bytes, i as u64);
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut got = Vec::with_capacity(sends.len());
        while got.len() < sends.len() {
            prop_assert!(
                Instant::now() < deadline,
                "lost messages: {} of {}", got.len(), sends.len()
            );
            if let Some(v) = f.recv_until(ImageId(3), Instant::now() + Duration::from_millis(1)) {
                got.push(v);
            }
            // Senders must poll their own inboxes: acks land there, and
            // polling pumps their retransmission timers.
            for s in 0..3 {
                while f.try_recv(ImageId(s)).is_some() {}
            }
        }
        got.sort_unstable();
        prop_assert_eq!(got, (0..sends.len() as u64).collect::<Vec<_>>());
        prop_assert_eq!(f.stats().delivered(), sends.len() as u64, "double count");
        // Nothing further may ever surface: late duplicates and
        // retransmits are filtered by sequence dedup, and a payload slot
        // is single-use even in principle.
        prop_assert_eq!(f.try_recv(ImageId(3)), None);
    }
}
