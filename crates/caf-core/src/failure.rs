//! Pure fail-stop failure detection: per-peer heartbeat deadlines with
//! two-phase *suspect → confirm* transitions and incarnation numbers.
//!
//! The paper's termination-detection algorithm (Fig. 7) assumes every
//! image survives to join the `allreduce(SUM, sent − completed)`; a dead
//! contributor turns `finish` into a deadlock. This module is the
//! substrate-independent half of the cure: a state machine that watches
//! life signs (heartbeats *or* any application message) per monitored
//! peer, raises a **suspicion** after `suspect_after` of silence, and
//! **confirms** the death after a further `confirm_after` with no
//! refutation. Two phases keep transient network chaos (drops, delay
//! spikes, stragglers) from being misread as a crash: a late life sign
//! during the suspicion window refutes it (counted as a *false suspect*,
//! the metric the `ablation_failure_detection` bench sweeps).
//!
//! Incarnation numbers make death monotonic: once a peer is confirmed
//! dead at incarnation `k`, messages stamped `≤ k` are *posthumous* and
//! must be discarded by the transport ([`FailureDetectorState::accepts`]),
//! so a retransmit buffered inside the fabric cannot resurrect work under
//! a poisoned `finish` epoch.
//!
//! Everything is pure with respect to a caller-supplied `now: Duration`,
//! so the threaded fabric (wall-clock since fabric creation) and the
//! discrete-event simulator (virtual nanoseconds) drive the *same* code —
//! the property every `caf-core` state machine keeps.

use std::collections::BTreeMap;
use std::time::Duration;

/// Tuning knobs of the failure detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureParams {
    /// How often an idle link emits a heartbeat.
    pub heartbeat_period: Duration,
    /// Silence needed before a peer becomes *suspect*.
    pub suspect_after: Duration,
    /// Additional unrefuted silence needed to *confirm* the death.
    pub confirm_after: Duration,
}

impl Default for FailureParams {
    fn default() -> Self {
        FailureParams {
            heartbeat_period: Duration::from_millis(2),
            suspect_after: Duration::from_millis(10),
            confirm_after: Duration::from_millis(10),
        }
    }
}

impl FailureParams {
    /// A tight configuration for tests: fast heartbeats, short windows,
    /// so both detection and refutation paths complete quickly.
    pub fn aggressive() -> Self {
        FailureParams {
            heartbeat_period: Duration::from_micros(500),
            suspect_after: Duration::from_millis(3),
            confirm_after: Duration::from_millis(3),
        }
    }

    /// Worst-case time from an actual crash to confirmation, assuming no
    /// spurious refutation (a posthumous duplicate can extend it).
    pub fn detection_horizon(&self) -> Duration {
        self.suspect_after + self.confirm_after
    }
}

/// Health of one monitored peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerHealth {
    /// Life signs within the deadline.
    Alive,
    /// Silent past `suspect_after`; awaiting confirmation or refutation.
    Suspect,
    /// Confirmed dead (fail-stop). Terminal except for a higher
    /// incarnation announcing itself.
    Dead,
    /// Exited cleanly (normal shutdown); silence is expected, never
    /// suspicious.
    Retired,
}

/// A transition worth reporting to the layer above.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureEvent {
    /// `peer` passed its silence deadline and is now suspect.
    Suspected {
        /// The suspect peer.
        peer: usize,
        /// Detector time of the transition.
        at: Duration,
    },
    /// `peer` stayed silent through the confirmation window: it is dead.
    Confirmed {
        /// The dead peer.
        peer: usize,
        /// Highest incarnation the detector had seen from the peer;
        /// messages stamped `<=` this are posthumous.
        incarnation: u64,
        /// Detector time of the confirmation.
        at: Duration,
    },
}

#[derive(Debug, Clone)]
struct PeerState {
    health: PeerHealth,
    /// Last life sign (Alive) or suspicion start (Suspect).
    since: Duration,
    /// Highest incarnation observed from this peer (starts at 1: the
    /// first incarnation of every image).
    incarnation: u64,
}

/// Failure-detector state for one observing image.
///
/// Drive it with [`monitor`](Self::monitor) to register peers,
/// [`on_life_sign`](Self::on_life_sign) for every heartbeat or message,
/// [`on_retry_exhausted`](Self::on_retry_exhausted) when the reliable
/// layer gives up on a link, and periodic [`tick`](Self::tick) calls to
/// collect transitions.
#[derive(Debug, Clone)]
pub struct FailureDetectorState {
    params: FailureParams,
    peers: BTreeMap<usize, PeerState>,
    suspects_raised: u64,
    false_suspects: u64,
}

impl FailureDetectorState {
    /// A detector with no monitored peers yet.
    pub fn new(params: FailureParams) -> Self {
        FailureDetectorState {
            params,
            peers: BTreeMap::new(),
            suspects_raised: 0,
            false_suspects: 0,
        }
    }

    /// The configured windows.
    pub fn params(&self) -> &FailureParams {
        &self.params
    }

    /// Starts monitoring `peer`, treating `now` as its first life sign.
    /// Re-registering an already-monitored peer is a no-op.
    pub fn monitor(&mut self, peer: usize, now: Duration) {
        self.peers.entry(peer).or_insert(PeerState {
            health: PeerHealth::Alive,
            since: now,
            incarnation: 1,
        });
    }

    /// Records a life sign (heartbeat or application message) from
    /// `peer` at incarnation `incarnation`. Returns whether traffic from
    /// that incarnation should be accepted: `false` means the message is
    /// posthumous — the peer is already confirmed dead at an incarnation
    /// `>=` the stamp — and the transport must drop it.
    pub fn on_life_sign(&mut self, peer: usize, incarnation: u64, now: Duration) -> bool {
        let Some(st) = self.peers.get_mut(&peer) else {
            return true; // unmonitored peers are never filtered
        };
        match st.health {
            PeerHealth::Dead => {
                if incarnation <= st.incarnation {
                    return false; // posthumous
                }
                // A higher incarnation announced itself: a restarted
                // peer is alive again (not exercised by the runtime yet,
                // but the monotonicity rule demands it).
                st.health = PeerHealth::Alive;
            }
            PeerHealth::Suspect => {
                // Refutation: the peer was merely slow.
                st.health = PeerHealth::Alive;
                self.false_suspects += 1;
            }
            PeerHealth::Alive | PeerHealth::Retired => {}
        }
        st.since = now;
        st.incarnation = st.incarnation.max(incarnation);
        true
    }

    /// The reliable layer exhausted its retransmit budget toward `peer`:
    /// a strong hint that the peer is gone, so the suspicion window is
    /// entered immediately instead of waiting out the silence deadline.
    pub fn on_retry_exhausted(&mut self, peer: usize, now: Duration) {
        if let Some(st) = self.peers.get_mut(&peer) {
            if st.health == PeerHealth::Alive {
                st.health = PeerHealth::Suspect;
                st.since = now;
                self.suspects_raised += 1;
            }
        }
    }

    /// Advances deadlines to `now`, returning the transitions that fired
    /// (in ascending peer order — deterministic).
    pub fn tick(&mut self, now: Duration) -> Vec<FailureEvent> {
        let mut events = Vec::new();
        for (&peer, st) in self.peers.iter_mut() {
            match st.health {
                PeerHealth::Alive => {
                    if now.saturating_sub(st.since) >= self.params.suspect_after {
                        st.health = PeerHealth::Suspect;
                        st.since = now;
                        self.suspects_raised += 1;
                        events.push(FailureEvent::Suspected { peer, at: now });
                    }
                }
                PeerHealth::Suspect => {
                    if now.saturating_sub(st.since) >= self.params.confirm_after {
                        st.health = PeerHealth::Dead;
                        st.since = now;
                        events.push(FailureEvent::Confirmed {
                            peer,
                            incarnation: st.incarnation,
                            at: now,
                        });
                    }
                }
                PeerHealth::Dead | PeerHealth::Retired => {}
            }
        }
        events
    }

    /// Records an externally learned death (an `ImageDown` broadcast or a
    /// local crash note): `peer` is dead at `incarnation` without going
    /// through this detector's own suspect window.
    pub fn mark_dead(&mut self, peer: usize, incarnation: u64, now: Duration) {
        let st = self.peers.entry(peer).or_insert(PeerState {
            health: PeerHealth::Dead,
            since: now,
            incarnation,
        });
        st.health = PeerHealth::Dead;
        st.since = now;
        st.incarnation = st.incarnation.max(incarnation);
    }

    /// Stops suspecting `peer` forever: it exited cleanly, so silence is
    /// the expected state (prevents false suspects during the staggered
    /// shutdown of a team).
    pub fn retire(&mut self, peer: usize, now: Duration) {
        if let Some(st) = self.peers.get_mut(&peer) {
            if st.health != PeerHealth::Dead {
                st.health = PeerHealth::Retired;
                st.since = now;
            }
        }
    }

    /// Whether traffic stamped (`peer`, `incarnation`) should be
    /// accepted (the posthumous filter, without recording a life sign).
    pub fn accepts(&self, peer: usize, incarnation: u64) -> bool {
        match self.peers.get(&peer) {
            Some(st) => st.health != PeerHealth::Dead || incarnation > st.incarnation,
            None => true,
        }
    }

    /// Current health of `peer`, if monitored.
    pub fn health(&self, peer: usize) -> Option<PeerHealth> {
        self.peers.get(&peer).map(|st| st.health)
    }

    /// Peers confirmed dead, with their last incarnation.
    pub fn dead_peers(&self) -> Vec<(usize, u64)> {
        self.peers
            .iter()
            .filter(|(_, st)| st.health == PeerHealth::Dead)
            .map(|(&p, st)| (p, st.incarnation))
            .collect()
    }

    /// Total suspicions ever raised (timeouts + retry exhaustions).
    pub fn suspects_raised(&self) -> u64 {
        self.suspects_raised
    }

    /// Suspicions later refuted by a life sign — the detector's
    /// false-positive count.
    pub fn false_suspects(&self) -> u64 {
        self.false_suspects
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn det() -> FailureDetectorState {
        FailureDetectorState::new(FailureParams {
            heartbeat_period: ms(1),
            suspect_after: ms(10),
            confirm_after: ms(10),
        })
    }

    #[test]
    fn silence_confirms_in_two_phases() {
        let mut d = det();
        d.monitor(1, ms(0));
        assert!(d.tick(ms(9)).is_empty(), "inside the deadline");
        assert_eq!(d.tick(ms(10)), vec![FailureEvent::Suspected { peer: 1, at: ms(10) }]);
        assert_eq!(d.health(1), Some(PeerHealth::Suspect));
        assert!(d.tick(ms(19)).is_empty(), "confirmation window still open");
        assert_eq!(
            d.tick(ms(20)),
            vec![FailureEvent::Confirmed { peer: 1, incarnation: 1, at: ms(20) }]
        );
        assert_eq!(d.health(1), Some(PeerHealth::Dead));
        assert_eq!(d.dead_peers(), vec![(1, 1)]);
    }

    #[test]
    fn life_sign_refutes_a_suspicion() {
        let mut d = det();
        d.monitor(2, ms(0));
        d.tick(ms(10));
        assert_eq!(d.health(2), Some(PeerHealth::Suspect));
        assert!(d.on_life_sign(2, 1, ms(12)), "refuting message must be accepted");
        assert_eq!(d.health(2), Some(PeerHealth::Alive));
        assert_eq!(d.false_suspects(), 1);
        assert_eq!(d.suspects_raised(), 1);
        // The deadline restarts from the refutation.
        assert!(d.tick(ms(21)).is_empty());
        assert!(!d.tick(ms(22)).is_empty());
    }

    #[test]
    fn heartbeats_keep_a_peer_alive_forever() {
        let mut d = det();
        d.monitor(3, ms(0));
        for t in 1..100 {
            d.on_life_sign(3, 1, ms(t));
            assert!(d.tick(ms(t)).is_empty());
        }
        assert_eq!(d.suspects_raised(), 0);
    }

    #[test]
    fn retry_exhaustion_skips_straight_to_suspect() {
        let mut d = det();
        d.monitor(1, ms(0));
        d.on_retry_exhausted(1, ms(2));
        assert_eq!(d.health(1), Some(PeerHealth::Suspect));
        // Confirmation still needs its own window from the suspicion.
        assert!(d.tick(ms(11)).is_empty());
        assert_eq!(
            d.tick(ms(12)),
            vec![FailureEvent::Confirmed { peer: 1, incarnation: 1, at: ms(12) }]
        );
    }

    #[test]
    fn posthumous_incarnations_are_rejected() {
        let mut d = det();
        d.monitor(4, ms(0));
        d.mark_dead(4, 1, ms(5));
        assert!(!d.accepts(4, 1), "same incarnation is posthumous");
        assert!(!d.on_life_sign(4, 1, ms(6)), "a posthumous heartbeat must not resurrect");
        assert_eq!(d.health(4), Some(PeerHealth::Dead));
        // A *higher* incarnation is a legitimate restart.
        assert!(d.accepts(4, 2));
        assert!(d.on_life_sign(4, 2, ms(7)));
        assert_eq!(d.health(4), Some(PeerHealth::Alive));
    }

    #[test]
    fn retired_peers_never_become_suspect() {
        let mut d = det();
        d.monitor(5, ms(0));
        d.retire(5, ms(1));
        assert!(d.tick(ms(1000)).is_empty());
        assert_eq!(d.health(5), Some(PeerHealth::Retired));
        assert!(d.accepts(5, 1), "retired peers are not filtered");
    }

    #[test]
    fn externally_learned_death_is_monotonic() {
        let mut d = det();
        // mark_dead on an unmonitored peer registers it dead.
        d.mark_dead(7, 3, ms(0));
        assert!(!d.accepts(7, 3));
        assert!(!d.accepts(7, 2));
        assert!(d.accepts(7, 4));
        // Retire after death must not clear the death.
        d.retire(7, ms(1));
        assert_eq!(d.health(7), Some(PeerHealth::Dead));
    }

    #[test]
    fn unmonitored_peers_pass_through() {
        let mut d = det();
        assert!(d.accepts(9, 1));
        assert!(d.on_life_sign(9, 1, ms(0)));
        assert!(d.tick(ms(1000)).is_empty());
    }

    #[test]
    fn detection_horizon_bounds_the_two_windows() {
        let p =
            FailureParams { heartbeat_period: ms(1), suspect_after: ms(4), confirm_after: ms(6) };
        assert_eq!(p.detection_horizon(), ms(10));
    }
}
