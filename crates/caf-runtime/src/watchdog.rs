//! The no-progress watchdog: turns silent hangs into diagnostics.
//!
//! Under fault injection a `finish` block can stop making progress — a
//! message abandoned past its retry budget leaves the termination
//! detector's `sent − completed` sum permanently non-zero, and every image
//! parks in its progress loop forever. Without help that is an
//! undebuggable hang. The watchdog watches a *global progress
//! fingerprint* (messages injected + messages delivered + retransmissions
//! attempted); when every image is simultaneously blocked in a runtime
//! wait and the fingerprint has not moved for the configured window, the
//! first image to notice declares a stall, every image contributes a
//! structured per-image report (finish epoch counters, inbox depth, retry
//! backlog, pending operations), and the launch returns
//! [`RuntimeError::Stalled`] instead of hanging.
//!
//! Because retransmissions count as progress, the watchdog cannot fire
//! while the reliable-delivery layer is still inside its retry budget —
//! the stall window starts counting only after the last timer gives up.
//! Configure the window longer than any [`StallWindow`] straggler pause
//! (a stalled image defers traffic, which is indistinguishable from no
//! progress until the window closes).
//!
//! [`StallWindow`]: caf_core::fault::StallWindow

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use caf_core::ids::FinishId;
use parking_lot::Mutex;

/// Panic payload used to unwind image threads after a stall is declared.
/// Delivered via `resume_unwind` so the global panic hook stays silent —
/// the stall is reported once, as a [`RuntimeError`], not once per thread.
pub(crate) struct StallUnwind;

/// Snapshot of one `finish` block's termination detector at stall time.
/// Counters are cumulative over both epoch parities.
#[derive(Debug, Clone)]
pub struct FinishDiag {
    /// Which finish block.
    pub finish: FinishId,
    /// Messages this image sent under the block.
    pub sent: u64,
    /// Of those, acknowledged as delivered.
    pub delivered: u64,
    /// Messages this image received under the block.
    pub received: u64,
    /// Of those, completed executing locally.
    pub completed: u64,
    /// Reduction waves the detector has run.
    pub waves: usize,
}

/// One image's contribution to a stall report.
#[derive(Debug, Clone)]
pub struct ImageStallReport {
    /// Image rank.
    pub image: usize,
    /// Undelivered messages queued at this image's inbox.
    pub inbox_depth: usize,
    /// Unacknowledged reliable messages this image owns as a sender.
    pub retry_backlog: usize,
    /// Implicit asynchronous operations still tracked for `cofence`.
    pub pending_ops: usize,
    /// Per-finish detector snapshots (every block this image has touched).
    pub finishes: Vec<FinishDiag>,
}

/// The structured diagnostic produced when the runtime stalls.
#[derive(Debug, Clone)]
pub struct StallReport {
    /// The configured no-progress window that elapsed.
    pub window: Duration,
    /// Per-image diagnostics, sorted by rank. Images that had already
    /// returned from the SPMD closure when the stall was declared are
    /// absent.
    pub images: Vec<ImageStallReport>,
    /// Fabric totals: logical messages sent.
    pub messages: u64,
    /// Fabric totals: messages delivered exactly-once to receivers.
    pub delivered: u64,
    /// Fabric totals: retransmissions attempted.
    pub retries: u64,
    /// Fabric totals: messages abandoned past the retry budget.
    pub retries_exhausted: u64,
    /// Fabric totals: wire messages destroyed by fault injection.
    pub wire_drops: u64,
    /// Fabric totals: wire messages duplicated by fault injection.
    pub wire_dups: u64,
    /// Fabric totals: duplicate deliveries filtered by receiver dedup.
    pub dups_discarded: u64,
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "no progress for {:?}: fabric sent {} / delivered {} (retries {}, \
             exhausted {}, wire drops {}, dups {} injected / {} discarded)",
            self.window,
            self.messages,
            self.delivered,
            self.retries,
            self.retries_exhausted,
            self.wire_drops,
            self.wire_dups,
            self.dups_discarded
        )?;
        for img in &self.images {
            writeln!(
                f,
                "  image {}: inbox {} deep, retry backlog {}, {} pending op(s)",
                img.image, img.inbox_depth, img.retry_backlog, img.pending_ops
            )?;
            for d in &img.finishes {
                writeln!(
                    f,
                    "    {}: sent {} delivered {} received {} completed {} ({} waves)",
                    d.finish, d.sent, d.delivered, d.received, d.completed, d.waves
                )?;
            }
        }
        Ok(())
    }
}

/// Errors a launch can end in instead of a result.
#[derive(Debug)]
pub enum RuntimeError {
    /// The no-progress watchdog fired: no image made progress for the
    /// configured window. Carries the full diagnostic dump.
    Stalled(StallReport),
    /// An image fail-stopped (crash fault or uncaught panic) and the
    /// failure detector confirmed it. Carries which image died, the
    /// detection latency, and every survivor's parting observation.
    ImageFailed(crate::failure::FailureReport),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Stalled(report) => {
                write!(f, "runtime stalled — {report}")
            }
            RuntimeError::ImageFailed(report) => {
                write!(f, "image failure — {report}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

struct Observation {
    fingerprint: u64,
    since: Instant,
}

/// Shared watchdog state. Detection is cooperative: there is no watchdog
/// thread; blocked images observe on every park-loop iteration.
pub(crate) struct Watchdog {
    window: Duration,
    /// Image threads still running (a panicking image stops counting, so
    /// the survivors — all blocked on the dead peer — can still stall
    /// out instead of waiting forever).
    active: AtomicUsize,
    /// Images currently inside a blocking runtime wait.
    waiting: AtomicUsize,
    /// Latched once a stall has been declared.
    stalled: AtomicBool,
    obs: Mutex<Observation>,
    reports: Mutex<Vec<ImageStallReport>>,
}

impl Watchdog {
    pub(crate) fn new(window: Duration, n: usize) -> Self {
        Watchdog {
            window,
            active: AtomicUsize::new(n),
            waiting: AtomicUsize::new(0),
            stalled: AtomicBool::new(false),
            obs: Mutex::new(Observation { fingerprint: 0, since: Instant::now() }),
            reports: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn window(&self) -> Duration {
        self.window
    }

    /// Marks the calling image as blocked for the guard's lifetime.
    pub(crate) fn enter_wait(&self) -> WaitGuard<'_> {
        self.waiting.fetch_add(1, Ordering::AcqRel);
        WaitGuard { wd: self }
    }

    /// Held by each image thread for its whole run; dropping it (return
    /// *or* unwind) removes the image from the all-blocked quorum.
    pub(crate) fn live_guard(&self) -> LiveGuard<'_> {
        LiveGuard { wd: self }
    }

    /// Records a progress observation; returns whether the runtime is
    /// (now) stalled. A stall is declared only when every *live* image is
    /// blocked and the fingerprint has been flat for the full window.
    pub(crate) fn observe(&self, fingerprint: u64) -> bool {
        if self.stalled.load(Ordering::Acquire) {
            return true;
        }
        let now = Instant::now();
        let mut obs = self.obs.lock();
        if fingerprint != obs.fingerprint
            || self.waiting.load(Ordering::Acquire) < self.active.load(Ordering::Acquire)
        {
            obs.fingerprint = fingerprint;
            obs.since = now;
            return false;
        }
        if now.duration_since(obs.since) >= self.window {
            self.stalled.store(true, Ordering::Release);
            true
        } else {
            false
        }
    }

    /// Adds one image's diagnostics to the eventual report.
    pub(crate) fn contribute(&self, report: ImageStallReport) {
        self.reports.lock().push(report);
    }

    /// Collects the contributed per-image reports, sorted by rank.
    pub(crate) fn take_reports(&self) -> Vec<ImageStallReport> {
        let mut reports = std::mem::take(&mut *self.reports.lock());
        reports.sort_by_key(|r| r.image);
        reports
    }
}

pub(crate) struct WaitGuard<'a> {
    wd: &'a Watchdog,
}

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        self.wd.waiting.fetch_sub(1, Ordering::AcqRel);
    }
}

pub(crate) struct LiveGuard<'a> {
    wd: &'a Watchdog,
}

impl Drop for LiveGuard<'_> {
    fn drop(&mut self) {
        self.wd.active.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_needs_all_images_waiting_and_flat_fingerprint() {
        let wd = Watchdog::new(Duration::from_millis(10), 2);
        let _g0 = wd.enter_wait();
        // Only one of two images waiting: never stalls.
        assert!(!wd.observe(1));
        std::thread::sleep(Duration::from_millis(15));
        assert!(!wd.observe(1));
        // Second image joins; flat fingerprint now ages toward the window.
        let _g1 = wd.enter_wait();
        assert!(!wd.observe(1), "window restarts from the waiting transition");
        std::thread::sleep(Duration::from_millis(15));
        assert!(wd.observe(1));
        assert!(wd.observe(999), "stall latches regardless of later movement");
    }

    #[test]
    fn fingerprint_movement_resets_the_window() {
        let wd = Watchdog::new(Duration::from_millis(20), 1);
        let _g = wd.enter_wait();
        assert!(!wd.observe(1));
        std::thread::sleep(Duration::from_millis(12));
        assert!(!wd.observe(2), "progress happened");
        std::thread::sleep(Duration::from_millis(12));
        assert!(!wd.observe(2), "window measured from the last movement");
        std::thread::sleep(Duration::from_millis(12));
        assert!(wd.observe(2));
    }

    #[test]
    fn wait_guard_is_balanced() {
        let wd = Watchdog::new(Duration::from_millis(5), 1);
        {
            let _g = wd.enter_wait();
            assert_eq!(wd.waiting.load(Ordering::Relaxed), 1);
        }
        assert_eq!(wd.waiting.load(Ordering::Relaxed), 0);
        // Nobody waiting: no stall even after the window.
        std::thread::sleep(Duration::from_millis(10));
        assert!(!wd.observe(7));
    }

    #[test]
    fn report_renders_every_layer() {
        let report = StallReport {
            window: Duration::from_millis(100),
            images: vec![ImageStallReport {
                image: 0,
                inbox_depth: 3,
                retry_backlog: 2,
                pending_ops: 1,
                finishes: vec![FinishDiag {
                    finish: FinishId { team: caf_core::ids::TeamId(0), seq: 1 },
                    sent: 5,
                    delivered: 4,
                    received: 2,
                    completed: 2,
                    waves: 7,
                }],
            }],
            messages: 10,
            delivered: 9,
            retries: 12,
            retries_exhausted: 1,
            wire_drops: 6,
            wire_dups: 4,
            dups_discarded: 3,
        };
        let text = RuntimeError::Stalled(report).to_string();
        for needle in [
            "no progress",
            "image 0",
            "inbox 3",
            "retry backlog 2",
            "sent 5",
            "7 waves",
            "exhausted 1",
            "dups 4 injected / 3 discarded",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
