//! **Ablation**: how fast can a dead image be detected, and what does
//! aggressiveness cost in false alarms?
//!
//! Sweeps the failure detector's heartbeat period over {0.5, 1, 2, 5} ms
//! with proportional suspect/confirm deadlines (3 missed periods each),
//! crossed with wire drop rates {0, 1 %, 5 %}, on the 1024-image
//! discrete-event chaos model with one scheduled crash. Each cell reports
//!
//! * **detection latency** — virtual time from the crash firing on the
//!   wire to the first suspect→confirm transition (the survivors' abort
//!   follows one reliable `Down` broadcast later);
//! * **false-suspect rate** — suspicions raised against *live* images
//!   (dropped heartbeats look like silence) that a later life sign
//!   refuted, as a fraction of all suspicions.
//!
//! The trade-off this makes visible: detection latency scales linearly
//! with the heartbeat period, while shorter periods + lossier wires buy
//! that speed with refuted suspicions the protocol must absorb.
//!
//! Besides the table, the sweep is recorded as JSON (one object per
//! cell) in `target/ablation_failure_detection.json`, next to the
//! `ablation_faults` binary's domain, so runs can be diffed and plotted.

use std::time::Duration;

use bench::{fmt_ns, print_table};
use caf_core::config::FaultPlan;
use caf_core::failure::FailureParams;
use caf_sim::{run_chaos_sim, ChaosOutcome, ChaosSimConfig};

const SEED: u64 = 0xFA_B71C;
const IMAGES: usize = 1024;
const VICTIM: usize = 17;
/// The crash trigger: early enough that the finish is open everywhere.
const CRASH_AT_SEQ: u64 = 900;

struct Cell {
    heartbeat: Duration,
    drop_p: f64,
    detect_ns: u64,
    abort_ns: u64,
    suspects: u64,
    false_suspects: u64,
    heartbeats: u64,
    observers: usize,
}

fn run_cell(heartbeat: Duration, drop_p: f64) -> Cell {
    let mut cfg = ChaosSimConfig::new(IMAGES);
    cfg.plan = FaultPlan::uniform_drop(SEED, drop_p).with_crash(VICTIM, CRASH_AT_SEQ);
    cfg.failure = Some(FailureParams {
        heartbeat_period: heartbeat,
        suspect_after: heartbeat * 3,
        confirm_after: heartbeat * 3,
    });
    let r = run_chaos_sim(&cfg);
    let ChaosOutcome::Failed { sim_ns, detect_ns, victim, .. } = r.outcome else {
        panic!("hb {heartbeat:?} drop {drop_p}: crash must be detected, got {:?}", r.outcome);
    };
    assert_eq!(victim, VICTIM, "hb {heartbeat:?} drop {drop_p}: wrong victim");
    Cell {
        heartbeat,
        drop_p,
        detect_ns: detect_ns.expect("crash fault fired on the wire"),
        abort_ns: sim_ns,
        suspects: r.suspects,
        false_suspects: r.false_suspects,
        heartbeats: r.heartbeats,
        observers: r.observers.len(),
    }
}

fn false_rate(c: &Cell) -> f64 {
    if c.suspects == 0 {
        0.0
    } else {
        c.false_suspects as f64 / c.suspects as f64
    }
}

fn json_line(c: &Cell) -> String {
    format!(
        "  {{\"heartbeat_us\": {}, \"drop_pct\": {}, \"detect_ns\": {}, \"abort_ns\": {}, \
         \"suspects\": {}, \"false_suspects\": {}, \"false_suspect_rate\": {:.4}, \
         \"heartbeats\": {}, \"observers\": {}}}",
        c.heartbeat.as_micros(),
        c.drop_p * 100.0,
        c.detect_ns,
        c.abort_ns,
        c.suspects,
        c.false_suspects,
        false_rate(c),
        c.heartbeats,
        c.observers,
    )
}

fn main() {
    let heartbeats = [
        Duration::from_micros(500),
        Duration::from_millis(1),
        Duration::from_millis(2),
        Duration::from_millis(5),
    ];
    let rates = [0.0, 0.01, 0.05];
    let mut cells = Vec::new();
    for &hb in &heartbeats {
        for &p in &rates {
            cells.push(run_cell(hb, p));
        }
    }
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                format!("{} µs", c.heartbeat.as_micros()),
                format!("{:.0}%", c.drop_p * 100.0),
                fmt_ns(c.detect_ns),
                fmt_ns(c.abort_ns),
                c.suspects.to_string(),
                format!("{} ({:.1}%)", c.false_suspects, false_rate(c) * 100.0),
                (c.observers).to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Failure-detection ablation: one crash among {IMAGES} sim images \
             (suspect = confirm = 3 heartbeats)"
        ),
        &["heartbeat", "drop", "detect", "abort", "suspects", "false (rate)", "observers"],
        &rows,
    );
    let json = format!("[\n{}\n]\n", cells.iter().map(json_line).collect::<Vec<_>>().join(",\n"));
    let path = "target/ablation_failure_detection.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nRecorded {} cells to {path}.", cells.len()),
        Err(e) => println!("\nCould not record JSON to {path}: {e}"),
    }
    println!("Every cell detected the scheduled victim; all survivors observed the death.");
}
