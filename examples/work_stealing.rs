//! Paper Figs. 2–3: the same work-stealing protocol written twice —
//! with one-sided get/put (five round trips per steal) and with function
//! shipping (two one-way trips) — and the measured message counts that
//! justify the rewrite.
//!
//! Run with: `cargo run --release --example work_stealing`
//!
//! Each image hosts a task queue as a coarray; idle images steal.
//! The get/put version does: get metadata, lock, get metadata again,
//! put updated metadata, get the stolen work, unlock — remote operations
//! in bold in the paper's listing. The shipped version moves that whole
//! sequence to the victim, where it becomes local loads and stores.

use std::sync::Arc;
use std::time::Instant;

use caf2::{CommMode, Image, NetworkModel, Runtime, RuntimeConfig};
use parking_lot::Mutex;

const TASKS_PER_IMAGE: usize = 256;
const WORK_PER_TASK_US: u64 = 30;

/// A trivially checkable "task": its own index.
type Task = u64;

fn busy(us: u64) {
    let t0 = Instant::now();
    while t0.elapsed().as_micros() < us as u128 {
        std::hint::spin_loop();
    }
}

fn run(n: usize, shipped: bool) -> (u64, u64, f64) {
    let queues: Arc<Vec<Mutex<Vec<Task>>>> =
        Arc::new((0..n).map(|_| Mutex::new(Vec::new())).collect());
    let cfg = RuntimeConfig {
        comm_mode: CommMode::DedicatedThread,
        network: NetworkModel::slow_cluster(),
        ..RuntimeConfig::default()
    };
    let t0 = Instant::now();
    let done: Vec<u64> = Runtime::launch(n, cfg, |img| {
        let world = img.world();
        let me = img.id().index();
        // Only even images get initial work: odd images must steal.
        {
            let mut q = queues[me].lock();
            if me % 2 == 0 {
                q.extend((0..2 * TASKS_PER_IMAGE as u64).map(|t| t + ((me as u64) << 32)));
            }
        }
        img.barrier(&world);
        let mut completed = 0u64;
        let mut failures = 0u32;
        while failures < 2 * n as u32 {
            // Drain local work.
            while let Some(_t) = queues[me].lock().pop() {
                busy(WORK_PER_TASK_US);
                completed += 1;
                img.progress();
            }
            // Steal.
            let victim = (me + 1 + (img.rng_below((n - 1) as u64) as usize)) % n;
            let got: Vec<Task> = if shipped {
                // Fig. 3: one shipped function does the whole critical
                // section at the victim; reply is a second shipped
                // function. Two one-way trips.
                let reply = img.event();
                let stolen = Arc::new(Mutex::new(Vec::new()));
                let (q2, s2) = (Arc::clone(&queues), Arc::clone(&stolen));
                let thief = img.id();
                let ev = reply;
                img.spawn(img.image(victim), move |v: &Image| {
                    let half: Vec<Task> = {
                        let mut q = q2[v.id().index()].lock();
                        let take = q.len() / 2;
                        q.drain(..take).collect()
                    };
                    let s3 = Arc::clone(&s2);
                    v.spawn_notify(thief, ev, move |_t: &Image| {
                        *s3.lock() = half;
                    });
                });
                img.event_wait(reply);
                let got = std::mem::take(&mut *stolen.lock());
                got
            } else {
                // Fig. 2: five remote operations via blocking one-sided
                // access to a lock word + queue metadata coarray.
                steal_get_put(img, &queues, victim)
            };
            if got.is_empty() {
                failures += 1;
            } else {
                failures = 0;
                queues[me].lock().extend(got);
            }
        }
        completed
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let total: u64 = done.iter().sum();
    (total, (n / 2 * 2 * TASKS_PER_IMAGE) as u64, elapsed)
}

/// The Fig. 2 protocol over coarrays: metadata = [lock, queue_len].
fn steal_get_put(img: &Image, queues: &Arc<Vec<Mutex<Vec<Task>>>>, victim: usize) -> Vec<Task> {
    // Model the five round trips with blocking one-sided accesses against
    // a metadata coarray; the actual queue lives in shared memory like
    // the runtime's coarray segments would.
    let me = img.id().index();
    let _ = me;
    // 1. get(v.metadata)
    let peek = queues[victim].lock().len();
    round_trip(img, victim);
    if peek == 0 {
        return Vec::new();
    }
    // 2. lock(v)
    round_trip(img, victim);
    // 3. m ← get(v.metadata) again under the lock
    round_trip(img, victim);
    let stolen: Vec<Task> = {
        let mut q = queues[victim].lock();
        let take = q.len() / 2;
        q.drain(..take).collect()
    };
    // 4. put(m − w, v.metadata) ; queue ← get(w, v.queue)
    round_trip(img, victim);
    // 5. unlock(v)
    round_trip(img, victim);
    stolen
}

/// One synchronous remote round trip (a blocking 1-word get).
fn round_trip(img: &Image, victim: usize) {
    // A blocking get against a scratch coarray would do; a spawn+event
    // ping keeps this example self-contained.
    let pong = img.event();
    img.spawn_notify(img.image(victim), pong, move |_v: &Image| {});
    img.event_wait(pong);
}

fn main() {
    let n = 4;
    println!("work stealing on {n} images, {} µs/task:", WORK_PER_TASK_US);
    let (done_gp, expect, t_gp) = run(n, false);
    println!("  get/put   (Fig. 2, 5 round trips/steal): {done_gp}/{expect} tasks in {t_gp:.2}s");
    let (done_fs, _, t_fs) = run(n, true);
    println!("  shipped   (Fig. 3, 2 trips/steal):       {done_fs}/{expect} tasks in {t_fs:.2}s");
    assert_eq!(done_gp, expect);
    assert_eq!(done_fs, expect);
    println!("  function shipping speedup on steal-heavy phase: {:.2}x", t_gp / t_fs);
}
