//! Timed per-image inboxes.
//!
//! Each image owns one inbox. Messages are stamped with a delivery
//! deadline when sent; [`Inbox::try_pop_due`] only surfaces a message once
//! its deadline has passed, which is how the fabric models wire latency
//! without dedicating a thread to the network. Blocked receivers park on a
//! condvar with a timeout at the earliest pending deadline.

use std::collections::BinaryHeap;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

struct Timed<M> {
    deliver_at: Instant,
    seq: u64,
    msg: M,
}

impl<M> PartialEq for Timed<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<M> Eq for Timed<M> {}
impl<M> PartialOrd for Timed<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Timed<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap → invert for earliest-deadline-first.
        (other.deliver_at, other.seq).cmp(&(self.deliver_at, self.seq))
    }
}

struct Inner<M> {
    heap: BinaryHeap<Timed<M>>,
    seq: u64,
}

/// A single image's timed message queue.
pub struct Inbox<M> {
    inner: Mutex<Inner<M>>,
    arrived: Condvar,
}

impl<M> Default for Inbox<M> {
    fn default() -> Self {
        Inbox::new()
    }
}

impl<M> Inbox<M> {
    /// Creates an empty inbox.
    pub fn new() -> Self {
        Inbox {
            inner: Mutex::new(Inner { heap: BinaryHeap::new(), seq: 0 }),
            arrived: Condvar::new(),
        }
    }

    /// Enqueues a message to surface at `deliver_at`, waking any parked
    /// receiver so it can re-evaluate its next deadline.
    pub fn push(&self, deliver_at: Instant, msg: M) {
        let mut inner = self.inner.lock();
        inner.seq += 1;
        let seq = inner.seq;
        inner.heap.push(Timed { deliver_at, seq, msg });
        drop(inner);
        self.arrived.notify_all();
    }

    /// Pops the earliest message whose deadline has passed, if any.
    pub fn try_pop_due(&self) -> Option<M> {
        let now = Instant::now();
        let mut inner = self.inner.lock();
        if inner.heap.peek().is_some_and(|t| t.deliver_at <= now) {
            Some(inner.heap.pop().expect("peeked").msg)
        } else {
            None
        }
    }

    /// Blocks until a message is due or `deadline` passes; returns the
    /// message or `None` on timeout.
    pub fn pop_due_until(&self, deadline: Instant) -> Option<M> {
        let mut inner = self.inner.lock();
        loop {
            let now = Instant::now();
            if inner.heap.peek().is_some_and(|t| t.deliver_at <= now) {
                return Some(inner.heap.pop().expect("peeked").msg);
            }
            if now >= deadline {
                return None;
            }
            // Park until the earliest pending deadline, an arrival, or
            // the caller's deadline — whichever comes first.
            let until = inner
                .heap
                .peek()
                .map(|t| t.deliver_at.min(deadline))
                .unwrap_or(deadline);
            self.arrived.wait_until(&mut inner, until);
        }
    }

    /// Wakes any receiver parked in [`Inbox::wait_activity`] or
    /// [`Inbox::pop_due_until`] without enqueueing a message. Used by
    /// communication threads after advancing an operation's completion
    /// state, so the image re-evaluates its wait predicate promptly.
    pub fn poke(&self) {
        self.arrived.notify_all();
    }

    /// Parks until *something happens*: a message arrives, [`Inbox::poke`]
    /// is called, the earliest pending delivery deadline passes, or
    /// `deadline` is reached. Callers re-check their predicate and drain
    /// due messages after this returns; spurious wakeups are harmless.
    pub fn wait_activity(&self, deadline: Instant) {
        let mut inner = self.inner.lock();
        let now = Instant::now();
        if inner.heap.peek().is_some_and(|t| t.deliver_at <= now) {
            return; // something is already due
        }
        let until = inner
            .heap
            .peek()
            .map(|t| t.deliver_at.min(deadline))
            .unwrap_or(deadline);
        if until > now {
            self.arrived.wait_until(&mut inner, until);
        }
    }

    /// Number of queued messages (due or not) — the backpressure metric.
    pub fn len(&self) -> usize {
        self.inner.lock().heap.len()
    }

    /// Whether the inbox is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn due_messages_pop_in_deadline_order() {
        let inbox = Inbox::new();
        let now = Instant::now();
        inbox.push(now, "b");
        inbox.push(now - Duration::from_millis(1), "a");
        assert_eq!(inbox.try_pop_due(), Some("a"));
        assert_eq!(inbox.try_pop_due(), Some("b"));
        assert_eq!(inbox.try_pop_due(), None);
    }

    #[test]
    fn future_messages_are_withheld() {
        let inbox = Inbox::new();
        inbox.push(Instant::now() + Duration::from_millis(50), 42u32);
        assert_eq!(inbox.try_pop_due(), None);
        assert_eq!(inbox.len(), 1);
        let got = inbox.pop_due_until(Instant::now() + Duration::from_millis(500));
        assert_eq!(got, Some(42));
    }

    #[test]
    fn pop_due_until_times_out() {
        let inbox: Inbox<u8> = Inbox::new();
        let start = Instant::now();
        let got = inbox.pop_due_until(start + Duration::from_millis(20));
        assert_eq!(got, None);
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn equal_deadlines_pop_in_push_order() {
        let inbox = Inbox::new();
        let t = Instant::now();
        for i in 0..10 {
            inbox.push(t, i);
        }
        for i in 0..10 {
            assert_eq!(inbox.try_pop_due(), Some(i));
        }
    }

    #[test]
    fn cross_thread_wakeup() {
        let inbox = std::sync::Arc::new(Inbox::new());
        let producer = {
            let inbox = inbox.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                inbox.push(Instant::now(), 7u8);
            })
        };
        let got = inbox.pop_due_until(Instant::now() + Duration::from_secs(5));
        assert_eq!(got, Some(7));
        producer.join().unwrap();
    }
}
