//! # caf-des
//!
//! A deterministic discrete-event simulation engine. The paper evaluated
//! `finish`/`cofence` on 4K–32K cores of Jaguar and Hopper; this crate is
//! the substitute substrate that lets `caf-sim` execute the same
//! algorithms — the epoch termination detector, lifeline work stealing,
//! bunched RandomAccess — at those image counts in virtual time on one
//! machine.
//!
//! * [`engine`] — the time-ordered event queue (deterministic tie-breaks,
//!   no wall-clock or ambient randomness);
//! * [`net`] — the interconnect cost model in integer nanoseconds,
//!   convertible from the shared [`caf_core::config::NetworkModel`];
//! * [`chaos`] — the fault-injection plan and retry policy projected into
//!   simulated time, sharing [`caf_core::fault::FaultPlan`]'s decision
//!   stream with the threaded fabric.

#![warn(missing_docs)]

pub mod chaos;
pub mod engine;
pub mod net;

pub use chaos::ChaosWire;
pub use engine::{Engine, SimTime};
pub use net::SimNet;
