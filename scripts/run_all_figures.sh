#!/usr/bin/env bash
# Regenerates every paper figure and ablation, teeing outputs to results/.
# Full run takes ~10-15 minutes on one core (the UTS simulations dominate);
# set UTS_DEPTH=11 for a ~1-minute smoke pass.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
for bin in fig05_barrier_failure fig12_cofence fig13_randomaccess \
           fig14_bunch_size fig16_load_balance fig17_uts_efficiency \
           fig18_allreduce_rounds ablation_detectors ablation_comm_thread \
           ablation_steal_chunk ablation_treeshape; do
  echo "=== $bin ==="
  cargo run --release -p bench --bin "$bin" | tee "results/$bin.txt"
done
echo "All figure outputs in results/"
