//! Sequential UTS enumeration — the ground truth for the parallel
//! implementations and the T₁ baseline of the parallel-efficiency figure.

use crate::tree::{Node, TreeSpec};

/// Results of a full traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeStats {
    /// Total nodes, including the root.
    pub nodes: u64,
    /// Leaves (nodes with no children).
    pub leaves: u64,
    /// Maximum depth reached.
    pub max_depth: u32,
}

/// Depth-first count of the whole tree (iterative; UTS trees are shallow
/// but wide, so an explicit stack is the right shape).
pub fn count_tree(spec: &TreeSpec) -> TreeStats {
    let mut stats = TreeStats { nodes: 0, leaves: 0, max_depth: 0 };
    let mut stack: Vec<Node> = vec![spec.root()];
    let mut children = Vec::new();
    while let Some(node) = stack.pop() {
        stats.nodes += 1;
        stats.max_depth = stats.max_depth.max(node.depth);
        children.clear();
        let n = spec.expand_into(&node, &mut children);
        if n == 0 {
            stats.leaves += 1;
        }
        stack.append(&mut children);
    }
    stats
}

/// Counts at most `limit` nodes, returning `None` if the tree is bigger
/// (guards against accidentally enumerating T1WL on a laptop).
pub fn count_tree_bounded(spec: &TreeSpec, limit: u64) -> Option<TreeStats> {
    let mut stats = TreeStats { nodes: 0, leaves: 0, max_depth: 0 };
    let mut stack: Vec<Node> = vec![spec.root()];
    let mut children = Vec::new();
    while let Some(node) = stack.pop() {
        stats.nodes += 1;
        if stats.nodes > limit {
            return None;
        }
        stats.max_depth = stats.max_depth.max(node.depth);
        children.clear();
        let n = spec.expand_into(&node, &mut children);
        if n == 0 {
            stats.leaves += 1;
        }
        stack.append(&mut children);
    }
    Some(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small-tree regression pin: a change in the hash, the RNG byte
    /// order, or the geometric draw shifts these counts.
    #[test]
    fn small_geo_trees_are_stable() {
        let s4 = count_tree(&TreeSpec::geo_fixed(4.0, 4, 19));
        let s5 = count_tree(&TreeSpec::geo_fixed(4.0, 5, 19));
        // Sanity: supersets grow strictly, roots agree.
        assert!(s5.nodes > s4.nodes);
        assert!(s4.max_depth <= 4 && s5.max_depth <= 5);
        assert!(s4.leaves > 0);
        // Deterministic across runs.
        assert_eq!(count_tree(&TreeSpec::geo_fixed(4.0, 4, 19)), s4);
    }

    /// **Generator validation** (see EXPERIMENTS.md §workload-fidelity):
    /// the offline build environment cannot fetch the official UTS
    /// tarball, so instead of asserting the published T1 size (4,130,071,
    /// which is sensitive to undocumented byte-order conventions in the
    /// reference `rng/brg_sha1.c`) this test (a) pins *our* deterministic
    /// T1 count as a regression, and (b) validates the distribution: max
    /// depth exactly 10, leaf fraction ≈ p = 1/(1+b₀) = 20 %, and mean
    /// branching of internal levels ≈ 4. (~1M SHA-1 calls: run with
    /// `cargo test -p uts --release -- --ignored`.)
    #[test]
    #[ignore = "runs ~1M SHA-1 computations; enable with --ignored (use --release)"]
    fn t1_distribution_and_determinism() {
        let stats = count_tree(&TreeSpec::t1());
        // Determinism pin for this implementation's conventions.
        assert_eq!(stats.nodes, 1_100_557);
        assert_eq!(stats.max_depth, 10);
        // Distribution: with mean branching 4, the horizon level holds
        // ~3/4 of all nodes and is all leaves; inner levels add 20 % of
        // the rest — the published T1 reports 80.01 % leaves and this
        // implementation must land in the same regime.
        let leaf_frac = stats.leaves as f64 / stats.nodes as f64;
        assert!(
            (0.75..0.85).contains(&leaf_frac),
            "leaf fraction {leaf_frac} inconsistent with GEO-FIXED b=4 d=10"
        );
    }

    /// Statistical check of the geometric child-count draw: over many
    /// independent descriptors, the sample mean must approach b₀ = 4 and
    /// the zero-children probability must approach p = 0.2.
    #[test]
    fn geometric_draw_has_correct_distribution() {
        let spec = TreeSpec::geo_fixed(4.0, 1_000_000, 7);
        // Generate many depth-1 nodes (all below the horizon).
        let root = spec.root();
        let trials = 20_000usize;
        let mut total = 0usize;
        let mut zeros = 0usize;
        for i in 0..trials {
            let child = spec.child(&root, i);
            let k = spec.num_children(&child);
            total += k;
            if k == 0 {
                zeros += 1;
            }
        }
        let mean = total as f64 / trials as f64;
        let p0 = zeros as f64 / trials as f64;
        assert!((3.8..4.2).contains(&mean), "mean branching {mean} ≉ 4");
        assert!((0.185..0.215).contains(&p0), "leaf probability {p0} ≉ 0.2");
    }

    #[test]
    fn bounded_count_detects_oversize() {
        let spec = TreeSpec::geo_fixed(4.0, 5, 19);
        let full = count_tree(&spec);
        assert_eq!(count_tree_bounded(&spec, full.nodes), Some(full));
        assert_eq!(count_tree_bounded(&spec, full.nodes - 1), None);
    }
}
