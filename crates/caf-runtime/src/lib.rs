//! # caf-runtime
//!
//! A threaded Coarray Fortran 2.0 runtime: the paper's programming model —
//! asynchronous copies, function shipping, asynchronous collectives,
//! events, `finish`, and `cofence` — as a Rust library. Process images are
//! OS threads communicating through the simulated interconnect of
//! `caf-net`; the synchronization semantics (epoch-tagged termination
//! detection, completion stages, directional fences) come from `caf-core`
//! and are shared verbatim with the paper-scale simulator.
//!
//! ## Quick start
//!
//! ```
//! use caf_core::config::RuntimeConfig;
//! use caf_runtime::Runtime;
//!
//! // Four SPMD images: everyone ships an increment to its neighbour;
//! // finish guarantees global completion before anyone reads.
//! let totals = Runtime::launch(4, RuntimeConfig::testing(), |img| {
//!     let world = img.world();
//!     let counters = img.coarray(&world, 1, 0i64);
//!     img.finish(&world, |img| {
//!         let target = img.image((img.id().index() + 1) % img.num_images());
//!         let c = counters.clone();
//!         img.spawn(target, move |peer| {
//!             c.with_local(peer.id(), |seg| seg[0] += 1);
//!         });
//!     });
//!     let mine = counters.with_local(img.id(), |seg| seg[0]);
//!     img.allreduce(&world, mine, |a, b| a + b)
//! });
//! assert_eq!(totals, vec![4, 4, 4, 4]);
//! ```

#![warn(missing_docs)]

pub mod async_coll;
pub mod coarray;
mod cofence;
mod collective;
pub mod completion;
pub mod copy;
pub mod event;
pub mod failure;
mod finish;
pub mod image;
pub mod msg;
mod runtime;
mod state;
pub mod watchdog;

pub use async_coll::{AsyncCollEvents, AsyncScalar};
pub use caf_core::cofence::{CofenceSpec, LocalAccess, Pass};
pub use caf_core::config::{CommMode, NetworkModel, RuntimeConfig};
pub use caf_core::failure::FailureParams;
pub use caf_core::fault::{FaultPlan, RetryPolicy, StallWindow};
pub use caf_core::ids::{EventId, ImageId, TeamRank};
pub use caf_core::topology::Team;
pub use coarray::{CoSlice, Coarray, LocalArray};
pub use completion::Stage;
pub use copy::{AsyncOp, CopyEvents};
pub use event::{CoEvent, Event};
pub use failure::{FailureReport, ImageFailureObservation};
pub use image::Image;
pub use runtime::Runtime;
pub use watchdog::{FinishDiag, ImageStallReport, RuntimeError, StallReport};
