//! # randomaccess
//!
//! The HPC Challenge RandomAccess benchmark (paper §IV-B): the official
//! polynomial update stream with logarithmic `starts()` jumps, a
//! distributed table as a coarray, and the paper's two kernels —
//! racy Get-Update-Put and atomic function shipping with bunched
//! `finish` blocks.

#![warn(missing_docs)]

pub mod kernels;
pub mod stream;

pub use kernels::{run_fs, run_gup, RaConfig, RaOutcome};
pub use stream::{next, starts, PERIOD, POLY};
