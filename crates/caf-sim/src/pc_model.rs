//! The cofence micro-benchmark at paper scale (Figs. 11–12).
//!
//! Paper Fig. 11's sketch: inside a `finish`, the producer (image 0)
//! iterates — five 80-byte `copy_async`es to random images, then one of
//! three completion strategies, then produce the next buffer:
//!
//! * **cofence** — wait for *local data completion* only (the source
//!   snapshot on the communication thread);
//! * **events** — `event_wait` on each copy's `destE`: wait for delivery
//!   to the destination plus the notification hop back;
//! * **finish** — an inner `finish` per iteration: *global* completion,
//!   paying the team allreduce (twice, in fact: receivers enter the wave
//!   before the copies land, so the first wave's sum is nonzero — the
//!   same two-wave pattern the real runtime exhibits).
//!
//! Iterations are timing-identical under a jitter-free network, so the
//! model simulates `sample_iters` full protocol rounds (driving the real
//! [`FinishSim`] detector for the finish variant) and scales to the
//! requested iteration count.

use caf_core::rng::SplitMix64;
use caf_des::SimNet;

use crate::finish_sim::FinishSim;

/// Completion strategy of the benchmark variant (Fig. 12's three series).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncVariant {
    /// Local data completion via `cofence`.
    Cofence,
    /// Local operation completion via `event_wait` on `destE`.
    Events,
    /// Global completion via an inner `finish` block.
    Finish,
}

/// Micro-benchmark parameters (defaults match the paper: 5 copies of
/// 80 bytes per iteration).
#[derive(Debug, Clone)]
pub struct PcConfig {
    /// Team size (the paper sweeps 128–1024 cores).
    pub images: usize,
    /// Iterations of the producer loop (paper: 10⁶).
    pub iterations: u64,
    /// Copies initiated per iteration.
    pub copies_per_iter: usize,
    /// Payload bytes per copy.
    pub bytes: usize,
    /// Cost to produce the next buffer (`produce_work_next_rnd`).
    pub produce_ns: u64,
    /// Source-buffer snapshot cost on the communication thread.
    pub snapshot_ns: u64,
    /// Interconnect model.
    pub net: SimNet,
    /// Protocol rounds actually simulated before extrapolating.
    pub sample_iters: u64,
    /// Simulation seed.
    pub seed: u64,
}

impl PcConfig {
    /// Paper-shaped defaults for a given team size.
    pub fn new(images: usize) -> Self {
        PcConfig {
            images,
            iterations: 1_000_000,
            copies_per_iter: 5,
            bytes: 80,
            produce_ns: 2_000,
            snapshot_ns: 200,
            net: SimNet::gemini_like(),
            sample_iters: 64,
            seed: 0x5eed,
        }
    }
}

/// Result of one variant run.
#[derive(Debug, Clone)]
pub struct PcResult {
    /// Extrapolated virtual time for the full iteration count.
    pub sim_time_ns: u64,
    /// Mean time of one iteration.
    pub per_iter_ns: u64,
    /// Reduction waves per iteration (finish variant; 0 otherwise).
    pub waves_per_iter: f64,
}

/// Runs the micro-benchmark model for one variant.
pub fn run_pc(cfg: &PcConfig, variant: SyncVariant) -> PcResult {
    let mut rng = SplitMix64::new(cfg.seed);
    let k = cfg.copies_per_iter as u64;
    let mut total = 0u64;
    let mut waves = 0u64;
    for _ in 0..cfg.sample_iters {
        // Communication-thread timeline: per copy, snapshot then inject.
        let inject = cfg.net.injection_ns;
        let last_snapshot_done = k * cfg.snapshot_ns + (k - 1) * inject;
        let last_injected = k * (cfg.snapshot_ns + inject);
        // Deliveries: serialized injections, then the wire.
        let wire = cfg.net.delivery_delay(cfg.bytes, &mut rng) - cfg.net.injection_ns;
        let last_delivered = last_injected + wire;
        // Notification hop back to the producer.
        let notify = cfg.net.delivery_delay(16, &mut rng);
        let last_acked = last_delivered + notify;

        let iter = match variant {
            SyncVariant::Cofence => last_snapshot_done + cfg.produce_ns,
            SyncVariant::Events => last_acked + cfg.produce_ns,
            SyncVariant::Finish => {
                // Drive the actual detector through one inner finish.
                let mut fsim = FinishSim::new(cfg.images, true);
                // Passive consumers enter immediately.
                for i in 1..cfg.images {
                    let _ = fsim.try_enter(i, 0);
                }
                let tags: Vec<_> = (0..k).map(|_| fsim.on_send(0)).collect();
                for tag in &tags {
                    // Receiver identity doesn't affect timing; pick one.
                    let dst = 1 + (rng.next_below((cfg.images - 1).max(1) as u64) as usize);
                    fsim.on_receive(dst.min(cfg.images - 1), *tag);
                    fsim.on_complete(dst.min(cfg.images - 1), *tag);
                    fsim.on_delivered(0);
                }
                let mut now = last_acked;
                // Producer joins; waves run until the sum is zero.
                let mut entered_all = fsim.try_enter(0, now);
                loop {
                    assert!(entered_all, "all images must be in the wave");
                    now += cfg.net.allreduce_cost(cfg.images, &mut rng);
                    waves += 1;
                    if fsim.complete_wave() == caf_core::termination::WaveDecision::Terminated {
                        break;
                    }
                    entered_all = false;
                    for i in 0..cfg.images {
                        entered_all = fsim.try_enter(i, now) || entered_all;
                    }
                }
                now + cfg.produce_ns
            }
        };
        total += iter;
    }
    let per_iter = total / cfg.sample_iters;
    PcResult {
        sim_time_ns: per_iter * cfg.iterations,
        per_iter_ns: per_iter,
        waves_per_iter: waves as f64 / cfg.sample_iters as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(images: usize, v: SyncVariant) -> PcResult {
        let mut cfg = PcConfig::new(images);
        cfg.iterations = 1000;
        run_pc(&cfg, v)
    }

    /// The paper's headline ordering: cofence < events < finish.
    #[test]
    fn variant_ordering_matches_fig12() {
        for p in [16usize, 128, 1024] {
            let c = run(p, SyncVariant::Cofence).per_iter_ns;
            let e = run(p, SyncVariant::Events).per_iter_ns;
            let f = run(p, SyncVariant::Finish).per_iter_ns;
            assert!(c < e, "p={p}: cofence {c} !< events {e}");
            assert!(e < f, "p={p}: events {e} !< finish {f}");
        }
    }

    /// The finish variant's cost grows with team size (its allreduce is
    /// O(log p) deep); the cofence variant's does not.
    #[test]
    fn finish_grows_with_cores_cofence_does_not() {
        let f128 = run(128, SyncVariant::Finish).per_iter_ns;
        let f1024 = run(1024, SyncVariant::Finish).per_iter_ns;
        assert!(f1024 > f128, "finish: {f1024} !> {f128}");
        let c128 = run(128, SyncVariant::Cofence).per_iter_ns;
        let c1024 = run(1024, SyncVariant::Cofence).per_iter_ns;
        assert_eq!(c128, c1024, "cofence cost must be core-count independent");
    }

    /// Receivers enter before data lands, so each inner finish needs two
    /// waves — the protocol subtlety the model must reproduce.
    #[test]
    fn inner_finish_needs_two_waves() {
        let r = run(64, SyncVariant::Finish);
        assert!((1.9..=2.1).contains(&r.waves_per_iter), "waves {}", r.waves_per_iter);
    }

    #[test]
    fn extrapolation_scales_linearly() {
        let mut cfg = PcConfig::new(32);
        cfg.iterations = 10;
        let a = run_pc(&cfg, SyncVariant::Events);
        cfg.iterations = 100;
        let b = run_pc(&cfg, SyncVariant::Events);
        assert_eq!(b.sim_time_ns, 10 * a.sim_time_ns);
    }
}
