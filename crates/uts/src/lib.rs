//! # uts
//!
//! The Unbalanced Tree Search benchmark (paper §IV-C): from-scratch
//! SHA-1, the official splittable node-descriptor RNG, geometric and
//! binomial tree specifications (T1/T1L/T1WL/T3), a sequential
//! enumerator, and a CAF 2.0 parallel implementation combining initial
//! work sharing, randomized work stealing via shipped functions,
//! hypercube lifelines, and `finish` termination detection (paper
//! Fig. 15).

#![warn(missing_docs)]

pub mod caf_uts;
pub mod rng;
pub mod sequential;
pub mod sha1;
pub mod tree;

pub use rng::UtsRng;
pub use sequential::{count_tree, count_tree_bounded, TreeStats};
pub use tree::{GeoShape, Node, TreeKind, TreeSpec};
