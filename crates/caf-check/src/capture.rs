//! Validation of real-execution traces captured by `caf-core`'s
//! [`TraceRecorder`] hooks in `caf-runtime`.
//!
//! The runtime records the same protocol events the model checker
//! explores — sends, delivery acks, receptions, completions, wave entries
//! and exits, poison — with parities and contributions attached. This
//! module replays a captured trace through fresh [`EpochDetector`]s and
//! cross-checks every recorded value against the replica:
//!
//! * each `Send`'s recorded parity must equal what the replica's epoch
//!   state hands out at that point in the image's program order;
//! * each `EnterWave` must happen with the replica ready (the quiescence
//!   precondition) and carry exactly the replica's contribution;
//! * each `ExitWave` must carry a sum shared by every image in that wave,
//!   equal to the entered contributions, and a `terminated` flag matching
//!   the replica's decision.
//!
//! Any divergence means the runtime's detector wiring and the verified
//! model have drifted apart — exactly the gap trace capture exists to
//! close.

use std::collections::BTreeMap;

use caf_core::ids::Parity;
use caf_core::termination::{EpochDetector, WaveDecision, WaveDetector};
use caf_core::trace::TraceEvent;

use crate::world::{Violation, ViolationKind};

/// Summary of a validated capture.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CaptureReport {
    /// Distinct finish blocks seen.
    pub finishes: usize,
    /// Total events validated.
    pub events: usize,
    /// Total waves closed across all finishes.
    pub waves: usize,
}

fn fail(detail: String) -> Violation {
    Violation { kind: ViolationKind::Capture, detail }
}

/// Validates a captured event stream. `wait_quiescence` must match the
/// runtime's `finish_wait_quiescence` config. Event order within each
/// image is the image thread's program order; cross-image order is
/// whatever the recorder's lock happened to serialize, which is a legal
/// interleaving by construction.
pub fn validate(events: &[TraceEvent], wait_quiescence: bool) -> Result<CaptureReport, Violation> {
    let mut report = CaptureReport::default();
    // Group by finish id, preserving order.
    let mut by_finish: BTreeMap<(u64, u64), Vec<&TraceEvent>> = BTreeMap::new();
    for ev in events {
        by_finish.entry(ev.finish()).or_default().push(ev);
    }
    report.finishes = by_finish.len();
    report.events = events.len();
    for (fid, evs) in by_finish {
        report.waves += validate_finish(fid, &evs, wait_quiescence)?;
    }
    Ok(report)
}

fn validate_finish(
    fid: (u64, u64),
    events: &[&TraceEvent],
    wait_quiescence: bool,
) -> Result<usize, Violation> {
    let mut dets: BTreeMap<usize, EpochDetector> = BTreeMap::new();
    // Per-image count of exited waves (the image's current wave index),
    // and the recorded per-wave contributions/sums for cross-checks.
    let mut exited: BTreeMap<usize, usize> = BTreeMap::new();
    let mut contributions: BTreeMap<(usize, usize), [i64; 2]> = BTreeMap::new();
    let mut wave_sums: BTreeMap<usize, [i64; 2]> = BTreeMap::new();
    let mut saw_poison = false;
    let mut max_wave = 0usize;
    for ev in events {
        let image = ev.image();
        let det = dets.entry(image).or_insert_with(|| EpochDetector::new(wait_quiescence));
        match ev {
            TraceEvent::Send { parity, .. } => {
                let replica = det.on_send();
                if replica != *parity {
                    return Err(fail(format!(
                        "finish {fid:?}: image {image} recorded a {parity:?} send where the \
                         replayed epoch state hands out {replica:?}"
                    )));
                }
            }
            TraceEvent::Delivered { .. } => det.on_delivered(Parity::Even),
            TraceEvent::Receive { parity, .. } => det.on_receive(*parity),
            TraceEvent::Complete { parity, .. } => det.on_complete(*parity),
            TraceEvent::EnterWave { contribution, .. } => {
                if !det.ready() {
                    return Err(fail(format!(
                        "finish {fid:?}: image {image} entered a wave while the replayed \
                         detector was not ready (quiescence violated)"
                    )));
                }
                let replica = det.enter_wave();
                if replica != *contribution {
                    return Err(fail(format!(
                        "finish {fid:?}: image {image} recorded contribution {contribution:?} \
                         but the replayed detector contributes {replica:?}"
                    )));
                }
                let wave = exited.get(&image).copied().unwrap_or(0);
                contributions.insert((wave, image), *contribution);
            }
            TraceEvent::ExitWave { sum, terminated, .. } => {
                let wave = exited.entry(image).or_insert(0);
                let decision = det.exit_wave(*sum);
                let replica_terminated = decision == WaveDecision::Terminated;
                if replica_terminated != *terminated {
                    return Err(fail(format!(
                        "finish {fid:?}: image {image} recorded terminated={terminated} in \
                         wave {wave} but the replayed detector decided {decision:?}"
                    )));
                }
                match wave_sums.get(wave) {
                    Some(prev) if prev != sum => {
                        return Err(fail(format!(
                            "finish {fid:?}: wave {wave} closed with sum {sum:?} at image \
                             {image} but {prev:?} elsewhere — the allreduce diverged"
                        )));
                    }
                    _ => {
                        wave_sums.insert(*wave, *sum);
                    }
                }
                max_wave = max_wave.max(*wave + 1);
                *wave += 1;
            }
            TraceEvent::Poison { victim, .. } => {
                det.poison(*victim);
                saw_poison = true;
            }
        }
    }
    // Cross-image: each wave's recorded sum must equal the sum of the
    // recorded contributions of the images that entered it. Crash runs
    // reduce over the surviving team mid-transition; skip the global sum
    // check there (the per-image replica checks above still ran).
    if !saw_poison {
        for (wave, sum) in &wave_sums {
            let total: [i64; 2] = contributions
                .iter()
                .filter(|((w, _), _)| w == wave)
                .fold([0, 0], |acc, (_, c)| [acc[0] + c[0], acc[1] + c[1]]);
            if total != *sum {
                return Err(fail(format!(
                    "finish {fid:?}: wave {wave} recorded sum {sum:?} but the entered \
                     contributions add to {total:?}"
                )));
            }
        }
    }
    Ok(max_wave)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-build the capture of a clean p=2 run: image 0 spawns one
    /// function at image 1, then one wave terminates the finish.
    fn clean_capture() -> Vec<TraceEvent> {
        let f = (0, 1);
        vec![
            TraceEvent::Send { image: 0, finish: f, parity: Parity::Even },
            TraceEvent::Receive { image: 1, finish: f, parity: Parity::Even },
            TraceEvent::Delivered { image: 0, finish: f },
            TraceEvent::Complete { image: 1, finish: f, parity: Parity::Even },
            TraceEvent::EnterWave { image: 0, finish: f, contribution: [1, 0] },
            TraceEvent::EnterWave { image: 1, finish: f, contribution: [-1, 0] },
            TraceEvent::ExitWave { image: 0, finish: f, sum: [0, 0], terminated: true },
            TraceEvent::ExitWave { image: 1, finish: f, sum: [0, 0], terminated: true },
        ]
    }

    #[test]
    fn clean_capture_validates() {
        let report = validate(&clean_capture(), true).expect("clean capture");
        assert_eq!(report, CaptureReport { finishes: 1, events: 8, waves: 1 });
    }

    #[test]
    fn wrong_parity_is_flagged() {
        let mut evs = clean_capture();
        evs[0] = TraceEvent::Send { image: 0, finish: (0, 1), parity: Parity::Odd };
        let v = validate(&evs, true).unwrap_err();
        assert_eq!(v.kind, ViolationKind::Capture);
        assert!(v.detail.contains("send"), "{}", v.detail);
    }

    #[test]
    fn quiescence_violation_is_flagged() {
        // Image 0 enters the wave with its send still unacked.
        let f = (0, 1);
        let evs = vec![
            TraceEvent::Send { image: 0, finish: f, parity: Parity::Even },
            TraceEvent::EnterWave { image: 0, finish: f, contribution: [1, 0] },
        ];
        let v = validate(&evs, true).unwrap_err();
        assert!(v.detail.contains("not ready"), "{}", v.detail);
        // The loose detector is allowed to do exactly that.
        assert!(validate(&evs, false).is_ok());
    }

    #[test]
    fn diverged_sum_is_flagged() {
        let mut evs = clean_capture();
        evs[7] = TraceEvent::ExitWave { image: 1, finish: (0, 1), sum: [1, 0], terminated: false };
        let v = validate(&evs, true).unwrap_err();
        assert!(v.detail.contains("allreduce diverged"), "{}", v.detail);
    }

    #[test]
    fn wrong_contribution_is_flagged() {
        let mut evs = clean_capture();
        evs[4] = TraceEvent::EnterWave { image: 0, finish: (0, 1), contribution: [2, 0] };
        let v = validate(&evs, true).unwrap_err();
        assert!(v.detail.contains("contribut"), "{}", v.detail);
    }
}
