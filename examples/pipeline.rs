//! A ring pipeline tuned with `cofence` (paper Figs. 8 and 11).
//!
//! Run with: `cargo run --release --example pipeline`
//!
//! Each image repeatedly produces a buffer and `copy_async`es it to its
//! successor's inbox, double-buffered. Three completion strategies — the
//! Fig. 12 micro-benchmark's cast — are timed against each other:
//!
//! * `cofence` — wait only for *local data completion* (the source
//!   snapshot), then immediately produce the next buffer;
//! * events — wait for delivery at the successor (one round trip);
//! * `finish` — wait for *global completion* each round (log p latency).
//!
//! The received values are checksummed, so all three variants are also
//! verified to deliver exactly the same data.

use std::time::Instant;

use caf2::{CommMode, CopyEvents, NetworkModel, Runtime, RuntimeConfig};

const ROUNDS: usize = 200;
const WORDS: usize = 64;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Variant {
    Cofence,
    Events,
    Finish,
}

fn produce(round: usize, rank: usize, out: &mut [u64]) {
    for (i, v) in out.iter_mut().enumerate() {
        *v = (round * 31 + rank * 7 + i) as u64;
    }
}

fn run(n: usize, variant: Variant) -> (f64, u64) {
    let cfg = RuntimeConfig {
        comm_mode: CommMode::DedicatedThread,
        network: NetworkModel::slow_cluster(),
        ..RuntimeConfig::default()
    };
    let sums = Runtime::launch(n, cfg, |img| {
        let world = img.world();
        let me = img.id();
        let rank = me.index();
        let succ = img.image((rank + 1) % n);
        // Double-buffered inbox: slot r%2 holds round r's data.
        let inbox = img.coarray(&world, 2 * WORDS, 0u64);
        let src = caf2::LocalArray::new(vec![0u64; WORDS]);
        let delivered = img.coevent();
        // Double-buffer credits: the consumer returns a credit after
        // consuming a round, and the producer may only be two rounds
        // ahead of its successor's consumption.
        let credit = img.coevent();
        let mut checksum = 0u64;
        img.barrier(&world);
        let t0 = Instant::now();
        for round in 0..ROUNDS {
            let slot = (round % 2) * WORDS;
            if round >= 2 {
                img.event_wait(credit.on(me));
            }
            src.with(|b| produce(round, rank, b));
            match variant {
                Variant::Cofence => {
                    // Implicit completion: the copy is managed by cofence.
                    img.copy_async_from(
                        inbox.slice(succ, slot..slot + WORDS),
                        &src,
                        0..WORDS,
                        CopyEvents::none(),
                    );
                    // Local data completion only: src is reusable and the
                    // data message is injected; the copy itself is still
                    // in flight. The explicit notify below follows it on
                    // the (FIFO) fabric, so the consumer's wait is sound.
                    img.cofence();
                    img.event_notify(delivered.on(succ));
                }
                Variant::Events => {
                    let sent = img.event();
                    img.copy_async_from(
                        inbox.slice(succ, slot..slot + WORDS),
                        &src,
                        0..WORDS,
                        CopyEvents { pre: None, src: None, dest: Some(sent) },
                    );
                    // Local operation completion: wait for delivery.
                    img.event_wait(sent);
                    img.event_notify(delivered.on(succ));
                }
                Variant::Finish => {
                    img.finish(&world, |img| {
                        img.copy_async_from(
                            inbox.slice(succ, slot..slot + WORDS),
                            &src,
                            0..WORDS,
                            CopyEvents::none(),
                        );
                    });
                    img.event_notify(delivered.on(succ));
                }
            }
            // Consume the predecessor's buffer for this round.
            img.event_wait(delivered.on(me));
            let pred = (rank + n - 1) % n;
            let got = inbox.read(me, slot..slot + WORDS);
            let mut expect = vec![0u64; WORDS];
            produce(round, pred, &mut expect);
            assert_eq!(got, expect, "round {round} corrupted");
            checksum = checksum.wrapping_add(got.iter().sum::<u64>());
            // Return the buffer credit to the producer.
            img.event_notify(credit.on(img.image(pred)));
        }
        let dt = t0.elapsed().as_secs_f64();
        img.barrier(&world);
        (dt, checksum)
    });
    let worst = sums.iter().map(|(t, _)| *t).fold(0.0f64, f64::max);
    (worst, sums.iter().map(|(_, c)| c).sum())
}

fn main() {
    let n = 4;
    println!("ring pipeline, {n} images × {ROUNDS} rounds of {WORDS} words:");
    let (t_c, sum_c) = run(n, Variant::Cofence);
    let (t_e, sum_e) = run(n, Variant::Events);
    let (t_f, sum_f) = run(n, Variant::Finish);
    assert_eq!(sum_c, sum_e);
    assert_eq!(sum_c, sum_f);
    println!("  cofence (local data completion): {:>8.1} ms", t_c * 1e3);
    println!("  events  (local op completion):   {:>8.1} ms", t_e * 1e3);
    println!("  finish  (global completion):     {:>8.1} ms", t_f * 1e3);
    println!("  (identical checksums: {sum_c:#x})");
}
