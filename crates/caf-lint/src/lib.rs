//! caf-lint: a static happens-before and fence-placement analyzer for
//! CAF 2.0 async plans.
//!
//! The paper's asynchrony model hands the programmer a four-point
//! completion ladder — initiation, local data completion (`cofence`),
//! local operation completion (events), global completion (`finish`) —
//! and with it a matching ladder of ways to go wrong: fence the wrong
//! direction and a buffer is reused mid-flight; fence too strongly and
//! the overlap the asynchrony bought is thrown away; forget the
//! `finish` and nothing ever guarantees a shipped function ran; wait on
//! an event inside the `finish` that must complete before the post can
//! happen, and the program deadlocks. This crate catches all four
//! *statically*, on a loop-free plan describing the program's
//! communication skeleton.
//!
//! Three frontends produce plans: a fluent [`builder`], a textual
//! format ([`parse`]), and reconstruction from `caf-core` protocol
//! traces ([`from_trace`]). One lowering ([`ir`]) flattens a plan into
//! per-image step sequences with every operation's local-access class
//! precomputed; the happens-before engine ([`hb`]) and the four
//! analyses ([`diag`]) run over that. The companion `caf-check` crate
//! replays the same lowering through exhaustive schedule exploration,
//! as a differential oracle for the diagnostics reported here.

pub mod builder;
pub mod diag;
pub mod from_trace;
pub mod hb;
pub mod ir;
pub mod parse;

pub use builder::PlanBuilder;
pub use diag::{lint, lint_lowered, render, Analysis, Diagnostic, Severity};
pub use from_trace::plan_from_trace;
pub use ir::{Lowered, Plan, PlanError};
pub use parse::parse;
