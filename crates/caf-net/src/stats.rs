//! Lock-free fabric traffic counters, used by benches and ablations.

use std::sync::atomic::{AtomicU64, Ordering};

/// Aggregate counters for one fabric instance. All methods are safe to
/// call concurrently; counts are monotone.
#[derive(Debug, Default)]
pub struct FabricStats {
    messages: AtomicU64,
    bytes: AtomicU64,
    backpressure_stalls: AtomicU64,
}

impl FabricStats {
    pub(crate) fn note_send(&self, payload_bytes: usize) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(payload_bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn note_backpressure_stall(&self) {
        self.backpressure_stalls.fetch_add(1, Ordering::Relaxed);
    }

    /// Total messages sent through the fabric.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Total payload bytes sent through the fabric.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Total sender stalls caused by inbox backpressure.
    pub fn backpressure_stalls(&self) -> u64 {
        self.backpressure_stalls.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = FabricStats::default();
        s.note_send(10);
        s.note_send(5);
        s.note_backpressure_stall();
        assert_eq!(s.messages(), 2);
        assert_eq!(s.bytes(), 15);
        assert_eq!(s.backpressure_stalls(), 1);
    }
}
