//! # caf-sim
//!
//! Paper-scale models of the evaluation workloads, executed on the
//! deterministic discrete-event simulator of `caf-des` while driving the
//! *same* termination-detection state machines as the threaded runtime
//! (`caf_core::termination`):
//!
//! * [`finish_sim`] — virtual-time `finish` wave coordination;
//! * [`chaos_model`] — the fault-injection plan, ack/retry reliable
//!   delivery, and the stall outcome replayed at 4K+ images;
//! * [`uts_model`] — lifeline work stealing over up to 32 768 images
//!   (Figs. 16–18);
//! * [`ra_model`] — bunched RandomAccess with injection/service limits
//!   and GASNet-style flow control (Figs. 13–14);
//! * [`pc_model`] — the producer-consumer cofence micro-benchmark
//!   (Fig. 12).

#![warn(missing_docs)]

pub mod chaos_model;
pub mod finish_sim;
pub mod pc_model;
pub mod ra_model;
pub mod uts_model;

pub use chaos_model::{run_chaos_sim, ChaosOutcome, ChaosSimConfig, ChaosSimReport};
pub use finish_sim::FinishSim;
pub use pc_model::{run_pc, PcConfig, PcResult, SyncVariant};
pub use ra_model::{run_ra_fs_sim, run_ra_gup_sim, RaSimConfig, RaSimResult};
pub use uts_model::{run_uts_sim, UtsSimConfig, UtsSimResult};
