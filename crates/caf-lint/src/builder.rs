//! Programmatic plan construction — the first of the three frontends.
//!
//! ```
//! use caf_core::cofence::{CofenceSpec, Pass};
//! use caf_lint::builder::PlanBuilder;
//!
//! let plan = PlanBuilder::new(4).coarray("buf").all(|b| {
//!     b.finish(|b| {
//!         b.put("buf", 1); // copy buf -> buf@+1
//!         b.cofence(CofenceSpec::new(Pass::Writes, Pass::Any));
//!         b.write("buf");
//!     });
//! }).build();
//! assert!(caf_lint::lint(&plan).unwrap().is_empty());
//! ```

use caf_core::cofence::CofenceSpec;

use crate::ir::{Block, EventRef, FnDef, MemRef, Plan, Stmt, StmtKind, Target};

/// Builds a [`Plan`] fluently. Blocks and function bodies are populated
/// through [`BodyBuilder`] closures.
#[derive(Debug, Clone)]
pub struct PlanBuilder {
    plan: Plan,
}

impl PlanBuilder {
    /// A plan over `images` images, with nothing declared yet.
    pub fn new(images: usize) -> Self {
        PlanBuilder {
            plan: Plan {
                images,
                coarrays: Vec::new(),
                events: Vec::new(),
                fns: Vec::new(),
                blocks: Vec::new(),
            },
        }
    }

    /// Declares a coarray.
    pub fn coarray(mut self, name: &str) -> Self {
        self.plan.coarrays.push(name.to_string());
        self
    }

    /// Declares an event.
    pub fn event(mut self, name: &str) -> Self {
        self.plan.events.push(name.to_string());
        self
    }

    /// Defines a spawnable function.
    pub fn func(mut self, name: &str, f: impl FnOnce(&mut BodyBuilder)) -> Self {
        let mut b = BodyBuilder::default();
        f(&mut b);
        self.plan.fns.push(FnDef { name: name.to_string(), body: b.stmts });
        self
    }

    /// Appends a block executed by every image.
    pub fn all(mut self, f: impl FnOnce(&mut BodyBuilder)) -> Self {
        let mut b = BodyBuilder::default();
        f(&mut b);
        self.plan.blocks.push(Block { image: None, body: b.stmts });
        self
    }

    /// Appends a block executed only by rank `image`.
    pub fn on(mut self, image: usize, f: impl FnOnce(&mut BodyBuilder)) -> Self {
        let mut b = BodyBuilder::default();
        f(&mut b);
        self.plan.blocks.push(Block { image: Some(image), body: b.stmts });
        self
    }

    /// Finishes construction.
    pub fn build(self) -> Plan {
        self.plan
    }
}

/// Builds one statement sequence (a block, a `finish` body, or a
/// function body).
#[derive(Debug, Default)]
pub struct BodyBuilder {
    stmts: Vec<Stmt>,
}

fn stmt(kind: StmtKind) -> Stmt {
    Stmt { kind, line: 0 }
}

impl BodyBuilder {
    /// `copy src -> dst` with full endpoint control.
    pub fn copy(&mut self, src: MemRef, dst: MemRef) {
        self.stmts.push(stmt(StmtKind::Copy { src, dst, notify: None }));
    }

    /// `copy src -> dst notify ev` — completion signalled on `ev`.
    pub fn copy_notify(&mut self, src: MemRef, dst: MemRef, ev: EventRef) {
        self.stmts.push(stmt(StmtKind::Copy { src, dst, notify: Some(ev) }));
    }

    /// Shorthand put: `copy v -> v@+k` (local source, reads local).
    pub fn put(&mut self, var: &str, k: i64) {
        self.copy(MemRef::local(var), MemRef::at(var, Target::Rel(k)));
    }

    /// Shorthand put with a local completion event.
    pub fn put_notify(&mut self, var: &str, k: i64, ev: &str) {
        self.copy_notify(
            MemRef::local(var),
            MemRef::at(var, Target::Rel(k)),
            EventRef { event: ev.to_string(), image: None },
        );
    }

    /// Shorthand get: `copy v@+k -> v` (local destination, writes local).
    pub fn get(&mut self, var: &str, k: i64) {
        self.copy(MemRef::at(var, Target::Rel(k)), MemRef::local(var));
    }

    /// `cofence` with the given pass pair.
    pub fn cofence(&mut self, spec: CofenceSpec) {
        self.stmts.push(stmt(StmtKind::Cofence(spec)));
    }

    /// `finish { … }`.
    pub fn finish(&mut self, f: impl FnOnce(&mut BodyBuilder)) {
        let mut b = BodyBuilder::default();
        f(&mut b);
        self.stmts.push(stmt(StmtKind::Finish(b.stmts)));
    }

    /// `spawn func @target`.
    pub fn spawn(&mut self, func: &str, target: Target) {
        self.stmts
            .push(stmt(StmtKind::Spawn { func: func.to_string(), target, notify: None }));
    }

    /// `spawn func @target notify ev` (the runtime's `spawn_notify`).
    pub fn spawn_notify(&mut self, func: &str, target: Target, ev: EventRef) {
        self.stmts
            .push(stmt(StmtKind::Spawn { func: func.to_string(), target, notify: Some(ev) }));
    }

    /// `post ev` locally, or `post ev@k` on a relative target.
    pub fn post(&mut self, ev: &str, target: Option<i64>) {
        self.stmts.push(stmt(StmtKind::Post(EventRef {
            event: ev.to_string(),
            image: target.map(Target::Rel),
        })));
    }

    /// `wait ev` on the executing image's instance.
    pub fn wait(&mut self, ev: &str) {
        self.stmts.push(stmt(StmtKind::Wait(ev.to_string())));
    }

    /// `barrier`.
    pub fn barrier(&mut self) {
        self.stmts.push(stmt(StmtKind::Barrier));
    }

    /// `read v`.
    pub fn read(&mut self, var: &str) {
        self.stmts.push(stmt(StmtKind::Access { var: var.to_string(), write: false }));
    }

    /// `write v`.
    pub fn write(&mut self, var: &str) {
        self.stmts.push(stmt(StmtKind::Access { var: var.to_string(), write: true }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caf_core::cofence::Pass;

    #[test]
    fn builder_produces_a_lowerable_plan() {
        let plan = PlanBuilder::new(3)
            .coarray("a")
            .event("done")
            .func("handler", |b| b.write("a"))
            .all(|b| {
                b.barrier();
                b.finish(|b| {
                    b.spawn("handler", Target::Rel(1));
                });
                b.put("a", 1);
                b.cofence(CofenceSpec::new(Pass::Writes, Pass::Any));
                b.write("a");
            })
            .on(0, |b| b.post("done", Some(1)))
            .build();
        let low = plan.lower().unwrap();
        assert_eq!(low.programs.len(), 3);
        // Only image 0 carries the guarded post.
        assert_eq!(low.programs[0].steps.len(), low.programs[1].steps.len() + 1);
    }
}
