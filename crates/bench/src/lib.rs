//! Shared plumbing for the figure-regeneration harnesses: consistent
//! table printing and the calibrated default parameters each figure
//! binary uses (documented in EXPERIMENTS.md).

#![warn(missing_docs)]

/// Prints a markdown-ish table: header row, then aligned data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!(" {:>w$} |", c, w = widths[i]));
        }
        line
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    println!("{sep}");
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats nanoseconds as engineering time.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// The scaled UTS workload used by the figure harnesses: GEO-FIXED
/// b₀ = 4, seed 19, at the requested depth. Depth 12 ≈ 15–20 M nodes
/// with this generator — the laptop-scale stand-in for T1WL (see
/// EXPERIMENTS.md §workload-fidelity).
pub fn scaled_tree(depth: usize) -> uts::TreeSpec {
    uts::TreeSpec::geo_fixed(4.0, depth, 19)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(12), "12 ns");
        assert_eq!(fmt_ns(1_500), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00 s");
    }

    #[test]
    fn table_prints_without_panic() {
        print_table(
            "t",
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
