#!/usr/bin/env bash
# The full CI gate: build, tests, clippy (warnings are errors), rustfmt.
#
# Usage:
#   scripts/ci.sh            # the standard gate
#   scripts/ci.sh --stress   # also run the chaos-stress soak (minutes)
#   CI_SOAK=1 scripts/ci.sh  # same soak, opted in via the environment
#                            # (for CI matrices that can't pass flags)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build =="
cargo build --workspace --all-targets

echo "== test =="
cargo test --workspace --quiet

echo "== model-checker smoke (p=3, depth=2) =="
# Time-boxed: the state cap truncates the two families that blow past it
# at this bound (honest truncation, not a pass), keeping the smoke tier
# seconds-fast; scripts/soak.sh runs the uncapped p=5 depth=4 sweep.
cargo build --release -p caf-check --quiet
./target/release/caf-check suite --images 3 --depth 2 --crash-scenarios \
    --max-states 200000 --quiet

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== fmt =="
cargo fmt --all --check

if [[ "${1:-}" == "--stress" || "${CI_SOAK:-0}" == "1" ]]; then
    echo "== chaos-stress soak =="
    cargo test --quiet -p caf-runtime --features chaos-stress --test chaos
    echo "== model-checker soak (p=5, depth=4) =="
    ./target/release/caf-check suite --images 5 --depth 4 --crash-scenarios --quiet
fi

echo "CI gate passed."
