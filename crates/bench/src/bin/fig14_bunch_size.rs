//! **Figure 14**: RandomAccess (function shipping) vs. bunch size.
//!
//! Paper: with a 2²³-word local table on 128 and 1024 cores of Hopper,
//! execution time falls steeply from bunch 16 to ~256 (954→277 s at 128
//! cores) and then *rises again* beyond 256 (292→343 s) — the paper
//! attributes the rise to GASNet flow control. Claims to reproduce: the
//! **U-shape** — finish-synchronization overhead dominating small
//! bunches, flow-control stalls penalizing large ones — with the minimum
//! in the few-hundreds.

use bench::{fmt_ns, print_table};
use caf_sim::{run_ra_fs_sim, RaSimConfig};

fn main() {
    let updates = 8192usize;
    let bunches = [16usize, 32, 64, 128, 256, 512, 1024, 2048];
    let mut rows = Vec::new();
    for &bunch in &bunches {
        let mut cells = vec![bunch.to_string()];
        for p in [128usize, 1024] {
            let cfg = RaSimConfig {
                updates_per_image: updates,
                bunch,
                // Inbox credit budget per image, mirroring GASNet's
                // credit pools (calibrated so the knee sits near the
                // paper's bunch ≈ 256).
                inbox_cap: 160,
                ..RaSimConfig::new(p)
            };
            let r = run_ra_fs_sim(&cfg);
            cells.push(format!("{} ({} stalls)", fmt_ns(r.sim_time_ns), r.stalls));
        }
        rows.push(cells);
    }
    print_table(
        &format!("Fig. 14 (simulated, {updates} updates/image, FS kernel)"),
        &["bunch", "128 cores", "1024 cores"],
        &rows,
    );
    println!(
        "paper (128 cores, s): 955, 492, 433, 303, 277, 292, 329, 343 — steep fall then a \
         flow-control rise past bunch 256.\n\
         The stall column shows the mechanism: zero stalls at small bunches (pure finish \
         overhead), growing stalls once a bunch overruns the inbox credit pool."
    );
}
