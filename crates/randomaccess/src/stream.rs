//! The HPC Challenge RandomAccess update stream.
//!
//! The benchmark's random numbers come from the binary primitive
//! polynomial `x⁶³ + x² + x + 1`: `aₖ₊₁ = (aₖ << 1) ^ (aₖ<0 ? POLY : 0)`
//! over 64 bits. [`starts`] jumps to the `n`-th element in `O(log n)`
//! squarings so each process image can generate its slice of the global
//! update stream independently — exactly the official `HPCC_starts`.

/// The primitive polynomial's low terms.
pub const POLY: u64 = 0x7;
/// Period of the sequence (HPCC constant).
pub const PERIOD: i64 = 1_317_624_576_693_539_401;

/// Next element of the stream.
#[inline]
pub fn next(ran: u64) -> u64 {
    (ran << 1) ^ (if (ran as i64) < 0 { POLY } else { 0 })
}

/// The `n`-th element of the stream (`HPCC_starts`): logarithmic jump via
/// repeated squaring of the step matrix over GF(2).
pub fn starts(n: i64) -> u64 {
    let mut n = n;
    while n < 0 {
        n += PERIOD;
    }
    while n > PERIOD {
        n -= PERIOD;
    }
    if n == 0 {
        return 0x1;
    }
    // m2[i] = x^(2^(i+1)) acting on the state: built by double-stepping.
    let mut m2 = [0u64; 64];
    let mut temp: u64 = 0x1;
    for slot in m2.iter_mut() {
        *slot = temp;
        temp = next(next(temp));
    }
    let mut i: i32 = 62;
    while i >= 0 && (n >> i) & 1 == 0 {
        i -= 1;
    }
    let mut ran: u64 = 0x2;
    while i > 0 {
        let mut temp = 0u64;
        for (j, m) in m2.iter().enumerate() {
            if (ran >> j) & 1 == 1 {
                temp ^= m;
            }
        }
        ran = temp;
        i -= 1;
        if (n >> i) & 1 == 1 {
            ran = next(ran);
        }
    }
    ran
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_zero_and_one() {
        assert_eq!(starts(0), 0x1);
        assert_eq!(starts(1), 0x2);
    }

    /// The logarithmic jump must agree with sequential iteration — the
    /// defining property of `HPCC_starts`.
    #[test]
    fn starts_matches_sequential_iteration() {
        let mut ran = starts(0);
        for k in 1..=3000i64 {
            ran = next(ran);
            if k % 97 == 0 || k < 10 {
                assert_eq!(starts(k), ran, "divergence at element {k}");
            }
        }
    }

    #[test]
    fn negative_arguments_wrap_by_period() {
        assert_eq!(starts(-1), starts(PERIOD - 1));
        assert_eq!(starts(5 - PERIOD), starts(5));
    }

    #[test]
    fn stream_visits_distinct_values() {
        let mut seen = std::collections::HashSet::new();
        let mut ran = starts(123_456);
        for _ in 0..10_000 {
            ran = next(ran);
            assert!(seen.insert(ran), "short cycle detected");
        }
    }
}
