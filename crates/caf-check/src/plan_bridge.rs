//! Differential oracle for `caf-lint`: exhaustive schedule exploration
//! of a lowered plan's *dynamic* semantics, checked against the static
//! happens-before analysis.
//!
//! The static analyzer claims races and deadlocks from a per-image
//! happens-before relation; this module replays the same lowering
//! ([`caf_lint::ir::Plan::lower`], so operation classification cannot
//! drift between the two) through an explicit-state explorer in which
//!
//! * each asynchronous operation *initiates* at its program point (or
//!   hoists above an upward-admitting fence run) and *completes* at any
//!   later point a schedule chooses,
//! * a `cofence` cannot be passed while an in-flight operation of a
//!   class it blocks downward is incomplete,
//! * `finish` ends are collective and require every operation (and
//!   transitively spawned function instance) tagged to the block to be
//!   complete, `barrier`s are collective rendezvous,
//! * events are per-image semaphores; completion events (`notify`) fire
//!   at operation completion,
//!
//! and a **race witness** is recorded whenever a step executes while a
//! conflicting operation of the same context is still in flight. Scope
//! note: like the static side, conflicts are tracked per context —
//! cross-context aliasing on one image (a shipped function's footprint
//! against its host program's) is out of both models' scope.
//!
//! [`check_plan`] then demands exact agreement: every statically
//! reported race in a reachable context is realized by some explored
//! schedule, no explored schedule races where the analysis was silent,
//! and deadlock diagnostics coincide with reachable stuck states.

use std::collections::{BTreeMap, BTreeSet};

use caf_lint::hb;
use caf_lint::ir::{Ctx, CtxId, Lowered, Plan, PlanError, Step, StepKind};

/// A race witness / static race key: context, pending op's step index,
/// conflicting step index.
pub type RaceKey = (CtxId, usize, usize);

/// What exploration of a plan found.
#[derive(Debug, Clone)]
pub struct PlanVerdict {
    /// Distinct states visited.
    pub states: usize,
    /// True when the state cap cut exploration short.
    pub truncated: bool,
    /// Every race witnessed in some schedule.
    pub races: BTreeSet<RaceKey>,
    /// Whether some schedule reached a stuck state.
    pub deadlock: bool,
    /// Human-readable description of one stuck state, if any.
    pub deadlock_sample: Option<String>,
}

/// One dynamic context: an image's program or a spawned function
/// instance, with its interpreter state.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct CtxState {
    /// Index into the explorer's context table.
    table: usize,
    /// Executing image.
    image: usize,
    /// Inherited finish ids (spawn chains only; sorted).
    tags: Vec<usize>,
    /// Program counter.
    pc: usize,
    /// Step indices initiated but not yet complete.
    inflight: BTreeSet<usize>,
    /// Step indices initiated early by hoisting (skipped when pc
    /// reaches them).
    early: BTreeSet<usize>,
}

impl CtxState {
    fn done(&self, steps: &[Step]) -> bool {
        self.pc >= steps.len() && self.inflight.is_empty()
    }
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct State {
    /// Fixed program contexts first, then spawned instances (kept
    /// sorted — identical instances are interchangeable, so sorting
    /// canonicalizes the state for deduplication).
    ctxs: Vec<CtxState>,
    /// Event semaphores, `image * n_events + event`.
    sems: Vec<u32>,
}

struct Explorer<'l> {
    low: &'l Lowered,
    /// Context table: programs by rank, then fn bodies in name order.
    table: Vec<&'l Ctx>,
    /// fn name → table index.
    fn_idx: BTreeMap<&'l str, usize>,
    /// Interned event names.
    events: Vec<String>,
    /// Program ranks participating in each finish / barrier id.
    finish_members: BTreeMap<usize, Vec<usize>>,
    barrier_members: BTreeMap<usize, Vec<usize>>,
    races: BTreeSet<RaceKey>,
    deadlock: Option<String>,
    max_states: usize,
}

impl<'l> Explorer<'l> {
    fn new(low: &'l Lowered, max_states: usize) -> Self {
        let mut table: Vec<&Ctx> = low.programs.iter().collect();
        let mut fn_idx = BTreeMap::new();
        for (name, ctx) in &low.fns {
            fn_idx.insert(name.as_str(), table.len());
            table.push(ctx);
        }
        let mut events = BTreeSet::new();
        for ctx in &table {
            for step in &ctx.steps {
                match &step.kind {
                    StepKind::Post(ev) => {
                        events.insert(ev.event.clone());
                    }
                    StepKind::Wait(ev) => {
                        events.insert(ev.clone());
                    }
                    StepKind::Op(op) => {
                        if let Some(n) = &op.notify {
                            events.insert(n.event.clone());
                        }
                    }
                    _ => {}
                }
            }
        }
        let mut finish_members: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut barrier_members: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (rank, ctx) in low.programs.iter().enumerate() {
            for step in &ctx.steps {
                match step.kind {
                    StepKind::FinishEnd(id) => finish_members.entry(id).or_default().push(rank),
                    StepKind::Barrier(id) => barrier_members.entry(id).or_default().push(rank),
                    _ => {}
                }
            }
        }
        Explorer {
            low,
            table,
            fn_idx,
            events: events.into_iter().collect(),
            finish_members,
            barrier_members,
            races: BTreeSet::new(),
            deadlock: None,
            max_states,
        }
    }

    fn event_idx(&self, name: &str) -> usize {
        self.events.iter().position(|e| e == name).expect("interned event")
    }

    fn initial(&self) -> State {
        let ctxs = (0..self.low.images)
            .map(|rank| CtxState {
                table: rank,
                image: rank,
                tags: Vec::new(),
                pc: 0,
                inflight: BTreeSet::new(),
                early: BTreeSet::new(),
            })
            .collect();
        let mut s = State { ctxs, sems: vec![0; self.low.images * self.events.len().max(1)] };
        self.normalize(&mut s);
        s
    }

    /// Skips already-initiated (hoisted) steps and canonicalizes the
    /// spawned-instance tail.
    fn normalize(&self, s: &mut State) {
        for cs in &mut s.ctxs {
            let steps = &self.table[cs.table].steps;
            while cs.pc < steps.len() && cs.early.contains(&cs.pc) {
                cs.early.remove(&cs.pc);
                cs.pc += 1;
            }
        }
        let p = self.low.images;
        // A finished instance can never act again (its inflight set is
        // empty and collectives treat "gone" exactly like "done"), so
        // dropping it keeps the canonical state small.
        let mut tail: Vec<CtxState> = s.ctxs.split_off(p);
        tail.retain(|cs| !cs.done(&self.table[cs.table].steps));
        tail.sort();
        s.ctxs.extend(tail);
    }

    fn ctx_id(&self, cs: &CtxState) -> CtxId {
        self.table[cs.table].id.clone()
    }

    /// Records races between `step` (about to execute at index `at` in
    /// `cs`) and the context's in-flight operations.
    fn record_races(&mut self, cs: &CtxState, at: usize, step: &Step) {
        let ctx: &Ctx = self.table[cs.table];
        let steps = &ctx.steps;
        for &i in &cs.inflight {
            if i == at {
                continue;
            }
            let op = steps[i].op().expect("inflight is an op");
            if hb::conflicts(op, step) {
                self.races.insert((self.ctx_id(cs), i, at));
            }
        }
    }

    /// All successor states of `s`, applying transition effects.
    fn successors(&mut self, s: &State) -> Vec<State> {
        let mut out = Vec::new();
        for (c, cs) in s.ctxs.iter().enumerate() {
            // Copy the `&'l Ctx` out of the table so the borrow of the
            // step slice doesn't pin `self` (record_races needs `&mut`).
            let ctx: &Ctx = self.table[cs.table];
            let steps = &ctx.steps;
            // Completion of any in-flight op.
            for &i in &cs.inflight {
                let mut next = s.clone();
                next.ctxs[c].inflight.remove(&i);
                let op = steps[i].op().expect("inflight is an op").clone();
                if let Some(ev) = &op.notify {
                    let target =
                        ev.image.map_or(cs.image, |t| t.resolve(cs.image, self.low.images));
                    next.sems[target * self.events.len() + self.event_idx(&ev.event)] += 1;
                }
                if let Some((f, t)) = &op.spawn {
                    let mut tags: BTreeSet<usize> = cs.tags.iter().copied().collect();
                    tags.extend(steps[i].finishes.iter().copied());
                    next.ctxs.push(CtxState {
                        table: self.fn_idx[f.as_str()],
                        image: t.resolve(cs.image, self.low.images),
                        tags: tags.into_iter().collect(),
                        pc: 0,
                        inflight: BTreeSet::new(),
                        early: BTreeSet::new(),
                    });
                }
                self.normalize(&mut next);
                out.push(next);
            }
            if cs.pc >= steps.len() {
                continue;
            }
            let step = &steps[cs.pc];
            match &step.kind {
                StepKind::Op(_) => {
                    self.record_races(cs, cs.pc, step);
                    let mut next = s.clone();
                    next.ctxs[c].inflight.insert(cs.pc);
                    next.ctxs[c].pc += 1;
                    self.normalize(&mut next);
                    out.push(next);
                }
                StepKind::Fence { spec, .. } => {
                    // Pass the fence only once every op it blocks
                    // downward has completed.
                    let blocked = cs.inflight.iter().any(|&i| {
                        spec.blocks_down(steps[i].op().expect("inflight is an op").access)
                    });
                    if !blocked {
                        let mut next = s.clone();
                        next.ctxs[c].pc += 1;
                        self.normalize(&mut next);
                        out.push(next);
                    }
                    // Hoist: the first op after the fence run may
                    // initiate early if every remaining fence admits its
                    // class upward.
                    let mut r = cs.pc;
                    while r < steps.len() && matches!(steps[r].kind, StepKind::Fence { .. }) {
                        r += 1;
                    }
                    if r < steps.len() && !cs.early.contains(&r) && !cs.inflight.contains(&r) {
                        if let Some(op) = steps[r].op() {
                            let admitted = (cs.pc..r).all(|k| match &steps[k].kind {
                                StepKind::Fence { spec, .. } => spec.admits_up(op.access),
                                _ => unreachable!("run is fences"),
                            });
                            if admitted {
                                self.record_races(cs, r, &steps[r]);
                                let mut next = s.clone();
                                next.ctxs[c].inflight.insert(r);
                                next.ctxs[c].early.insert(r);
                                self.normalize(&mut next);
                                out.push(next);
                            }
                        }
                    }
                }
                StepKind::FinishBegin(_) => {
                    let mut next = s.clone();
                    next.ctxs[c].pc += 1;
                    self.normalize(&mut next);
                    out.push(next);
                }
                StepKind::FinishEnd(id) => {
                    if c == self.first_member_at(s, *id, true) && self.finish_ready(s, *id) {
                        out.push(self.advance_collective(s, *id, true));
                    }
                }
                StepKind::Barrier(id) => {
                    if c == self.first_member_at(s, *id, false) && self.barrier_ready(s, *id) {
                        out.push(self.advance_collective(s, *id, false));
                    }
                }
                StepKind::Post(ev) => {
                    let target =
                        ev.image.map_or(cs.image, |t| t.resolve(cs.image, self.low.images));
                    let mut next = s.clone();
                    next.sems[target * self.events.len() + self.event_idx(&ev.event)] += 1;
                    next.ctxs[c].pc += 1;
                    self.normalize(&mut next);
                    out.push(next);
                }
                StepKind::Wait(ev) => {
                    let slot = cs.image * self.events.len() + self.event_idx(ev);
                    if s.sems[slot] > 0 {
                        let mut next = s.clone();
                        next.sems[slot] -= 1;
                        next.ctxs[c].pc += 1;
                        self.normalize(&mut next);
                        out.push(next);
                    }
                }
                StepKind::Access { .. } => {
                    self.record_races(cs, cs.pc, step);
                    let mut next = s.clone();
                    next.ctxs[c].pc += 1;
                    self.normalize(&mut next);
                    out.push(next);
                }
            }
        }
        out
    }

    /// The lowest context index sitting at the collective (so the
    /// transition is emitted once, not once per participant).
    fn first_member_at(&self, s: &State, id: usize, finish: bool) -> usize {
        s.ctxs
            .iter()
            .position(|cs| {
                let steps = &self.table[cs.table].steps;
                cs.pc < steps.len()
                    && match steps[cs.pc].kind {
                        StepKind::FinishEnd(k) if finish => k == id,
                        StepKind::Barrier(k) if !finish => k == id,
                        _ => false,
                    }
            })
            .expect("caller sits at the collective")
    }

    fn member_ranks(&self, id: usize, finish: bool) -> &[usize] {
        let members = if finish { &self.finish_members } else { &self.barrier_members };
        members.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Every member at the end, every tagged op complete, every tagged
    /// instance finished.
    fn finish_ready(&self, s: &State, id: usize) -> bool {
        let arrived = self.member_ranks(id, true).iter().all(|&rank| {
            let cs = &s.ctxs[rank];
            let steps = &self.table[cs.table].steps;
            cs.pc < steps.len() && matches!(steps[cs.pc].kind, StepKind::FinishEnd(k) if k == id)
        });
        if !arrived {
            return false;
        }
        s.ctxs.iter().all(|cs| {
            let steps = &self.table[cs.table].steps;
            let instance_tagged = cs.tags.contains(&id);
            if instance_tagged && !cs.done(steps) {
                return false;
            }
            cs.inflight
                .iter()
                .all(|&i| !instance_tagged && !steps[i].finishes.contains(&id))
        })
    }

    fn barrier_ready(&self, s: &State, id: usize) -> bool {
        self.member_ranks(id, false).iter().all(|&rank| {
            let cs = &s.ctxs[rank];
            let steps = &self.table[cs.table].steps;
            cs.pc < steps.len() && matches!(steps[cs.pc].kind, StepKind::Barrier(k) if k == id)
        })
    }

    fn advance_collective(&self, s: &State, id: usize, finish: bool) -> State {
        let mut next = s.clone();
        for &rank in self.member_ranks(id, finish) {
            next.ctxs[rank].pc += 1;
        }
        self.normalize(&mut next);
        next
    }

    fn describe_stuck(&self, s: &State) -> String {
        let mut parts = Vec::new();
        for cs in &s.ctxs {
            let steps = &self.table[cs.table].steps;
            if cs.done(steps) {
                continue;
            }
            let what = if cs.pc < steps.len() {
                format!("stuck at `{}`", steps[cs.pc].describe())
            } else {
                format!("{} op(s) never complete", cs.inflight.len())
            };
            parts.push(format!("{} (image {}) {}", self.table[cs.table].id, cs.image, what));
        }
        parts.join("; ")
    }

    fn run(&mut self) -> PlanVerdict {
        let mut visited: BTreeSet<State> = BTreeSet::new();
        let mut stack = vec![self.initial()];
        let mut truncated = false;
        while let Some(s) = stack.pop() {
            if !visited.insert(s.clone()) {
                continue;
            }
            if visited.len() >= self.max_states {
                truncated = true;
                break;
            }
            let succ = self.successors(&s);
            if succ.is_empty() {
                let all_done = s.ctxs.iter().all(|cs| cs.done(&self.table[cs.table].steps));
                if !all_done && self.deadlock.is_none() {
                    self.deadlock = Some(self.describe_stuck(&s));
                }
                continue;
            }
            stack.extend(succ);
        }
        PlanVerdict {
            states: visited.len(),
            truncated,
            races: self.races.clone(),
            deadlock: self.deadlock.is_some(),
            deadlock_sample: self.deadlock.clone(),
        }
    }
}

/// Exhaustively explores the dynamic semantics of a lowered plan.
pub fn explore_plan(low: &Lowered, max_states: usize) -> PlanVerdict {
    Explorer::new(low, max_states).run()
}

/// Functions reachable through spawn chains from some image's program —
/// the contexts the dynamic explorer can actually instantiate.
fn reachable_fns(low: &Lowered) -> BTreeSet<String> {
    let mut reach: BTreeSet<String> = BTreeSet::new();
    loop {
        let mut changed = false;
        let hosts: Vec<&Ctx> = low
            .programs
            .iter()
            .chain(low.fns.iter().filter(|(n, _)| reach.contains(*n)).map(|(_, c)| c))
            .collect();
        for ctx in hosts {
            for step in &ctx.steps {
                if let Some((f, _)) = step.op().and_then(|o| o.spawn.as_ref()) {
                    changed |= reach.insert(f.clone());
                }
            }
        }
        if !changed {
            break;
        }
    }
    reach
}

/// The static race set over reachable contexts, keyed the same way the
/// explorer keys witnesses.
pub fn static_races(low: &Lowered) -> BTreeSet<RaceKey> {
    let reach = reachable_fns(low);
    let mut out = BTreeSet::new();
    for ctx in low
        .programs
        .iter()
        .chain(low.fns.iter().filter(|(n, _)| reach.contains(*n)).map(|(_, c)| c))
    {
        for r in hb::races(ctx) {
            out.insert((ctx.id.clone(), r.op_idx, r.acc_idx));
        }
    }
    out
}

/// The differential verdict for one plan.
#[derive(Debug, Clone)]
pub struct PlanAgreement {
    /// Exploration outcome.
    pub verdict: PlanVerdict,
    /// The static claim being checked.
    pub static_races: BTreeSet<RaceKey>,
    /// Static races no explored schedule realized (soundness gap —
    /// must be empty).
    pub unrealized: Vec<RaceKey>,
    /// Witnessed races the static analysis missed (completeness gap —
    /// must be empty).
    pub unpredicted: Vec<RaceKey>,
    /// Whether `caf-lint` reported a guaranteed-stuck schedule.
    pub lint_deadlock: bool,
}

impl PlanAgreement {
    /// Do the static and dynamic semantics agree (without truncation)?
    pub fn ok(&self) -> bool {
        self.unrealized.is_empty()
            && self.unpredicted.is_empty()
            && self.lint_deadlock == self.verdict.deadlock
            && !self.verdict.truncated
    }

    /// One-line report.
    pub fn summary(&self) -> String {
        format!(
            "{} states, {} static race(s), {} realized, {} unpredicted, \
             deadlock static={} dynamic={}{} — {}",
            self.verdict.states,
            self.static_races.len(),
            self.static_races.len() - self.unrealized.len(),
            self.unpredicted.len(),
            if self.lint_deadlock { "yes" } else { "no" },
            if self.verdict.deadlock { "yes" } else { "no" },
            if self.verdict.truncated { " [TRUNCATED]" } else { "" },
            if self.ok() { "AGREE" } else { "DISAGREE" },
        )
    }
}

/// Lints a plan and checks every diagnostic against exhaustive
/// exploration of the same lowering.
pub fn check_plan(plan: &Plan, max_states: usize) -> Result<PlanAgreement, PlanError> {
    let low = plan.lower()?;
    let diags = caf_lint::lint_lowered(&low);
    let statics = static_races(&low);
    let verdict = explore_plan(&low, max_states);
    let unrealized = statics.difference(&verdict.races).cloned().collect();
    let unpredicted = verdict.races.difference(&statics).cloned().collect();
    Ok(PlanAgreement {
        static_races: statics,
        unrealized,
        unpredicted,
        lint_deadlock: diags.iter().any(|d| d.deadlock),
        verdict,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use caf_core::cofence::{CofenceSpec, Pass};
    use caf_lint::builder::PlanBuilder;
    use caf_lint::ir::Target;

    const CAP: usize = 200_000;

    fn agree(plan: &Plan) -> PlanAgreement {
        check_plan(plan, CAP).expect("plan lowers")
    }

    #[test]
    fn clean_fenced_plan_agrees_with_no_races() {
        let plan = PlanBuilder::new(2)
            .coarray("a")
            .all(|b| {
                b.finish(|b| {
                    b.put("a", 1);
                    b.cofence(CofenceSpec::new(Pass::Writes, Pass::Any));
                    b.write("a");
                });
            })
            .build();
        let a = agree(&plan);
        assert!(a.ok(), "{}", a.summary());
        assert!(a.static_races.is_empty());
        assert!(!a.verdict.deadlock);
    }

    #[test]
    fn missing_fence_race_is_realized() {
        let plan = PlanBuilder::new(2)
            .coarray("a")
            .all(|b| {
                b.finish(|b| {
                    b.put("a", 1);
                    b.write("a");
                });
            })
            .build();
        let a = agree(&plan);
        assert!(a.ok(), "{}", a.summary());
        // One race per image context (both images run the same block).
        assert_eq!(a.static_races.len(), 2);
        assert!(a.unrealized.is_empty(), "static race must be realizable");
    }

    #[test]
    fn upward_hoist_race_is_realized_dynamically() {
        // get; cofence(NONE, READ); put — the put hoists above the
        // fence and overlaps the incomplete get.
        let plan = PlanBuilder::new(2)
            .coarray("a")
            .all(|b| {
                b.finish(|b| {
                    b.get("a", 1);
                    b.cofence(CofenceSpec::new(Pass::None, Pass::Reads));
                    b.put("a", 1);
                });
            })
            .build();
        let a = agree(&plan);
        assert!(a.ok(), "{}", a.summary());
        assert_eq!(a.static_races.len(), 2);
        // The full fence closes the hoist channel: both sides clean.
        let plan = PlanBuilder::new(2)
            .coarray("a")
            .all(|b| {
                b.finish(|b| {
                    b.get("a", 1);
                    b.cofence(CofenceSpec::FULL);
                    b.put("a", 1);
                });
            })
            .build();
        let a = agree(&plan);
        assert!(a.ok(), "{}", a.summary());
        assert!(a.static_races.is_empty());
    }

    #[test]
    fn wait_inside_finish_deadlocks_both_ways() {
        let plan = PlanBuilder::new(2)
            .event("go")
            .all(|b| {
                b.finish(|b| b.wait("go"));
                b.post("go", Some(1));
            })
            .build();
        let a = agree(&plan);
        assert!(a.lint_deadlock);
        assert!(a.verdict.deadlock, "{:?}", a.verdict.deadlock_sample);
        assert!(a.ok(), "{}", a.summary());
    }

    #[test]
    fn spawned_post_rescues_the_finish() {
        let plan = PlanBuilder::new(2)
            .event("go")
            .func("poster", |b| b.post("go", Some(-1)))
            .all(|b| {
                b.finish(|b| {
                    b.spawn("poster", Target::Rel(1));
                    b.wait("go");
                });
            })
            .build();
        let a = agree(&plan);
        assert!(!a.lint_deadlock);
        assert!(!a.verdict.deadlock, "{:?}", a.verdict.deadlock_sample);
        assert!(a.ok(), "{}", a.summary());
    }

    #[test]
    fn race_inside_spawned_fn_is_realized() {
        let plan = PlanBuilder::new(3)
            .coarray("a")
            .func("leaky", |b| {
                b.put("a", 1);
                b.write("a");
            })
            .all(|b| {
                b.finish(|b| b.spawn("leaky", Target::Rel(1)));
            })
            .build();
        let a = agree(&plan);
        assert!(a.ok(), "{}", a.summary());
        assert_eq!(a.static_races.len(), 1);
        let (ctx, _, _) = a.static_races.iter().next().unwrap();
        assert_eq!(*ctx, CtxId::Func("leaky".into()));
    }

    #[test]
    fn barrier_rendezvous_and_notify_events_work() {
        // Producer/consumer across the ring: each image puts into its
        // neighbor and waits for its own in-buffer, then barriers.
        let plan = PlanBuilder::new(3)
            .coarray("inbox")
            .event("delivered")
            .all(|b| {
                b.put_notify("inbox", 1, "delivered");
                b.wait("delivered");
                b.barrier();
                b.read("inbox");
            })
            .build();
        let a = agree(&plan);
        assert!(a.ok(), "{}", a.summary());
        assert!(a.static_races.is_empty());
        assert!(!a.verdict.deadlock);
    }
}
