//! **Figure 16**: UTS load balance.
//!
//! Paper: relative fraction of work per image on 2048/4096/8192 Jaguar
//! cores. At 2048 the spread is 0.989–1.008×; at 8192 it widens to
//! 0.980–1.037× — larger runs have lower probability of finding work in
//! the endgame. Claims to reproduce: **spread tightly clustered around
//! 1.0**, **widening as the image count grows**.

use bench::{print_table, scaled_tree};
use caf_sim::{run_uts_sim, UtsSimConfig};

fn main() {
    // Depth 13 ≈ 70M nodes (~8.6K nodes/image at 8192): enough work
    // granularity for meaningful balance. Set UTS_DEPTH=11 for a quick
    // pass.
    let depth: usize = std::env::var("UTS_DEPTH").ok().and_then(|v| v.parse().ok()).unwrap_or(13);
    let spec = scaled_tree(depth);
    let mut rows = Vec::new();
    let mut spreads = Vec::new();
    for p in [2048usize, 4096, 8192] {
        let mut cfg = UtsSimConfig::new(spec, p);
        cfg.node_cost_ns = 20_000;
        let r = run_uts_sim(cfg);
        let rel = r.relative_work();
        let mut sorted = rel.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let min = sorted[0];
        let max = *sorted.last().expect("nonempty");
        let pct = |q: f64| sorted[((sorted.len() - 1) as f64 * q) as usize];
        spreads.push(max - min);
        rows.push(vec![
            p.to_string(),
            r.total_nodes.to_string(),
            format!("{min:.3}"),
            format!("{:.3}", pct(0.05)),
            format!("{:.3}", pct(0.50)),
            format!("{:.3}", pct(0.95)),
            format!("{max:.3}"),
        ]);
    }
    print_table(
        "Fig. 16 (simulated UTS load balance, relative work per image)",
        &["images", "nodes", "min", "p5", "median", "p95", "max"],
        &rows,
    );
    println!(
        "paper: min–max 0.989–1.008 at 2048, 0.986–1.015 at 4096, 0.980–1.037 at 8192 \
         (spread grows with scale)."
    );
    assert!(
        spreads.windows(2).all(|w| w[1] >= w[0] * 0.8),
        "expected the spread to widen (or hold) with scale: {spreads:?}"
    );
}
