//! A minimal deterministic PRNG (SplitMix64).
//!
//! `caf-core` must stay dependency-free so both substrates can share it,
//! and the termination harness, the DES, and workload generators all need
//! cheap reproducible randomness. SplitMix64 (Steele, Lea & Flood 2014) is
//! the standard seeding generator: one 64-bit state word, full period,
//! passes BigCrush when used as intended here (schedules and jitter, not
//! cryptography).

/// SplitMix64 generator state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`), via 128-bit multiply
    /// (Lemire's method, bias ≤ 2⁻⁶⁴ — negligible for scheduling jitter).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// One-shot SplitMix64 finalizer: hashes `x` to a well-mixed 64-bit value.
/// Used as the cheap non-cryptographic alternative to SHA-1 in the UTS
/// hash ablation.
#[inline]
pub fn splitmix64_hash(x: u64) -> u64 {
    SplitMix64::new(x).next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_sequence() {
        // First outputs for seed 1234567, cross-checked against the
        // published SplitMix64 reference implementation.
        let mut g = SplitMix64::new(1234567);
        assert_eq!(g.next_u64(), 6457827717110365317);
        assert_eq!(g.next_u64(), 3203168211198807973);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bounded_values_stay_in_range() {
        let mut g = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(g.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = SplitMix64::new(99);
        for _ in 0..1000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn hash_differs_for_adjacent_inputs() {
        assert_ne!(splitmix64_hash(0), splitmix64_hash(1));
        assert_ne!(splitmix64_hash(1), splitmix64_hash(2));
    }
}
