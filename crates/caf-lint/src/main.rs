//! The `caf-lint` command-line tool.
//!
//! ```text
//! caf-lint check PLAN...
//! ```
//!
//! Prints every diagnostic plus a per-file summary line. Exit status:
//! 0 when no file produced an error-severity diagnostic (warnings are
//! allowed), 1 when at least one did, 2 on usage, I/O, or plan-format
//! failures.

use std::process::ExitCode;

const USAGE: &str = "usage: caf-lint check PLAN...\n\
 \n\
 Statically analyzes CAF 2.0 async plans for missing-fence races,\n\
 over-strong fences, finish-coverage leaks, and event misuse.\n";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, files) = match args.split_first() {
        Some((cmd, rest)) if cmd == "check" && !rest.is_empty() => (cmd, rest),
        _ => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let _ = cmd;
    let mut any_error = false;
    for path in files {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("caf-lint: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let name = std::path::Path::new(path)
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.clone());
        let diags = match caf_lint::parse(&src).and_then(|p| caf_lint::lint(&p)) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("caf-lint: {name}: {e}");
                return ExitCode::from(2);
            }
        };
        print!("{}", caf_lint::render(&name, &diags));
        any_error |= diags.iter().any(|d| d.is_error());
    }
    if any_error {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
