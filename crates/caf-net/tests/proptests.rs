//! Property tests on the fabric: reliability (no loss, no duplication),
//! FIFO behaviour when reordering is off, and bounded reordering when on.

use std::sync::Arc;
use std::time::{Duration, Instant};

use caf_core::config::NetworkModel;
use caf_core::ids::ImageId;
use caf_net::Fabric;
use proptest::prelude::*;

fn drain(f: &Fabric<u64>, to: ImageId, n: usize) -> Vec<u64> {
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        match f.recv_until(to, deadline) {
            Some(v) => out.push(v),
            None => panic!("timed out after {} of {n} messages", out.len()),
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every message sent is delivered exactly once, whatever the mix of
    /// senders, sizes, and latencies.
    #[test]
    fn no_loss_no_duplication(
        sends in prop::collection::vec((0usize..4, 0usize..512), 1..120),
        latency_us in 0u64..3,
        non_fifo in any::<bool>(),
    ) {
        let model = NetworkModel {
            latency: Duration::from_micros(latency_us),
            inbox_capacity: None,
            ..NetworkModel::instant()
        };
        let f: Arc<Fabric<u64>> = Fabric::new(5, model, non_fifo);
        for (i, &(from, bytes)) in sends.iter().enumerate() {
            f.send(ImageId(from), ImageId(4), bytes, i as u64);
        }
        let mut got = drain(&f, ImageId(4), sends.len());
        got.sort_unstable();
        prop_assert_eq!(got, (0..sends.len() as u64).collect::<Vec<_>>());
        prop_assert_eq!(f.stats().messages(), sends.len() as u64);
    }

    /// With reordering disabled and equal sizes, same-pair messages are
    /// FIFO.
    #[test]
    fn fifo_when_ordered(count in 1usize..100, latency_us in 0u64..2) {
        let model = NetworkModel {
            latency: Duration::from_micros(latency_us),
            inbox_capacity: None,
            ..NetworkModel::instant()
        };
        let f: Arc<Fabric<u64>> = Fabric::new(2, model, false);
        for i in 0..count as u64 {
            f.send(ImageId(0), ImageId(1), 8, i);
        }
        let got = drain(&f, ImageId(1), count);
        prop_assert_eq!(got, (0..count as u64).collect::<Vec<_>>());
    }

    /// Concurrent senders: reliability holds under real thread
    /// interleavings.
    #[test]
    fn concurrent_senders_reliable(per_sender in 1usize..60) {
        let f: Arc<Fabric<u64>> = Fabric::new(4, NetworkModel::instant(), false);
        let handles: Vec<_> = (0..3)
            .map(|s| {
                let f = Arc::clone(&f);
                std::thread::spawn(move || {
                    for i in 0..per_sender as u64 {
                        f.send(ImageId(s), ImageId(3), 8, (s as u64) << 32 | i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut got = drain(&f, ImageId(3), 3 * per_sender);
        got.sort_unstable();
        got.dedup();
        prop_assert_eq!(got.len(), 3 * per_sender, "duplicate or lost message");
    }
}
