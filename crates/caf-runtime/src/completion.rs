//! Completion-state tracking for asynchronous operations.
//!
//! Paper Fig. 1: an asynchronous operation passes through *initiation
//! completion* (the call returned), *local data completion* (`cofence` —
//! local inputs may be overwritten, local outputs may be read), *local
//! operation completion* (events — all pair-wise communication involving
//! this image done), and *global completion* (`finish`). Each operation
//! descriptor holds one [`Completion`] cell; the comm engine and incoming
//! acknowledgements advance it monotonically.

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

/// The observable stages of one asynchronous operation, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// The initiating call has returned; the operation is queued.
    Initiated,
    /// Local buffers are out of play: inputs may be overwritten, outputs
    /// may be read (what `cofence` waits for).
    LocalData,
    /// All pair-wise communication involving the initiating image is done
    /// (what an explicit event signals).
    LocalOp,
}

/// A monotonically advancing completion cell, shared between the
/// initiating image, its communication thread, and AM handlers.
#[derive(Debug)]
pub struct Completion {
    stage: Mutex<Stage>,
    advanced: Condvar,
}

impl Completion {
    /// A fresh cell at [`Stage::Initiated`].
    pub fn new() -> Arc<Self> {
        Arc::new(Completion { stage: Mutex::new(Stage::Initiated), advanced: Condvar::new() })
    }

    /// Advances to `to` if that is later than the current stage (stages
    /// never regress), waking blocked waiters.
    pub fn advance(&self, to: Stage) {
        let mut s = self.stage.lock();
        if to > *s {
            *s = to;
            self.advanced.notify_all();
        }
    }

    /// Whether the operation has reached `at` (or later).
    pub fn reached(&self, at: Stage) -> bool {
        *self.stage.lock() >= at
    }

    /// Blocks the calling thread until `at` is reached. Only safe off the
    /// image's main thread (e.g. in tests or comm tasks); the image itself
    /// must keep making progress and therefore uses its polling wait loop
    /// instead.
    pub fn block_until(&self, at: Stage) {
        let mut s = self.stage.lock();
        while *s < at {
            self.advanced.wait(&mut s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn stages_are_ordered() {
        assert!(Stage::Initiated < Stage::LocalData);
        assert!(Stage::LocalData < Stage::LocalOp);
    }

    #[test]
    fn advance_is_monotone() {
        let c = Completion::new();
        assert!(c.reached(Stage::Initiated));
        assert!(!c.reached(Stage::LocalData));
        c.advance(Stage::LocalOp);
        assert!(c.reached(Stage::LocalData));
        // Regression attempts are ignored.
        c.advance(Stage::LocalData);
        assert!(c.reached(Stage::LocalOp));
    }

    #[test]
    fn block_until_wakes_on_advance() {
        let c = Completion::new();
        let c2 = Arc::clone(&c);
        let t = std::thread::spawn(move || c2.block_until(Stage::LocalData));
        std::thread::sleep(Duration::from_millis(10));
        c.advance(Stage::LocalData);
        t.join().unwrap();
    }
}
