//! Counterexample minimization: two-level delta debugging.
//!
//! Level 1 shrinks the *scenario* — drop whole roots, prune subtrees,
//! drop the crash — re-exploring after each candidate cut and keeping it
//! only when the same violation kind is still reachable.
//!
//! Level 2 shrinks the *schedule* with classic ddmin over transition
//! chunks. Removing keys leaves gaps, so candidates run under a guided
//! replay: keys that are no longer enabled are skipped, and once the
//! candidate is exhausted the run is completed deterministically
//! (first-enabled order). A candidate is accepted when the executed
//! schedule still hits the same violation kind and is strictly shorter.
//!
//! A final canonicalization pass bubbles independent adjacent transitions
//! into [`TKey`] order (validated by strict replay), so minimized
//! counterexamples are stable across exploration orders — two different
//! DFS orders that find the same bug shrink to the same replay file.

use crate::explore::{explore, Counterexample, ExploreConfig};
use crate::scenario::Scenario;
use crate::world::{TKey, Violation, ViolationKind, World};

/// Completion-phase step cap for guided replays.
const REPLAY_STEP_CAP: usize = 10_000;

/// Minimizes `ce` while preserving its violation kind.
pub fn shrink(ce: &Counterexample) -> Counterexample {
    let mut best = ce.clone();
    shrink_scenario(&mut best);
    shrink_schedule(&mut best);
    canonicalize(&mut best);
    best
}

/// Guided replay: applies `keys` in order, skipping any that are not
/// enabled, then completes the run first-enabled. Returns the executed
/// schedule and violation iff the run hits `expect`.
pub fn replay_guided(
    scenario: &Scenario,
    ce: &Counterexample,
    keys: &[TKey],
) -> Option<(Vec<TKey>, Violation)> {
    let expect = ce.violation.kind;
    let mut w = World::new(scenario, ce.family, ce.mutation);
    let differential = matches!(expect, ViolationKind::Differential | ViolationKind::DesMismatch);
    for k in keys {
        match w.step_if_enabled(k) {
            Ok(_) => {}
            Err(v) if v.kind == expect => return Some((w.schedule().to_vec(), v)),
            Err(_) => return None,
        }
        if w.done.is_some() || w.pruned {
            break;
        }
    }
    for _ in 0..REPLAY_STEP_CAP {
        if w.pruned {
            return None;
        }
        let Some(k) = w.enabled().first().cloned() else {
            break;
        };
        match w.step(&k) {
            Ok(()) => {}
            Err(v) if v.kind == expect => return Some((w.schedule().to_vec(), v)),
            Err(_) => return None,
        }
    }
    // Terminal without an in-run violation: deadlock and the terminal
    // differential oracles can still confirm the expectation.
    if w.done.is_none() && !w.pruned && w.enabled().is_empty() {
        if expect == ViolationKind::Deadlock {
            let v = Violation {
                kind: ViolationKind::Deadlock,
                detail: format!("stuck after {} steps", w.schedule().len()),
            };
            return Some((w.schedule().to_vec(), v));
        }
        return None;
    }
    if differential && w.done == Some(crate::world::Outcome::Terminated) && !w.crashed() {
        if let Some(v) = crate::diff::check_terminal(&w) {
            if v.kind == expect {
                return Some((w.schedule().to_vec(), v));
            }
        }
    }
    None
}

/// Strict replay: every key must be enabled in sequence and the run must
/// end (possibly via terminal oracles) in the expected violation with the
/// exact given schedule. Used to validate canonicalization swaps.
fn replay_exact(scenario: &Scenario, ce: &Counterexample, keys: &[TKey]) -> bool {
    match replay_guided(scenario, ce, keys) {
        Some((executed, _)) => executed == keys,
        None => false,
    }
}

fn reproduces(scenario: &Scenario, ce: &Counterexample) -> Option<Counterexample> {
    // Prefer replaying the current schedule into the smaller scenario
    // (fast); fall back to a bounded re-exploration, since the cut may
    // change which schedule exhibits the bug.
    if let Some((schedule, violation)) = replay_guided(scenario, ce, &ce.schedule) {
        return Some(Counterexample {
            scenario: scenario.clone(),
            schedule,
            violation,
            ..ce.clone()
        });
    }
    let cfg = ExploreConfig {
        max_states: 400_000,
        por: true,
        differential: matches!(
            ce.violation.kind,
            ViolationKind::Differential | ViolationKind::DesMismatch
        ),
    };
    let (_, found) = explore(scenario, ce.family, ce.mutation, &cfg);
    found.filter(|c| c.violation.kind == ce.violation.kind)
}

fn shrink_scenario(best: &mut Counterexample) {
    loop {
        let mut improved = false;
        for candidate in scenario_cuts(&best.scenario) {
            if let Some(smaller) = reproduces(&candidate, best) {
                *best = smaller;
                improved = true;
                break;
            }
        }
        if !improved {
            return;
        }
    }
}

/// All one-step reductions of a scenario: drop the crash, drop one root,
/// or delete one subtree (splicing nothing in its place).
fn scenario_cuts(s: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    if s.crash.is_some() {
        out.push(Scenario { crash: None, ..s.clone() });
    }
    for i in 0..s.roots.len() {
        let mut roots = s.roots.clone();
        roots.remove(i);
        out.push(Scenario { roots, ..s.clone() });
    }
    for (i, (_, tree)) in s.roots.iter().enumerate() {
        for path in node_paths(tree) {
            let mut roots = s.roots.clone();
            let mut t = tree.clone();
            remove_at(&mut t, &path);
            roots[i].1 = t;
            out.push(Scenario { roots, ..s.clone() });
        }
    }
    out
}

/// Paths (child-index sequences) to every non-root node of `tree`.
fn node_paths(tree: &caf_core::termination::harness::SpawnTree) -> Vec<Vec<usize>> {
    fn walk(
        t: &caf_core::termination::harness::SpawnTree,
        prefix: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        for (j, c) in t.children.iter().enumerate() {
            prefix.push(j);
            out.push(prefix.clone());
            walk(c, prefix, out);
            prefix.pop();
        }
    }
    let mut out = Vec::new();
    walk(tree, &mut Vec::new(), &mut out);
    out
}

fn remove_at(tree: &mut caf_core::termination::harness::SpawnTree, path: &[usize]) {
    match path {
        [] => unreachable!("cannot remove the root"),
        [j] => {
            tree.children.remove(*j);
        }
        [j, rest @ ..] => remove_at(&mut tree.children[*j], rest),
    }
}

fn shrink_schedule(best: &mut Counterexample) {
    let mut chunk = (best.schedule.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut i = 0;
        while i < best.schedule.len() {
            let mut candidate = best.schedule.clone();
            let hi = (i + chunk).min(candidate.len());
            candidate.drain(i..hi);
            let scenario = best.scenario.clone();
            match replay_guided(&scenario, best, &candidate) {
                Some((executed, violation)) if executed.len() < best.schedule.len() => {
                    best.schedule = executed;
                    best.violation = violation;
                    progressed = true;
                }
                _ => i += chunk,
            }
        }
        if chunk > 1 {
            chunk /= 2;
        } else if !progressed {
            return;
        }
    }
}

/// Bubbles independent adjacent transitions into `TKey` order wherever
/// the swapped schedule still replays exactly and still violates.
fn canonicalize(best: &mut Counterexample) {
    let len = best.schedule.len();
    for _ in 0..len {
        let mut swapped = false;
        for i in 0..len.saturating_sub(1) {
            if best.schedule[i + 1] < best.schedule[i] {
                let mut candidate = best.schedule.clone();
                candidate.swap(i, i + 1);
                let scenario = best.scenario.clone();
                if replay_exact(&scenario, best, &candidate) {
                    best.schedule = candidate;
                    swapped = true;
                }
            }
        }
        if !swapped {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutation::{Family, Mutation};
    use crate::scenario::parse_tree;

    fn find_ce(images: usize, tree: &str, mutation: Mutation) -> Counterexample {
        let scenario =
            Scenario { images, roots: vec![(0, parse_tree(tree).unwrap())], crash: None };
        let (_, ce) =
            explore(&scenario, mutation.family(), Some(mutation), &ExploreConfig::default());
        ce.expect("mutation must be caught")
    }

    #[test]
    fn shrinking_preserves_kind_and_never_grows() {
        let ce = find_ce(3, "1(2,2)", Mutation::MergeEpochs);
        let small = shrink(&ce);
        assert_eq!(small.violation.kind, ce.violation.kind);
        assert!(small.schedule.len() <= ce.schedule.len());
        assert!(small.scenario.total_spawns() <= ce.scenario.total_spawns());
        // The shrunk schedule must replay exactly.
        let hit = replay_guided(&small.scenario, &small, &small.schedule)
            .expect("shrunk counterexample must replay");
        assert_eq!(hit.1.kind, ce.violation.kind);
    }

    #[test]
    fn shrinking_is_idempotent() {
        let ce = find_ce(2, "1", Mutation::AckCompleteConfusion);
        let once = shrink(&ce);
        let twice = shrink(&once);
        assert_eq!(once.schedule, twice.schedule);
        assert_eq!(once.scenario, twice.scenario);
    }

    #[test]
    fn stale_contribution_shrinks_to_a_tiny_livelock() {
        // Run the mutation under the loose family, where the Theorem 1
        // liveness oracle does not apply: the livelock oracle must catch
        // the frozen sum instead.
        let scenario =
            Scenario { images: 2, roots: vec![(0, parse_tree("1").unwrap())], crash: None };
        let (_, ce) = explore(
            &scenario,
            Family::EpochLoose,
            Some(Mutation::StaleContribution),
            &ExploreConfig::default(),
        );
        let ce = ce.expect("stale contribution must livelock the loose family");
        assert_eq!(ce.violation.kind, ViolationKind::Livelock, "{}", ce.violation.detail);
        let small = shrink(&ce);
        assert!(
            small.schedule.len() <= ce.schedule.len(),
            "{} !<= {}",
            small.schedule.len(),
            ce.schedule.len()
        );
    }
}
