//! The per-image handle: the public face of the runtime.
//!
//! One [`Image`] exists per process image, owned by that image's OS
//! thread. All communication progress is *polling-based* (GASNet-style):
//! incoming active messages execute on the image's own thread whenever it
//! enters the runtime — blocking operations spin a
//! progress/park loop rather than blocking outright, so shipped
//! functions, acknowledgements, and collective hops keep flowing while
//! the image "waits".

use std::cell::RefCell;
use std::sync::Arc;
use std::time::{Duration, Instant};

use caf_core::cofence::LocalAccess;
use caf_core::ids::{EventId, FinishId, ImageId, Parity};
use caf_core::termination::{EpochDetector, WaveDetector};
use caf_core::topology::Team;
use caf_core::trace::TraceEvent;
use caf_net::CommPump;

use crate::coarray::Coarray;
use crate::completion::{Completion, Stage};
use crate::event::{CoEvent, Event};
use crate::failure::{CrashUnwind, FailUnwind, ImageFailureObservation, FIRST_INCARNATION};
use crate::msg::{Am, AmFn, FinishTag, Msg};
use crate::runtime::Shared;
use crate::state::{FinishFrame, ImageState, PendingOp};
use crate::watchdog::{FinishDiag, ImageStallReport, StallUnwind, Watchdog};

/// Nominal wire size of a shipped-function header (descriptor + closure
/// environment lower bound) for the cost model.
pub(crate) const SPAWN_NOMINAL_BYTES: usize = 64;
/// Nominal wire size of small control messages (acks, event notifies).
pub(crate) const CTRL_BYTES: usize = 16;
/// Longest the image parks before re-polling even without a wakeup.
const MAX_PARK: Duration = Duration::from_micros(200);

/// A process image: rank, communication engine, and runtime state.
///
/// `Image` is deliberately neither `Send` nor `Sync`: it belongs to its
/// thread. Shipped functions receive `&Image` for the *target* image when
/// they execute there.
pub struct Image {
    pub(crate) shared: Arc<Shared>,
    me: ImageId,
    world: Team,
    pub(crate) pump: CommPump,
    pub(crate) st: RefCell<ImageState>,
}

impl Image {
    pub(crate) fn new(shared: Arc<Shared>, me: ImageId) -> Self {
        let world = Team::world(shared.n);
        let pump = CommPump::new(shared.cfg.comm_mode, me.index());
        let seed = shared.cfg.seed ^ (me.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Image { shared, me, world, pump, st: RefCell::new(ImageState::new(seed)) }
    }

    /// This image's global rank.
    #[inline]
    pub fn id(&self) -> ImageId {
        self.me
    }

    /// Total number of images.
    #[inline]
    pub fn num_images(&self) -> usize {
        self.shared.n
    }

    /// `team_world`: the team of all images.
    #[inline]
    pub fn world(&self) -> Team {
        self.world.clone()
    }

    /// The image with global rank `r` (convenience constructor).
    #[inline]
    pub fn image(&self, r: usize) -> ImageId {
        assert!(r < self.shared.n, "image rank {r} out of range");
        ImageId(r)
    }

    // ------------------------------------------------------------------
    // Protocol trace capture
    // ------------------------------------------------------------------

    /// Records a protocol event into the configured trace, if any. Takes
    /// a closure so event construction is free when tracing is off.
    #[inline]
    pub(crate) fn trace(&self, ev: impl FnOnce() -> TraceEvent) {
        if let Some(rec) = &self.shared.cfg.trace {
            rec.record(ev());
        }
    }

    /// A finish id in the trace's substrate-independent form.
    #[inline]
    pub(crate) fn trace_fid(fid: FinishId) -> (u64, u64) {
        (fid.team.0, fid.seq)
    }

    // ------------------------------------------------------------------
    // Progress engine
    // ------------------------------------------------------------------

    /// Drains and handles every currently due message. Returns whether
    /// any message was handled. Applications with long compute phases
    /// should call this periodically so they can serve shipped functions
    /// (exactly the attentiveness question in the paper's UTS discussion).
    pub fn progress(&self) -> bool {
        let mut any = false;
        while let Some(m) = self.shared.fabric.try_recv(self.me) {
            self.handle(m);
            any = true;
        }
        any
    }

    /// Polls progress until `pred` holds, parking between polls.
    /// `construct` names the blocking construct for failure diagnostics.
    /// Under a configured watchdog each park iteration also files a
    /// progress observation; a declared stall aborts the wait (and the
    /// image), and a confirmed image failure does the same with a richer
    /// verdict.
    pub(crate) fn wait_until(&self, construct: &'static str, mut pred: impl FnMut() -> bool) {
        let wd = self.shared.watchdog.as_ref();
        let _blocked = wd.map(|w| w.enter_wait());
        loop {
            self.progress();
            if pred() {
                return;
            }
            self.check_failure(construct);
            if let Some(w) = wd {
                self.check_watchdog(w);
            }
            self.shared.fabric.wait_activity(self.me, Instant::now() + MAX_PARK);
        }
    }

    // ------------------------------------------------------------------
    // Fail-stop failure handling
    // ------------------------------------------------------------------

    /// Polls the fabric's failure detector and reacts: a confirmed peer
    /// death is posted to the hub (first observer owns the team-wide
    /// `ImageDown` broadcast) and then aborts this image's blocking
    /// construct; a crash fault aimed at *this* image fail-stops its
    /// thread — silently, as fail-stop demands: survivors must detect the
    /// death, the victim does not announce it.
    pub(crate) fn check_failure(&self, construct: &'static str) {
        let Some(hub) = &self.shared.failure else { return };
        if self.shared.fabric.is_crashed(self.me) {
            std::panic::resume_unwind(Box::new(CrashUnwind));
        }
        for down in self.shared.fabric.poll_failures(self.me) {
            if hub.post(down.peer, down.incarnation, down.latency) {
                self.broadcast_down(down.peer, down.incarnation);
            }
        }
        if hub.poisoned() {
            self.abort_for_failure(construct);
        }
    }

    /// Tells every other survivor about a confirmed death, riding the
    /// reliable ack/retry sublayer (the in-process hub already knows; the
    /// wire broadcast keeps the protocol honest under message loss).
    fn broadcast_down(&self, image: usize, incarnation: u64) {
        for i in 0..self.shared.n {
            if i == self.me.index() || i == image {
                continue;
            }
            self.shared.fabric.send_unthrottled(
                self.me,
                ImageId(i),
                CTRL_BYTES,
                Msg::ImageDown { image, incarnation },
            );
        }
    }

    /// Aborts this image after a confirmed failure: poisons every open
    /// finish epoch (their waves can never close with a dead member),
    /// releases the whole team, files this image's parting observation,
    /// and unwinds.
    fn abort_for_failure(&self, construct: &'static str) -> ! {
        let hub = self.shared.failure.as_ref().expect("failure abort without a hub");
        if let Some(down) = hub.down() {
            let mut st = self.st.borrow_mut();
            for (fid, frame) in st.finish_frames.iter_mut() {
                frame.detector.poison(down.peer);
                self.trace(|| TraceEvent::Poison {
                    image: self.me.index(),
                    finish: Image::trace_fid(*fid),
                    victim: down.peer,
                });
            }
        }
        // Halt first: flow control stops parking senders, so the comm
        // thread (joined when `self.pump` drops during unwind) and peers
        // blocked in sends all become runnable.
        self.shared.fabric.halt();
        for i in 0..self.shared.n {
            self.shared.fabric.poke(ImageId(i));
        }
        hub.contribute(ImageFailureObservation {
            image: self.me.index(),
            construct,
            finishes: self.finish_diags(),
        });
        std::panic::resume_unwind(Box::new(FailUnwind));
    }

    /// Fail-stop at the image boundary: the closure panicked. Records the
    /// panic message, posts the death (the boundary *is* the detector
    /// here — zero latency), broadcasts it before this image's traffic is
    /// silenced, then silences it.
    pub(crate) fn die_of_panic(&self, payload: &(dyn std::any::Any + Send)) {
        let hub = self.shared.failure.as_ref().expect("panic boundary without a hub");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned());
        if let Some(m) = msg {
            hub.set_panic(m);
        }
        if hub.post(self.me.index(), FIRST_INCARNATION, Some(Duration::ZERO)) {
            self.broadcast_down(self.me.index(), FIRST_INCARNATION);
        }
        self.shared.fabric.mark_crashed(self.me);
        for i in 0..self.shared.n {
            self.shared.fabric.poke(ImageId(i));
        }
    }

    // ------------------------------------------------------------------
    // No-progress watchdog
    // ------------------------------------------------------------------

    /// Global progress fingerprint: any logical send, exactly-once
    /// delivery, retransmission, or retry-budget exhaustion moves it.
    /// Retries count as progress, so the watchdog's window cannot elapse
    /// while the reliable-delivery layer is still spending its budget.
    fn progress_fingerprint(&self) -> u64 {
        let s = self.shared.fabric.stats();
        s.messages() + s.delivered() + s.retries() + s.retries_exhausted()
    }

    /// Files a progress observation; if the runtime is stalled (declared
    /// by this image just now or by a peer), dumps this image's
    /// diagnostics and unwinds its thread.
    fn check_watchdog(&self, wd: &Watchdog) {
        if !wd.observe(self.progress_fingerprint()) {
            return;
        }
        // Halt first: flow control stops parking senders, so the comm
        // thread (joined when `self.pump` drops during unwind) and peer
        // images blocked in sends all become runnable.
        self.shared.fabric.halt();
        wd.contribute(self.stall_report());
        for i in 0..self.shared.n {
            self.shared.fabric.poke(ImageId(i));
        }
        std::panic::resume_unwind(Box::new(StallUnwind));
    }

    /// Last-known epoch counters of every finish block this image has
    /// touched (shared by the stall and failure diagnostics).
    fn finish_diags(&self) -> Vec<FinishDiag> {
        let st = self.st.borrow();
        let mut finishes: Vec<FinishDiag> = st
            .finish_frames
            .iter()
            .map(|(fid, frame)| {
                let even = frame.detector.epochs().counters(Parity::Even);
                let odd = frame.detector.epochs().counters(Parity::Odd);
                FinishDiag {
                    finish: *fid,
                    sent: even.sent + odd.sent,
                    delivered: even.delivered + odd.delivered,
                    received: even.received + odd.received,
                    completed: even.completed + odd.completed,
                    waves: frame.detector.waves(),
                }
            })
            .collect();
        finishes.sort_by_key(|d| d.finish);
        finishes
    }

    /// Snapshot of this image's runtime state for the stall diagnostic.
    fn stall_report(&self) -> ImageStallReport {
        let finishes = self.finish_diags();
        let st = self.st.borrow();
        ImageStallReport {
            image: self.me.index(),
            inbox_depth: self.shared.fabric.inbox_depth(self.me),
            retry_backlog: self.shared.fabric.retry_backlog(self.me),
            pending_ops: st.pending_scopes.iter().map(Vec::len).sum(),
            finishes,
        }
    }

    fn handle(&self, msg: Msg) {
        match msg {
            Msg::Am(am) => self.handle_am(am),
            Msg::Ack { finish } => {
                self.with_frame(finish, |f| f.on_delivered(Parity::Even));
                self.trace(|| TraceEvent::Delivered {
                    image: self.me.index(),
                    finish: Image::trace_fid(finish),
                });
            }
            Msg::EventNotify { slot } => {
                self.shared.event_tables[self.me.index()].cell(slot).notify();
            }
            Msg::Coll(c) => {
                let prev = self.st.borrow_mut().coll_buf.insert(c.key, c.payload);
                debug_assert!(prev.is_none(), "duplicate collective hop {:?}", c.key);
            }
            Msg::Complete { completion, stage } => completion.advance(stage),
            Msg::ImageDown { image, incarnation } => {
                if let Some(hub) = &self.shared.failure {
                    hub.post(image, incarnation, None);
                    self.shared.fabric.mark_peer_dead(self.me, image, incarnation);
                    let mut st = self.st.borrow_mut();
                    for (fid, frame) in st.finish_frames.iter_mut() {
                        frame.detector.poison(image);
                        self.trace(|| TraceEvent::Poison {
                            image: self.me.index(),
                            finish: Image::trace_fid(*fid),
                            victim: image,
                        });
                    }
                }
            }
        }
    }

    fn handle_am(&self, am: Am) {
        // Count reception and acknowledge delivery (drives the sender's
        // `delivered` counter in the finish detector).
        if let Some(tag) = am.finish {
            self.with_frame(tag.id, |f| f.on_receive(tag.parity));
            self.trace(|| TraceEvent::Receive {
                image: self.me.index(),
                finish: Image::trace_fid(tag.id),
                parity: tag.parity,
            });
            self.shared.fabric.send_unthrottled(
                self.me,
                am.sender,
                CTRL_BYTES,
                Msg::Ack { finish: tag.id },
            );
        }
        {
            let mut st = self.st.borrow_mut();
            // Dynamic scoping: operations initiated while this closure
            // runs belong to the *message's* finish, not to whatever the
            // main program is doing.
            st.ctx_stack.push(am.finish.map(|t| t.id));
            if am.user {
                st.pending_scopes.push(Vec::new());
            }
        }
        (am.func)(self);
        {
            let mut st = self.st.borrow_mut();
            if am.user {
                // Dropping the scope is safe: implicit operations the
                // shipped function launched are still tracked by the
                // finish detector; only their cofence visibility ends
                // with the function (Fig. 10's dynamic scoping).
                st.pending_scopes.pop();
            }
            st.ctx_stack.pop();
        }
        if let Some(ev) = am.completion_event {
            self.notify_event_id(ev);
        }
        if let Some(tag) = am.finish {
            self.with_frame(tag.id, |f| f.on_complete(tag.parity));
            self.trace(|| TraceEvent::Complete {
                image: self.me.index(),
                finish: Image::trace_fid(tag.id),
                parity: tag.parity,
            });
        }
    }

    /// Runs `f` on the finish frame for `fid`, creating it if this is the
    /// first time this image hears of that block.
    pub(crate) fn with_frame<R>(
        &self,
        fid: FinishId,
        f: impl FnOnce(&mut EpochDetector) -> R,
    ) -> R {
        let mut st = self.st.borrow_mut();
        let wq = self.shared.cfg.finish_wait_quiescence;
        let frame = st
            .finish_frames
            .entry(fid)
            .or_insert_with(|| FinishFrame { detector: EpochDetector::new(wq) });
        f(&mut frame.detector)
    }

    /// Current finish attribution for newly initiated operations, plus
    /// its epoch tag (counts the send). `None` outside any finish.
    pub(crate) fn am_tag(&self) -> Option<FinishTag> {
        let fid = self.st.borrow().ctx_stack.last().copied().flatten()?;
        let parity = self.with_frame(fid, |d| d.on_send());
        self.trace(|| TraceEvent::Send {
            image: self.me.index(),
            finish: Image::trace_fid(fid),
            parity,
        });
        Some(FinishTag { id: fid, parity })
    }

    /// Sends an active message carrying an already-counted finish tag.
    /// Callable from communication threads (takes no image state).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn send_prepared_am(
        shared: &Shared,
        from: ImageId,
        target: ImageId,
        payload_bytes: usize,
        tag: Option<FinishTag>,
        completion_event: Option<EventId>,
        user: bool,
        func: AmFn,
    ) {
        shared.fabric.send(
            from,
            target,
            payload_bytes,
            Msg::Am(Am { func, sender: from, finish: tag, completion_event, user }),
        );
    }

    /// Initiates an active message from this image's thread: counts it
    /// under the current finish context and injects it, *polling while
    /// flow-controlled*. A request send that merely slept under
    /// backpressure could deadlock (every image blocked sending, nobody
    /// draining); like GASNet's blocking AM requests, we keep serving our
    /// own inbox until the target has credit.
    pub(crate) fn send_am(
        &self,
        target: ImageId,
        payload_bytes: usize,
        user: bool,
        completion_event: Option<EventId>,
        func: AmFn,
    ) {
        // Even a sender that never blocks must notice a confirmed failure
        // (or its own crash flag) — without this, a crashed image that
        // keeps injecting would never fail-stop.
        self.check_failure("send");
        let tag = self.am_tag();
        let mut msg = Msg::Am(Am { func, sender: self.me, finish: tag, completion_event, user });
        let wd = self.shared.watchdog.as_ref();
        let mut blocked = None;
        loop {
            match self.shared.fabric.try_send(self.me, target, payload_bytes, msg) {
                Ok(()) => return,
                Err(back) => {
                    msg = back;
                    self.check_failure("send");
                    if let Some(w) = wd {
                        blocked.get_or_insert_with(|| w.enter_wait());
                        self.check_watchdog(w);
                    }
                    if !self.progress() {
                        self.shared.fabric.wait_activity(self.me, Instant::now() + MAX_PARK);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Function shipping (paper §II-C2)
    // ------------------------------------------------------------------

    /// Ships `f` to execute on `target` — `spawn f(...)[target]`.
    /// Completion is implicit: it is guaranteed by the enclosing `finish`
    /// block (or observable via [`Image::spawn_notify`]).
    ///
    /// The shipped closure runs on the target image's thread with the
    /// *target's* `&Image`; captured coarray handles address the same
    /// storage everywhere (CAF passes coarray sections by reference),
    /// while ordinary captured values were copied at initiation (CAF
    /// copies array/scalar arguments).
    pub fn spawn(&self, target: ImageId, f: impl FnOnce(&Image) + Send + 'static) {
        self.spawn_sized(target, SPAWN_NOMINAL_BYTES, f);
    }

    /// [`Image::spawn`] with an explicit payload size for the network cost
    /// model (e.g. when shipping a chunk of work items).
    pub fn spawn_sized(
        &self,
        target: ImageId,
        payload_bytes: usize,
        f: impl FnOnce(&Image) + Send + 'static,
    ) {
        // Argument marshalling (the closure capture) happened just now, so
        // the spawn is already local-data complete (paper §III-B3: a
        // cofence after a spawn only captures argument evaluation).
        let comp = Completion::new();
        comp.advance(Stage::LocalData);
        self.register_pending(comp, LocalAccess::READ);
        self.send_am(target, payload_bytes.max(SPAWN_NOMINAL_BYTES), true, None, Box::new(f));
    }

    /// Ships `f` to `target` with explicit completion: `ev` is notified
    /// when the shipped function finishes executing there —
    /// `spawn(e) f(...)[target]`.
    pub fn spawn_notify(
        &self,
        target: ImageId,
        ev: Event,
        f: impl FnOnce(&Image) + Send + 'static,
    ) {
        self.send_am(target, SPAWN_NOMINAL_BYTES, true, Some(ev.id), Box::new(f));
    }

    // ------------------------------------------------------------------
    // Events (paper §II-B)
    // ------------------------------------------------------------------

    /// Declares a purely local event (not remotely addressable by rank
    /// symmetry; remote images can still notify it if handed the handle).
    pub fn event(&self) -> Event {
        let mut st = self.st.borrow_mut();
        let slot = st.local_event_seq;
        st.local_event_seq += 1;
        Event { id: EventId { owner: self.me, slot } }
    }

    /// Collectively declares a *co-event*: the same slot on every image,
    /// addressable as `ce.on(image)` — an event coarray. Every image must
    /// call this at the same program point (SPMD-matched).
    pub fn coevent(&self) -> CoEvent {
        let mut st = self.st.borrow_mut();
        let slot = st.coevent_seq;
        st.coevent_seq += 1;
        CoEvent { slot }
    }

    /// Notifies `ev`, wherever it lives (`event_notify`). Release
    /// semantics: everything this image did before the notify is visible
    /// to a waiter that acquires it.
    pub fn event_notify(&self, ev: Event) {
        self.notify_event_id(ev.id);
    }

    pub(crate) fn notify_event_id(&self, id: EventId) {
        notify_event_from(&self.shared, self.me, id);
    }

    /// Blocks (with progress) until `ev` has been posted, consuming one
    /// notification (`event_wait`, acquire semantics). The event must be
    /// owned by this image.
    pub fn event_wait(&self, ev: Event) {
        assert_eq!(ev.owner(), self.me, "event_wait requires a locally owned event");
        let cell = self.shared.event_tables[self.me.index()].cell(ev.id.slot);
        self.wait_until("event_wait", || cell.try_consume());
    }

    /// Non-blocking `event_wait`: consumes a notification if one is
    /// pending.
    pub fn event_try(&self, ev: Event) -> bool {
        assert_eq!(ev.owner(), self.me, "event_try requires a locally owned event");
        self.progress();
        self.shared.event_tables[self.me.index()].cell(ev.id.slot).try_consume()
    }

    // ------------------------------------------------------------------
    // Coarrays
    // ------------------------------------------------------------------

    /// Collectively allocates a coarray over `team`: every member gets a
    /// `len`-element segment initialized to `init`. All members must call
    /// this at the same program point.
    pub fn coarray<T: Clone + Send + 'static>(
        &self,
        team: &Team,
        len: usize,
        init: T,
    ) -> Coarray<T> {
        let seq = ImageState::bump(&mut self.st.borrow_mut().alloc_seq, team.id());
        let mut allocs = self.shared.allocs.lock();
        let entry = allocs
            .entry((team.id(), seq))
            .or_insert_with(|| Box::new(Coarray::allocate(team.members().to_vec(), len, init)));
        entry
            .downcast_ref::<Coarray<T>>()
            .expect("collective allocation type mismatch across images")
            .clone()
    }

    // ------------------------------------------------------------------
    // Cofence pending-op tracking
    // ------------------------------------------------------------------

    /// Registers an implicitly completed operation in the innermost
    /// cofence scope.
    pub(crate) fn register_pending(&self, completion: Arc<Completion>, access: LocalAccess) {
        let mut st = self.st.borrow_mut();
        let scope = st.pending_scopes.last_mut().expect("scope stack never empty");
        scope.push(PendingOp { completion, access });
    }

    /// Waves used by this image's most recently completed finish block
    /// (the Fig. 18 metric on the threaded runtime).
    pub fn last_finish_waves(&self) -> usize {
        self.st.borrow().last_finish_waves
    }

    /// Next value from this image's deterministic RNG (seeded from the
    /// runtime seed and the rank) — reproducible randomized choices for
    /// workloads, e.g. UTS victim selection.
    pub fn rng_next(&self) -> u64 {
        self.st.borrow_mut().rng.next_u64()
    }

    /// Uniform value in `0..bound` from the image RNG.
    pub fn rng_below(&self, bound: u64) -> u64 {
        self.st.borrow_mut().rng.next_below(bound)
    }

    /// Snapshot of the fabric's traffic statistics
    /// `(messages, bytes, backpressure stalls)`.
    pub fn fabric_stats(&self) -> (u64, u64, u64) {
        let s = self.shared.fabric.stats();
        (s.messages(), s.bytes(), s.backpressure_stalls())
    }

    /// Final synchronization before an image returns from the SPMD main:
    /// a world barrier plus one last progress drain.
    pub(crate) fn shutdown(&self) {
        let world = self.world();
        self.barrier(&world);
        self.progress();
        // Reliable delivery: an image must not retire while it still owns
        // unacknowledged messages — its retransmission timers are pumped
        // only by its own runtime calls, so a wire drop after this point
        // would become a permanent loss and strand the receiver (e.g. a
        // dropped barrier-release hop whose sender has already returned).
        // The backlog empties on acknowledgement or, if the receiver has
        // itself retired, on retry-budget exhaustion — either way the
        // loop is bounded.
        if self.shared.fabric.faults_active() {
            self.wait_until("shutdown", || self.shared.fabric.retry_backlog(self.me) == 0);
        }
        // Clean exit: stop being monitored, so this image's post-return
        // silence is never mistaken for a crash.
        self.shared.fabric.retire(self.me);
    }
}

/// Notifies an event cell from `from`'s perspective: locally when `from`
/// owns it (with a poke so a parked owner re-checks), via the fabric
/// otherwise. Callable from communication threads.
pub(crate) fn notify_event_from(shared: &Shared, from: ImageId, id: EventId) {
    if id.owner == from {
        shared.event_tables[from.index()].cell(id.slot).notify();
        shared.fabric.poke(from);
    } else {
        shared.fabric.send_unthrottled(
            from,
            id.owner,
            CTRL_BYTES,
            Msg::EventNotify { slot: id.slot },
        );
    }
}
