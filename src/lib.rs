//! # caf2
//!
//! A Rust reproduction of *"Managing Asynchronous Operations in Coarray
//! Fortran 2.0"* (Yang, Murthy & Mellor-Crummey, IPDPS 2013): a PGAS
//! runtime with asynchronous copies, function shipping, asynchronous
//! collectives, events, and — the paper's contribution — the `finish`
//! and `cofence` synchronization constructs, plus a discrete-event
//! simulator that reruns the paper's 4K–32K-core experiments in virtual
//! time.
//!
//! This façade re-exports the member crates:
//!
//! * [`core`](caf_core) — ids, teams, topologies, epochs, termination
//!   detectors, the cofence algebra, and the memory-model checker;
//! * [`net`](caf_net) — the simulated interconnect;
//! * [`runtime`](caf_runtime) — the threaded CAF 2.0 runtime;
//! * [`des`](caf_des) — the discrete-event engine;
//! * [`sim`](caf_sim) — paper-scale workload models;
//! * [`uts`] — Unbalanced Tree Search;
//! * [`randomaccess`] — HPC Challenge RandomAccess.
//!
//! Start with [`caf_runtime::Runtime::launch`] and the `examples/`
//! directory; DESIGN.md maps every paper figure to the module and bench
//! that regenerate it.

pub mod paper_map;

pub use caf_core as core;
pub use caf_des as des;
pub use caf_net as net;
pub use caf_runtime as runtime;
pub use caf_sim as sim;
pub use randomaccess;
pub use uts;

pub use caf_runtime::{
    AsyncCollEvents, AsyncOp, CoEvent, CoSlice, Coarray, CofenceSpec, CommMode, CopyEvents, Event,
    Image, LocalAccess, LocalArray, NetworkModel, Pass, Runtime, RuntimeConfig, Team, TeamRank,
};
