//! Paper-scale UTS under the discrete-event simulator (Figs. 16–18).
//!
//! Executes the *actual* Fig. 15 algorithm — initial work sharing,
//! one-attempt randomized stealing via shipped functions, hypercube
//! lifelines, and epoch-based `finish` termination detection — over up to
//! 32 768 simulated images in virtual time. The tree is expanded for real
//! (every node's SHA-1 descriptor is computed), so load balance and
//! message traffic are genuine; only *time* is modelled, through
//! [`SimNet`] and a per-node work cost.

use std::collections::VecDeque;

use caf_core::ids::{Parity, TeamRank};
use caf_core::rng::SplitMix64;
use caf_core::topology::hypercube_neighbors;
use caf_des::{Engine, SimNet};
use uts::{Node, TreeSpec};

use crate::finish_sim::FinishSim;

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct UtsSimConfig {
    /// The tree workload (scaled; see EXPERIMENTS.md on substitutions).
    pub spec: TreeSpec,
    /// Simulated image count (the paper sweeps 256–32 768).
    pub images: usize,
    /// Interconnect model.
    pub net: SimNet,
    /// Virtual work per tree node, in nanoseconds. Scaling this up
    /// emulates the larger per-image work of the paper's T1WL runs
    /// without expanding 10¹¹ real nodes.
    pub node_cost_ns: u64,
    /// Nodes processed per compute event (simulation granularity).
    pub batch: usize,
    /// Max descriptors per steal/push (the `AMMedium` cap; paper: 9).
    pub steal_chunk: usize,
    /// Minimum queue length before feeding lifelines.
    pub lifeline_push_min: usize,
    /// Image 0 expands a frontier of `factor × images` before scattering.
    pub initial_share_factor: usize,
    /// Paper's algorithm (`true`) vs. the no-upper-bound Fig. 18 baseline.
    pub strict_finish: bool,
    /// Simulation seed (victim selection, network jitter).
    pub seed: u64,
}

impl UtsSimConfig {
    /// Reasonable defaults for a given workload and image count.
    pub fn new(spec: TreeSpec, images: usize) -> Self {
        UtsSimConfig {
            spec,
            images,
            net: SimNet::gemini_like(),
            node_cost_ns: 1_000,
            batch: 64,
            steal_chunk: 9,
            lifeline_push_min: 32,
            initial_share_factor: 4,
            strict_finish: true,
            seed: 0x5eed,
        }
    }
}

/// Simulation outcome.
#[derive(Debug, Clone)]
pub struct UtsSimResult {
    /// Virtual time from start to detected termination.
    pub sim_time_ns: u64,
    /// Nodes expanded in total (must equal the sequential count).
    pub total_nodes: u64,
    /// Nodes expanded per image (Fig. 16's series).
    pub per_image: Vec<u64>,
    /// Termination-detection reduction waves (Fig. 18's metric).
    pub waves: usize,
    /// Messages sent (steals + work + lifelines + initial share).
    pub messages: u64,
    /// Steal attempts.
    pub steals: u64,
    /// Lifeline pushes delivered.
    pub lifeline_pushes: u64,
}

impl UtsSimResult {
    /// Parallel efficiency w.r.t. one image doing all node work with no
    /// communication: `T₁ / (p · T_p)` (Fig. 17's metric).
    pub fn efficiency(&self, images: usize, node_cost_ns: u64) -> f64 {
        let t1 = self.total_nodes as f64 * node_cost_ns as f64;
        t1 / (images as f64 * self.sim_time_ns as f64)
    }

    /// Fig. 16's y-axis: each image's share relative to perfect balance.
    pub fn relative_work(&self) -> Vec<f64> {
        let mean = self.total_nodes as f64 / self.per_image.len() as f64;
        self.per_image.iter().map(|&c| c as f64 / mean).collect()
    }
}

enum Kind {
    Steal { thief: usize },
    Work { nodes: Vec<Node> },
    Lifeline { waiter: usize },
}

enum Ev {
    Compute(usize),
    Exhausted(usize),
    Deliver { to: usize, from: usize, tag: Parity, kind: Kind },
    Ack { to: usize },
    WaveDone,
}

struct Img {
    queue: VecDeque<Node>,
    computing: bool,
    quiesced: bool,
    lifelines: Vec<usize>,
    count: u64,
}

struct Model {
    cfg: UtsSimConfig,
    imgs: Vec<Img>,
    fsim: FinishSim,
    rng: SplitMix64,
    messages: u64,
    steals: u64,
    pushes: u64,
}

impl Model {
    fn send(&mut self, eng: &mut Engine<Ev>, from: usize, to: usize, kind: Kind, bytes: usize) {
        let tag = self.fsim.on_send(from);
        self.messages += 1;
        let delay = if from == to {
            self.cfg.net.local_delay()
        } else {
            self.cfg.net.delivery_delay(bytes, &mut self.rng)
        };
        eng.schedule(delay, Ev::Deliver { to, from, tag, kind });
    }

    fn wake(&mut self, eng: &mut Engine<Ev>, img: usize) {
        let s = &mut self.imgs[img];
        s.quiesced = false;
        if !s.computing {
            s.computing = true;
            eng.schedule(0, Ev::Compute(img));
        }
    }

    fn feed_lifelines(&mut self, eng: &mut Engine<Ev>, img: usize) {
        loop {
            let (waiter, nodes) = {
                let s = &mut self.imgs[img];
                if s.lifelines.is_empty() || s.queue.len() < self.cfg.lifeline_push_min {
                    break;
                }
                let waiter = s.lifelines.remove(0);
                let take = self.cfg.steal_chunk.min(s.queue.len() / 2).max(1);
                let nodes: Vec<Node> = (0..take).filter_map(|_| s.queue.pop_front()).collect();
                (waiter, nodes)
            };
            self.pushes += 1;
            let bytes = nodes.len() * 24 + 16;
            self.send(eng, img, waiter, Kind::Work { nodes }, bytes);
        }
    }

    /// Image hit an empty queue: one steal attempt plus lifeline
    /// registration (Fig. 15 lines 13–20), then try the wave.
    fn on_exhausted(&mut self, eng: &mut Engine<Ev>, img: usize) {
        self.imgs[img].computing = false;
        if !self.imgs[img].queue.is_empty() {
            // Work arrived while the last batch's cost elapsed.
            self.imgs[img].computing = true;
            eng.schedule(0, Ev::Compute(img));
            return;
        }
        let p = self.cfg.images;
        if !self.imgs[img].quiesced && p > 1 {
            self.imgs[img].quiesced = true;
            let victim = {
                let v = self.rng.next_below((p - 1) as u64) as usize;
                if v >= img {
                    v + 1
                } else {
                    v
                }
            };
            self.steals += 1;
            self.send(eng, img, victim, Kind::Steal { thief: img }, 32);
            for nb in hypercube_neighbors(p, TeamRank(img)) {
                self.send(eng, img, nb.0, Kind::Lifeline { waiter: img }, 24);
            }
        }
        self.maybe_enter(eng, img);
    }

    fn maybe_enter(&mut self, eng: &mut Engine<Ev>, img: usize) {
        let s = &self.imgs[img];
        if s.computing || !s.queue.is_empty() || self.fsim.terminated() {
            return;
        }
        if self.fsim.try_enter(img, eng.now()) {
            let cost = self.cfg.net.allreduce_cost(self.cfg.images, &mut self.rng);
            eng.schedule(cost, Ev::WaveDone);
        }
    }
}

/// Runs the simulation to detected termination.
pub fn run_uts_sim(cfg: UtsSimConfig) -> UtsSimResult {
    let p = cfg.images;
    assert!(p >= 1);
    let mut eng: Engine<Ev> = Engine::new();
    let mut m = Model {
        rng: SplitMix64::new(cfg.seed),
        imgs: (0..p)
            .map(|_| Img {
                queue: VecDeque::new(),
                computing: false,
                quiesced: false,
                lifelines: Vec::new(),
                count: 0,
            })
            .collect(),
        fsim: FinishSim::new(p, cfg.strict_finish),
        messages: 0,
        steals: 0,
        pushes: 0,
        cfg,
    };

    // Initial work sharing at image 0 (paper §IV-C2a).
    {
        let target = m.cfg.initial_share_factor * p;
        let mut frontier: VecDeque<Node> = VecDeque::new();
        frontier.push_back(m.cfg.spec.root());
        let mut kids = Vec::new();
        while frontier.len() < target {
            let Some(node) = frontier.pop_front() else { break };
            m.imgs[0].count += 1;
            kids.clear();
            m.cfg.spec.expand_into(&node, &mut kids);
            frontier.extend(kids.drain(..));
        }
        let mut deals: Vec<Vec<Node>> = vec![Vec::new(); p];
        for (i, node) in frontier.into_iter().enumerate() {
            deals[i % p].push(node);
        }
        for (j, nodes) in deals.into_iter().enumerate() {
            if j == 0 {
                m.imgs[0].queue.extend(nodes);
            } else {
                for chunk in nodes.chunks(m.cfg.steal_chunk.max(1)) {
                    let bytes = chunk.len() * 24 + 16;
                    m.send(&mut eng, 0, j, Kind::Work { nodes: chunk.to_vec() }, bytes);
                }
            }
        }
    }
    // Everyone starts: image 0 computes, the rest go straight to the
    // exhausted path (steal once, set lifelines, wait in the finish).
    m.imgs[0].computing = true;
    eng.schedule(0, Ev::Compute(0));
    for j in 1..p {
        m.imgs[j].computing = true;
        eng.schedule(0, Ev::Exhausted(j));
    }

    let mut kids = Vec::new();
    let mut end_time = 0;
    while let Some((now, ev)) = eng.pop() {
        match ev {
            Ev::Compute(img) => {
                let take = m.cfg.batch.min(m.imgs[img].queue.len());
                for _ in 0..take {
                    let node = m.imgs[img].queue.pop_back().expect("sized take");
                    kids.clear();
                    m.cfg.spec.expand_into(&node, &mut kids);
                    m.imgs[img].count += 1;
                    m.imgs[img].queue.extend(kids.drain(..));
                }
                let cost = take as u64 * m.cfg.node_cost_ns;
                m.feed_lifelines(&mut eng, img);
                if m.imgs[img].queue.is_empty() {
                    eng.schedule(cost, Ev::Exhausted(img));
                } else {
                    eng.schedule(cost, Ev::Compute(img));
                }
            }
            Ev::Exhausted(img) => m.on_exhausted(&mut eng, img),
            Ev::Deliver { to, from, tag, kind } => {
                m.fsim.on_receive(to, tag);
                // Delivery acknowledgement back to the sender.
                let ack_delay = if from == to {
                    m.cfg.net.local_delay()
                } else {
                    m.cfg.net.delivery_delay(8, &mut m.rng)
                };
                eng.schedule(ack_delay, Ev::Ack { to: from });
                match kind {
                    Kind::Steal { thief } => {
                        let take = m.cfg.steal_chunk.min(m.imgs[to].queue.len());
                        if take > 0 {
                            let nodes: Vec<Node> =
                                (0..take).filter_map(|_| m.imgs[to].queue.pop_front()).collect();
                            let bytes = nodes.len() * 24 + 16;
                            m.send(&mut eng, to, thief, Kind::Work { nodes }, bytes);
                        }
                    }
                    Kind::Work { nodes } => {
                        m.imgs[to].queue.extend(nodes);
                        m.wake(&mut eng, to);
                    }
                    Kind::Lifeline { waiter } => {
                        if !m.imgs[to].lifelines.contains(&waiter) {
                            m.imgs[to].lifelines.push(waiter);
                        }
                        m.feed_lifelines(&mut eng, to);
                    }
                }
                m.fsim.on_complete(to, tag);
                m.maybe_enter(&mut eng, to);
            }
            Ev::Ack { to } => {
                m.fsim.on_delivered(to);
                m.maybe_enter(&mut eng, to);
            }
            Ev::WaveDone => {
                use caf_core::termination::WaveDecision;
                if m.fsim.complete_wave() == WaveDecision::Terminated {
                    end_time = now;
                    break;
                }
                for i in 0..p {
                    m.maybe_enter(&mut eng, i);
                }
            }
        }
    }
    assert!(m.fsim.terminated(), "simulation drained without detecting termination");
    UtsSimResult {
        sim_time_ns: end_time,
        total_nodes: m.imgs.iter().map(|s| s.count).sum(),
        per_image: m.imgs.iter().map(|s| s.count).collect(),
        waves: m.fsim.waves(),
        messages: m.messages,
        steals: m.steals,
        lifeline_pushes: m.pushes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uts::count_tree;

    fn small(images: usize, strict: bool) -> (UtsSimResult, u64) {
        let spec = TreeSpec::geo_fixed(4.0, 6, 19);
        let expect = count_tree(&spec).nodes;
        let mut cfg = UtsSimConfig::new(spec, images);
        cfg.strict_finish = strict;
        (run_uts_sim(cfg), expect)
    }

    #[test]
    fn counts_match_sequential_small_team() {
        for p in [1usize, 2, 4, 7, 16] {
            let (r, expect) = small(p, true);
            assert_eq!(r.total_nodes, expect, "p={p}");
            assert!(r.sim_time_ns > 0);
        }
    }

    #[test]
    fn counts_match_sequential_no_wait_variant() {
        let (r, expect) = small(8, false);
        assert_eq!(r.total_nodes, expect);
    }

    #[test]
    fn no_wait_variant_needs_at_least_as_many_waves() {
        let (strict, _) = small(16, true);
        let (loose, _) = small(16, false);
        assert!(loose.waves >= strict.waves, "loose {} < strict {}", loose.waves, strict.waves);
    }

    #[test]
    fn work_spreads_across_images() {
        let (r, _) = small(8, true);
        let busy = r.per_image.iter().filter(|&&c| c > 0).count();
        assert!(busy >= 4, "load balance failed: {:?}", r.per_image);
    }

    #[test]
    fn more_images_run_faster_on_big_enough_trees() {
        let spec = TreeSpec::geo_fixed(4.0, 8, 19);
        let t = |p| {
            let mut cfg = UtsSimConfig::new(spec, p);
            cfg.node_cost_ns = 10_000;
            run_uts_sim(cfg).sim_time_ns
        };
        let t2 = t(2);
        let t16 = t(16);
        assert!(t16 * 2 < t2, "16 images ({t16} ns) should beat 2 images ({t2} ns) by ≥2×");
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, _) = small(8, true);
        let (b, _) = small(8, true);
        assert_eq!(a.sim_time_ns, b.sim_time_ns);
        assert_eq!(a.per_image, b.per_image);
        assert_eq!(a.waves, b.waves);
    }
}
