//! Protocol trace capture: a linearized record of the finish/cofence
//! protocol events an execution performed.
//!
//! The model checker (`caf-check`) explores schedules of *abstract*
//! protocol events; the threaded runtime (`caf-runtime`) executes the
//! same protocol for real. This module is the bridge between the two: a
//! [`TraceRecorder`] installed into a runtime captures every
//! detector-relevant event (sends, delivery acks, receptions,
//! completions, reduction-wave entries/exits, poison) in one global
//! linearization, and `caf-check` can then validate that recorded
//! execution against the same oracles it applies to explored schedules —
//! closing the loop between model and implementation.
//!
//! Capture is deliberately dumb: an append-only vector behind a mutex,
//! recording exactly what the per-image detectors were told, in the
//! order the runtime told them. The linearization order is one valid
//! interleaving of the per-image event sequences (each image's events
//! appear in its own program order because each image records its own
//! callbacks), which is precisely the form a schedule-exploration
//! checker consumes.

use std::sync::Mutex;

use crate::ids::Parity;

/// One protocol event, as seen by the termination detector of the image
/// that recorded it. `finish` identifies the dynamic finish block as
/// `(team id, per-team sequence)` so traces with nested or back-to-back
/// blocks can be validated per block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// `image` sent a message under the finish block, tagged `parity`.
    Send {
        /// Sending image (global rank).
        image: usize,
        /// Dynamic finish block: `(team id, per-team finish sequence)`.
        finish: (u64, u64),
        /// Epoch parity the message carries.
        parity: Parity,
    },
    /// A delivery acknowledgement arrived back at sender `image`.
    Delivered {
        /// Original sender (global rank).
        image: usize,
        /// Dynamic finish block.
        finish: (u64, u64),
    },
    /// `image` received a `parity`-tagged message.
    Receive {
        /// Receiving image (global rank).
        image: usize,
        /// Dynamic finish block.
        finish: (u64, u64),
        /// Epoch parity the message carried.
        parity: Parity,
    },
    /// A received message finished executing at `image`.
    Complete {
        /// Image where the handler completed (global rank).
        image: usize,
        /// Dynamic finish block.
        finish: (u64, u64),
        /// Epoch parity the message carried.
        parity: Parity,
    },
    /// `image` entered a reduction wave contributing `contribution`.
    EnterWave {
        /// Entering image (global rank).
        image: usize,
        /// Dynamic finish block.
        finish: (u64, u64),
        /// The image's element-wise contribution to the wave sum.
        contribution: [i64; 2],
    },
    /// `image` exited a reduction wave that summed to `sum`.
    ExitWave {
        /// Exiting image (global rank).
        image: usize,
        /// Dynamic finish block.
        finish: (u64, u64),
        /// The team-wide element-wise sum every member received.
        sum: [i64; 2],
        /// Whether this image's detector declared global termination.
        terminated: bool,
    },
    /// `image`'s detector was poisoned with `victim`'s death.
    Poison {
        /// Surviving image whose detector was poisoned (global rank).
        image: usize,
        /// Dynamic finish block.
        finish: (u64, u64),
        /// The fail-stopped image.
        victim: usize,
    },
}

impl TraceEvent {
    /// The image that recorded this event.
    pub fn image(&self) -> usize {
        match *self {
            TraceEvent::Send { image, .. }
            | TraceEvent::Delivered { image, .. }
            | TraceEvent::Receive { image, .. }
            | TraceEvent::Complete { image, .. }
            | TraceEvent::EnterWave { image, .. }
            | TraceEvent::ExitWave { image, .. }
            | TraceEvent::Poison { image, .. } => image,
        }
    }

    /// The dynamic finish block this event belongs to.
    pub fn finish(&self) -> (u64, u64) {
        match *self {
            TraceEvent::Send { finish, .. }
            | TraceEvent::Delivered { finish, .. }
            | TraceEvent::Receive { finish, .. }
            | TraceEvent::Complete { finish, .. }
            | TraceEvent::EnterWave { finish, .. }
            | TraceEvent::ExitWave { finish, .. }
            | TraceEvent::Poison { finish, .. } => finish,
        }
    }
}

/// An append-only, thread-safe protocol event log. Shared (via `Arc`)
/// between every image of a runtime instance and the test that installed
/// it.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    events: Mutex<Vec<TraceEvent>>,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// Appends one event to the global linearization.
    pub fn record(&self, ev: TraceEvent) {
        self.events.lock().expect("trace mutex poisoned").push(ev);
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace mutex poisoned").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the full linearization.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace mutex poisoned").clone()
    }

    /// Drains and returns the recorded events.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().expect("trace mutex poisoned"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let r = TraceRecorder::new();
        assert!(r.is_empty());
        r.record(TraceEvent::Send { image: 0, finish: (0, 0), parity: Parity::Even });
        r.record(TraceEvent::Receive { image: 1, finish: (0, 0), parity: Parity::Even });
        assert_eq!(r.len(), 2);
        let evs = r.snapshot();
        assert_eq!(evs[0].image(), 0);
        assert_eq!(evs[1].image(), 1);
        assert_eq!(evs[0].finish(), (0, 0));
        let taken = r.take();
        assert_eq!(taken.len(), 2);
        assert!(r.is_empty());
    }

    #[test]
    fn accessors_cover_every_variant() {
        let f = (3, 7);
        let evs = [
            TraceEvent::Send { image: 1, finish: f, parity: Parity::Odd },
            TraceEvent::Delivered { image: 2, finish: f },
            TraceEvent::Receive { image: 3, finish: f, parity: Parity::Even },
            TraceEvent::Complete { image: 4, finish: f, parity: Parity::Even },
            TraceEvent::EnterWave { image: 5, finish: f, contribution: [1, 0] },
            TraceEvent::ExitWave { image: 6, finish: f, sum: [0, 0], terminated: true },
            TraceEvent::Poison { image: 7, finish: f, victim: 0 },
        ];
        for (i, ev) in evs.iter().enumerate() {
            assert_eq!(ev.image(), i + 1);
            assert_eq!(ev.finish(), f);
        }
    }
}
