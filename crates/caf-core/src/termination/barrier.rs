//! The *incorrect* barrier-based termination strawman of paper Fig. 5.
//!
//! "One might think that … termination detection can be achieved simply by
//! having each process image wait for completion of all asynchronous
//! operations that it initiated …, and then perform a barrier." The flaw:
//! a transitively shipped function `f2` can land on image `r` *after* `r`
//! has observed every barrier arrival, so `r` exits the barrier while `f2`
//! is still in flight. This module implements the strawman faithfully so
//! the harness can exhibit the failure deterministically (see
//! `harness::tests::barrier_detector_misses_transitive_spawn` and the
//! `fig05_barrier_failure` bench binary).

use crate::ids::Parity;

/// Per-image state of the barrier-based detector.
///
/// An image is "locally done" once every operation *it initiated* has been
/// acknowledged as delivered (it has no visibility into transitive spawns
/// performed on its behalf elsewhere — exactly the blind spot).
#[derive(Debug, Clone, Default)]
pub struct BarrierDetector {
    sent: u64,
    delivered: u64,
    /// Received messages currently executing locally.
    executing: u64,
    poisoned: Option<usize>,
}

impl BarrierDetector {
    /// Fresh state.
    pub fn new() -> Self {
        BarrierDetector::default()
    }

    /// Records an outgoing message.
    pub fn on_send(&mut self) -> Parity {
        self.sent += 1;
        Parity::Even
    }

    /// Records a delivery acknowledgement for an outgoing message.
    pub fn on_delivered(&mut self, _tag: Parity) {
        self.delivered += 1;
    }

    /// Records arrival of a shipped function (it begins executing).
    pub fn on_receive(&mut self, _tag: Parity) {
        self.executing += 1;
    }

    /// Records local completion of a received function.
    pub fn on_complete(&mut self, _tag: Parity) {
        assert!(self.executing > 0);
        self.executing -= 1;
    }

    /// The (unsound) local-done predicate: everything *I* initiated has
    /// landed and nothing is executing here right now. The image then
    /// enters the barrier; once all images have entered, the detector
    /// declares termination — possibly wrongly. A poisoned detector is
    /// immediately "done": an ack owed by a dead image never arrives, so
    /// waiting on it would turn the crash into a deadlock.
    pub fn locally_done(&self) -> bool {
        self.poisoned.is_some() || (self.sent == self.delivered && self.executing == 0)
    }

    /// Marks `image` as fail-stopped: the barrier wait aborts (the
    /// runtime surfaces the failure instead of completing the barrier).
    pub fn poison(&mut self, image: usize) {
        self.poisoned.get_or_insert(image);
    }

    /// The first fail-stopped image this detector was told about, if any.
    pub fn poisoned_by(&self) -> Option<usize> {
        self.poisoned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn done_when_idle() {
        assert!(BarrierDetector::new().locally_done());
    }

    #[test]
    fn own_sends_block_until_delivered() {
        let mut d = BarrierDetector::new();
        let tag = d.on_send();
        assert!(!d.locally_done());
        d.on_delivered(tag);
        assert!(d.locally_done());
    }

    #[test]
    fn executing_function_blocks() {
        let mut d = BarrierDetector::new();
        d.on_receive(Parity::Even);
        assert!(!d.locally_done());
        d.on_complete(Parity::Even);
        assert!(d.locally_done());
    }

    #[test]
    fn poison_unblocks_a_wait_on_a_dead_acker() {
        let mut d = BarrierDetector::new();
        d.on_send(); // the target dies before acking
        assert!(!d.locally_done());
        d.poison(4);
        assert!(d.locally_done(), "poison must abort the wait");
        assert_eq!(d.poisoned_by(), Some(4));
    }

    /// The blind spot in miniature: after my own spawn is delivered I am
    /// "done", even though the delivered function may spawn further work
    /// that has not yet landed anywhere.
    #[test]
    fn transitive_spawn_is_invisible() {
        let mut p = BarrierDetector::new();
        let tag = p.on_send(); // p ships f1 to q
        p.on_delivered(tag);
        assert!(p.locally_done()); // p would enter the barrier here,
                                   // regardless of what f1 does at q.
    }
}
