//! SHA-1 (FIPS 180-1), implemented from scratch.
//!
//! The UTS benchmark derives every node's descriptor by hashing its
//! parent's descriptor with the child index, so the tree's exact shape —
//! and therefore the published node counts we validate against — depends
//! on this being a bit-exact SHA-1. Not for security use; SHA-1 is
//! cryptographically broken, which is irrelevant here (UTS uses it as a
//! high-quality splittable RNG).

/// Streaming SHA-1 context.
#[derive(Clone)]
pub struct Sha1 {
    h: [u32; 5],
    /// Bytes processed so far.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Sha1::new()
    }
}

impl Sha1 {
    /// Fresh context with the FIPS initial state.
    pub fn new() -> Self {
        Sha1 {
            h: [0x6745_2301, 0xEFCD_AB89, 0x98BA_DCFE, 0x1032_5476, 0xC3D2_E1F0],
            len: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len += data.len() as u64;
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.compress(block.try_into().expect("64-byte block"));
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes, producing the 20-byte digest.
    pub fn finish(mut self) -> [u8; 20] {
        let bit_len = self.len * 8;
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 20];
        for (i, w) in self.h.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4 bytes"));
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.h;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let t = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = t;
        }
        self.h[0] = self.h[0].wrapping_add(a);
        self.h[1] = self.h[1].wrapping_add(b);
        self.h[2] = self.h[2].wrapping_add(c);
        self.h[3] = self.h[3].wrapping_add(d);
        self.h[4] = self.h[4].wrapping_add(e);
    }
}

/// One-shot digest of `data`.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut ctx = Sha1::new();
    ctx.update(data);
    ctx.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// FIPS 180-1 / RFC 3174 known-answer vectors.
    #[test]
    fn known_answer_vectors() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(hex(&sha1(b"abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            hex(&sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(
            hex(&sha1(b"The quick brown fox jumps over the lazy dog")),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
    }

    /// One million 'a's — the classic long-message vector.
    #[test]
    fn million_a_vector() {
        let mut ctx = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            ctx.update(&chunk);
        }
        assert_eq!(hex(&ctx.finish()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    /// Splitting the input across arbitrary update boundaries must not
    /// change the digest.
    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..300).map(|i| (i * 7 % 251) as u8).collect();
        let want = sha1(&data);
        for split in [0usize, 1, 63, 64, 65, 128, 299] {
            let mut ctx = Sha1::new();
            ctx.update(&data[..split]);
            ctx.update(&data[split..]);
            assert_eq!(ctx.finish(), want, "split at {split}");
        }
    }

    /// Exactly-one-block and block-boundary padding edge cases.
    #[test]
    fn block_boundary_lengths() {
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0xABu8; len];
            let mut ctx = Sha1::new();
            for b in &data {
                ctx.update(std::slice::from_ref(b));
            }
            assert_eq!(ctx.finish(), sha1(&data), "len {len}");
        }
    }
}
