//! **Ablation**: termination-detection algorithm choice (paper §V).
//!
//! Compares, over identical randomized spawn forests:
//!
//! * the paper's epoch algorithm (and its no-upper-bound variant),
//! * Mattern's four-counter algorithm (AM++'s choice — structurally one
//!   extra reduction),
//! * the X10-style centralized vector-counting scheme, whose home place
//!   absorbs `O(p)` vectors of size `p` — the `O(p²)` hot spot §V calls
//!   a scaling bottleneck.

use bench::print_table;
use caf_core::ids::ImageId;
use caf_core::rng::SplitMix64;
use caf_core::termination::harness::{node, Harness, SpawnPlan, SpawnTree};
use caf_core::termination::{
    CentralizedDetector, CentralizedHome, EpochDetector, FourCounterDetector,
};

/// A random spawn forest over `images` images.
fn random_plan(images: usize, roots: usize, seed: u64) -> SpawnPlan {
    let mut rng = SplitMix64::new(seed);
    let mut plan = SpawnPlan { exec_delay: 3, ..SpawnPlan::default() };
    for _ in 0..roots {
        let initiator = rng.next_below(images as u64) as usize;
        let tree = random_tree(images, 3, &mut rng);
        plan.spawn(initiator, tree);
    }
    plan
}

fn random_tree(images: usize, depth_left: usize, rng: &mut SplitMix64) -> SpawnTree {
    let target = rng.next_below(images as u64) as usize;
    let kids = if depth_left == 0 { 0 } else { rng.next_below(3) as usize };
    node(target, (0..kids).map(|_| random_tree(images, depth_left - 1, rng)).collect())
}

fn main() {
    let mut rows = Vec::new();
    for images in [8usize, 32, 128] {
        let mut waves = [0usize; 3];
        let mut home_msgs = 0usize;
        let mut home_bytes = 0usize;
        let trials = 20;
        for seed in 0..trials {
            let plan = random_plan(images, 6, seed);

            let mut h = Harness::new(images, || Box::new(EpochDetector::new(true)));
            waves[0] += h.run(plan.clone());
            let mut h = Harness::new(images, || Box::new(EpochDetector::new(false)));
            waves[1] += h.run(plan.clone());
            let mut h = Harness::new(images, || Box::new(FourCounterDetector::new()));
            waves[2] += h.run(plan.clone());

            // Centralized scheme: replay the same forest as spawn/complete
            // ledger traffic to the home (message-count model).
            let mut home = CentralizedHome::new(images);
            let mut workers: Vec<_> =
                (0..images).map(|i| CentralizedDetector::new(ImageId(i), images)).collect();
            let mut frontier: Vec<(usize, &SpawnTree)> =
                plan.roots.iter().map(|(i, t)| (*i, t)).collect();
            // Breadth-first replay: spawn, execute, report when quiet.
            while let Some((from, tree)) = frontier.pop() {
                workers[from].on_spawn(ImageId(tree.target));
                workers[tree.target].on_activity_start();
                for child in &tree.children {
                    frontier.push((tree.target, child));
                }
                workers[tree.target].on_activity_complete();
            }
            for w in workers.iter_mut() {
                if let Some(report) = w.take_report() {
                    home.ingest(&report);
                }
            }
            assert!(home.terminated());
            home_msgs += home.reports_received();
            home_bytes += home.bytes_received();
        }
        rows.push(vec![
            images.to_string(),
            format!("{:.1}", waves[0] as f64 / trials as f64),
            format!("{:.1}", waves[1] as f64 / trials as f64),
            format!("{:.1}", waves[2] as f64 / trials as f64),
            format!("{}", home_msgs / trials as usize),
            format!("{} B", home_bytes / trials as usize),
        ]);
    }
    print_table(
        "Detector ablation (mean over 20 random spawn forests)",
        &[
            "images",
            "epoch waves",
            "epoch w/o bound",
            "four-counter",
            "centralized msgs→home",
            "centralized bytes→home",
        ],
        &rows,
    );
    println!(
        "Waves cost O(log p) each; the centralized column costs O(p) messages of O(p) bytes \
         at ONE place — the §V bottleneck. Four-counter pays its structural extra wave."
    );
}
