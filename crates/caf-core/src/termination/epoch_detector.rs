//! The paper's epoch-based termination-detection algorithm (Fig. 7),
//! packaged behind the [`WaveDetector`] interface.

use super::{Contribution, WaveDecision, WaveDetector};
use crate::epoch::EpochState;
use crate::ids::Parity;

/// Per-image state of the paper's algorithm.
///
/// With `wait_for_quiescence = true` this is exactly Fig. 7: an image
/// refuses to start a new reduction wave until every message it sent has
/// been delivered and every message it received has completed, which is
/// what bounds the number of waves by `L + 1` (Theorem 1) and halves the
/// allreduce count in Fig. 18. With `false` it is the "algorithm w/o upper
/// bound" baseline from Fig. 18: still *correct* (the consistent epoch cut
/// never lets the sum reach zero while messages are outstanding) but it
/// keeps reducing speculatively.
#[derive(Debug, Clone)]
pub struct EpochDetector {
    state: EpochState,
    wait_for_quiescence: bool,
    waves: usize,
    poisoned: Option<usize>,
}

impl EpochDetector {
    /// Creates a detector. `wait_for_quiescence` selects between the
    /// paper's algorithm (`true`) and the no-upper-bound variant (`false`).
    pub fn new(wait_for_quiescence: bool) -> Self {
        EpochDetector { state: EpochState::new(), wait_for_quiescence, waves: 0, poisoned: None }
    }

    /// Read access to the underlying epoch state (for tests/metrics).
    pub fn epochs(&self) -> &EpochState {
        &self.state
    }
}

impl WaveDetector for EpochDetector {
    fn on_send(&mut self) -> Parity {
        self.state.on_send()
    }

    fn on_delivered(&mut self, _tag: Parity) {
        self.state.on_delivered();
    }

    fn on_receive(&mut self, tag: Parity) {
        self.state.on_receive(tag);
    }

    fn on_complete(&mut self, _tag: Parity) {
        self.state.on_complete();
    }

    fn ready(&self) -> bool {
        // A poisoned finish stops waiting for quiescence: the dead image
        // will never deliver the acks/completions the precondition needs.
        self.poisoned.is_some() || !self.wait_for_quiescence || self.state.ready_for_wave()
    }

    fn enter_wave(&mut self) -> Contribution {
        [self.state.enter_wave(), 0]
    }

    fn exit_wave(&mut self, reduced: Contribution) -> WaveDecision {
        self.state.exit_wave();
        self.waves += 1;
        if self.poisoned.is_some() {
            WaveDecision::Poisoned
        } else if reduced[0] == 0 {
            WaveDecision::Terminated
        } else {
            WaveDecision::Continue
        }
    }

    fn waves(&self) -> usize {
        self.waves
    }

    fn poison(&mut self, image: usize) {
        self.poisoned.get_or_insert(image);
    }

    fn poisoned_by(&self) -> Option<usize> {
        self.poisoned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiescent_image_is_immediately_ready() {
        let d = EpochDetector::new(true);
        assert!(d.ready());
    }

    #[test]
    fn unacked_send_blocks_readiness_only_with_upper_bound() {
        let mut strict = EpochDetector::new(true);
        strict.on_send();
        assert!(!strict.ready());
        let mut loose = EpochDetector::new(false);
        loose.on_send();
        assert!(loose.ready());
    }

    #[test]
    fn zero_sum_terminates_nonzero_continues() {
        let mut d = EpochDetector::new(true);
        d.enter_wave();
        assert_eq!(d.exit_wave([3, 0]), WaveDecision::Continue);
        d.enter_wave();
        assert_eq!(d.exit_wave([0, 0]), WaveDecision::Terminated);
        assert_eq!(d.waves(), 2);
    }

    #[test]
    fn contribution_is_sent_minus_completed() {
        // Globally, Σ(sent − completed) = 0 iff every message completed
        // somewhere; locally the lane may be any integer.
        let mut d = EpochDetector::new(false);
        d.on_send();
        d.on_send();
        d.on_receive(Parity::Even);
        d.on_complete(Parity::Even);
        assert_eq!(d.enter_wave(), [1, 0]); // 2 sent − 1 completed
    }

    #[test]
    fn poison_overrides_quiescence_and_the_sum() {
        let mut d = EpochDetector::new(true);
        d.on_send(); // unacked: strict variant is not ready
        assert!(!d.ready());
        d.poison(2);
        assert!(d.ready(), "poison must unblock the quiescence wait");
        d.enter_wave();
        // Even a zero global sum cannot mean clean termination any more.
        assert_eq!(d.exit_wave([0, 0]), WaveDecision::Poisoned);
        assert_eq!(d.poisoned_by(), Some(2));
        // First poisoner wins.
        d.poison(3);
        assert_eq!(d.poisoned_by(), Some(2));
    }

    #[test]
    fn receptions_must_complete_before_readiness() {
        let mut d = EpochDetector::new(true);
        d.on_receive(Parity::Even);
        assert!(!d.ready());
        d.on_complete(Parity::Even);
        assert!(d.ready());
    }
}
