//! Drift guard between `caf-lint`'s happens-before layer and the
//! paper's §III-B pass/block table as pinned (literally, by hand) in
//! `crates/caf-core/tests/cofence_matrix.rs`.
//!
//! The `CROSSES` table below is a *copy of those literal entries*, not a
//! re-derivation through `Pass::admits` — if either side drifts, one of
//! these tests fails. The probe tests exercise the exact predicates the
//! race analysis uses ([`fence_blocks_down`] / [`fence_admits_up`]); the
//! end-to-end tests check the same verdicts surface as whole-plan race
//! diagnostics, fence by fence, class by class.

use caf_core::cofence::{CofenceSpec, LocalAccess, Pass};
use caf_lint::builder::PlanBuilder;
use caf_lint::hb::{fence_admits_up, fence_blocks_down, races};
use caf_lint::ir::{MemRef, Plan, Target};

/// `(class name, local access)` — rows, in `CROSSES` order.
const OP_CLASSES: [(&str, LocalAccess); 4] = [
    ("copy-read", LocalAccess::READ),
    ("copy-write", LocalAccess::WRITE),
    ("async-collective", LocalAccess::READ_WRITE),
    ("shipped-fn", LocalAccess::READ),
];

/// Literal table entries from `cofence_matrix.rs`: may an operation of
/// the row's class cross a fence with the column's argument? Columns
/// are None / READ / WRITE / ANY; the rule is identical both directions.
const CROSSES: [[bool; 4]; 4] = [
    // None   READ   WRITE  ANY
    [false, true, false, true],  // copy-read
    [false, false, true, true],  // copy-write
    [false, false, false, true], // async-collective: only ANY
    [false, true, false, true],  // shipped-fn marshals = local read
];

const ARGS: [Pass; 4] = [Pass::None, Pass::Reads, Pass::Writes, Pass::Any];

#[test]
fn probes_match_the_literal_table_for_all_sixteen_fences() {
    for (d_idx, &down) in ARGS.iter().enumerate() {
        for (u_idx, &up) in ARGS.iter().enumerate() {
            let spec = CofenceSpec::new(down, up);
            for (row, &(name, access)) in OP_CLASSES.iter().enumerate() {
                assert_eq!(
                    !fence_blocks_down(spec, access),
                    CROSSES[row][d_idx],
                    "cofence(DOWNWARD={down:?}, UPWARD={up:?}) × {name}: downward drift"
                );
                assert_eq!(
                    fence_admits_up(spec, access),
                    CROSSES[row][u_idx],
                    "cofence(DOWNWARD={down:?}, UPWARD={up:?}) × {name}: upward drift"
                );
            }
        }
    }
}

/// `[async op on row's class, cofence(spec), conflicting sync access]`.
/// The access races with the op iff the fence let the op's class cross
/// downward (crossing ⇒ the op is still pending at the access).
fn downward_plan(row: usize, spec: CofenceSpec) -> Plan {
    PlanBuilder::new(2)
        .coarray("a")
        .coarray("b")
        .all(|bb| {
            match row {
                0 => bb.put("a", 1),                                  // reads a
                1 => bb.get("a", 1),                                  // writes a
                _ => bb.copy(MemRef::local("a"), MemRef::local("b")), // reads a, writes b
            }
            bb.cofence(spec);
            match row {
                0 => bb.write("a"),
                1 => bb.read("a"),
                _ => bb.write("a"),
            }
        })
        .build()
}

#[test]
fn downward_verdicts_surface_as_whole_plan_races() {
    // Shipped functions marshal no *named* coarray, so they cannot be
    // probed through a race — the probe test above covers that row.
    for (d_idx, &down) in ARGS.iter().enumerate() {
        for &up in &ARGS {
            for row in 0..3 {
                let plan = downward_plan(row, CofenceSpec::new(down, up));
                let low = plan.lower().unwrap();
                let racy = !races(&low.programs[0]).is_empty();
                assert_eq!(
                    racy, CROSSES[row][d_idx],
                    "{}: cofence(DOWNWARD={down:?}, UPWARD={up:?}) end-to-end downward drift",
                    OP_CLASSES[row].0
                );
            }
        }
    }
}

/// `[blocker op, cofence(DOWNWARD=blocks it, UPWARD=spec), probe op]`.
/// The blocker completes *at* the fence; the probe op races with it iff
/// the fence lets the probe's class hoist upward across it.
fn upward_plan(row: usize, up: Pass) -> Plan {
    PlanBuilder::new(2)
        .coarray("a")
        .coarray("b")
        .all(|bb| {
            // Blocker: conflicts with the probe, and its own class is
            // blocked downward so it completes exactly at the fence.
            let down = match row {
                0 => {
                    bb.get("a", 1); // writes a; READ blocks copy-write
                    Pass::Reads
                }
                1 => {
                    bb.put("a", 1); // reads a; WRITE blocks copy-read
                    Pass::Writes
                }
                _ => {
                    bb.put("b", 1); // reads b; WRITE blocks copy-read
                    Pass::Writes
                }
            };
            bb.cofence(CofenceSpec::new(down, up));
            match row {
                0 => bb.put("a", 1),                                  // reads a
                1 => bb.get("a", 1),                                  // writes a
                _ => bb.copy(MemRef::local("a"), MemRef::local("b")), // writes b
            }
            // Park both ops at a full fence so only the hoist matters.
            bb.cofence(CofenceSpec::FULL);
        })
        .build()
}

#[test]
fn upward_verdicts_surface_as_hoist_races() {
    for (u_idx, &up) in ARGS.iter().enumerate() {
        for row in 0..3 {
            let plan = upward_plan(row, up);
            let low = plan.lower().unwrap();
            let racy = !races(&low.programs[0]).is_empty();
            assert_eq!(
                racy, CROSSES[row][u_idx],
                "{}: cofence(UPWARD={up:?}) end-to-end upward drift",
                OP_CLASSES[row].0
            );
        }
    }
}

#[test]
fn spawn_class_is_the_read_class() {
    // The lowering classifies `spawn` as LocalAccess::READ (argument
    // marshalling); pin that against the shipped-fn row.
    let plan = PlanBuilder::new(2)
        .func("f", |bb| bb.read("a"))
        .coarray("a")
        .all(|bb| {
            bb.finish(|bb| bb.spawn("f", Target::Rel(1)));
        })
        .build();
    let low = plan.lower().unwrap();
    let spawn_step = low.programs[0]
        .steps
        .iter()
        .find_map(|s| s.op().filter(|o| o.spawn.is_some()))
        .expect("spawn lowers to an op");
    for (col, &arg) in ARGS.iter().enumerate() {
        assert_eq!(
            !fence_blocks_down(CofenceSpec::new(arg, arg), spawn_step.access),
            CROSSES[3][col],
            "spawn marshalling class drifted from the shipped-fn row at {arg:?}"
        );
    }
}
