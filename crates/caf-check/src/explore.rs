//! Stateless sleep-set DFS over all schedules of a bounded scenario.
//!
//! The explorer enumerates every transition interleaving of a
//! [`Scenario`](crate::scenario::Scenario)'s protocol events, pruned by a
//! classic sleep-set partial-order reduction: after exploring transition
//! `t` from a state, `t` is put to sleep for the remaining siblings and
//! stays asleep in their subtrees as long as it is independent of every
//! transition taken — schedules that merely commute adjacent independent
//! steps are visited once. Independence is structural (disjoint image
//! touch sets, see [`World::independent`]); wave closes and crashes are
//! global and therefore dependent with everything.
//!
//! Oracles fire inside [`World::step`]; terminal states additionally run
//! the differential and DES replay oracles from [`crate::diff`].

use crate::diff;
use crate::mutation::{Family, Mutation};
use crate::scenario::Scenario;
use crate::world::{Outcome, TKey, Violation, ViolationKind, World};

/// Exploration knobs.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Hard budget on visited states; exceeding it marks the result
    /// truncated instead of looping forever.
    pub max_states: u64,
    /// Enable the sleep-set partial-order reduction (disable to measure
    /// the reduction ratio).
    pub por: bool,
    /// Run the differential and DES replay oracles on every crash-free
    /// terminated terminal state.
    pub differential: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig { max_states: 2_000_000, por: true, differential: true }
    }
}

/// What one exploration did.
#[derive(Debug, Clone, Default)]
pub struct ExploreStats {
    /// States visited (transitions applied).
    pub states: u64,
    /// Complete schedules reaching a terminal state.
    pub schedules: u64,
    /// Terminal states that ended in clean termination.
    pub terminated: u64,
    /// Terminal states that aborted after a crash.
    pub aborted: u64,
    /// Branches pruned by the wave budget (unfair wave spinning).
    pub pruned_budget: u64,
    /// Branches cut because every enabled transition was asleep.
    pub sleep_cut: u64,
    /// Longest schedule seen.
    pub max_schedule_len: usize,
    /// True when `max_states` stopped the search early.
    pub truncated: bool,
}

/// A reproducible failure: everything needed to replay it.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The scenario the schedule runs in.
    pub scenario: Scenario,
    /// Detector family under check.
    pub family: Family,
    /// Seeded mutation, if any.
    pub mutation: Option<Mutation>,
    /// The exact transition sequence, from the initial state.
    pub schedule: Vec<TKey>,
    /// What the oracle caught.
    pub violation: Violation,
}

/// Explores every schedule of `scenario` under `family`/`mutation`.
/// Returns the stats and the first counterexample found, if any.
pub fn explore(
    scenario: &Scenario,
    family: Family,
    mutation: Option<Mutation>,
    cfg: &ExploreConfig,
) -> (ExploreStats, Option<Counterexample>) {
    let mut stats = ExploreStats::default();
    // The differential oracle compares the *clean* detector families; a
    // mutated exploration would only measure the mutation, so gate it off.
    let cfg = ExploreConfig { differential: cfg.differential && mutation.is_none(), ..cfg.clone() };
    let cfg = &cfg;
    let world = World::new(scenario, family, mutation);
    let ce = dfs(&world, &[], cfg, &mut stats).map(|(schedule, violation)| Counterexample {
        scenario: scenario.clone(),
        family,
        mutation,
        schedule,
        violation,
    });
    (stats, ce)
}

fn dfs(
    world: &World,
    sleep: &[TKey],
    cfg: &ExploreConfig,
    stats: &mut ExploreStats,
) -> Option<(Vec<TKey>, Violation)> {
    if stats.truncated {
        return None;
    }
    let enabled = world.enabled();
    if enabled.is_empty() {
        return terminal(world, cfg, stats);
    }
    let candidates: Vec<&TKey> = if cfg.por {
        enabled.iter().filter(|t| !sleep.contains(t)).collect()
    } else {
        enabled.iter().collect()
    };
    if candidates.is_empty() {
        // Every enabled transition is asleep: this state's subtree is
        // covered by a sibling that ran the same transitions earlier.
        stats.sleep_cut += 1;
        return None;
    }
    let mut slept: Vec<TKey> = Vec::new();
    for t in candidates {
        stats.states += 1;
        if stats.states > cfg.max_states {
            stats.truncated = true;
            return None;
        }
        let mut next = world.clone();
        if let Err(v) = next.step(t) {
            return Some((next.schedule().to_vec(), v));
        }
        let child_sleep: Vec<TKey> = if cfg.por {
            sleep
                .iter()
                .chain(slept.iter())
                .filter(|u| world.independent(u, t))
                .cloned()
                .collect()
        } else {
            Vec::new()
        };
        if next.done.is_some() {
            if let Some(hit) = terminal(&next, cfg, stats) {
                return Some(hit);
            }
        } else if next.pruned {
            stats.pruned_budget += 1;
        } else if let Some(hit) = dfs(&next, &child_sleep, cfg, stats) {
            return Some(hit);
        }
        slept.push(t.clone());
    }
    None
}

fn terminal(
    world: &World,
    cfg: &ExploreConfig,
    stats: &mut ExploreStats,
) -> Option<(Vec<TKey>, Violation)> {
    stats.max_schedule_len = stats.max_schedule_len.max(world.schedule().len());
    match world.done {
        None => {
            // Nothing enabled, no verdict: the protocol is stuck.
            stats.schedules += 1;
            Some((
                world.schedule().to_vec(),
                Violation {
                    kind: ViolationKind::Deadlock,
                    detail: format!(
                        "no transition enabled after {} steps, yet the finish neither \
                         terminated nor aborted",
                        world.schedule().len()
                    ),
                },
            ))
        }
        Some(Outcome::Aborted) => {
            stats.schedules += 1;
            stats.aborted += 1;
            None
        }
        Some(Outcome::Terminated) => {
            stats.schedules += 1;
            stats.terminated += 1;
            if cfg.differential && !world.crashed() {
                if let Some(v) = diff::check_terminal(world) {
                    return Some((world.schedule().to_vec(), v));
                }
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{parse_tree, scenarios};

    fn one(images: usize, trees: &[(usize, &str)]) -> Scenario {
        Scenario {
            images,
            roots: trees.iter().map(|(f, t)| (*f, parse_tree(t).unwrap())).collect(),
            crash: None,
        }
    }

    #[test]
    fn empty_finish_has_no_counterexamples_any_family() {
        for family in Family::ALL {
            let (stats, ce) = explore(&Scenario::empty(3), family, None, &ExploreConfig::default());
            assert!(ce.is_none(), "{}: {ce:?}", family.name());
            assert!(stats.terminated > 0);
            assert!(!stats.truncated);
        }
    }

    #[test]
    fn single_spawn_is_clean_and_por_cuts_states() {
        let s = one(3, &[(0, "1")]);
        let (with_por, ce) = explore(&s, Family::EpochStrict, None, &ExploreConfig::default());
        assert!(ce.is_none(), "{ce:?}");
        let cfg = ExploreConfig { por: false, ..ExploreConfig::default() };
        let (without, ce2) = explore(&s, Family::EpochStrict, None, &cfg);
        assert!(ce2.is_none());
        assert!(
            with_por.states < without.states,
            "sleep sets must prune: {} !< {}",
            with_por.states,
            without.states
        );
        assert_eq!(
            with_por.terminated + with_por.aborted,
            with_por.schedules,
            "every schedule ends terminated or aborted"
        );
    }

    #[test]
    fn smoke_bound_is_clean_for_all_families() {
        // Small crash-free subset — the CI smoke tier in miniature (the
        // full p=3 depth=2 sweep runs in release mode via scripts/ci.sh;
        // multi-spawn × epoch-loose needs ~1M states, too slow for a
        // debug-mode unit test).
        for s in scenarios(3, 2, false).into_iter().filter(|s| s.total_spawns() <= 1) {
            for family in Family::ALL {
                let cfg = ExploreConfig { max_states: 300_000, ..ExploreConfig::default() };
                let (stats, ce) = explore(&s, family, None, &cfg);
                assert!(
                    ce.is_none(),
                    "{} × {}: {:?}",
                    s.name(),
                    family.name(),
                    ce.map(|c| (c.violation.kind, c.violation.detail))
                );
                assert!(!stats.truncated, "{} × {} truncated", s.name(), family.name());
            }
        }
    }

    #[test]
    fn crash_scenarios_abort_or_terminate_cleanly() {
        let mut s = one(3, &[(0, "1(2)")]);
        s.crash = Some(1);
        let (stats, ce) = explore(&s, Family::EpochStrict, None, &ExploreConfig::default());
        assert!(ce.is_none(), "{ce:?}");
        assert!(stats.aborted > 0, "some schedule must observe the crash");
        assert!(stats.terminated > 0, "some schedule must finish before the crash bites");
    }

    #[test]
    fn merge_epochs_mutation_is_caught() {
        // The hand-derived adversarial shape: a fan-out whose siblings
        // share a target, one executed before the target enters the wave,
        // one left in flight.
        let s = one(3, &[(0, "1(2,2)")]);
        let (_, ce) = explore(&s, Family::EpochStrict, Some(Mutation::MergeEpochs), &{
            ExploreConfig::default()
        });
        let ce = ce.expect("merge-epochs must produce a counterexample");
        assert_eq!(ce.violation.kind, ViolationKind::Safety, "{}", ce.violation.detail);
    }

    #[test]
    fn ack_complete_confusion_deadlocks() {
        let s = one(2, &[(0, "1")]);
        let (_, ce) = explore(
            &s,
            Family::EpochStrict,
            Some(Mutation::AckCompleteConfusion),
            &ExploreConfig::default(),
        );
        let ce = ce.expect("ack-complete confusion must be caught");
        assert_eq!(ce.violation.kind, ViolationKind::Deadlock, "{}", ce.violation.detail);
    }
}
