//! An abstract message-passing machine for exercising termination
//! detectors deterministically.
//!
//! The harness models a team of images exchanging *spawn* messages under a
//! `finish` block: each message, when delivered, executes for a while and
//! may transitively spawn further messages (a [`SpawnTree`]). Delivery,
//! acknowledgement, and execution have configurable integer delays plus
//! optional seeded jitter, and message channels are deliberately not FIFO
//! (events at equal times are ordered by sequence number, but jitter can
//! reorder messages between the same pair of images) — the paper's
//! algorithm must tolerate exactly that.
//!
//! The harness drives any [`WaveDetector`] through the full protocol —
//! lifecycle callbacks plus synchronous reduction waves — and *checks
//! soundness*: it panics if a detector declares termination while any
//! message is still in flight or executing. Property tests in this crate
//! and the Fig. 18 bench both build on it.

use std::collections::BinaryHeap;

use super::{BarrierDetector, WaveDecision, WaveDetector};
use crate::ids::Parity;
use crate::rng::SplitMix64;

/// A spawn with its transitive children: delivering this message to
/// `target` executes a function there which spawns each child in turn.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpawnTree {
    /// Image (by index) on which the shipped function executes.
    pub target: usize,
    /// Functions the shipped function itself ships while executing.
    pub children: Vec<SpawnTree>,
}

/// Convenience constructor for [`SpawnTree`] literals.
pub fn node(target: usize, children: Vec<SpawnTree>) -> SpawnTree {
    SpawnTree { target, children }
}

/// A linear spawn chain visiting `targets` in order (length = `targets.len()`).
pub fn chain(targets: &[usize]) -> SpawnTree {
    assert!(!targets.is_empty());
    let mut tree = node(*targets.last().unwrap(), Vec::new());
    for &t in targets[..targets.len() - 1].iter().rev() {
        tree = node(t, vec![tree]);
    }
    tree
}

impl SpawnTree {
    /// Chain length of this tree as defined in §III-A3: a leaf spawn has
    /// length 1; otherwise 1 + the maximum child length.
    pub fn chain_len(&self) -> usize {
        1 + self.children.iter().map(SpawnTree::chain_len).max().unwrap_or(0)
    }

    /// Total number of spawned functions in the tree.
    pub fn total_spawns(&self) -> usize {
        1 + self.children.iter().map(SpawnTree::total_spawns).sum::<usize>()
    }
}

/// Workload for one `finish` block: per-image root spawns plus the delay
/// model.
#[derive(Debug, Clone)]
pub struct SpawnPlan {
    /// `(initiator image, spawn tree)` pairs initiated at time 0.
    pub roots: Vec<(usize, SpawnTree)>,
    /// Base delay from send to delivery.
    pub net_delay: u64,
    /// Delay from delivery to the sender's acknowledgement.
    pub ack_delay: u64,
    /// Execution time of one shipped function.
    pub exec_delay: u64,
    /// Upper bound (exclusive) on per-message extra delay; 0 disables.
    pub jitter_max: u64,
    /// Seed for the jitter stream.
    pub jitter_seed: u64,
    /// Duration of one synchronous allreduce wave. Messages already in
    /// flight keep progressing during a wave (images poll inside the
    /// collective), which is what lets the no-upper-bound detector variant
    /// make progress at all — at the price of extra waves (Fig. 18).
    pub wave_delay: u64,
}

impl Default for SpawnPlan {
    fn default() -> Self {
        SpawnPlan {
            roots: Vec::new(),
            net_delay: 1,
            ack_delay: 1,
            exec_delay: 1,
            jitter_max: 0,
            jitter_seed: 0,
            wave_delay: 2,
        }
    }
}

impl SpawnPlan {
    /// Adds a root spawn initiated by `initiator`.
    pub fn spawn(&mut self, initiator: usize, tree: SpawnTree) -> &mut Self {
        self.roots.push((initiator, tree));
        self
    }

    /// Longest spawn chain `L` across all roots (0 if no spawns).
    pub fn longest_chain(&self) -> usize {
        self.roots.iter().map(|(_, t)| t.chain_len()).max().unwrap_or(0)
    }

    /// Total functions shipped by the plan.
    pub fn total_spawns(&self) -> usize {
        self.roots.iter().map(|(_, t)| t.total_spawns()).sum()
    }
}

#[derive(Debug)]
enum Ev {
    /// A spawn message arrives at `to`: receive, start executing.
    Deliver { to: usize, from: usize, tag: Parity, children: Vec<SpawnTree> },
    /// Delivery acknowledgement reaches the original sender.
    Ack { to: usize, tag: Parity },
    /// A function finishes executing at `at`: ship children, complete.
    ExecDone { at: usize, tag: Parity, children: Vec<SpawnTree> },
    /// Failure detection completes: every survivor poisons its detector
    /// (models the `ImageDown` broadcast landing team-wide).
    Poison,
}

struct Scheduled {
    time: u64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Crash-injection parameters of one [`Harness::run_with_crash`] step.
#[derive(Debug, Clone, Copy)]
struct Trigger {
    victim: usize,
    crash_at_event: usize,
    detect_delay: u64,
}

/// Outcome of a [`Harness::run_with_crash`] experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashOutcome {
    /// The finish terminated cleanly — the crash point was never reached,
    /// or every survivor-relevant message completed before any survivor
    /// learned of the death.
    Terminated {
        /// Reduction waves used.
        waves: usize,
    },
    /// Every survivor agreed the finish was poisoned by the dead image.
    Poisoned {
        /// Reduction waves used, including the aborting one.
        waves: usize,
    },
}

/// Result of a [`Harness::run_barrier_with_crash`] experiment: the
/// barrier-based strategy under a fail-stop crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierCrashRun {
    /// Abstract time at which every survivor left the barrier wait.
    pub declared_at: u64,
    /// Whether the exit was a poisoned abort (vs. normal completion
    /// because the crash point was never reached).
    pub poisoned: bool,
}

/// Result of a [`Harness::run_barrier`] experiment with the unsound
/// barrier-based detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierRun {
    /// Abstract time at which the barrier completed (termination declared).
    pub declared_at: u64,
    /// Spawned functions still in flight or executing at that moment.
    /// Nonzero means the detector was wrong (paper Fig. 5).
    pub outstanding_at_declaration: usize,
}

/// The abstract machine. Construct with one detector per image, then
/// [`run`](Harness::run) a plan.
pub struct Harness {
    detectors: Vec<Box<dyn WaveDetector>>,
    queue: BinaryHeap<Scheduled>,
    seq: u64,
    now: u64,
    /// Spawns sent but not yet completed (ground truth, detector-independent).
    outstanding: usize,
    rng: SplitMix64,
    jitter_max: u64,
    /// Maximum waves before the harness declares the detector live-locked.
    pub max_waves: usize,
}

impl Harness {
    /// A harness over `n` images with detectors built by `mk`.
    pub fn new(n: usize, mk: impl Fn() -> Box<dyn WaveDetector>) -> Self {
        assert!(n > 0);
        Harness {
            detectors: (0..n).map(|_| mk()).collect(),
            queue: BinaryHeap::new(),
            seq: 0,
            now: 0,
            outstanding: 0,
            rng: SplitMix64::new(0),
            jitter_max: 0,
            max_waves: 10_000,
        }
    }

    fn schedule(&mut self, delay: u64, ev: Ev) {
        let jitter = if self.jitter_max > 0 { self.rng.next_below(self.jitter_max) } else { 0 };
        self.seq += 1;
        self.queue
            .push(Scheduled { time: self.now + delay + jitter, seq: self.seq, ev });
    }

    fn send_spawn(&mut self, from: usize, tree: SpawnTree, net_delay: u64) {
        let tag = self.detectors[from].on_send();
        self.outstanding += 1;
        self.schedule(
            net_delay,
            Ev::Deliver { to: tree.target, from, tag, children: tree.children },
        );
    }

    fn process(&mut self, ev: Ev, plan: &SpawnPlan) {
        match ev {
            Ev::Deliver { to, from, tag, children } => {
                self.detectors[to].on_receive(tag);
                self.schedule(plan.ack_delay, Ev::Ack { to: from, tag });
                self.schedule(plan.exec_delay, Ev::ExecDone { at: to, tag, children });
            }
            Ev::Ack { to, tag } => self.detectors[to].on_delivered(tag),
            Ev::ExecDone { at, tag, children } => {
                // The function's own spawns happen during its execution,
                // strictly before its completion is recorded.
                for child in children {
                    self.send_spawn(at, child, plan.net_delay);
                }
                self.detectors[at].on_complete(tag);
                self.outstanding -= 1;
            }
            Ev::Poison => unreachable!("poison event outside a crash run"),
        }
    }

    /// Runs `plan` to detected termination and returns the number of
    /// reduction waves used.
    ///
    /// # Panics
    /// Panics if the detector declares termination while work is
    /// outstanding (unsound), fails to declare termination once the system
    /// is quiet (not live), or exceeds `max_waves`.
    pub fn run(&mut self, plan: SpawnPlan) -> usize {
        let n = self.detectors.len();
        self.rng = SplitMix64::new(plan.jitter_seed);
        self.jitter_max = plan.jitter_max;
        for (initiator, tree) in plan.roots.clone() {
            assert!(initiator < n && tree.target < n, "plan references unknown image");
            self.send_spawn(initiator, tree, plan.net_delay);
        }

        let mut waves = 0usize;
        loop {
            // Phase 1: advance events until every image is ready to enter
            // the wave. (If the queue drains, every image is necessarily
            // ready: pending acks/execs are the only source of unreadiness
            // for sound detectors, and the strict variant waits for them.)
            let mut entered: Vec<Option<[i64; 2]>> = vec![None; n];
            loop {
                for (i, d) in self.detectors.iter_mut().enumerate() {
                    if entered[i].is_none() && d.ready() {
                        entered[i] = Some(d.enter_wave());
                    }
                }
                if entered.iter().all(Option::is_some) {
                    break;
                }
                let Some(next) = self.queue.pop() else {
                    panic!(
                        "deadlock: queue empty but some image never became \
                         ready (detector not live)"
                    );
                };
                self.now = next.time;
                self.process(next.ev, &plan);
            }

            // Phase 2: the synchronous allreduce takes wave_delay time,
            // during which images poll: messages landing inside the wave
            // window are received/executed concurrently with the
            // collective (they were sent from odd epochs, so the epoch
            // algorithm attributes them to the next cut).
            let wave_end = self.now + plan.wave_delay.max(1);
            while self.queue.peek().is_some_and(|s| s.time <= wave_end) {
                let next = self.queue.pop().expect("peeked");
                self.now = next.time;
                self.process(next.ev, &plan);
            }
            self.now = wave_end;
            let sum = entered.iter().flatten().fold([0i64; 2], |a, c| [a[0] + c[0], a[1] + c[1]]);
            waves += 1;
            let mut decisions = self.detectors.iter_mut().map(|d| d.exit_wave(sum));
            let first = decisions.next().expect("n > 0");
            assert!(decisions.all(|d| d == first), "detectors disagreed on the wave decision");
            match first {
                WaveDecision::Terminated => {
                    assert_eq!(
                        self.outstanding, 0,
                        "UNSOUND: termination declared with {} messages outstanding",
                        self.outstanding
                    );
                    return waves;
                }
                WaveDecision::Continue => {
                    assert!(waves < self.max_waves, "detector live-locked after {waves} waves");
                }
                WaveDecision::Poisoned => {
                    panic!("detector poisoned without an injected crash")
                }
            }
        }
    }

    /// Runs `plan` with image `victim` fail-stopping just before the
    /// `crash_at_event`-th event is processed (0-based; a count past the
    /// end of the schedule means the crash never fires). `detect_delay`
    /// time units after the crash, every survivor's detector is poisoned
    /// — modelling the heartbeat detector confirming the death and the
    /// `ImageDown` broadcast landing team-wide.
    ///
    /// From the crash onward the victim is inert: events destined to it
    /// (deliveries, acks, its own pending executions) are discarded, and
    /// it neither contributes to nor exits reduction waves.
    ///
    /// # Panics
    /// Panics if the surviving detectors deadlock (some survivor never
    /// becomes ready with the queue drained), disagree on a wave
    /// decision, declare termination with survivor-relevant work
    /// outstanding, or exceed `max_waves` — i.e. the crash-freedom
    /// properties the runtime relies on.
    pub fn run_with_crash(
        &mut self,
        plan: SpawnPlan,
        victim: usize,
        crash_at_event: usize,
        detect_delay: u64,
    ) -> CrashOutcome {
        let n = self.detectors.len();
        assert!(n > 1, "need at least one survivor");
        assert!(victim < n, "victim out of range");
        self.rng = SplitMix64::new(plan.jitter_seed);
        self.jitter_max = plan.jitter_max;
        for (initiator, tree) in plan.roots.clone() {
            assert!(initiator < n && tree.target < n, "plan references unknown image");
            self.send_spawn(initiator, tree, plan.net_delay);
        }

        let mut crashed = false;
        let mut poisoned = false;
        let mut processed = 0usize;
        let mut waves = 0usize;
        loop {
            // Phase 1: a wave closes only once *every* image has entered
            // the allreduce — a dead non-entrant blocks it, exactly like
            // the real collective would hang on the missing contribution.
            // Poison breaks the impasse: once delivered, the survivors
            // close the wave among themselves (its decision is then
            // `Poisoned` regardless of the sum, so a survivor-only sum is
            // never *interpreted* as clean termination).
            let mut entered: Vec<Option<[i64; 2]>> = vec![None; n];
            loop {
                for (i, d) in self.detectors.iter_mut().enumerate() {
                    if crashed && i == victim {
                        continue; // the dead image never enters
                    }
                    if entered[i].is_none() && d.ready() {
                        entered[i] = Some(d.enter_wave());
                    }
                }
                let closes = |i: usize| entered[i].is_some() || (poisoned && i == victim);
                if (0..n).all(closes) {
                    break;
                }
                let Some(next) = self.queue.pop() else {
                    panic!(
                        "deadlock: queue empty but some survivor never became \
                         ready (poison not propagated?)"
                    );
                };
                let trigger = Trigger { victim, crash_at_event, detect_delay };
                self.crash_step(next, &plan, trigger, &mut crashed, &mut poisoned, &mut processed);
            }

            let wave_end = self.now + plan.wave_delay.max(1);
            while self.queue.peek().is_some_and(|s| s.time <= wave_end) {
                let next = self.queue.pop().expect("peeked");
                let trigger = Trigger { victim, crash_at_event, detect_delay };
                self.crash_step(next, &plan, trigger, &mut crashed, &mut poisoned, &mut processed);
            }
            self.now = wave_end;
            let sum = entered.iter().flatten().fold([0i64; 2], |a, c| [a[0] + c[0], a[1] + c[1]]);
            waves += 1;
            let mut decisions = (0..n)
                .filter(|&i| !(crashed && i == victim))
                .map(|i| self.detectors[i].exit_wave(sum));
            let first = decisions.next().expect("n > 1");
            assert!(decisions.all(|d| d == first), "survivors disagreed on the wave decision");
            match first {
                WaveDecision::Terminated => {
                    assert_eq!(
                        self.outstanding, 0,
                        "UNSOUND: termination declared with {} survivor-relevant messages \
                         outstanding",
                        self.outstanding
                    );
                    return CrashOutcome::Terminated { waves };
                }
                WaveDecision::Poisoned => return CrashOutcome::Poisoned { waves },
                WaveDecision::Continue => {
                    assert!(waves < self.max_waves, "survivors live-locked after {waves} waves");
                }
            }
        }
    }

    /// One event step of [`run_with_crash`]: fires the crash when its
    /// trigger count is reached, discards events involving the dead
    /// victim, delivers poison, and processes everything else normally.
    fn crash_step(
        &mut self,
        next: Scheduled,
        plan: &SpawnPlan,
        trigger: Trigger,
        crashed: &mut bool,
        poisoned: &mut bool,
        processed: &mut usize,
    ) {
        if !*crashed && *processed == trigger.crash_at_event {
            *crashed = true;
            self.seq += 1;
            let time = next.time + trigger.detect_delay.max(1);
            self.queue.push(Scheduled { time, seq: self.seq, ev: Ev::Poison });
        }
        *processed += 1;
        self.now = next.time;
        let victim = trigger.victim;
        match next.ev {
            Ev::Poison => {
                *poisoned = true;
                for (i, d) in self.detectors.iter_mut().enumerate() {
                    if i != victim {
                        d.poison(victim);
                    }
                }
            }
            // Work that died with the victim can never affect a survivor:
            // it leaves the ground-truth outstanding count.
            Ev::Deliver { to, .. } if *crashed && to == victim => self.outstanding -= 1,
            Ev::ExecDone { at, .. } if *crashed && at == victim => self.outstanding -= 1,
            Ev::Ack { to, .. } if *crashed && to == victim => {}
            ev => self.process(ev, plan),
        }
    }

    /// Runs `plan` with the unsound [`BarrierDetector`] strategy: each
    /// image enters a barrier once locally done, the barrier completes when
    /// all have entered, and entry is never retracted. Returns when the
    /// barrier completed and how much work was still outstanding — the
    /// Fig. 5 failure is `outstanding_at_declaration > 0`.
    pub fn run_barrier(n: usize, plan: SpawnPlan) -> BarrierRun {
        let mut dets: Vec<BarrierDetector> = (0..n).map(|_| BarrierDetector::new()).collect();
        let mut entered = vec![false; n];
        let mut queue: BinaryHeap<Scheduled> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut outstanding = 0usize;
        let mut rng = SplitMix64::new(plan.jitter_seed);

        let schedule = |queue: &mut BinaryHeap<Scheduled>,
                        seq: &mut u64,
                        now: u64,
                        rng: &mut SplitMix64,
                        delay: u64,
                        ev: Ev| {
            let jitter = if plan.jitter_max > 0 { rng.next_below(plan.jitter_max) } else { 0 };
            *seq += 1;
            queue.push(Scheduled { time: now + delay + jitter, seq: *seq, ev });
        };

        for (initiator, tree) in plan.roots.clone() {
            let tag = dets[initiator].on_send();
            outstanding += 1;
            schedule(
                &mut queue,
                &mut seq,
                now,
                &mut rng,
                plan.net_delay,
                Ev::Deliver { to: tree.target, from: initiator, tag, children: tree.children },
            );
        }

        loop {
            // Latch barrier entries (never retracted — the flaw).
            for i in 0..n {
                if !entered[i] && dets[i].locally_done() {
                    entered[i] = true;
                }
            }
            if entered.iter().all(|&e| e) {
                return BarrierRun { declared_at: now, outstanding_at_declaration: outstanding };
            }
            let next = queue.pop().expect("barrier never completed");
            now = next.time;
            match next.ev {
                Ev::Deliver { to, from, tag, children } => {
                    dets[to].on_receive(tag);
                    schedule(
                        &mut queue,
                        &mut seq,
                        now,
                        &mut rng,
                        plan.ack_delay,
                        Ev::Ack { to: from, tag },
                    );
                    schedule(
                        &mut queue,
                        &mut seq,
                        now,
                        &mut rng,
                        plan.exec_delay,
                        Ev::ExecDone { at: to, tag, children },
                    );
                }
                Ev::Ack { to, tag } => dets[to].on_delivered(tag),
                Ev::ExecDone { at, tag, children } => {
                    for child in children {
                        let ctag = dets[at].on_send();
                        outstanding += 1;
                        schedule(
                            &mut queue,
                            &mut seq,
                            now,
                            &mut rng,
                            plan.net_delay,
                            Ev::Deliver {
                                to: child.target,
                                from: at,
                                tag: ctag,
                                children: child.children,
                            },
                        );
                    }
                    dets[at].on_complete(tag);
                    outstanding -= 1;
                }
                Ev::Poison => unreachable!("poison event outside a crash run"),
            }
        }
    }

    /// Runs `plan` under the barrier-based strategy with image `victim`
    /// fail-stopping just before the `crash_at_event`-th event. After
    /// `detect_delay`, every survivor's [`BarrierDetector`] is poisoned,
    /// which aborts its barrier wait — the property that keeps a dead
    /// image from hanging the (already unsound) strawman forever.
    pub fn run_barrier_with_crash(
        n: usize,
        plan: SpawnPlan,
        victim: usize,
        crash_at_event: usize,
        detect_delay: u64,
    ) -> BarrierCrashRun {
        assert!(n > 1 && victim < n);
        let mut dets: Vec<BarrierDetector> = (0..n).map(|_| BarrierDetector::new()).collect();
        let mut entered = vec![false; n];
        let mut queue: BinaryHeap<Scheduled> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut rng = SplitMix64::new(plan.jitter_seed);
        let mut crashed = false;
        let mut processed = 0usize;

        let schedule = |queue: &mut BinaryHeap<Scheduled>,
                        seq: &mut u64,
                        now: u64,
                        rng: &mut SplitMix64,
                        delay: u64,
                        ev: Ev| {
            let jitter = if plan.jitter_max > 0 { rng.next_below(plan.jitter_max) } else { 0 };
            *seq += 1;
            queue.push(Scheduled { time: now + delay + jitter, seq: *seq, ev });
        };

        for (initiator, tree) in plan.roots.clone() {
            let tag = dets[initiator].on_send();
            schedule(
                &mut queue,
                &mut seq,
                now,
                &mut rng,
                plan.net_delay,
                Ev::Deliver { to: tree.target, from: initiator, tag, children: tree.children },
            );
        }

        loop {
            for i in 0..n {
                if !entered[i] && dets[i].locally_done() {
                    entered[i] = true;
                }
            }
            if entered.iter().all(|&e| e) {
                let poisoned =
                    dets.iter().enumerate().any(|(i, d)| i != victim && d.poisoned_by().is_some());
                return BarrierCrashRun { declared_at: now, poisoned };
            }
            let next = queue.pop().expect("survivors wedged: poison never unblocked the barrier");
            if !crashed && processed == crash_at_event {
                crashed = true;
                seq += 1;
                queue.push(Scheduled {
                    time: next.time + detect_delay.max(1),
                    seq,
                    ev: Ev::Poison,
                });
            }
            processed += 1;
            now = next.time;
            match next.ev {
                Ev::Poison => {
                    for (i, d) in dets.iter_mut().enumerate() {
                        if i != victim {
                            d.poison(victim);
                        }
                    }
                    // The dead image no longer gates the (aborted) exit.
                    entered[victim] = true;
                }
                Ev::Deliver { to, .. } if crashed && to == victim => {}
                Ev::ExecDone { at, .. } if crashed && at == victim => {}
                Ev::Ack { to, .. } if crashed && to == victim => {}
                Ev::Deliver { to, from, tag, children } => {
                    dets[to].on_receive(tag);
                    schedule(
                        &mut queue,
                        &mut seq,
                        now,
                        &mut rng,
                        plan.ack_delay,
                        Ev::Ack { to: from, tag },
                    );
                    schedule(
                        &mut queue,
                        &mut seq,
                        now,
                        &mut rng,
                        plan.exec_delay,
                        Ev::ExecDone { at: to, tag, children },
                    );
                }
                Ev::Ack { to, tag } => dets[to].on_delivered(tag),
                Ev::ExecDone { at, tag, children } => {
                    for child in children {
                        let ctag = dets[at].on_send();
                        schedule(
                            &mut queue,
                            &mut seq,
                            now,
                            &mut rng,
                            plan.net_delay,
                            Ev::Deliver {
                                to: child.target,
                                from: at,
                                tag: ctag,
                                children: child.children,
                            },
                        );
                    }
                    dets[at].on_complete(tag);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::termination::{EpochDetector, FourCounterDetector};

    #[test]
    fn chain_helper_builds_linear_trees() {
        let t = chain(&[1, 2, 3]);
        assert_eq!(t.chain_len(), 3);
        assert_eq!(t.total_spawns(), 3);
        assert_eq!(t.target, 1);
        assert_eq!(t.children[0].target, 2);
        assert_eq!(t.children[0].children[0].target, 3);
    }

    #[test]
    fn epoch_detector_handles_fan_out() {
        let mut plan = SpawnPlan::default();
        // Image 0 ships to everyone; each target ships two more.
        for t in 1..6 {
            plan.spawn(0, node(t, vec![node((t + 1) % 6, vec![]), node((t + 2) % 6, vec![])]));
        }
        let mut h = Harness::new(6, || Box::new(EpochDetector::new(true)));
        let waves = h.run(plan.clone());
        assert!(waves <= plan.longest_chain() + 1);
    }

    #[test]
    fn epoch_detector_sound_under_jitter() {
        for seed in 0..20 {
            let mut plan = SpawnPlan {
                jitter_max: 17,
                jitter_seed: seed,
                net_delay: 2,
                exec_delay: 3,
                ..SpawnPlan::default()
            };
            plan.spawn(0, chain(&[1, 2, 3, 0, 1]));
            plan.spawn(2, node(3, vec![node(0, vec![]), node(1, vec![])]));
            let mut h = Harness::new(4, || Box::new(EpochDetector::new(true)));
            // run() asserts soundness internally.
            let waves = h.run(plan);
            assert!(waves >= 2);
        }
    }

    #[test]
    fn no_wait_variant_sound_under_jitter() {
        for seed in 0..20 {
            let mut plan = SpawnPlan { jitter_max: 11, jitter_seed: seed, ..SpawnPlan::default() };
            plan.spawn(1, chain(&[2, 0, 2]));
            let mut h = Harness::new(3, || Box::new(EpochDetector::new(false)));
            h.run(plan);
        }
    }

    #[test]
    fn four_counter_sound_under_jitter() {
        for seed in 0..20 {
            let mut plan = SpawnPlan { jitter_max: 13, jitter_seed: seed, ..SpawnPlan::default() };
            plan.spawn(0, node(1, vec![node(2, vec![node(3, vec![])])]));
            let mut h = Harness::new(4, || Box::new(FourCounterDetector::new()));
            h.run(plan);
        }
    }

    #[test]
    fn crash_mid_chain_poisons_every_survivor() {
        let mut plan = SpawnPlan::default();
        plan.spawn(0, chain(&[1, 2, 3]));
        let mut h = Harness::new(4, || Box::new(EpochDetector::new(true)));
        let out = h.run_with_crash(plan, 2, 3, 5);
        assert!(matches!(out, CrashOutcome::Poisoned { .. }), "expected poison, got {out:?}");
    }

    #[test]
    fn crash_point_past_the_schedule_is_a_clean_run() {
        let mut plan = SpawnPlan::default();
        plan.spawn(0, node(1, vec![]));
        let mut h = Harness::new(4, || Box::new(EpochDetector::new(true)));
        let out = h.run_with_crash(plan, 3, 10_000, 5);
        assert!(matches!(out, CrashOutcome::Terminated { .. }), "no crash fired, got {out:?}");
    }

    #[test]
    fn crash_before_any_event_still_resolves() {
        // The victim dies before the first delivery: the sender's spawn
        // into the dead image can never be acked, so only poison can
        // unblock the survivors.
        let mut plan = SpawnPlan::default();
        plan.spawn(0, chain(&[1, 2, 3]));
        let mut h = Harness::new(4, || Box::new(EpochDetector::new(true)));
        let out = h.run_with_crash(plan, 2, 0, 7);
        assert!(matches!(out, CrashOutcome::Poisoned { .. }), "expected poison, got {out:?}");
    }

    #[test]
    fn barrier_crash_aborts_instead_of_hanging() {
        let mut plan = SpawnPlan::default();
        plan.spawn(0, node(1, vec![node(2, vec![])]));
        let run = Harness::run_barrier_with_crash(3, plan, 1, 0, 4);
        assert!(run.poisoned, "survivors must abort the barrier wait");
    }

    /// Paper Fig. 5, deterministically: p(=0) ships f1 to q(=1); f1 ships
    /// f2 to r(=2) over a slow link. The barrier-based detector completes
    /// while f2 is still outstanding; the epoch detector does not.
    #[test]
    fn barrier_detector_misses_transitive_spawn() {
        let mut plan =
            SpawnPlan { net_delay: 1, ack_delay: 1, exec_delay: 5, ..SpawnPlan::default() };
        plan.spawn(0, node(1, vec![node(2, vec![])]));

        let run = Harness::run_barrier(3, plan.clone());
        assert!(
            run.outstanding_at_declaration > 0,
            "expected the Fig. 5 failure; barrier declared at t={} with {} outstanding",
            run.declared_at,
            run.outstanding_at_declaration
        );

        // finish (epoch detector) is sound on the same schedule — run()
        // would panic otherwise.
        let mut h = Harness::new(3, || Box::new(EpochDetector::new(true)));
        h.run(plan);
    }
}
